//! # criterion (workspace shim)
//!
//! Offline stand-in for the `criterion` crate (crates.io is unreachable in
//! the build environment). Implements the builder/macro surface the
//! workspace's benches use — `benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!` — over a simple
//! median-of-samples wall-clock timer that prints one line per benchmark.
//!
//! No statistical analysis, plots, or baselines; it exists so `cargo
//! bench` compiles and produces stable, comparable numbers.

use std::fmt::Display;
use std::time::Instant;

/// Re-export mirror of `criterion::black_box` (benches may use either this
/// or `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Passed to the measured closure; `iter` times one closure invocation.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, recorded by `iter`.
    pub(crate) median_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call, then `samples` timed calls.
        black_box(f());
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_nanos() as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = times[times.len() / 2];
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&format!("{id}"), &mut f)
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.label, &mut |b: &mut Bencher| f(b, input))
    }

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut b);
        println!(
            "{}/{:<32} median {:>12.0} ns/iter  ({} samples)",
            self.name, label, b.median_ns, self.sample_size
        );
        self
    }

    pub fn finish(self) {}
}

/// The harness entry object handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _c: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_median() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
