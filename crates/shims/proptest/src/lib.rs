//! # proptest (workspace shim)
//!
//! Offline stand-in for the `proptest` crate (crates.io is unreachable in
//! the build environment). It covers exactly the subset the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies over integers and floats, tuple strategies,
//!   [`collection::vec`], and [`bool::ANY`].
//!
//! Differences from upstream: inputs are sampled from a fixed per-test
//! seed (derived from the test's name), and failing cases are **not
//! shrunk** — the panic message reports the case index so a failure is
//! reproducible by rerunning the same test binary.

use std::ops::{Range, RangeInclusive};

use rand::{Rng as _, RngCore, SeedableRng};

/// Test-case generation parameters.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG driving strategy sampling.
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Deterministic RNG derived from the test name (FNV-1a hash), so every
    /// run of a given property sees the same input sequence.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(rand::rngs::StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of random values of one type (upstream `Strategy`, minus
/// shrinking).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B);
    (A, B, C);
    (A, B, C, D);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.0.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    pub struct Any;

    /// Uniform over `{true, false}`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.0.gen_bool(0.5)
        }
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The main entry point: wraps each property in a `#[test]`-style function
/// that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let run = || -> () { $body };
                if let Err(payload) = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(run)
                ) {
                    eprintln!(
                        "proptest case {}/{} of {} failed",
                        __case + 1, cfg.cases, stringify!($name)
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            x in 0.1f64..0.9,
            n in 1usize..20,
            v in crate::collection::vec((0.0f64..1.0, 1u64..5), 0..10),
            flag in crate::bool::ANY,
        ) {
            prop_assert!((0.1..0.9).contains(&x));
            prop_assert!((1..20).contains(&n));
            prop_assert!(v.len() < 10);
            for (a, b) in v {
                prop_assert!((0.0..1.0).contains(&a));
                prop_assert!((1..5).contains(&b));
            }
            let _ = flag;
        }
    }

    #[test]
    fn same_test_name_gives_same_stream() {
        let mut a = crate::TestRng::for_test("x::y");
        let mut b = crate::TestRng::for_test("x::y");
        use rand::RngCore as _;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
