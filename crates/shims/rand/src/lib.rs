//! # rand (workspace shim)
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the `rand 0.8` API the workspace actually uses,
//! backed by xoshiro256++ (seeded through SplitMix64). The stream differs
//! from upstream `StdRng`, but everything in the workspace only relies on
//! *determinism per seed*, never on the exact upstream stream.
//!
//! Surface implemented:
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen_range`] over `Range` / `RangeInclusive` of the common
//!   integer types and `f64`/`f32`
//! * [`Rng::gen_bool`], [`Rng::gen`], [`Rng::fill_bytes`]

pub mod rngs;

pub use rngs::StdRng;

/// Low-level source of randomness (the subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators (the subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`Standard` upstream).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Uniform `f64` in `[0, 1)` from 53 random mantissa bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be drawn from (`SampleRange` upstream).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors upstream `Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (`p` clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.05..1.0);
            assert!((0.05..1.0).contains(&x));
            let n: usize = rng.gen_range(1..8);
            assert!((1..8).contains(&n));
            let k: u64 = rng.gen_range(3..=5);
            assert!((3..=5).contains(&k));
            let s: i32 = rng.gen_range(-4..9);
            assert!((-4..9).contains(&s));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        assert!(xs.iter().any(|&x| x < 0.1) && xs.iter().any(|&x| x > 0.9));
    }
}
