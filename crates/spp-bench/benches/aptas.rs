//! End-to-end APTAS (Algorithm 2) — runtime polynomial in n, growing
//! with 1/ε (E10's runtime side), vs the practical baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use spp_release::{aptas, AptasConfig};

fn instance(n: usize) -> spp_core::Instance {
    let p = spp_gen::release::ReleaseParams {
        k: 2,
        column_widths: true,
        h: (0.1, 1.0),
    };
    let mut rng = StdRng::seed_from_u64(6);
    spp_gen::release::poisson_arrivals(&mut rng, n, 0.1, p)
}

fn bench_aptas(c: &mut Criterion) {
    let mut group = c.benchmark_group("aptas");
    group.sample_size(10);
    for &n in &[100usize, 400] {
        let inst = instance(n);
        for &eps in &[1.0, 0.5] {
            group.bench_with_input(
                BenchmarkId::new(format!("eps_{eps}"), n),
                &inst,
                |b, inst| {
                    b.iter(|| std::hint::black_box(aptas(inst, AptasConfig { epsilon: eps, k: 2 })))
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("baseline_skyline", n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(spp_release::baselines::skyline_release(inst)))
        });
        group.bench_with_input(BenchmarkId::new("baseline_batched", n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(spp_release::baselines::batched_ffdh(inst)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aptas);
criterion_main!(benches);
