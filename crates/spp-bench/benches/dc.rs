//! `DC` scaling with n and DAG family (E1's runtime side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use spp_gen::rects::DagFamily;
use spp_pack::Packer;

fn bench_dc(c: &mut Criterion) {
    let mut group = c.benchmark_group("dc");
    group.sample_size(15);
    for &n in &[64usize, 256, 1024] {
        for family in [DagFamily::Layered, DagFamily::Random] {
            let mut rng = StdRng::seed_from_u64(2);
            let inst = spp_gen::rects::uniform(&mut rng, n, (0.05, 0.95), (0.05, 1.0));
            let dag = family.build(&mut rng, n);
            let prec = spp_dag::PrecInstance::new(inst, dag);
            group.bench_with_input(BenchmarkId::new(family.name(), n), &prec, |b, prec| {
                b.iter(|| std::hint::black_box(spp_precedence::dc(prec, &Packer::Nfdh)))
            });
        }
    }
    // baselines at the largest size for context
    let mut rng = StdRng::seed_from_u64(2);
    let inst = spp_gen::rects::uniform(&mut rng, 1024, (0.05, 0.95), (0.05, 1.0));
    let dag = DagFamily::Layered.build(&mut rng, 1024);
    let prec = spp_dag::PrecInstance::new(inst, dag);
    group.bench_function("greedy_skyline/1024", |b| {
        b.iter(|| std::hint::black_box(spp_precedence::greedy_skyline(&prec)))
    });
    group.bench_function("layered_nfdh/1024", |b| {
        b.iter(|| std::hint::black_box(spp_precedence::layered_pack(&prec, &Packer::Nfdh)))
    });
    group.finish();
}

criterion_group!(benches, bench_dc);
criterion_main!(benches);
