//! Simplex / configuration-LP performance (E9's runtime side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use spp_release::colgen::solve_fractional_with_configs;
use spp_release::config::enumerate_configs;
use spp_release::lp_model::{solve_with_configs, LpData};

fn setup(k: usize, n: usize) -> LpData {
    let p = spp_gen::release::ReleaseParams {
        k,
        column_widths: true,
        h: (0.1, 1.0),
    };
    let mut rng = StdRng::seed_from_u64(5);
    let inst = spp_gen::release::poisson_arrivals(&mut rng, n, 0.25, p);
    let mut widths: Vec<f64> = inst.items().iter().map(|it| it.w).collect();
    widths.sort_by(|a, b| a.partial_cmp(b).unwrap());
    widths.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);
    let class_of: Vec<usize> = inst
        .items()
        .iter()
        .map(|it| {
            widths
                .iter()
                .position(|&w| (w - it.w).abs() < 1e-12)
                .unwrap()
        })
        .collect();
    LpData::new(&inst, &widths, &class_of)
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp");
    group.sample_size(15);
    for &k in &[2usize, 3, 4] {
        let data = setup(k, 30);
        let all = enumerate_configs(&data.widths);
        group.bench_with_input(BenchmarkId::new("full_enumeration", k), &data, |b, d| {
            b.iter(|| std::hint::black_box(solve_with_configs(d, &all)))
        });
        group.bench_with_input(BenchmarkId::new("column_generation", k), &data, |b, d| {
            b.iter(|| std::hint::black_box(solve_fractional_with_configs(d)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
