//! Throughput of the unconstrained packers (subroutine-A family, E12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use spp_pack::traits::{StripPacker, ALL_PACKERS};

fn bench_packers(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack");
    group.sample_size(20);
    for &n in &[100usize, 1000] {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = spp_gen::rects::uniform(&mut rng, n, (0.05, 0.95), (0.05, 1.0));
        for packer in ALL_PACKERS {
            group.bench_with_input(BenchmarkId::new(packer.name(), n), &inst, |b, inst| {
                b.iter(|| std::hint::black_box(packer.pack(inst)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_packers);
criterion_main!(benches);
