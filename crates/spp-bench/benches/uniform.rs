//! Uniform-height shelf algorithms (E4/E5's runtime side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn bench_uniform(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniform");
    group.sample_size(20);
    for &n in &[100usize, 1000] {
        let mut rng = StdRng::seed_from_u64(3);
        let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..1.0)).collect();
        let dag = spp_dag::gen::random_order(&mut rng, n, 2.0 / n as f64);
        let dims: Vec<(f64, f64)> = sizes.iter().map(|&w| (w, 1.0)).collect();
        let prec =
            spp_dag::PrecInstance::new(spp_core::Instance::from_dims(&dims).unwrap(), dag.clone());
        group.bench_with_input(BenchmarkId::new("shelf_f", n), &prec, |b, p| {
            b.iter(|| std::hint::black_box(spp_precedence::shelf_next_fit(p)))
        });
        group.bench_with_input(
            BenchmarkId::new("ggjy_first_fit", n),
            &(sizes.clone(), dag.clone()),
            |b, (s, d)| {
                b.iter(|| std::hint::black_box(spp_precedence::binpack::first_fit_prec(s, d)))
            },
        );
    }
    // exact DP at its practical ceiling
    let mut rng = StdRng::seed_from_u64(4);
    let sizes: Vec<f64> = (0..14).map(|_| rng.gen_range(0.1..1.0)).collect();
    let dag = spp_dag::gen::random_order(&mut rng, 14, 0.2);
    group.bench_function("exact_bins/14", |b| {
        b.iter(|| std::hint::black_box(spp_exact::exact_bins(&sizes, &dag)))
    });
    group.finish();
}

criterion_group!(benches, bench_uniform);
criterion_main!(benches);
