//! Thin wrapper; see `spp_bench::experiments::ablation`.
fn main() {
    print!("{}", spp_bench::experiments::ablation::run());
}
