//! Thin wrapper; see `spp_bench::experiments::aptas_sweep`.
fn main() {
    print!("{}", spp_bench::experiments::aptas_sweep::run());
}
