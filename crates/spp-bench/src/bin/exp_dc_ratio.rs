//! Thin wrapper; see `spp_bench::experiments::dc_ratio`.
fn main() {
    print!("{}", spp_bench::experiments::dc_ratio::run());
}
