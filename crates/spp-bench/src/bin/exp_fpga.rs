//! Thin wrapper; see `spp_bench::experiments::fpga`.
fn main() {
    print!("{}", spp_bench::experiments::fpga::run());
}
