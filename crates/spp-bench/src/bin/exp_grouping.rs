//! Thin wrapper; see `spp_bench::experiments::grouping`.
fn main() {
    print!("{}", spp_bench::experiments::grouping::run());
}
