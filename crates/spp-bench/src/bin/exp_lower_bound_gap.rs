//! Thin wrapper; see `spp_bench::experiments::lower_bound_gap`.
fn main() {
    print!("{}", spp_bench::experiments::lower_bound_gap::run());
}
