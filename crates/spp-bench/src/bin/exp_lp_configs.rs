//! Thin wrapper; see `spp_bench::experiments::lp_configs`.
fn main() {
    print!("{}", spp_bench::experiments::lp_configs::run());
}
