//! Thin wrapper; see `spp_bench::experiments::online_gap`.
fn main() {
    print!("{}", spp_bench::experiments::online_gap::run());
}
