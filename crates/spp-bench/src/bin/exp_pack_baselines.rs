//! Thin wrapper; see `spp_bench::experiments::pack_baselines`.
fn main() {
    print!("{}", spp_bench::experiments::pack_baselines::run());
}
