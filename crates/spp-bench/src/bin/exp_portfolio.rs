//! Thin wrapper; see `spp_bench::experiments::portfolio`.
fn main() {
    print!("{}", spp_bench::experiments::portfolio::run());
}
