//! Thin wrapper; see `spp_bench::experiments::ratio3_tightness`.
fn main() {
    print!("{}", spp_bench::experiments::ratio3_tightness::run());
}
