//! Thin wrapper; see `spp_bench::experiments::release_rounding`.
fn main() {
    print!("{}", spp_bench::experiments::release_rounding::run());
}
