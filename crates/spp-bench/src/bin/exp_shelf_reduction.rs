//! Thin wrapper; see `spp_bench::experiments::shelf_reduction`.
fn main() {
    print!("{}", spp_bench::experiments::shelf_reduction::run());
}
