//! Thin wrapper; see `spp_bench::experiments::uniform_ratio`.
fn main() {
    print!("{}", spp_bench::experiments::uniform_ratio::run());
}
