//! Regenerate the checked-in E17 microbench instance
//! (`crates/spp-bench/data/micro_n512.json`).
//!
//! Narrow items are deliberate: with ~10–100 items per level the skyline
//! carries hundreds of segments, which is the regime where the pre-PR-10
//! quadratic position scan actually bites (wide-item instances keep the
//! contour a handful of segments and hide the asymptotics).
//!
//! ```text
//! cargo run --release -p spp-bench --bin gen_micro
//! ```

use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2006);
    let inst = spp_gen::rects::uniform(&mut rng, 512, (0.005, 0.06), (0.02, 0.2));
    let prec = spp_dag::PrecInstance::unconstrained(inst);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/micro_n512.json");
    std::fs::write(path, spp_gen::fileio::to_json(&prec)).expect("write micro_n512.json");
    eprintln!("wrote {path}");
}
