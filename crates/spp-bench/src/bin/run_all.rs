//! Regenerate every experiment report (the contents of EXPERIMENTS.md's
//! measured sections).
fn main() {
    print!("{}", spp_bench::run_all_experiments());
}
