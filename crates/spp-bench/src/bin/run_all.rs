//! Regenerate every experiment report (the contents of EXPERIMENTS.md's
//! measured sections) and write a machine-readable perf baseline.
//!
//! ```text
//! run_all [--json <path>]     # default path: BENCH_BASELINE.json
//! ```
//!
//! Markdown goes to stdout; the JSON baseline — per-experiment wall times
//! plus the engine-registry sweep (one record per algo/family/n with
//! height, ratio, wall time) — goes to the `--json` path so future PRs
//! can diff performance against a checked-in `BENCH_*.json`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(i) => match args.get(i + 1) {
            Some(path) if !path.starts_with("--") => path.clone(),
            _ => {
                eprintln!("error: --json requires a path argument");
                std::process::exit(2);
            }
        },
        None => "BENCH_BASELINE.json".to_string(),
    };

    let output = spp_bench::run_all_experiments();
    print!("{}", output.markdown);

    let mut records = output.records;
    records.extend(spp_bench::json::baseline_sweep(5, &[32, 128, 512]));
    records.extend(spp_bench::json::anytime_sweep(5, &[32, 128], 50));
    let json = spp_bench::json::to_json(&records);
    if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("error: cannot write {json_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {} records to {json_path}", records.len());
}
