//! A1 — ablations of the design choices called out in `DESIGN.md`:
//!
//! 1. **`DC` subroutine choice** — swap NFDH for FFDH / Sleator / skyline
//!    inside `DC` and measure the height ratio vs the lower bound on
//!    layered workloads (NFDH is the only one with the *proven* A-bound;
//!    the ablation shows what the guarantee costs in practice).
//! 2. **`DC` vs baselines** — the same workloads packed by greedy
//!    skyline and layered-NFDH.
//! 3. **Column generation vs full enumeration** — wall-clock for the
//!    configuration LP at growing width counts.

use crate::experiments::SEED;
use crate::table::{f2, f3, Table};
use rand::{rngs::StdRng, SeedableRng};
use spp_engine::{Registry, SolveRequest};
use spp_release::colgen::solve_fractional_with_configs;
use spp_release::config::enumerate_configs;
use spp_release::lp_model::{solve_with_configs, LpData};

pub fn run() -> String {
    // ---- 1 + 2: DC subroutine ablation and baselines ----
    //
    // Every precedence-capable solver in the registry competes (the dc-*
    // family covers one entry per subroutine A; greedy and layered are the
    // baselines). Registering a new subroutine automatically adds a row.
    let registry = Registry::builtin();
    let mut t1 = Table::new(&["algorithm", "mean height/LB", "max height/LB"]);
    let n = 300;
    let instances: Vec<spp_dag::PrecInstance> = (0..8u64)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(SEED ^ seed.wrapping_mul(7919));
            let inst = spp_gen::rects::uniform(&mut rng, n, (0.05, 0.95), (0.05, 1.0));
            spp_gen::rects::with_layered_dag(&mut rng, inst, 12, 0.1)
        })
        .collect();
    for entry in registry.filter(|c| c.precedence && !c.release && !c.uniform_height_only) {
        let solver = entry.build();
        let ratios: Vec<f64> = spp_par::par_map(&instances, |p| {
            let report = spp_engine::solve(&*solver, &SolveRequest::new(p.clone()))
                .expect("precedence solvers accept every DAG instance");
            assert!(
                report.validation.passed(),
                "{} produced an invalid placement",
                entry.name
            );
            report.ratio()
        });
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        t1.row(&[entry.name.to_string(), f3(mean), f3(max)]);
    }

    // ---- 3: colgen vs enumeration ----
    let mut t2 = Table::new(&[
        "width classes",
        "|Q|",
        "full LP (ms)",
        "colgen (ms)",
        "objectives equal",
    ]);
    for &classes in &[3usize, 6, 9] {
        // widths ≥ 1/3 so |Q| stays enumerable while growing fast
        let widths: Vec<f64> = (0..classes)
            .map(|i| 1.0 / 3.0 + (i as f64) * (2.0 / 3.0) / classes as f64)
            .collect();
        let mut rng = StdRng::seed_from_u64(SEED + classes as u64);
        let dims: Vec<(f64, f64, f64)> = (0..30)
            .map(|i| {
                use rand::Rng;
                (widths[i % classes], rng.gen_range(0.1..1.0), (i % 3) as f64)
            })
            .collect();
        let inst = spp_core::Instance::from_dims_release(&dims).unwrap();
        let class_of: Vec<usize> = (0..30).map(|i| i % classes).collect();
        let data = LpData::new(&inst, &widths, &class_of);

        let t0 = std::time::Instant::now();
        let all = enumerate_configs(&widths);
        let full = solve_with_configs(&data, &all).expect("feasible");
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = std::time::Instant::now();
        let (cg, _) = solve_fractional_with_configs(&data);
        let cg_ms = t0.elapsed().as_secs_f64() * 1e3;

        let equal = (full.total_height - cg.total_height).abs() < 1e-5;
        assert!(equal, "colgen diverged from enumeration");
        t2.row(&[
            classes.to_string(),
            all.len().to_string(),
            f2(full_ms),
            f2(cg_ms),
            "yes".into(),
        ]);
    }

    format!(
        "## A1 — ablations\n\n### DC subroutine choice (layered DAGs, n = {n})\n\n{}\n\
         ### Configuration LP: column generation vs full enumeration\n\n{}\n",
        t1.render(),
        t2.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablation_report_runs() {
        let r = super::run();
        assert!(r.contains("## A1"));
        for algo in ["dc-nfdh", "dc-sleator", "dc-skyline", "greedy", "layered"] {
            assert!(r.contains(algo), "missing {algo}");
        }
    }
}
