//! E16 — anytime improvement: makespan vs. budget, exact-OPT ratios,
//! and the best-so-far cache contract.
//!
//! The anytime subsystem's pitch is that "one-shot" is the `budget_ms=0`
//! special case of "budgeted": any extra milliseconds buy monotone
//! makespan reductions and never cost feasibility. This experiment
//! measures the trade on every suite family (makespan vs. budget
//! curves), calibrates seed and improved packings against the exact
//! optimum on small instances (`spp-exact`), and asserts the cache side
//! of the contract: a budgeted batch persists its best-so-far entries,
//! and a warm rerun serves the *improved* values with zero solver
//! invocations.

use crate::table::{f3, Table};
use spp_engine::{
    run_sharded, solve, DiskCache, Registry, ShardPlan, SolveCache as _, SolveConfig, SolveRequest,
};
use spp_exact::{exact_strip, ExactConfig};
use spp_gen::suite::{self, FAMILIES};

/// A solver honoring the constraint families a scenario carries, so
/// budgeted packings validate strictly.
fn solver_for(prec: &spp_dag::PrecInstance) -> &'static str {
    if prec.dag.edge_count() > 0 {
        "dc-nfdh"
    } else if prec.inst.items().iter().any(|it| it.release > 0.0) {
        "skyline-release"
    } else {
        "skyline"
    }
}

/// Family name of a suite scenario (`"<family>-<index>"`).
fn family_of(name: &str) -> &str {
    name.rsplit_once('-').map(|(f, _)| f).unwrap_or(name)
}

pub fn run() -> String {
    let registry = Registry::builtin();

    // ----- makespan vs. budget, one curve per suite family -----------
    let budgets_ms = [0u64, 5, 25, 100];
    let mut curve = Table::new(&["family", "algo", "seed h", "h@5ms", "h@25ms", "h@100ms"]);
    let mut improved_families = 0usize;
    for (index, scenario) in suite::suite(crate::experiments::SEED, 36, FAMILIES.len())
        .into_iter()
        .enumerate()
    {
        let algo = solver_for(&scenario.prec);
        let solver = registry.get(algo).expect("registry entry exists");
        let mut heights = Vec::new();
        for &budget_ms in &budgets_ms {
            let mut request = SolveRequest::new(scenario.prec.clone());
            request.config.budget_ms = budget_ms;
            let report = solve(&*solver, &request).expect("suite workloads solve");
            assert!(
                report.validation.passed(),
                "{algo} on {}: invalid budgeted placement",
                scenario.name
            );
            assert!(
                report.makespan <= report.seed_makespan + 1e-9,
                "{algo} on {}: budget made the makespan worse",
                scenario.name
            );
            heights.push(report.makespan);
        }
        if heights[budgets_ms.len() - 1] < heights[0] - 1e-9 {
            improved_families += 1;
        }
        curve.row(&[
            FAMILIES[index % FAMILIES.len()].to_string(),
            algo.to_string(),
            f3(heights[0]),
            f3(heights[1]),
            f3(heights[2]),
            f3(heights[3]),
        ]);
    }
    // The acceptance claim: the budget buys real height on at least one
    // family — asserted, not just tabulated.
    assert!(
        improved_families >= 1,
        "no suite family improved under a 100ms budget"
    );

    // ----- seed vs. improved vs. exact OPT on small instances --------
    // n = 6 keeps the branch-and-bound search exhaustive on every family
    // (proven optimality within the default node cap), so the ratios
    // below are against true OPT, not a bound.
    let mut opt_table = Table::new(&["family", "algo", "seed/OPT", "improved/OPT"]);
    let mut proven = 0usize;
    for scenario in suite::suite(crate::experiments::SEED ^ 0xE16, 6, FAMILIES.len()) {
        let algo = solver_for(&scenario.prec);
        let solver = registry.get(algo).expect("registry entry exists");
        let exact = exact_strip(&scenario.prec, ExactConfig::default());
        if !exact.proven_optimal || exact.height <= 0.0 {
            continue;
        }
        proven += 1;
        let mut request = SolveRequest::new(scenario.prec.clone());
        request.config.budget_ms = 100;
        let report = solve(&*solver, &request).expect("suite workloads solve");
        let seed_ratio = report.seed_makespan / exact.height;
        let improved_ratio = report.makespan / exact.height;
        assert!(
            improved_ratio >= 1.0 - 1e-9,
            "{algo} on {}: beat the proven optimum — exact search is wrong",
            scenario.name
        );
        opt_table.row(&[
            family_of(&scenario.name).to_string(),
            algo.to_string(),
            f3(seed_ratio),
            f3(improved_ratio),
        ]);
    }
    assert!(proven >= FAMILIES.len() / 2, "exact search kept timing out");

    // ----- the best-so-far cache contract, end to end ----------------
    // A budgeted batch persists improved entries; a warm rerun serves
    // them back cell-for-cell with zero solver invocations. n is small
    // and the budget generous, so every improvement loop converges
    // (stall detection) long before its deadline — cold cells are
    // deterministic and the byte-identity comparison cannot race the
    // wall clock.
    let suite_dir = std::env::temp_dir().join("spp_bench_anytime_suite");
    let cache_dir = std::env::temp_dir().join("spp_bench_anytime_cache");
    let _ = std::fs::remove_dir_all(&suite_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
    suite::write_suite(&suite_dir, crate::experiments::SEED ^ 0xCACE, 16, 16)
        .expect("suite generation is infallible on a writable tmpdir");
    let solvers: Vec<_> = ["dc-nfdh", "skyline-release"]
        .iter()
        .map(|n| registry.get(n).expect("registry entry exists"))
        .collect();
    let config = SolveConfig {
        budget_ms: 500,
        ..Default::default()
    };
    // Releases and DAGs both appear in the suite; neither solver honors
    // every family, so validation stays non-strict (like `spp batch`).
    let plan = ShardPlan::from_dir(&suite_dir, 4).expect("suite dir is non-empty");

    let run = || {
        let cache = DiskCache::new(&cache_dir, false).expect("cache dir is writable");
        let merged =
            run_sharded(&plan, &solvers, &config, Some(&cache), None).expect("shard run succeeds");
        let stats = cache.stats();
        (merged, stats)
    };
    let (cold_merged, cold_stats) = run();
    let (warm_merged, warm_stats) = run();
    assert!(cold_stats.misses > 0, "cold budgeted run never solved");
    assert_eq!(warm_stats.misses, 0, "warm budgeted rerun invoked a solver");
    assert_eq!(
        cold_merged.cells, warm_merged.cells,
        "warm rerun did not serve the improved best-so-far entries"
    );

    let _ = std::fs::remove_dir_all(&suite_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);

    format!(
        "## E16 — anytime improvement: budget curves and OPT ratios\n\n\
         One scenario per suite family (n = 36) solved under increasing\n\
         improvement budgets; the makespan is monotone non-increasing in\n\
         the budget by construction, and at least one family is asserted\n\
         to strictly improve ({improved_families} did here).\n\n{}\n\
         Seed vs. budgeted packings against the exact optimum\n\
         (`spp-exact` branch-and-bound, n = 6, proven-optimal searches\n\
         only — {proven} of {} families):\n\n{}\n\
         Cache contract (asserted): a budgeted batch persisted its\n\
         best-so-far entries ({} cold solver calls), and the warm rerun\n\
         served identical improved cells with zero solver invocations\n\
         ({} hits).\n",
        curve.render(),
        FAMILIES.len(),
        opt_table.render(),
        cold_stats.misses,
        warm_stats.hits,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_asserts_the_anytime_contract() {
        let md = super::run();
        assert!(md.contains("E16"));
        assert!(md.contains("seed/OPT"), "{md}");
        assert!(md.contains("zero solver invocations"), "{md}");
    }
}
