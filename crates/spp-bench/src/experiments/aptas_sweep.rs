//! E10 — Theorem 3.5 / Algorithm 2: the end-to-end APTAS.
//!
//! Sweeps ε and n at fixed K. For each cell the APTAS height is compared
//! with a reference `OPT_f` (exact for quantized widths; releases rounded
//! to a fine grid for the largest sizes, marked in the table). The
//! asymptotic behaviour to reproduce: the *multiplicative* gap falls
//! toward `1+ε` as `n` grows (the additive `(W+1)(R+1)` term washes
//! out), while the running time grows with `1/ε` but stays polynomial in
//! `n`.

use crate::experiments::SEED;
use crate::table::{f2, f3, Table};
use rand::{rngs::StdRng, SeedableRng};
use spp_release::colgen::opt_f;
use spp_release::rounding::round_releases;
use spp_release::{aptas, AptasConfig};

const K: usize = 2;
const EPSILONS: [f64; 3] = [1.5, 1.0, 0.5];
const SIZES: [usize; 3] = [50, 200, 800];

pub fn run() -> String {
    let mut t = Table::new(&[
        "eps",
        "n",
        "APTAS height",
        "OPT_f ref",
        "height / OPT_f",
        "(1+eps) + additive/OPT_f",
        "occurrences",
        "time (ms)",
    ]);
    for &eps in &EPSILONS {
        for &n in &SIZES {
            let p = spp_gen::release::ReleaseParams {
                k: K,
                column_widths: true,
                h: (0.1, 1.0),
            };
            let mut rng = StdRng::seed_from_u64(SEED ^ (n as u64) << 2);
            let inst = spp_gen::release::poisson_arrivals(&mut rng, n, 0.08, p);
            let cfg = AptasConfig { epsilon: eps, k: K };
            let t0 = std::time::Instant::now();
            let res = aptas(&inst, cfg);
            let elapsed = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(res.leftovers, 0);
            spp_core::validate::assert_valid(&inst, &res.placement);

            // reference OPT_f: exact when releases are few, otherwise on a
            // finely release-rounded copy (≤ 1.25% above OPT_f).
            let reference = if n <= 200 {
                opt_f(&inst)
            } else {
                opt_f(&round_releases(&inst, 0.0125).inst)
            };
            let ratio = res.height / reference;
            let guarantee = (1.0 + eps) + cfg.additive_term() / reference;
            assert!(
                ratio <= guarantee + 1e-6,
                "Theorem 3.5 violated: ratio {ratio} > {guarantee}"
            );
            t.row(&[
                format!("{eps}"),
                n.to_string(),
                f3(res.height),
                f3(reference),
                f3(ratio),
                f2(guarantee),
                res.occurrences.to_string(),
                f2(elapsed),
            ]);
        }
    }
    format!(
        "## E10 — Theorem 3.5: APTAS sweep (K = {K}, poisson arrivals)\n\n{}\n\
         `height / OPT_f` falls toward `1+ε` as `n` grows — the additive\n\
         `(W+1)(R+1)` term (column 6 minus `1+ε`) is what keeps small\n\
         instances away from the asymptote, exactly the APTAS trade-off.\n\
         Reference OPT_f for n = 800 uses releases rounded to a 1.25% grid\n\
         (an upper bound on the true OPT_f, so ratios are conservative).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn aptas_report_runs() {
        let r = super::run();
        assert!(r.contains("## E10"));
        assert!(r.contains("800"));
    }
}
