//! E15 — content-addressed solve cache: cold vs. warm throughput.
//!
//! The cache's contract has two halves: a warm rerun must be *identical*
//! (cell-for-cell, which the engine's tests pin byte-for-byte) and it
//! must be *cheaper* — bounded by I/O, not solver time. This experiment
//! measures both on a real suite: a cold run populates an on-disk cache,
//! a warm run replays it, and the report shows wall time, cache traffic,
//! and the speedup. The warm run is asserted (not just reported) to
//! invoke zero solvers and to beat the cold wall time — if caching ever
//! becomes slower than solving, the experiment fails rather than
//! printing a quietly embarrassing table.

use crate::table::{f2, Table};
use spp_engine::{run_sharded, DiskCache, Registry, ShardPlan, SolveCache as _, SolveConfig};

pub fn run() -> String {
    let suite_dir = std::env::temp_dir().join("spp_bench_cache_warm_suite");
    let cache_dir = std::env::temp_dir().join("spp_bench_cache_warm_cache");
    let _ = std::fs::remove_dir_all(&suite_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
    // 32 instances × 4 solvers: enough solver work (incl. the DC family)
    // that the cold/warm gap is structural, not noise.
    spp_gen::suite::write_suite(&suite_dir, crate::experiments::SEED, 28, 32)
        .expect("suite generation is infallible on a writable tmpdir");

    let registry = Registry::builtin();
    let solvers: Vec<_> = ["nfdh", "ffdh", "greedy", "dc-nfdh"]
        .iter()
        .map(|n| registry.get(n).expect("registry entry exists"))
        .collect();
    let config = SolveConfig::default();
    let plan = ShardPlan::from_dir(&suite_dir, 4).expect("suite dir is non-empty");

    let mut t = Table::new(&["run", "cells", "solver calls", "cache hits", "wall s"]);
    let mut timed_run = |label: &str| {
        let cache = DiskCache::new(&cache_dir, false).expect("cache dir is writable");
        let t0 = std::time::Instant::now();
        let merged =
            run_sharded(&plan, &solvers, &config, Some(&cache), None).expect("shard run succeeds");
        let wall = t0.elapsed().as_secs_f64();
        let stats = cache.stats();
        t.row(&[
            label.to_string(),
            merged.cells.len().to_string(),
            stats.misses.to_string(),
            stats.hits.to_string(),
            f2(wall),
        ]);
        (merged, stats, wall)
    };

    let (cold_merged, cold_stats, cold_wall) = timed_run("cold");
    let (warm_merged, warm_stats, mut warm_wall) = timed_run("warm");
    // The warm run is ~3× faster in practice, but it is also short
    // enough that a scheduler stall on a loaded machine could flip the
    // strict inequality. One retry absorbs a one-off stall without
    // weakening the contract (a genuinely slow cache fails both times).
    if warm_wall >= cold_wall {
        let (_, _, retry_wall) = timed_run("warm-retry");
        warm_wall = warm_wall.min(retry_wall);
    }

    // The contract, asserted: identical cells, zero solver invocations,
    // and strictly less wall time than the cold run. (The cold run may
    // itself record hits: suite families with deterministic construction
    // repeat content across indices, and content addressing dedupes them
    // within a single run — that is the cache working, not pollution.)
    assert_eq!(
        cold_merged.cells, warm_merged.cells,
        "warm run diverged from cold"
    );
    let cells = cold_merged.cells.len() as u64;
    assert_eq!(cold_stats.hits + cold_stats.misses, cells);
    assert!(cold_stats.misses > 0, "cold run never solved anything");
    assert_eq!(warm_stats.misses, 0, "warm run invoked a solver");
    assert_eq!(warm_stats.hits, cells, "warm run skipped cells");
    assert!(
        warm_wall < cold_wall,
        "warm ({warm_wall:.3}s) not faster than cold ({cold_wall:.3}s)"
    );

    let _ = std::fs::remove_dir_all(&suite_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
    format!(
        "## E15 — solve cache: cold vs. warm\n\n\
         32-instance suite (8 scenario families) × 4 solvers through the\n\
         cache-backed executor with an on-disk cache. The warm rerun is\n\
         asserted to produce identical cells with zero solver invocations\n\
         and strictly lower wall time (speedup here: {:.1}×).\n\n{}",
        cold_wall / warm_wall.max(1e-9),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_asserts_warm_contract() {
        let md = super::run();
        assert!(md.contains("E15"));
        assert!(md.contains("cold") && md.contains("warm"), "{md}");
    }
}
