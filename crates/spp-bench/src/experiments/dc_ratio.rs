//! E1 — Theorem 2.3: `DC ≤ log₂(n+1)·F + 2·AREA`.
//!
//! Measures, per DAG family and size, the ratio of `DC`'s height to the
//! combined simple lower bound `max(F, AREA)` (a *pessimistic* proxy for
//! OPT) and to the certified Theorem 2.3 bound. The paper proves the
//! worst case is `Θ(log n)`; on non-adversarial workloads the measured
//! ratio should sit far below the guarantee and grow slowly with `n`.

use crate::experiments::SEED;
use crate::table::{f2, f3, Table};
use rand::{rngs::StdRng, Rng, SeedableRng};
use spp_gen::rects::DagFamily;
use spp_pack::Packer;
use spp_precedence::{dc, dc_bound};

const FAMILIES: [DagFamily; 4] = [
    DagFamily::Chains,
    DagFamily::Layered,
    DagFamily::Random,
    DagFamily::SeriesParallel,
];
const SIZES: [usize; 4] = [16, 64, 256, 1024];
const SEEDS_PER_CELL: u64 = 5;

pub fn run() -> String {
    let mut t = Table::new(&[
        "family",
        "n",
        "ratio vs LB (mean)",
        "ratio vs LB (max)",
        "ratio vs T2.3 bound (mean)",
        "guarantee 2+log2(n+1)",
    ]);
    for family in FAMILIES {
        for &n in &SIZES {
            let cells: Vec<(f64, f64)> = spp_par::par_map(
                &(0..SEEDS_PER_CELL).collect::<Vec<_>>(),
                |&seed| {
                    let mut rng = StdRng::seed_from_u64(SEED ^ seed ^ n as u64);
                    let inst = spp_gen::rects::uniform(
                        &mut rng,
                        n,
                        (0.05, 0.95),
                        (0.05, 1.0),
                    );
                    let dag = family.build(&mut rng, n);
                    let prec = spp_dag::PrecInstance::new(inst, dag);
                    let pl = dc(&prec, &Packer::Nfdh);
                    prec.assert_valid(&pl);
                    let h = pl.height(&prec.inst);
                    (h / prec.lower_bound(), h / dc_bound(&prec))
                },
            );
            let lb_ratios: Vec<f64> = cells.iter().map(|c| c.0).collect();
            let bound_ratios: Vec<f64> = cells.iter().map(|c| c.1).collect();
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let max = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);
            t.row(&[
                family.name().into(),
                n.to_string(),
                f3(mean(&lb_ratios)),
                f3(max(&lb_ratios)),
                f3(mean(&bound_ratios)),
                f2(2.0 + ((n + 1) as f64).log2()),
            ]);
        }
    }
    let mut rng = StdRng::seed_from_u64(SEED);
    let _ = rng.gen::<u64>();
    format!(
        "## E1 — Theorem 2.3: DC approximation ratio (subroutine A = NFDH)\n\n{}\n\
         Every measured height also satisfied the certified bound\n\
         `log2(n+1)·F + 2·AREA` (column 5 < 1 by construction).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_all_cells() {
        let r = super::run();
        assert!(r.contains("## E1"));
        for fam in ["chains", "layered", "random", "series-parallel"] {
            assert!(r.contains(fam), "missing family {fam}");
        }
        assert!(r.contains("1024"));
    }
}
