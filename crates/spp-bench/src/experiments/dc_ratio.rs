//! E1 — Theorem 2.3: `DC ≤ log₂(n+1)·F + 2·AREA`.
//!
//! Measures, per DAG family and size, the ratio of `DC`'s height to the
//! combined simple lower bound `max(F, AREA)` (a *pessimistic* proxy for
//! OPT) and to the certified Theorem 2.3 bound. The paper proves the
//! worst case is `Θ(log n)`; on non-adversarial workloads the measured
//! ratio should sit far below the guarantee and grow slowly with `n`.
//!
//! A second table sweeps every `dc-*` variant the engine registry knows
//! (one per subroutine `A`), so newly registered subroutines join the
//! comparison without touching this module.

use crate::experiments::SEED;
use crate::table::{f2, f3, Table};
use rand::{rngs::StdRng, SeedableRng};
use spp_engine::{solve, Registry, SolveRequest};
use spp_gen::rects::DagFamily;
use spp_precedence::dc_bound;

const FAMILIES: [DagFamily; 4] = [
    DagFamily::Chains,
    DagFamily::Layered,
    DagFamily::Random,
    DagFamily::SeriesParallel,
];
const SIZES: [usize; 4] = [16, 64, 256, 1024];
const SEEDS_PER_CELL: u64 = 5;

fn instance(family: DagFamily, n: usize, seed: u64) -> spp_dag::PrecInstance {
    let mut rng = StdRng::seed_from_u64(SEED ^ seed ^ n as u64);
    let inst = spp_gen::rects::uniform(&mut rng, n, (0.05, 0.95), (0.05, 1.0));
    let dag = family.build(&mut rng, n);
    spp_dag::PrecInstance::new(inst, dag)
}

pub fn run() -> String {
    let registry = Registry::builtin();
    let dc = registry.get("dc-nfdh").expect("dc-nfdh registered");

    let mut t = Table::new(&[
        "family",
        "n",
        "ratio vs LB (mean)",
        "ratio vs LB (max)",
        "ratio vs T2.3 bound (mean)",
        "guarantee 2+log2(n+1)",
    ]);
    for family in FAMILIES {
        for &n in &SIZES {
            let cells: Vec<(f64, f64)> =
                spp_par::par_map(&(0..SEEDS_PER_CELL).collect::<Vec<_>>(), |&seed| {
                    let prec = instance(family, n, seed);
                    let bound = dc_bound(&prec);
                    let report = solve(&*dc, &SolveRequest::new(prec))
                        .expect("dc accepts every precedence instance");
                    assert!(report.validation.passed(), "dc-nfdh invalid placement");
                    (report.ratio(), report.makespan / bound)
                });
            let lb_ratios: Vec<f64> = cells.iter().map(|c| c.0).collect();
            let bound_ratios: Vec<f64> = cells.iter().map(|c| c.1).collect();
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let max = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);
            t.row(&[
                family.name().into(),
                n.to_string(),
                f3(mean(&lb_ratios)),
                f3(max(&lb_ratios)),
                f3(mean(&bound_ratios)),
                f2(2.0 + ((n + 1) as f64).log2()),
            ]);
        }
    }

    // Subroutine sweep: every dc-* entry in the registry on one workload.
    let mut t2 = Table::new(&["dc variant", "ratio vs LB (mean)", "ratio vs LB (max)"]);
    for entry in registry.filter(|c| c.precedence && !c.release && !c.uniform_height_only) {
        if !entry.name.starts_with("dc-") {
            continue;
        }
        let solver = entry.build();
        let ratios: Vec<f64> =
            spp_par::par_map(&(0..SEEDS_PER_CELL).collect::<Vec<_>>(), |&seed| {
                let prec = instance(DagFamily::Layered, 256, seed);
                let report = solve(&*solver, &SolveRequest::new(prec))
                    .expect("dc accepts every precedence instance");
                assert!(report.validation.passed(), "{} invalid", entry.name);
                report.ratio()
            });
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        t2.row(&[entry.name.into(), f3(mean), f3(max)]);
    }

    format!(
        "## E1 — Theorem 2.3: DC approximation ratio (subroutine A = NFDH)\n\n{}\n\
         Every measured height also satisfied the certified bound\n\
         `log2(n+1)·F + 2·AREA` (column 5 < 1 by construction).\n\n\
         ### DC subroutine registry sweep (layered DAGs, n = 256)\n\n{}\n",
        t.render(),
        t2.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_all_cells() {
        let r = super::run();
        assert!(r.contains("## E1"));
        for fam in ["chains", "layered", "random", "series-parallel"] {
            assert!(r.contains(fam), "missing family {fam}");
        }
        assert!(r.contains("1024"));
        for variant in ["dc-nfdh", "dc-wsnf", "dc-ffdh", "dc-sleator", "dc-skyline"] {
            assert!(r.contains(variant), "missing variant {variant}");
        }
    }
}
