//! E11 — §1 motivation: scheduling image pipelines on a K-column FPGA.
//!
//! JPEG-like stripe pipelines are scheduled with `DC`, the greedy
//! skyline, and the layered baseline; makespans are compared against the
//! device lower bound `max(work/K, critical path)`. Demonstrates the
//! end-to-end task-graph → strip-packing → reconfiguration-schedule
//! pipeline with full schedule validation.

use crate::table::{f2, f3, Table};
use spp_fpga::{schedule_from_placement, to_prec_instance, Device};
use spp_pack::Packer;

const STRIPES: [usize; 3] = [2, 4, 8];
const K: usize = 16;

pub fn run() -> String {
    let mut t = Table::new(&[
        "stripes",
        "tasks",
        "LB makespan",
        "DC",
        "greedy",
        "layered",
        "DC util %",
    ]);
    for &stripes in &STRIPES {
        let graph = spp_fpga::pipelines::jpeg_pipeline(Device::new(K), stripes);
        let prec = to_prec_instance(&graph);
        let lb = graph.makespan_lower_bound();

        let mut makespans = Vec::new();
        let dc_pl = spp_precedence::dc(&prec, &Packer::Nfdh);
        for pl in [
            dc_pl.clone(),
            spp_precedence::greedy_skyline(&prec),
            spp_precedence::layered_pack(&prec, &Packer::Ffdh),
        ] {
            let sched = schedule_from_placement(&graph, &pl).expect("column aligned");
            sched.validate(&graph).expect("valid schedule");
            makespans.push(sched.makespan(&graph));
        }
        let dc_sched = schedule_from_placement(&graph, &dc_pl).unwrap();
        t.row(&[
            stripes.to_string(),
            graph.len().to_string(),
            f3(lb),
            f3(makespans[0]),
            f3(makespans[1]),
            f3(makespans[2]),
            f2(100.0 * dc_sched.utilization(&graph)),
        ]);
    }
    format!(
        "## E11 — FPGA pipeline scheduling (JPEG-like stripes, K = {K})\n\n{}\n\
         All schedules validate on the device model (contiguous columns, no\n\
         conflicts, precedence). Greedy backfilling tends to win on these\n\
         narrow pipelines; DC's strength is its worst-case guarantee (E2).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fpga_report_runs() {
        let r = super::run();
        assert!(r.contains("## E11"));
        assert!(r.contains("DC util"));
    }
}
