//! E8 — Lemma 3.2 / Figs. 3–4: width grouping costs at most
//! `1 + (R+1)K/W = 1 + K/g`.
//!
//! Starting from a release-rounded instance, widths are grouped with `g`
//! groups per release class; `OPT_f` before and after is compared with
//! the lemma's bound. Continuous widths are used so grouping actually has
//! work to do.

use crate::experiments::SEED;
use crate::table::{f3, Table};
use rand::{rngs::StdRng, SeedableRng};
use spp_release::colgen::opt_f;
use spp_release::grouping::group_widths;
use spp_release::rounding::round_releases;

const GROUPS: [usize; 4] = [1, 2, 4, 8];
const K: usize = 3;

pub fn run() -> String {
    let p = spp_gen::release::ReleaseParams {
        k: K,
        column_widths: false, // continuous widths in [1/K, 1]
        h: (0.1, 1.0),
    };
    let mut rng = StdRng::seed_from_u64(SEED + 8);
    let raw = spp_gen::release::staircase(&mut rng, 12, 4.0, p);
    let rounded = round_releases(&raw, 0.5);
    let base = opt_f(&rounded.inst);
    let r_levels = rounded.levels.len();

    let mut t = Table::new(&[
        "g (groups/class)",
        "W (width classes)",
        "OPT_f(P(R))",
        "OPT_f(P(R,W))",
        "ratio",
        "bound 1+K/g",
    ]);
    for &g in &GROUPS {
        let grouped = group_widths(&rounded.inst, g);
        let after = opt_f(&grouped.inst);
        let ratio = after / base;
        let bound = 1.0 + K as f64 / g as f64;
        assert!(
            ratio + 1e-6 >= 1.0 && ratio <= bound + 1e-6,
            "Lemma 3.2 violated at g={g}: ratio {ratio} bound {bound}"
        );
        t.row(&[
            g.to_string(),
            grouped.widths.len().to_string(),
            f3(base),
            f3(after),
            f3(ratio),
            f3(bound),
        ]);
    }
    format!(
        "## E8 — Lemma 3.2: grouping ratio vs the (R+1)K/W bound \
         (workload: staircase, K={K}, {r_levels} release levels)\n\n{}\n\
         The measured ratio decays toward 1 as `g` grows, well under\n\
         `1 + K/g`; width classes stay ≤ g per release class (containment\n\
         chain P_inf ⊆ P(R) ⊆ P(R,W) ⊆ P_sup of Fig. 4).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn grouping_report_runs() {
        let r = super::run();
        assert!(r.contains("## E8"));
        assert!(r.contains("bound 1+K/g"));
    }
}
