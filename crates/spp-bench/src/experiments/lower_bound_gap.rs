//! E2 — Lemma 2.4 / Fig. 1: the Ω(log n) lower-bound gap family.
//!
//! On the Fig. 1 instances, `AREA → 1` and `F → 1` while any valid
//! packing needs height ≥ `k/2`. The table shows both algorithm heights
//! growing like `Θ(k) = Θ(log n)` while the simple bounds stay ≈ 1 —
//! certifying (experimentally) that ratios measured against
//! `max(AREA, F)` *must* blow up logarithmically on this family, exactly
//! the paper's point.

use crate::table::{f2, f3, Table};
use spp_gen::adversarial::fig1_lower_bound_gap;
use spp_pack::Packer;
use spp_precedence::{dc, greedy_skyline};

const KS: [usize; 6] = [2, 4, 6, 8, 10, 12];
const EPSILON: f64 = 1e-6;

pub fn run() -> String {
    let mut t = Table::new(&[
        "k",
        "n",
        "max F",
        "AREA",
        "OPT lower bnd (k/2)",
        "OPT upper bnd (stack)",
        "DC height",
        "greedy height",
        "DC / simple LB",
    ]);
    for &k in &KS {
        let fam = fig1_lower_bound_gap(k, EPSILON);
        let prec = &fam.prec;
        let dc_pl = dc(prec, &Packer::Nfdh);
        prec.assert_valid(&dc_pl);
        let greedy_pl = greedy_skyline(prec);
        prec.assert_valid(&greedy_pl);
        let dc_h = dc_pl.height(&prec.inst);
        let greedy_h = greedy_pl.height(&prec.inst);
        let simple_lb = prec.lower_bound();
        t.row(&[
            k.to_string(),
            fam.n().to_string(),
            f3(prec.critical_lb()),
            f3(prec.area_lb()),
            f2(fam.opt_lower_bound()),
            f2(fam.opt_upper_bound()),
            f3(dc_h),
            f3(greedy_h),
            f2(dc_h / simple_lb),
        ]);
    }
    format!(
        "## E2 — Lemma 2.4 / Fig. 1: the Ω(log n) gap between OPT and max(AREA, F)\n\n{}\n\
         `max F` and `AREA` stay ≈ 1 while every packing (and OPT itself, \
         sandwiched between columns 5 and 6) grows linearly in `k = Θ(log n)`. \
         No algorithm analyzed only against the simple bounds can beat \
         `o(log n)` — the paper's bottleneck argument.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn gap_grows_with_k() {
        let r = super::run();
        assert!(r.contains("## E2"));
        // the family exists for every k in the sweep
        for k in [2usize, 12] {
            assert!(r.contains(&format!("| {k} ")), "missing k={k}");
        }
    }
}
