//! E9 — Lemma 3.3: the configuration LP.
//!
//! For K ∈ {2, 3, 4}: the full configuration space is enumerated and the
//! LP solved both ways (full enumeration vs column generation). The
//! report confirms the two objectives agree, that the basic optimum uses
//! at most `(W+1)(R+1)` occurrences, and shows how many of the
//! exponentially-many columns the generation loop actually materializes.

use crate::experiments::SEED;
use crate::table::{f3, Table};
use rand::{rngs::StdRng, SeedableRng};
use spp_release::colgen::solve_fractional_with_configs;
use spp_release::config::enumerate_configs;
use spp_release::lp_model::{solve_with_configs, LpData};

pub fn run() -> String {
    let mut t = Table::new(&[
        "K",
        "W",
        "R",
        "|Q| (all configs)",
        "columns generated",
        "occurrences used",
        "(W+1)(R+1)",
        "OPT_f (full)",
        "OPT_f (colgen)",
    ]);
    for &k in &[2usize, 3, 4] {
        let p = spp_gen::release::ReleaseParams {
            k,
            column_widths: true,
            h: (0.1, 1.0),
        };
        let mut rng = StdRng::seed_from_u64(SEED ^ (k as u64) << 4);
        let inst = spp_gen::release::poisson_arrivals(&mut rng, 20, 0.25, p);
        // width classes = the column widths present
        let mut widths: Vec<f64> = inst.items().iter().map(|it| it.w).collect();
        widths.sort_by(|a, b| a.partial_cmp(b).unwrap());
        widths.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);
        let class_of: Vec<usize> = inst
            .items()
            .iter()
            .map(|it| {
                widths
                    .iter()
                    .position(|&w| (w - it.w).abs() < 1e-12)
                    .unwrap()
            })
            .collect();
        let data = LpData::new(&inst, &widths, &class_of);

        let all = enumerate_configs(&widths);
        let full = solve_with_configs(&data, &all).expect("feasible");
        let (cg, generated) = solve_fractional_with_configs(&data);
        assert!(
            (full.total_height - cg.total_height).abs() < 1e-5,
            "K={k}: colgen {} != full {}",
            cg.total_height,
            full.total_height
        );
        let w = data.widths.len();
        let r = data.r();
        let cap = (w + 1) * (r + 1);
        assert!(cg.occurrences() <= cap, "support exceeded Lemma 3.3 cap");
        t.row(&[
            k.to_string(),
            w.to_string(),
            r.to_string(),
            all.len().to_string(),
            generated.len().to_string(),
            cg.occurrences().to_string(),
            cap.to_string(),
            f3(full.total_height),
            f3(cg.total_height),
        ]);
    }
    format!(
        "## E9 — Lemma 3.3: configuration LP, full enumeration vs column generation\n\n{}\n\
         Objectives agree to 1e-5; the basic optimum never uses more than\n\
         `(W+1)(R+1)` configuration occurrences (the Lemma 3.4 charge), and\n\
         column generation touches a small fraction of the exponential\n\
         configuration space.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn lp_report_runs() {
        let r = super::run();
        assert!(r.contains("## E9"));
        assert!(r.contains("colgen"));
    }
}
