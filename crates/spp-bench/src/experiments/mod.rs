//! One module per experiment; each exposes `run() -> String` returning a
//! markdown report with the table(s) recorded in `EXPERIMENTS.md`.

pub mod ablation;
pub mod anytime;
pub mod aptas_sweep;
pub mod cache_warm;
pub mod dc_ratio;
pub mod fpga;
pub mod grouping;
pub mod lower_bound_gap;
pub mod lp_configs;
pub mod online_gap;
pub mod pack_baselines;
pub mod portfolio;
pub mod ratio3_tightness;
pub mod release_rounding;
pub mod shard_scaling;
pub mod shelf_reduction;
pub mod uniform_ratio;

/// Deterministic base seed for every experiment.
pub const SEED: u64 = 0x5eed_2006;
