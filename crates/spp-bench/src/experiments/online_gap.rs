//! E13 — extension: online vs offline scheduling with release times.
//!
//! The paper's §1 motivation cites FPGA operating systems that schedule
//! arriving tasks online; its APTAS is offline (clairvoyant). This
//! experiment measures the price of not knowing the future: online
//! skyline / online shelves vs the offline APTAS and the exact
//! fractional optimum, across arrival intensities (load = mean work per
//! unit time).

use crate::experiments::SEED;
use crate::table::{f2, f3, Table};
use rand::{rngs::StdRng, SeedableRng};
use spp_release::online::{simulate, OnlinePolicy};
use spp_release::rounding::round_releases;
use spp_release::{aptas, AptasConfig};

const K: usize = 3;

pub fn run() -> String {
    let mut t = Table::new(&[
        "mean gap",
        "n",
        "OPT_f ref",
        "online skyline",
        "online shelf",
        "offline APTAS(1)",
        "skyline mean wait",
    ]);
    for &(gap, n) in &[(0.6f64, 60usize), (0.25, 60), (0.1, 120)] {
        let p = spp_gen::release::ReleaseParams {
            k: K,
            column_widths: true,
            h: (0.1, 1.0),
        };
        let mut rng = StdRng::seed_from_u64(SEED ^ (n as u64) ^ gap.to_bits());
        let inst = spp_gen::release::poisson_arrivals(&mut rng, n, gap, p);

        let reference = spp_release::colgen::opt_f(&round_releases(&inst, 0.02).inst);
        let sky = simulate(&inst, OnlinePolicy::Skyline);
        spp_core::validate::assert_valid(&inst, &sky.placement);
        let shelf = simulate(&inst, OnlinePolicy::Shelf { r: 0.622 });
        spp_core::validate::assert_valid(&inst, &shelf.placement);
        let offline = aptas(&inst, AptasConfig { epsilon: 1.0, k: K });
        spp_core::validate::assert_valid(&inst, &offline.placement);

        t.row(&[
            format!("{gap}"),
            n.to_string(),
            f3(reference),
            format!("{} ({:.2}x)", f3(sky.makespan), sky.makespan / reference),
            format!("{} ({:.2}x)", f3(shelf.makespan), shelf.makespan / reference),
            format!("{} ({:.2}x)", f3(offline.height), offline.height / reference),
            f2(sky.mean_wait),
        ]);
    }
    format!(
        "## E13 — extension: online vs offline under release times (K = {K})\n\n{}\n\
         Online skyline stays close to the clairvoyant reference at low load\n\
         (sparse arrivals leave backfilling room) and degrades as load rises;\n\
         online shelves pay the bucketing waste; the offline APTAS carries\n\
         its additive constant but knows the future. Waiting times are the\n\
         OS-facing metric (Steiger–Walder–Platzner setting).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn online_report_runs() {
        let r = super::run();
        assert!(r.contains("## E13"));
        assert!(r.contains("online skyline"));
    }
}
