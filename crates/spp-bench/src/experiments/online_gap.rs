//! E13 — extension: online vs offline scheduling with release times.
//!
//! The paper's §1 motivation cites FPGA operating systems that schedule
//! arriving tasks online; its APTAS is offline (clairvoyant). This
//! experiment measures the price of not knowing the future across arrival
//! intensities (load = mean work per unit time).
//!
//! The competitor list is the engine registry filtered to release-capable
//! solvers (online policies and offline baselines/APTAS alike), so new
//! release-time algorithms join the comparison automatically. Waiting
//! times — the OS-facing metric — are reported separately for the online
//! skyline policy.

use crate::experiments::SEED;
use crate::table::{f2, f3, Table};
use rand::{rngs::StdRng, SeedableRng};
use spp_engine::{solve, Registry, SolveRequest};
use spp_release::rounding::round_releases;

const K: usize = 3;

pub fn run() -> String {
    let registry = Registry::builtin();
    let entries: Vec<_> = registry.filter(|c| c.release && !c.precedence).collect();

    let mut header: Vec<String> = vec!["mean gap".into(), "n".into(), "OPT_f ref".into()];
    header.extend(entries.iter().map(|e| e.name.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    let mut skyline_waits = Vec::new();
    for &(gap, n) in &[(0.6f64, 60usize), (0.25, 60), (0.1, 120)] {
        let p = spp_gen::release::ReleaseParams {
            k: K,
            column_widths: true,
            h: (0.1, 1.0),
        };
        let mut rng = StdRng::seed_from_u64(SEED ^ (n as u64) ^ gap.to_bits());
        let inst = spp_gen::release::poisson_arrivals(&mut rng, n, gap, p);

        let reference = spp_release::colgen::opt_f(&round_releases(&inst, 0.02).inst);
        let mut row = vec![format!("{gap}"), n.to_string(), f3(reference)];
        for entry in &entries {
            let solver = entry.build();
            let mut request = SolveRequest::unconstrained(inst.clone());
            request.config.k = K;
            let report = solve(&*solver, &request).expect("release solvers accept this model");
            assert!(
                report.validation.passed(),
                "{} produced an invalid placement",
                entry.name
            );
            row.push(format!(
                "{} ({:.2}x)",
                f3(report.makespan),
                report.makespan / reference
            ));
            if entry.name == "online-skyline" {
                // Mean wait (start − release) read off the same placement —
                // no second simulation needed.
                let wait: f64 = inst
                    .items()
                    .iter()
                    .map(|it| report.placement.pos(it.id).y - it.release)
                    .sum::<f64>()
                    / inst.len() as f64;
                skyline_waits.push(format!("gap {gap}: mean wait {}", f2(wait)));
            }
        }
        t.row(&row);
    }
    format!(
        "## E13 — extension: online vs offline under release times (K = {K})\n\n{}\n\
         Online skyline stays close to the clairvoyant reference at low load\n\
         (sparse arrivals leave backfilling room) and degrades as load rises;\n\
         online shelves pay the bucketing waste; the offline APTAS carries\n\
         its additive constant but knows the future. Waiting times are the\n\
         OS-facing metric (Steiger–Walder–Platzner setting):\n{}\n",
        t.render(),
        skyline_waits.join("; ")
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn online_report_runs() {
        let r = super::run();
        assert!(r.contains("## E13"));
        for solver in ["online-skyline", "online-shelf", "batched-ffdh", "aptas"] {
            assert!(r.contains(solver), "missing solver {solver}");
        }
    }
}
