//! E12 — the subroutine-`A` family: unconstrained packers.
//!
//! `DC`'s guarantee rests on `A(S') ≤ 2·AREA + h_max`. This experiment
//! measures every unconstrained packer in the engine registry on two
//! workload shapes, reporting height relative to `AREA` (the dominant
//! lower bound at this density) and checking the A-bound wherever the
//! registry claims it.
//!
//! The packer list is *not* hard-coded: any solver registered without
//! precedence/release/online capability joins the sweep automatically.

use crate::experiments::SEED;
use crate::table::f3;
use crate::table::Table;
use rand::{rngs::StdRng, SeedableRng};
use spp_engine::{solve, Registry, SolveRequest};

pub fn run() -> String {
    let registry = Registry::builtin();
    let mut t = Table::new(&[
        "workload",
        "packer",
        "mean height/LB",
        "max height/LB",
        "A-bound ok",
    ]);
    for workload in ["uniform", "tall-wide mix"] {
        for entry in registry.filter(|c| !c.precedence && !c.release && !c.online) {
            let solver = entry.build();
            let mut ratios = Vec::new();
            let mut a_ok = true;
            for seed in 0..10u64 {
                let mut rng = StdRng::seed_from_u64(SEED ^ seed);
                let inst = match workload {
                    "uniform" => spp_gen::rects::uniform(&mut rng, 200, (0.05, 0.95), (0.05, 1.0)),
                    _ => spp_gen::rects::tall_wide_mix(&mut rng, 200, 0.5),
                };
                let area = inst.total_area();
                let h_max = inst.max_height();
                let report = solve(&*solver, &SolveRequest::unconstrained(inst))
                    .expect("unconstrained packers accept every instance");
                assert!(
                    report.validation.passed(),
                    "{} produced an invalid placement",
                    entry.name
                );
                ratios.push(report.makespan / report.bounds.combined);
                if report.makespan > 2.0 * area + h_max + 1e-9 {
                    a_ok = false;
                }
            }
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
            if entry.capabilities.a_bound {
                assert!(a_ok, "{} violated its proven A-bound", entry.name);
            }
            t.row(&[
                workload.into(),
                entry.name.into(),
                f3(mean),
                f3(max),
                if a_ok { "yes".into() } else { "no".into() },
            ]);
        }
    }
    format!(
        "## E12 — unconstrained packers (the subroutine-A family)\n\n{}\n\
         NFDH (the proven A-bound packer) never exceeds `2·AREA + h_max`;\n\
         FFDH/BFDH dominate it slightly; skyline is the practical winner\n\
         but carries no guarantee — the exact trade-off DC's analysis\n\
         navigates.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn baselines_report_runs() {
        let r = super::run();
        assert!(r.contains("## E12"));
        for p in ["nfdh", "ffdh", "bfdh", "sleator", "skyline"] {
            assert!(r.contains(p), "missing packer {p}");
        }
    }
}
