//! E12 — the subroutine-`A` family: unconstrained packers.
//!
//! `DC`'s guarantee rests on `A(S') ≤ 2·AREA + h_max`. This experiment
//! measures all five packers on two workload shapes, reporting height
//! relative to `AREA` (the dominant lower bound at this density) and
//! checking the A-bound for NFDH explicitly.

use crate::experiments::SEED;
use crate::table::f3;
use crate::table::Table;
use rand::{rngs::StdRng, SeedableRng};
use spp_pack::traits::{StripPacker, ALL_PACKERS};

pub fn run() -> String {
    let mut t = Table::new(&[
        "workload",
        "packer",
        "mean height/LB",
        "max height/LB",
        "A-bound ok",
    ]);
    for workload in ["uniform", "tall-wide mix"] {
        for packer in ALL_PACKERS {
            let mut ratios = Vec::new();
            let mut a_ok = true;
            for seed in 0..10u64 {
                let mut rng = StdRng::seed_from_u64(SEED ^ seed);
                let inst = match workload {
                    "uniform" => {
                        spp_gen::rects::uniform(&mut rng, 200, (0.05, 0.95), (0.05, 1.0))
                    }
                    _ => spp_gen::rects::tall_wide_mix(&mut rng, 200, 0.5),
                };
                let pl = packer.pack(&inst);
                spp_core::validate::assert_valid(&inst, &pl);
                let h = pl.height(&inst);
                let lb = spp_core::bounds::combined_lb(&inst);
                ratios.push(h / lb);
                if h > 2.0 * inst.total_area() + inst.max_height() + 1e-9 {
                    a_ok = false;
                }
            }
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
            if packer.satisfies_a_bound() {
                assert!(a_ok, "{} violated its proven A-bound", packer.name());
            }
            t.row(&[
                workload.into(),
                packer.name().into(),
                f3(mean),
                f3(max),
                if a_ok { "yes".into() } else { "no".into() },
            ]);
        }
    }
    format!(
        "## E12 — unconstrained packers (the subroutine-A family)\n\n{}\n\
         NFDH (the proven A-bound packer) never exceeds `2·AREA + h_max`;\n\
         FFDH/BFDH dominate it slightly; skyline is the practical winner\n\
         but carries no guarantee — the exact trade-off DC's analysis\n\
         navigates.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn baselines_report_runs() {
        let r = super::run();
        assert!(r.contains("## E12"));
        for p in ["nfdh", "ffdh", "bfdh", "sleator", "skyline"] {
            assert!(r.contains(p), "missing packer {p}");
        }
    }
}
