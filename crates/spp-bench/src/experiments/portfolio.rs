//! E17 — parallel anytime portfolio + decode-kernel speed.
//!
//! PR 10 rebuilt the improvement kernel (single-sweep skyline queries,
//! an incrementally maintained band index, mask-based order rebuilds,
//! reusable decode scratch) and put K independent search streams behind
//! one `budget_ms`. This experiment holds both claims to numbers on the
//! checked-in `data/micro_n512.json` instance:
//!
//! * **Kernel**: the production `improve` loop must complete at least
//!   2x the rounds of a faithful replica of the pre-PR-10 kernel
//!   (quadratic skyline scan, O(n^2) band occupancy, `retain` +
//!   per-element `insert` mutations, fresh allocations every round) in
//!   the same wall budget.
//! * **Portfolio**: `improve_parallel` at K=4 must explore at least 3x
//!   the rounds of K=1 under the same per-stream budget — the budget
//!   buys K cores' worth of search on any machine, because each stream
//!   arms its own compute deadline.
//!
//! The makespan-at-budget column records what the extra exploration
//! buys; it is reported, not gated, because the win is instance- and
//! budget-dependent.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use crate::table::{f3, Table};
use spp_core::hash::SplitMix64;
use spp_core::Placement;
use spp_dag::PrecInstance;
use spp_pack::{improve, improve_parallel, ImproveConfig, PortfolioConfig, Skyline};

/// Wall budget for the kernel head-to-head (per contender).
const KERNEL_BUDGET: Duration = Duration::from_millis(400);
/// Per-stream compute budget for the portfolio width sweep.
const STREAM_BUDGET: Duration = Duration::from_millis(150);

/// The checked-in n=512 microbench instance: 512 narrow items (widths
/// 0.005..0.06) so the skyline carries hundreds of segments — the regime
/// where the contour scan's cost is visible. Committed so the numbers
/// are comparable across machines and PRs; regenerate with
/// `cargo run --release -p spp-bench --bin gen_micro`.
fn micro_instance() -> PrecInstance {
    let text = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/data/micro_n512.json"));
    spp_gen::fileio::from_json(text).expect("checked-in microbench instance parses")
}

/// Deliberately bad seed: stack in topological order at release floors.
fn stacked_seed(prec: &PrecInstance) -> Placement {
    let order = spp_dag::topo::topological_order(&prec.dag).expect("micro instance is acyclic");
    let mut pl = Placement::zeroed(prec.len());
    let mut y = 0.0f64;
    for v in order {
        let it = prec.inst.item(v);
        let at = y.max(it.release);
        pl.set(v, 0.0, at);
        y = at + it.h;
    }
    prec.assert_valid(&pl);
    pl
}

// --------------------------------------------------------------------
// Reference kernel: a line-for-line replica of the pre-PR-10 improve
// loop, kept here (not in spp-pack) so the production crate carries no
// dead code. Every accidental quadratic the PR removed is preserved:
// `best_position_scan` (O(S) span probes per candidate x), full O(n^2)
// band-occupancy recomputation, `retain`+`contains`+`insert` order
// mutations, and fresh Vec/heap/skyline allocations per round.
// --------------------------------------------------------------------

const IMPROVE_EPS: f64 = 1e-9;

fn ref_order_of(prec: &PrecInstance, pl: &Placement) -> Vec<usize> {
    let mut order: Vec<usize> = (0..prec.len()).collect();
    order.sort_by(|&a, &b| {
        let (pa, pb) = (pl.pos(a), pl.pos(b));
        pa.y.partial_cmp(&pb.y)
            .unwrap()
            .then(pa.x.partial_cmp(&pb.x).unwrap())
            .then(a.cmp(&b))
    });
    order
}

fn ref_decode(prec: &PrecInstance, order: &[usize], envelope: f64) -> Option<(Placement, f64)> {
    let n = prec.len();
    let mut rank = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v] = i;
    }
    let mut floor: Vec<f64> = prec.inst.items().iter().map(|it| it.release).collect();
    let mut missing: Vec<usize> = (0..n).map(|v| prec.dag.in_degree(v)).collect();
    let mut ready: BinaryHeap<Reverse<(usize, usize)>> = (0..n)
        .filter(|&v| missing[v] == 0)
        .map(|v| Reverse((rank[v], v)))
        .collect();

    let mut pl = Placement::zeroed(n);
    let mut sky = Skyline::new();
    let mut top = 0.0f64;
    while let Some(Reverse((_, v))) = ready.pop() {
        let it = prec.inst.item(v);
        let (x, y) = sky.best_position_scan(it.w, floor[v]);
        top = top.max(y + it.h);
        if top >= envelope - IMPROVE_EPS {
            return None;
        }
        sky.place(x, y, it.w, it.h);
        pl.set(v, x, y);
        for &w in prec.dag.succs(v) {
            floor[w] = floor[w].max(y + it.h);
            missing[w] -= 1;
            if missing[w] == 0 {
                ready.push(Reverse((rank[w], w)));
            }
        }
    }
    Some((pl, top))
}

fn ref_band_occupancy(prec: &PrecInstance, pl: &Placement) -> Vec<f64> {
    let items = prec.inst.items();
    items
        .iter()
        .map(|a| {
            let (y0, y1) = (pl.pos(a.id).y, pl.pos(a.id).y + a.h);
            if a.h <= 0.0 {
                return 1.0;
            }
            let mut covered = 0.0;
            for b in items {
                let (by0, by1) = (pl.pos(b.id).y, pl.pos(b.id).y + b.h);
                let overlap = (y1.min(by1) - y0.max(by0)).max(0.0);
                covered += b.w * overlap;
            }
            covered / a.h
        })
        .collect()
}

fn ref_subset_size(n: usize) -> usize {
    (n / 8).max(2).min(n)
}

/// Pre-PR-10 improvement loop: returns (rounds, best makespan) reached
/// before the deadline.
fn reference_improve(
    prec: &PrecInstance,
    seed_pl: &Placement,
    seed: u64,
    deadline: Instant,
) -> (u64, f64) {
    let n = prec.len();
    let mut rng = SplitMix64::new(seed);
    let mut base_order = ref_order_of(prec, seed_pl);
    let mut best = seed_pl.height(&prec.inst);
    let mut occupancy = ref_band_occupancy(prec, seed_pl);
    let mut rounds = 0u64;
    for round in 0u64.. {
        if Instant::now() >= deadline {
            break;
        }
        rounds = round + 1;
        let mut order = base_order.clone();
        if round == 0 {
            // identity: decode the incumbent's own order
        } else if round % 2 == 1 {
            let k = ref_subset_size(n);
            let mut by_waste: Vec<usize> = (0..n).collect();
            by_waste.sort_by(|&a, &b| {
                occupancy[a]
                    .partial_cmp(&occupancy[b])
                    .unwrap()
                    .then(a.cmp(&b))
            });
            let mut chosen = by_waste[..k].to_vec();
            rng.shuffle(&mut chosen);
            order.retain(|v| !chosen.contains(v));
            for (i, v) in chosen.into_iter().enumerate() {
                order.insert(i, v);
            }
        } else {
            let k = ref_subset_size(n);
            let mut pool: Vec<usize> = (0..n).collect();
            let mut chosen = Vec::with_capacity(k);
            for _ in 0..k {
                let i = rng.next_below(pool.len() as u64) as usize;
                chosen.push(pool.swap_remove(i));
            }
            order.retain(|v| !chosen.contains(v));
            for v in chosen {
                let at = rng.next_below(order.len() as u64 + 1) as usize;
                order.insert(at, v);
            }
        }
        if let Some((pl, h)) = ref_decode(prec, &order, best) {
            if h < best - IMPROVE_EPS {
                best = h;
                base_order = order;
                occupancy = ref_band_occupancy(prec, &pl);
            }
        }
    }
    (rounds, best)
}

pub fn run() -> String {
    let prec = micro_instance();
    let seed_pl = stacked_seed(&prec);
    let seed_h = seed_pl.height(&prec.inst);

    // ----- kernel head-to-head: rounds in equal wall budgets ---------
    let (ref_rounds, ref_h) = reference_improve(
        &prec,
        &seed_pl,
        crate::experiments::SEED,
        Instant::now() + KERNEL_BUDGET,
    );
    let prod = improve(
        &prec,
        &seed_pl,
        &ImproveConfig {
            seed: crate::experiments::SEED,
            deadline: Some(Instant::now() + KERNEL_BUDGET),
            max_rounds: u64::MAX,
            stall_rounds: u64::MAX,
            ..ImproveConfig::default()
        },
    );
    let speedup = prod.rounds as f64 / (ref_rounds.max(1)) as f64;
    let mut kernel = Table::new(&["kernel", "rounds", "rounds/sec", "best h"]);
    let secs = KERNEL_BUDGET.as_secs_f64();
    kernel.row(&[
        "pre-PR10 reference".into(),
        ref_rounds.to_string(),
        f3(ref_rounds as f64 / secs),
        f3(ref_h),
    ]);
    kernel.row(&[
        "production".into(),
        prod.rounds.to_string(),
        f3(prod.rounds as f64 / secs),
        f3(prod.makespan),
    ]);
    assert!(
        speedup >= 2.0,
        "decode kernel regressed: {} production rounds vs {} reference rounds \
         ({speedup:.2}x, need >= 2x) in {KERNEL_BUDGET:?}",
        prod.rounds,
        ref_rounds
    );
    assert!(
        prod.makespan <= seed_h + 1e-12,
        "budgeted improve must never lose to its seed"
    );
    prec.assert_valid(&prod.placement);

    // ----- portfolio width sweep: rounds and makespan vs. K ----------
    let mut width = Table::new(&["streams K", "rounds", "vs K=1", "best h", "gain"]);
    let mut rounds_at = std::collections::BTreeMap::new();
    for k in [1usize, 2, 4, 8] {
        let out = improve_parallel(
            &prec,
            &seed_pl,
            &PortfolioConfig {
                streams: k,
                seed: crate::experiments::SEED,
                budget: Some(STREAM_BUDGET),
                max_rounds: u64::MAX,
                stall_rounds: u64::MAX,
                ..PortfolioConfig::default()
            },
        );
        assert_eq!(out.streams.len(), k, "every stream must report");
        assert!(
            out.makespan <= seed_h + 1e-12,
            "portfolio must never lose to its seed"
        );
        prec.assert_valid(&out.placement);
        rounds_at.insert(k, out.rounds);
        let base = *rounds_at.get(&1).expect("K=1 runs first");
        width.row(&[
            k.to_string(),
            out.rounds.to_string(),
            format!("{:.2}x", out.rounds as f64 / base.max(1) as f64),
            f3(out.makespan),
            f3(out.gain()),
        ]);
    }
    let widening = rounds_at[&4] as f64 / (rounds_at[&1].max(1)) as f64;
    assert!(
        widening >= 3.0,
        "K=4 explored only {:.2}x the rounds of K=1 (need >= 3x): \
         per-stream budgets must scale exploration with K",
        widening
    );

    format!(
        "## E17 — parallel portfolio search + decode kernel (n=512 microbench)\n\n\
         Checked-in instance `crates/spp-bench/data/micro_n512.json` \
         (unconstrained narrow items, n=512, seed placement h={}). Kernel contenders get \
         {:?} of wall clock each; portfolio streams get {:?} of per-stream \
         compute each.\n\n\
         ### decode kernel: production vs. pre-PR10 reference\n\n{}\n\
         Production kernel speedup: **{:.2}x rounds** (gate: >= 2x).\n\n\
         ### portfolio width: exploration scales with K\n\n{}\n\
         K=4 explores **{:.2}x** the rounds of K=1 (gate: >= 3x); the \
         reduction stays deterministic (lowest makespan, ties to the \
         lowest stream index).\n\n",
        f3(seed_h),
        KERNEL_BUDGET,
        STREAM_BUDGET,
        kernel.render(),
        speedup,
        width.render(),
        widening
    )
}

#[cfg(test)]
mod tests {
    /// `run` carries its own gates; the test just exercises them and
    /// checks the report's section markers.
    #[test]
    fn report_asserts_the_kernel_and_width_gates() {
        let report = super::run();
        assert!(report.contains("## E17"));
        assert!(report.contains("decode kernel: production vs. pre-PR10 reference"));
        assert!(report.contains("portfolio width: exploration scales with K"));
    }
}
