//! E6 — Lemma 2.7 / Fig. 2: the ratio-3 tightness family.
//!
//! On the Fig. 2 instances, `OPT = n` exactly (verified with the exact
//! solver for small `k`) while `max F = n/3 + 1` and `AREA = n/3 + nε`,
//! so `OPT / max(F, AREA) → 3` — matching the paper's claim that no
//! algorithm analyzed against the two simple bounds can prove a factor
//! below 3 for uniform heights.

use crate::table::{f3, Table};
use spp_gen::adversarial::fig2_ratio3_tightness;
use spp_precedence::uniform::shelf_next_fit;

const KS: [usize; 5] = [2, 4, 8, 20, 60];
const EPSILON: f64 = 1e-4;

pub fn run() -> String {
    let mut t = Table::new(&[
        "k",
        "n",
        "OPT (=n)",
        "max F",
        "AREA",
        "OPT / max(F, AREA)",
        "shelf-F height",
    ]);
    for &k in &KS {
        let fam = fig2_ratio3_tightness(k, EPSILON);
        let prec = &fam.prec;
        // exact verification for small k (the DP handles ≤ 24 tasks)
        if fam.n() <= 18 {
            let opt = spp_exact::exact_uniform_height(prec);
            assert!(
                (opt - fam.opt()).abs() < 1e-9,
                "exact OPT {} disagrees with Lemma 2.7 value {}",
                opt,
                fam.opt()
            );
        }
        let r = shelf_next_fit(prec);
        prec.assert_valid(&r.placement);
        let simple_lb = fam.max_f().max(fam.area());
        t.row(&[
            k.to_string(),
            fam.n().to_string(),
            f3(fam.opt()),
            f3(fam.max_f()),
            f3(fam.area()),
            f3(fam.opt() / simple_lb),
            f3(r.height()),
        ]);
    }
    format!(
        "## E6 — Lemma 2.7 / Fig. 2: OPT / max(F, AREA) → 3 under uniform heights\n\n{}\n\
         The ratio column approaches 3 from below as k grows (exactly\n\
         `3(k+1−ε·stuff)/(k+1)`); shelf algorithm F achieves OPT on this family\n\
         (the precedence chain forces the serial packing), so the factor-3\n\
         barrier is about the *analysis*, not the algorithm.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn tightness_report_runs() {
        let r = super::run();
        assert!(r.contains("## E6"));
        assert!(r.contains("| 60 "));
    }

    #[test]
    fn ratio_approaches_three() {
        let fam = super::fig2_ratio3_tightness(200, 1e-5);
        let ratio = fam.opt() / fam.max_f().max(fam.area());
        assert!(ratio > 2.9, "ratio {ratio} should be near 3 for large k");
        assert!(ratio <= 3.0 + 1e-9);
    }
}
