//! E7 — Lemma 3.1: release rounding costs at most a `(1+ε)` factor.
//!
//! `OPT_f` is computed exactly (configuration LP + column generation) on
//! the raw instance and on the release-rounded instance, for several
//! rounding strengths; the measured ratio must sit in `[1, 1+ε]`.

use crate::experiments::SEED;
use crate::table::{f3, Table};
use rand::{rngs::StdRng, SeedableRng};
use spp_release::colgen::opt_f;
use spp_release::rounding::round_releases;

const EPSILONS: [f64; 3] = [1.0, 0.5, 0.25];

fn workloads(seed: u64) -> Vec<(&'static str, spp_core::Instance)> {
    let p = spp_gen::release::ReleaseParams {
        k: 3,
        column_widths: true,
        h: (0.1, 1.0),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        (
            "poisson",
            spp_gen::release::poisson_arrivals(&mut rng, 14, 0.3, p),
        ),
        (
            "bursty",
            spp_gen::release::bursty(&mut rng, 14, 3, 1.5, 0.2, p),
        ),
        (
            "staircase",
            spp_gen::release::staircase(&mut rng, 14, 4.0, p),
        ),
    ]
}

pub fn run() -> String {
    let mut t = Table::new(&[
        "workload",
        "eps_r",
        "R levels",
        "OPT_f(P)",
        "OPT_f(P(R))",
        "ratio",
        "bound 1+eps_r",
    ]);
    for (name, inst) in workloads(SEED + 7) {
        let raw = opt_f(&inst);
        for &eps in &EPSILONS {
            let rounded = round_releases(&inst, eps);
            let r = opt_f(&rounded.inst);
            let ratio = r / raw;
            assert!(
                ratio + 1e-6 >= 1.0 && ratio <= 1.0 + eps + 1e-6,
                "Lemma 3.1 violated on {name} eps={eps}: ratio {ratio}"
            );
            t.row(&[
                name.into(),
                format!("{eps}"),
                rounded.levels.len().to_string(),
                f3(raw),
                f3(r),
                f3(ratio),
                f3(1.0 + eps),
            ]);
        }
    }
    format!(
        "## E7 — Lemma 3.1: OPT_f(P(R)) ≤ (1+ε_r)·OPT_f(P)\n\n{}\n\
         Measured ratios sit comfortably inside [1, 1+ε_r]; the number of\n\
         release levels matches ⌈1/ε_r⌉ (+1 boundary at 0).\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn rounding_report_runs() {
        let r = super::run();
        assert!(r.contains("## E7"));
        assert!(r.contains("poisson"));
        assert!(r.contains("staircase"));
    }
}
