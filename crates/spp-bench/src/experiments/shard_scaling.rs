//! E14 — sharded batch execution: equivalence and scaling.
//!
//! The sharded executor's contract is that splitting an instance-file
//! batch into shards changes *nothing* about the result — the merged
//! report is cell-for-cell identical to the single-process run — while
//! letting the work spread over processes or machines. This experiment
//! checks the equivalence on a real suite at several shard counts and
//! reports the wall time of each in-process configuration (shards run
//! concurrently through `spp_par::par_map_capped`, so 1 shard is the
//! baseline and more shards mainly measure the overhead of the split on
//! one machine).

use crate::table::{f2, Table};
use spp_engine::{run_sharded, Registry, ShardPlan, SolveConfig};

pub fn run() -> String {
    let dir = std::env::temp_dir().join("spp_bench_shard_scaling");
    let _ = std::fs::remove_dir_all(&dir);
    spp_gen::suite::write_suite(&dir, crate::experiments::SEED, 24, 24)
        .expect("suite generation is infallible on a writable tmpdir");

    let registry = Registry::builtin();
    let solvers: Vec<_> = ["nfdh", "ffdh", "greedy", "dc-nfdh"]
        .iter()
        .map(|n| registry.get(n).expect("registry entry exists"))
        .collect();
    let config = SolveConfig::default();

    let reference = {
        let plan = ShardPlan::from_dir(&dir, 1).expect("suite dir is non-empty");
        run_sharded(&plan, &solvers, &config, None, None).expect("shard run succeeds")
    };

    let mut t = Table::new(&["shards", "cells", "identical to 1-shard", "wall s"]);
    for shards in [1usize, 2, 4, 8] {
        let plan = ShardPlan::from_dir(&dir, shards).expect("suite dir is non-empty");
        let t0 = std::time::Instant::now();
        let merged = run_sharded(&plan, &solvers, &config, None, None).expect("shard run succeeds");
        let wall = t0.elapsed().as_secs_f64();
        let identical = merged.cells == reference.cells;
        assert!(identical, "{shards}-shard run diverged from the reference");
        t.row(&[
            shards.to_string(),
            merged.cells.len().to_string(),
            identical.to_string(),
            f2(wall),
        ]);
    }

    let _ = std::fs::remove_dir_all(&dir);
    format!(
        "## E14 — sharded batch: equivalence and scaling\n\n\
         24-instance suite (8 scenario families) × 4 solvers, split into\n\
         1/2/4/8 contiguous shards and merged. Identity of the merged cell\n\
         list with the 1-shard reference is asserted, not just reported.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_asserts_equivalence() {
        let md = super::run();
        assert!(md.contains("E14"));
        // one row per shard count, all identical
        assert_eq!(md.matches("true").count(), 4, "{md}");
    }
}
