//! E3 — §2.2: any uniform-height placement converts to a shelf solution
//! with no height increase.
//!
//! To exercise the conversion on placements that genuinely float between
//! shelf boundaries, a valid shelf packing is first *inflated*: random
//! vertical gaps are inserted between shelves (precedence and overlap
//! stay valid — separations only grow). The slide-down conversion must
//! then recover a grid-aligned packing at least as short as the inflated
//! one; in fact it recovers the original shelf height exactly.

use crate::experiments::SEED;
use crate::table::{f3, Table};
use rand::{rngs::StdRng, Rng, SeedableRng};
use spp_precedence::reduction::{is_shelf_solution, to_shelf_solution};
use spp_precedence::uniform::shelf_next_fit;

pub fn run() -> String {
    let mut t = Table::new(&[
        "n",
        "shelves",
        "straddlers",
        "inflated height",
        "after reduction",
        "original shelf height",
    ]);
    let mut rng = StdRng::seed_from_u64(SEED + 3);
    for &(n, p) in &[(20usize, 0.1f64), (50, 0.05), (100, 0.02), (200, 0.01)] {
        let widths: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen_range(0.05..0.95), 1.0)).collect();
        let inst = spp_core::Instance::from_dims(&widths).unwrap();
        let dag = spp_dag::gen::random_order(&mut rng, n, p);
        let prec = spp_dag::PrecInstance::new(inst, dag);
        let shelf = shelf_next_fit(&prec);
        prec.assert_valid(&shelf.placement);

        // inflate: shelf i floats up by the sum of random gaps below it
        let mut inflated = shelf.placement.clone();
        let mut offset = 0.0;
        let mut shelf_offset = vec![0.0; shelf.shelves.len()];
        for (i, off) in shelf_offset.iter_mut().enumerate() {
            if i > 0 {
                offset += rng.gen_range(0.05..0.9);
            }
            *off = offset;
        }
        for (i, s) in shelf.shelves.iter().enumerate() {
            for &id in &s.items {
                let p = inflated.pos(id);
                inflated.set(id, p.x, p.y + shelf_offset[i]);
            }
        }
        prec.assert_valid(&inflated);

        let straddlers = (0..n)
            .filter(|&v| {
                let y = inflated.pos(v).y;
                (y - y.round()).abs() > 1e-9
            })
            .count();
        let before = inflated.height(&prec.inst);
        let reduced = to_shelf_solution(&prec, &inflated);
        prec.assert_valid(&reduced);
        assert!(is_shelf_solution(&prec, &reduced));
        let after = reduced.height(&prec.inst);
        assert!(after <= before + 1e-9, "reduction increased height");
        t.row(&[
            n.to_string(),
            shelf.shelves.len().to_string(),
            straddlers.to_string(),
            f3(before),
            f3(after),
            f3(shelf.height()),
        ]);
    }
    format!(
        "## E3 — §2.2 shelf reduction: slide-down conversion never increases height\n\n{}\n\
         Floating placements (every rectangle off-grid) are snapped back to\n\
         shelves; the result is never taller than the input — the\n\
         constructive step that makes shelves ≡ bins in §2.2.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn reduction_report_runs() {
        let r = super::run();
        assert!(r.contains("## E3"));
        assert!(r.contains("straddlers"));
    }
}
