//! E4/E5 — §2.2: the absolute 3-approximation `F` (Theorem 2.6) and the
//! GGJY-style first-fit level algorithm (asymptotic 2.7).
//!
//! Small instances are compared against the exact optimum (bitmask DP);
//! large instances against the combined lower bound
//! `max(⌈AREA⌉, longest path)`. The shape to reproduce: `F` stays well
//! under its absolute factor 3, FFD under (roughly) 2.7, FFD ≤ `F` on
//! average.

use crate::experiments::SEED;
use crate::table::{f3, Table};
use rand::{rngs::StdRng, Rng, SeedableRng};
use spp_precedence::binpack::{first_fit_prec, next_fit_prec, validate_bins};
use spp_precedence::uniform::longest_path_nodes;

pub fn run() -> String {
    let mut exact_table = Table::new(&[
        "n",
        "algo",
        "mean ratio vs OPT",
        "max ratio vs OPT",
        "paper bound",
    ]);
    // ---- small: exact optimum ----
    for &n in &[8usize, 12] {
        let mut nf_ratios = Vec::new();
        let mut ff_ratios = Vec::new();
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(SEED ^ (n as u64) ^ seed);
            let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
            let dag = spp_dag::gen::random_order(&mut rng, n, 0.2);
            let opt = spp_exact::exact_bins(&sizes, &dag) as f64;
            let nf = next_fit_prec(&sizes, &dag);
            let ff = first_fit_prec(&sizes, &dag);
            validate_bins(&sizes, &dag, &nf).unwrap();
            validate_bins(&sizes, &dag, &ff).unwrap();
            nf_ratios.push(nf.len() as f64 / opt);
            ff_ratios.push(ff.len() as f64 / opt);
        }
        let stats = |v: &[f64]| {
            (
                v.iter().sum::<f64>() / v.len() as f64,
                v.iter().cloned().fold(f64::MIN, f64::max),
            )
        };
        let (nf_mean, nf_max) = stats(&nf_ratios);
        let (ff_mean, ff_max) = stats(&ff_ratios);
        exact_table.row(&[
            n.to_string(),
            "shelf F (next-fit)".into(),
            f3(nf_mean),
            f3(nf_max),
            "3 (absolute, Thm 2.6)".into(),
        ]);
        exact_table.row(&[
            n.to_string(),
            "GGJY first-fit".into(),
            f3(ff_mean),
            f3(ff_max),
            "2.7 (asymptotic)".into(),
        ]);
    }

    // ---- large: lower-bound ratio ----
    let mut lb_table = Table::new(&["n", "algo", "mean ratio vs LB", "max ratio vs LB"]);
    for &n in &[100usize, 500] {
        let mut nf_ratios = Vec::new();
        let mut ff_ratios = Vec::new();
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(SEED ^ (n as u64) ^ (seed << 8));
            let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..1.0)).collect();
            let dag = spp_dag::gen::random_order(&mut rng, n, 2.0 / n as f64);
            let dims: Vec<(f64, f64)> = sizes.iter().map(|&w| (w, 1.0)).collect();
            let prec = spp_dag::PrecInstance::new(
                spp_core::Instance::from_dims(&dims).unwrap(),
                dag.clone(),
            );
            let lb = sizes
                .iter()
                .sum::<f64>()
                .ceil()
                .max(longest_path_nodes(&prec) as f64);
            nf_ratios.push(next_fit_prec(&sizes, &dag).len() as f64 / lb);
            ff_ratios.push(first_fit_prec(&sizes, &dag).len() as f64 / lb);
        }
        let stats = |v: &[f64]| {
            (
                v.iter().sum::<f64>() / v.len() as f64,
                v.iter().cloned().fold(f64::MIN, f64::max),
            )
        };
        let (nf_mean, nf_max) = stats(&nf_ratios);
        let (ff_mean, ff_max) = stats(&ff_ratios);
        lb_table.row(&[
            n.to_string(),
            "shelf F (next-fit)".into(),
            f3(nf_mean),
            f3(nf_max),
        ]);
        lb_table.row(&[
            n.to_string(),
            "GGJY first-fit".into(),
            f3(ff_mean),
            f3(ff_max),
        ]);
    }

    format!(
        "## E4/E5 — §2.2 uniform heights: shelf algorithm F vs GGJY first-fit\n\n\
         ### Small instances (ratio vs exact optimum)\n\n{}\n\
         ### Large instances (ratio vs max(⌈AREA⌉, longest path))\n\n{}\n\
         Both algorithms stay under their paper bounds; first-fit dominates\n\
         next-fit as expected from the GGJY analysis.\n",
        exact_table.render(),
        lb_table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn uniform_report_runs() {
        let r = super::run();
        assert!(r.contains("## E4/E5"));
        assert!(r.contains("shelf F"));
        assert!(r.contains("GGJY"));
    }
}
