//! Machine-readable benchmark records.
//!
//! `run_all` emits one JSON record per measurement — experiment wall
//! times plus an engine-registry sweep with per-(algo, family, n) height,
//! ratio and wall time — so each PR can check in a `BENCH_*.json`
//! baseline that future PRs diff against. No serde in the dependency set,
//! so serialization is by hand (the schema is flat).

use std::time::Instant;

use rand::{rngs::StdRng, SeedableRng};
use spp_engine::{solve, Registry, SolveRequest};
use spp_gen::rects::DagFamily;

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Experiment id (`"E1"`, …) or `"sweep"` for registry sweep cells.
    pub experiment: String,
    /// Solver name, `"-"` for whole-experiment records.
    pub algo: String,
    /// Instance family name, `"-"` for whole-experiment records.
    pub family: String,
    /// Instance size (0 for whole-experiment records).
    pub n: usize,
    /// Mean packing height over the cell's seeds (0 when not applicable).
    pub height: f64,
    /// Mean height / combined lower bound (0 when not applicable).
    pub ratio: f64,
    /// Wall-clock seconds for the whole cell.
    pub wall_s: f64,
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Serialize records as a JSON array (pretty, one record per line —
/// diff-friendly for checked-in baselines).
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"experiment\": \"{}\", \"algo\": \"{}\", \"family\": \"{}\", \
             \"n\": {}, \"height\": {:.6}, \"ratio\": {:.6}, \"wall_s\": {:.6}}}{}\n",
            escape(&r.experiment),
            escape(&r.algo),
            escape(&r.family),
            r.n,
            r.height,
            r.ratio,
            r.wall_s,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out.push('\n');
    out
}

/// Engine-registry sweep: every precedence-capable solver on DAG
/// workloads, every unconstrained packer on plain workloads — one record
/// per (algo, family, n) with mean height, mean ratio and cell wall time.
pub fn baseline_sweep(seeds: u64, sizes: &[usize]) -> Vec<BenchRecord> {
    let registry = Registry::builtin();
    let mut records = Vec::new();
    let families = [DagFamily::Layered, DagFamily::Random, DagFamily::Empty];
    for family in families {
        for &n in sizes {
            let jobs: Vec<spp_dag::PrecInstance> = (0..seeds)
                .map(|seed| {
                    let mut rng = StdRng::seed_from_u64(crate::experiments::SEED ^ seed ^ n as u64);
                    let inst = spp_gen::rects::uniform(&mut rng, n, (0.05, 0.95), (0.05, 1.0));
                    let dag = family.build(&mut rng, n);
                    spp_dag::PrecInstance::new(inst, dag)
                })
                .collect();
            let unconstrained = family == DagFamily::Empty;
            for entry in registry.filter(|c| {
                !c.release && !c.uniform_height_only && !c.online && (c.precedence != unconstrained)
            }) {
                let solver = entry.build();
                let t0 = Instant::now();
                let outcomes: Vec<(f64, f64)> = spp_par::par_map(&jobs, |prec| {
                    let report = solve(&*solver, &SolveRequest::new(prec.clone()))
                        .expect("sweep solvers accept these instances");
                    assert!(
                        report.validation.passed(),
                        "{} produced an invalid placement",
                        entry.name
                    );
                    (report.makespan, report.ratio())
                });
                let wall_s = t0.elapsed().as_secs_f64();
                let mean = |f: fn(&(f64, f64)) -> f64| {
                    outcomes.iter().map(f).sum::<f64>() / outcomes.len() as f64
                };
                records.push(BenchRecord {
                    experiment: "sweep".into(),
                    algo: entry.name.into(),
                    family: family.name().into(),
                    n,
                    height: mean(|o| o.0),
                    ratio: mean(|o| o.1),
                    wall_s,
                });
            }
        }
    }
    records
}

/// Anytime sweep: per-(algo, n) records of the budgeted improvement —
/// `height` is the mean improved makespan, `ratio` the mean improved /
/// seed makespan (≤ 1; strictly < 1 where the budget bought height).
/// All records carry the `anytime` family tag so baselines can be
/// filtered to the improvement subsystem alone.
pub fn anytime_sweep(seeds: u64, sizes: &[usize], budget_ms: u64) -> Vec<BenchRecord> {
    let registry = Registry::builtin();
    let mut records = Vec::new();
    for &n in sizes {
        let jobs: Vec<spp_dag::PrecInstance> = (0..seeds)
            .map(|seed| {
                let mut rng =
                    StdRng::seed_from_u64(crate::experiments::SEED ^ !seed ^ (n as u64) << 1);
                let inst = spp_gen::rects::uniform(&mut rng, n, (0.05, 0.95), (0.05, 1.0));
                let dag = DagFamily::Layered.build(&mut rng, n);
                spp_dag::PrecInstance::new(inst, dag)
            })
            .collect();
        for entry in
            registry.filter(|c| c.anytime && c.precedence && !c.release && !c.uniform_height_only)
        {
            let solver = entry.build();
            let t0 = Instant::now();
            let outcomes: Vec<(f64, f64)> = spp_par::par_map(&jobs, |prec| {
                let mut request = SolveRequest::new(prec.clone());
                request.config.budget_ms = budget_ms;
                let report =
                    solve(&*solver, &request).expect("sweep solvers accept these instances");
                assert!(
                    report.validation.passed(),
                    "{} produced an invalid improved placement",
                    entry.name
                );
                assert!(
                    report.makespan <= report.seed_makespan + 1e-9,
                    "{} worsened under budget",
                    entry.name
                );
                (report.makespan, report.makespan / report.seed_makespan)
            });
            let wall_s = t0.elapsed().as_secs_f64();
            let mean = |f: fn(&(f64, f64)) -> f64| {
                outcomes.iter().map(f).sum::<f64>() / outcomes.len() as f64
            };
            records.push(BenchRecord {
                experiment: "E16".into(),
                algo: entry.name.into(),
                family: "anytime".into(),
                n,
                height: mean(|o| o.0),
                ratio: mean(|o| o.1),
                wall_s,
            });
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_escaped() {
        let records = vec![
            BenchRecord {
                experiment: "E1".into(),
                algo: "dc-nfdh".into(),
                family: "layered".into(),
                n: 64,
                height: 12.5,
                ratio: 1.25,
                wall_s: 0.125,
            },
            BenchRecord {
                experiment: "x\"y".into(),
                algo: "-".into(),
                family: "-".into(),
                n: 0,
                height: 0.0,
                ratio: 0.0,
                wall_s: 1.0,
            },
        ];
        let j = to_json(&records);
        assert!(j.starts_with("[\n") && j.trim_end().ends_with(']'));
        assert!(j.contains("\"algo\": \"dc-nfdh\""));
        assert!(j.contains("x\\\"y"));
        assert_eq!(j.matches('{').count(), 2);
        assert_eq!(j.matches("},").count(), 1);
    }

    #[test]
    fn anytime_sweep_records_carry_the_family_tag() {
        let records = anytime_sweep(2, &[12], 10);
        assert!(!records.is_empty());
        for r in &records {
            assert_eq!(r.experiment, "E16");
            assert_eq!(r.family, "anytime");
            assert!(r.ratio > 0.0 && r.ratio <= 1.0 + 1e-9, "{r:?}");
            assert!(r.height > 0.0, "{r:?}");
        }
    }

    #[test]
    fn sweep_covers_both_workload_kinds() {
        let records = baseline_sweep(2, &[12]);
        assert!(records
            .iter()
            .any(|r| r.algo == "nfdh" && r.family == "empty"));
        assert!(records
            .iter()
            .any(|r| r.algo == "dc-nfdh" && r.family == "layered"));
        // Unconstrained packers don't run on DAG families and vice versa.
        assert!(!records
            .iter()
            .any(|r| r.algo == "nfdh" && r.family == "layered"));
        assert!(!records
            .iter()
            .any(|r| r.algo == "dc-nfdh" && r.family == "empty"));
        for r in &records {
            assert!(r.height > 0.0 && r.ratio >= 1.0 - 1e-9, "{r:?}");
        }
    }
}
