//! # spp-bench — the experiment harness
//!
//! The paper is theory-only (no measured tables), so the reproduction
//! turns every theorem, lemma and figure into a measurable experiment
//! (see `DESIGN.md` §4 and `EXPERIMENTS.md` at the repo root). Each
//! experiment lives in [`experiments`] as a pure function returning a
//! markdown report; `src/bin/exp_*.rs` are thin wrappers, and
//! `src/bin/run_all.rs` regenerates the whole set.
//!
//! | id | binary | paper artifact |
//! |---|---|---|
//! | E1 | `exp_dc_ratio` | Theorem 2.3 (`DC` ratio vs `n`) |
//! | E2 | `exp_lower_bound_gap` | Lemma 2.4 / Fig. 1 |
//! | E3 | `exp_shelf_reduction` | §2.2 shelf reduction |
//! | E4/E5 | `exp_uniform_ratio` | Theorem 2.6 + GGJY carry-over |
//! | E6 | `exp_ratio3_tightness` | Lemma 2.7 / Fig. 2 |
//! | E7 | `exp_release_rounding` | Lemma 3.1 |
//! | E8 | `exp_grouping` | Lemma 3.2 / Figs. 3–4 |
//! | E9 | `exp_lp_configs` | Lemma 3.3 |
//! | E10 | `exp_aptas` | Theorem 3.5 / Algorithm 2 |
//! | E11 | `exp_fpga` | §1 FPGA motivation |
//! | E12 | `exp_pack_baselines` | subroutine `A` family |
//! | E13 | `exp_online` | extension: online vs offline (release times) |
//! | E14 | (run_all only) | sharded batch: equivalence and scaling |
//! | E15 | (run_all only) | solve cache: cold vs. warm throughput |
//! | E16 | (run_all only) | anytime improvement: budget curves, OPT ratios |
//! | E17 | `exp_portfolio` | parallel portfolio search + decode kernel |
//! | A1 | `exp_ablation` | design-choice ablations |
//!
//! Criterion micro/macro benches live in `benches/`.

pub mod experiments;
pub mod json;
pub mod table;

/// Output of [`run_all_experiments`]: the concatenated markdown reports
/// plus one machine-readable record per experiment (wall time).
pub struct RunAllOutput {
    pub markdown: String,
    pub records: Vec<json::BenchRecord>,
}

/// An experiment: its id and its report function.
type Experiment = (&'static str, fn() -> String);

/// Run every experiment; returns the reports and per-experiment timing
/// records (used by `run_all`, which also appends the registry sweep of
/// [`json::baseline_sweep`] before writing `BENCH_BASELINE.json`).
pub fn run_all_experiments() -> RunAllOutput {
    let parts: Vec<Experiment> = vec![
        ("E1", experiments::dc_ratio::run as fn() -> String),
        ("E2", experiments::lower_bound_gap::run),
        ("E3", experiments::shelf_reduction::run),
        ("E4/E5", experiments::uniform_ratio::run),
        ("E6", experiments::ratio3_tightness::run),
        ("E7", experiments::release_rounding::run),
        ("E8", experiments::grouping::run),
        ("E9", experiments::lp_configs::run),
        ("E10", experiments::aptas_sweep::run),
        ("E11", experiments::fpga::run),
        ("E12", experiments::pack_baselines::run),
        ("E13", experiments::online_gap::run),
        ("E14", experiments::shard_scaling::run),
        ("E15", experiments::cache_warm::run),
        ("E16", experiments::anytime::run),
        ("E17", experiments::portfolio::run),
        ("A1", experiments::ablation::run),
    ];
    let mut markdown = String::new();
    let mut records = Vec::new();
    for (id, f) in parts {
        let t0 = std::time::Instant::now();
        let body = f();
        let wall_s = t0.elapsed().as_secs_f64();
        markdown.push_str(&body);
        markdown.push_str(&format!("\n_{id} completed in {wall_s:.1}s_\n\n"));
        records.push(json::BenchRecord {
            experiment: id.to_string(),
            algo: "-".into(),
            family: "-".into(),
            n: 0,
            height: 0.0,
            ratio: 0.0,
            wall_s,
        });
    }
    RunAllOutput { markdown, records }
}
