//! # spp-bench — the experiment harness
//!
//! The paper is theory-only (no measured tables), so the reproduction
//! turns every theorem, lemma and figure into a measurable experiment
//! (see `DESIGN.md` §4 and `EXPERIMENTS.md` at the repo root). Each
//! experiment lives in [`experiments`] as a pure function returning a
//! markdown report; `src/bin/exp_*.rs` are thin wrappers, and
//! `src/bin/run_all.rs` regenerates the whole set.
//!
//! | id | binary | paper artifact |
//! |---|---|---|
//! | E1 | `exp_dc_ratio` | Theorem 2.3 (`DC` ratio vs `n`) |
//! | E2 | `exp_lower_bound_gap` | Lemma 2.4 / Fig. 1 |
//! | E3 | `exp_shelf_reduction` | §2.2 shelf reduction |
//! | E4/E5 | `exp_uniform_ratio` | Theorem 2.6 + GGJY carry-over |
//! | E6 | `exp_ratio3_tightness` | Lemma 2.7 / Fig. 2 |
//! | E7 | `exp_release_rounding` | Lemma 3.1 |
//! | E8 | `exp_grouping` | Lemma 3.2 / Figs. 3–4 |
//! | E9 | `exp_lp_configs` | Lemma 3.3 |
//! | E10 | `exp_aptas` | Theorem 3.5 / Algorithm 2 |
//! | E11 | `exp_fpga` | §1 FPGA motivation |
//! | E12 | `exp_pack_baselines` | subroutine `A` family |
//! | E13 | `exp_online` | extension: online vs offline (release times) |
//! | A1 | `exp_ablation` | design-choice ablations |
//!
//! Criterion micro/macro benches live in `benches/`.

pub mod experiments;
pub mod table;

/// Run every experiment and concatenate the reports (used by `run_all`).
pub fn run_all_experiments() -> String {
    let parts: Vec<(&str, fn() -> String)> = vec![
        ("E1", experiments::dc_ratio::run as fn() -> String),
        ("E2", experiments::lower_bound_gap::run),
        ("E3", experiments::shelf_reduction::run),
        ("E4/E5", experiments::uniform_ratio::run),
        ("E6", experiments::ratio3_tightness::run),
        ("E7", experiments::release_rounding::run),
        ("E8", experiments::grouping::run),
        ("E9", experiments::lp_configs::run),
        ("E10", experiments::aptas_sweep::run),
        ("E11", experiments::fpga::run),
        ("E12", experiments::pack_baselines::run),
        ("E13", experiments::online_gap::run),
        ("A1", experiments::ablation::run),
    ];
    let mut out = String::new();
    for (id, f) in parts {
        let t0 = std::time::Instant::now();
        let body = f();
        out.push_str(&body);
        out.push_str(&format!(
            "\n_{id} completed in {:.1}s_\n\n",
            t0.elapsed().as_secs_f64()
        ));
    }
    out
}
