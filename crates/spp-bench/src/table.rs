//! Markdown table rendering for experiment reports.

/// A simple right-padded markdown table builder.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Render as GitHub-flavored markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(width) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('|');
        for w in &width {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
        }
        out
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["n", "ratio"]);
        t.row(&["16".into(), "1.23".into()]);
        t.row(&["1024".into(), "1.5".into()]);
        let s = t.render();
        assert!(s.starts_with("| n    | ratio |\n"));
        assert!(s.contains("| 1024 | 1.5   |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new(&["a"]).row(&["x".into(), "y".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.0), "1.00");
    }
}
