//! Lower bounds on the optimal packing height.
//!
//! The paper's analyses (Theorems 2.3, 2.6; Lemmas 2.4, 2.7) are phrased
//! against two "straight-forward" lower bounds:
//!
//! 1. `AREA(S)` — the total rectangle area (the strip has width 1, so no
//!    packing can be shorter than the area it must cover);
//! 2. `F(S)` — the maximum total height along any precedence path (lives in
//!    `spp-dag`, since it needs the DAG).
//!
//! This module provides the DAG-free bounds: area, `h_max`, the release
//! bound `max_s (r_s + h_s)`, and a width-class refinement that is useful
//! as a sanity oracle in experiments (rectangles wider than ½ can never be
//! side by side, so their heights sum).

use crate::instance::Instance;

/// `AREA(S)`: sum of rectangle areas = area lower bound on OPT.
pub fn area_lb(inst: &Instance) -> f64 {
    inst.total_area()
}

/// `h_max`: every packing is at least as tall as the tallest rectangle.
pub fn hmax_lb(inst: &Instance) -> f64 {
    inst.max_height()
}

/// Release bound: `max_s (r_s + h_s)` — rectangle `s` cannot finish before
/// its release time plus its own height. 0 when there are no items.
pub fn release_lb(inst: &Instance) -> f64 {
    inst.items()
        .iter()
        .map(|it| it.release + it.h)
        .fold(0.0, f64::max)
}

/// Wide-rectangle bound: rectangles with `w > 1/2` pairwise overlap in x
/// no matter where they are placed, so their heights stack:
/// `Σ_{w_s > 1/2} h_s` is a lower bound on OPT.
pub fn wide_stack_lb(inst: &Instance) -> f64 {
    inst.items()
        .iter()
        .filter(|it| it.w > 0.5)
        .map(|it| it.h)
        .sum()
}

/// Best DAG-free lower bound: max of area, h_max, release and wide-stack.
pub fn combined_lb(inst: &Instance) -> f64 {
    area_lb(inst)
        .max(hmax_lb(inst))
        .max(release_lb(inst))
        .max(wide_stack_lb(inst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    #[test]
    fn area_and_hmax() {
        let inst = Instance::from_dims(&[(0.5, 2.0), (0.25, 4.0)]).unwrap();
        crate::assert_close!(area_lb(&inst), 2.0);
        assert_eq!(hmax_lb(&inst), 4.0);
    }

    #[test]
    fn release_bound() {
        let inst = Instance::new(vec![
            Item::with_release(0, 0.5, 1.0, 10.0),
            Item::with_release(1, 0.5, 5.0, 0.0),
        ])
        .unwrap();
        assert_eq!(release_lb(&inst), 11.0);
    }

    #[test]
    fn wide_stack_counts_only_wide() {
        let inst = Instance::from_dims(&[(0.6, 1.0), (0.7, 2.0), (0.5, 10.0)]).unwrap();
        // width exactly 0.5 could sit next to another 0.5, not counted
        crate::assert_close!(wide_stack_lb(&inst), 3.0);
    }

    #[test]
    fn combined_takes_max() {
        let inst = Instance::from_dims(&[(0.6, 1.0), (0.6, 1.0)]).unwrap();
        // area = 1.2, hmax = 1, wide stack = 2
        crate::assert_close!(combined_lb(&inst), 2.0);
    }

    #[test]
    fn empty_bounds_are_zero() {
        let inst = Instance::new(vec![]).unwrap();
        assert_eq!(combined_lb(&inst), 0.0);
    }

    #[test]
    fn bounds_never_exceed_a_known_valid_height() {
        // A hand-packed instance of height exactly 2.
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0), (1.0, 1.0)]).unwrap();
        let lb = combined_lb(&inst);
        assert!(
            lb <= 2.0 + crate::eps::EPS,
            "lb {lb} exceeds valid height 2"
        );
    }
}
