//! Tolerant floating-point comparisons.
//!
//! All geometry in this workspace is carried in `f64`. Strip packing
//! placements are built from sums and halvings of input coordinates, so
//! values accumulate rounding error of a few ULPs per operation. Rather
//! than scattering ad-hoc `1e-6`s through the codebase, every crate uses
//! the comparisons in this module with the single tolerance [`EPS`].
//!
//! The convention throughout: *validators* are lenient (a placement that is
//! correct up to `EPS` is accepted), while *algorithms* are strict (they
//! never rely on tolerance to make room). This keeps the guarantees of the
//! paper meaningful: measured heights are real heights, not
//! tolerance-assisted ones.

/// Global absolute tolerance for geometric comparisons.
///
/// Inputs in this workspace are O(1) (the strip has width 1 and rectangle
/// heights are O(1) except for adversarial chains whose heights still sum
/// to O(n)), so an absolute tolerance is appropriate; `1e-9` is ~1e6 ULPs
/// at magnitude 1, far above accumulated error, far below any meaningful
/// geometric feature of the instances we generate (≥ `1e-4`).
pub const EPS: f64 = 1e-9;

/// `a ≤ b` up to tolerance: true iff `a <= b + EPS`.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// `a ≥ b` up to tolerance: true iff `a + EPS >= b`.
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a + EPS >= b
}

/// `a == b` up to tolerance.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// `a < b` by a clear margin: true iff `a + EPS < b`.
///
/// Used when an algorithm needs a *strict* inequality that will survive
/// later tolerant validation (e.g. "does this rectangle definitely not fit
/// on the shelf").
#[inline]
pub fn definitely_lt(a: f64, b: f64) -> bool {
    a + EPS < b
}

/// `a > b` by a clear margin: true iff `a > b + EPS`.
#[inline]
pub fn definitely_gt(a: f64, b: f64) -> bool {
    a > b + EPS
}

/// Clamp tiny negative values (artifacts of subtraction) to zero.
///
/// Returns `0.0` for inputs in `[-EPS, 0)`, the input otherwise.
#[inline]
pub fn snap_nonneg(a: f64) -> f64 {
    if (-EPS..0.0).contains(&a) {
        0.0
    } else {
        a
    }
}

/// Two half-open intervals `[a0, a1)` and `[b0, b1)` overlap with positive
/// measure (more than `EPS`).
#[inline]
pub fn intervals_overlap(a0: f64, a1: f64, b0: f64, b1: f64) -> bool {
    let lo = a0.max(b0);
    let hi = a1.min(b1);
    hi - lo > EPS
}

/// Assert two floats are equal up to tolerance, with a useful message.
///
/// Unlike `assert_eq!` on floats, this is what tests in this workspace
/// should use for derived quantities.
#[macro_export]
macro_rules! assert_close {
    ($a:expr, $b:expr) => {
        $crate::assert_close!($a, $b, $crate::eps::EPS)
    };
    ($a:expr, $b:expr, $tol:expr) => {{
        let (a, b): (f64, f64) = ($a, $b);
        assert!(
            (a - b).abs() <= $tol,
            "assert_close failed: {} vs {} (|diff| = {:.3e} > tol {:.1e})",
            a,
            b,
            (a - b).abs(),
            $tol
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_ge_are_tolerant() {
        assert!(approx_le(1.0 + EPS / 2.0, 1.0));
        assert!(approx_ge(1.0 - EPS / 2.0, 1.0));
        assert!(!approx_le(1.0 + 2.0 * EPS, 1.0));
        assert!(!approx_ge(1.0 - 2.0 * EPS, 1.0));
    }

    #[test]
    fn eq_is_symmetric() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(approx_eq(0.3, 0.1 + 0.2));
        assert!(!approx_eq(0.3, 0.3 + 1e-6));
    }

    #[test]
    fn strict_comparisons_have_margin() {
        assert!(definitely_lt(0.0, 1.0));
        assert!(!definitely_lt(1.0 - EPS / 2.0, 1.0));
        assert!(definitely_gt(1.0, 0.0));
        assert!(!definitely_gt(1.0 + EPS / 2.0, 1.0));
    }

    #[test]
    fn snap_clamps_only_tiny_negatives() {
        assert_eq!(snap_nonneg(-EPS / 2.0), 0.0);
        assert_eq!(snap_nonneg(0.5), 0.5);
        assert!(snap_nonneg(-1.0) < 0.0);
    }

    #[test]
    fn interval_overlap_requires_positive_measure() {
        // Touching intervals do not overlap.
        assert!(!intervals_overlap(0.0, 0.5, 0.5, 1.0));
        assert!(intervals_overlap(0.0, 0.6, 0.5, 1.0));
        assert!(!intervals_overlap(0.0, 0.5, 0.7, 1.0));
        // Containment overlaps.
        assert!(intervals_overlap(0.0, 1.0, 0.4, 0.6));
    }

    #[test]
    fn assert_close_macro_accepts_close_values() {
        assert_close!(1.0, 1.0 + EPS / 10.0);
        assert_close!(2.0, 2.0000001, 1e-3);
    }

    #[test]
    #[should_panic(expected = "assert_close failed")]
    fn assert_close_macro_rejects_far_values() {
        assert_close!(1.0, 1.1);
    }
}
