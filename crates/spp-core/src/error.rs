//! Error types shared across the workspace.

use std::fmt;

/// Errors raised while constructing instances or placements.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An item width is outside `(0, 1]`.
    BadWidth { id: usize, w: f64 },
    /// An item height is not strictly positive.
    BadHeight { id: usize, h: f64 },
    /// An item release time is negative or non-finite.
    BadRelease { id: usize, r: f64 },
    /// Item ids must equal their index in the instance.
    IdMismatch { index: usize, id: usize },
    /// A placement has a different number of positions than the instance
    /// has items.
    LengthMismatch { items: usize, positions: usize },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadWidth { id, w } => {
                write!(f, "item {id}: width {w} outside (0, 1]")
            }
            CoreError::BadHeight { id, h } => {
                write!(f, "item {id}: height {h} not strictly positive")
            }
            CoreError::BadRelease { id, r } => {
                write!(f, "item {id}: release time {r} invalid")
            }
            CoreError::IdMismatch { index, id } => {
                write!(
                    f,
                    "item at index {index} has id {id}; ids must equal indices"
                )
            }
            CoreError::LengthMismatch { items, positions } => {
                write!(f, "placement has {positions} positions for {items} items")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// A violation found when validating a placement against an instance.
///
/// Validation reports the *first* violation of each category it finds, with
/// enough context to debug the offending algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// The placement vector length does not match the item count.
    LengthMismatch { items: usize, positions: usize },
    /// Item sticks out of the strip horizontally (or x < 0).
    OutOfStrip { id: usize, x: f64, w: f64 },
    /// Item is below the base of the strip.
    BelowBase { id: usize, y: f64 },
    /// Item starts before its release time.
    ReleaseViolated { id: usize, y: f64, release: f64 },
    /// Two items overlap with positive area.
    Overlap { a: usize, b: usize },
    /// A precedence edge `(pred, succ)` is violated:
    /// `y_pred + h_pred > y_succ`.
    PrecedenceViolated {
        pred: usize,
        succ: usize,
        pred_top: f64,
        succ_bottom: f64,
    },
    /// A coordinate is NaN or infinite.
    NonFinite { id: usize, x: f64, y: f64 },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::LengthMismatch { items, positions } => {
                write!(f, "placement has {positions} positions for {items} items")
            }
            ValidationError::OutOfStrip { id, x, w } => {
                write!(f, "item {id} at x={x} with width {w} leaves the unit strip")
            }
            ValidationError::BelowBase { id, y } => {
                write!(f, "item {id} placed below the strip base (y={y})")
            }
            ValidationError::ReleaseViolated { id, y, release } => {
                write!(f, "item {id} placed at y={y} before its release time {release}")
            }
            ValidationError::Overlap { a, b } => {
                write!(f, "items {a} and {b} overlap")
            }
            ValidationError::PrecedenceViolated {
                pred,
                succ,
                pred_top,
                succ_bottom,
            } => write!(
                f,
                "precedence {pred} -> {succ} violated: pred top {pred_top} > succ bottom {succ_bottom}"
            ),
            ValidationError::NonFinite { id, x, y } => {
                write!(f, "item {id} has non-finite coordinates ({x}, {y})")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::BadWidth { id: 3, w: 1.5 };
        assert!(e.to_string().contains("item 3"));
        assert!(e.to_string().contains("1.5"));

        let v = ValidationError::Overlap { a: 1, b: 2 };
        assert!(v.to_string().contains("1"));
        assert!(v.to_string().contains("2"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            ValidationError::BelowBase { id: 0, y: -1.0 },
            ValidationError::BelowBase { id: 0, y: -1.0 }
        );
        assert_ne!(
            ValidationError::BelowBase { id: 0, y: -1.0 },
            ValidationError::BelowBase { id: 1, y: -1.0 }
        );
    }
}
