//! Placed-rectangle geometry.

use crate::eps::intervals_overlap;

/// An axis-aligned rectangle positioned in the strip: lower-left corner
/// `(x, y)`, width `w`, height `h`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacedRect {
    pub x: f64,
    pub y: f64,
    pub w: f64,
    pub h: f64,
}

impl PlacedRect {
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        PlacedRect { x, y, w, h }
    }

    /// Right edge `x + w`.
    #[inline]
    pub fn right(&self) -> f64 {
        self.x + self.w
    }

    /// Top edge `y + h`.
    #[inline]
    pub fn top(&self) -> f64 {
        self.y + self.h
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// True iff the two rectangles intersect with positive area
    /// (touching edges or corners do not count, up to [`crate::eps::EPS`]).
    pub fn overlaps(&self, other: &PlacedRect) -> bool {
        intervals_overlap(self.x, self.right(), other.x, other.right())
            && intervals_overlap(self.y, self.top(), other.y, other.top())
    }

    /// Area of the intersection (0 if disjoint).
    pub fn intersection_area(&self, other: &PlacedRect) -> f64 {
        let dx = (self.right().min(other.right()) - self.x.max(other.x)).max(0.0);
        let dy = (self.top().min(other.top()) - self.y.max(other.y)).max(0.0);
        dx * dy
    }

    /// True iff `self` is fully contained in `other` (with tolerance).
    pub fn contained_in(&self, other: &PlacedRect) -> bool {
        crate::eps::approx_ge(self.x, other.x)
            && crate::eps::approx_le(self.right(), other.right())
            && crate::eps::approx_ge(self.y, other.y)
            && crate::eps::approx_le(self.top(), other.top())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges() {
        let r = PlacedRect::new(0.25, 1.0, 0.5, 2.0);
        assert_eq!(r.right(), 0.75);
        assert_eq!(r.top(), 3.0);
        assert_eq!(r.area(), 1.0);
    }

    #[test]
    fn overlap_positive_area_only() {
        let a = PlacedRect::new(0.0, 0.0, 0.5, 1.0);
        let touching = PlacedRect::new(0.5, 0.0, 0.5, 1.0);
        let stacked = PlacedRect::new(0.0, 1.0, 0.5, 1.0);
        let inside = PlacedRect::new(0.1, 0.1, 0.1, 0.1);
        let far = PlacedRect::new(0.9, 5.0, 0.1, 0.1);
        assert!(!a.overlaps(&touching));
        assert!(!a.overlaps(&stacked));
        assert!(a.overlaps(&inside));
        assert!(!a.overlaps(&far));
        // symmetry
        assert!(inside.overlaps(&a));
    }

    #[test]
    fn intersection_area_matches_overlap() {
        let a = PlacedRect::new(0.0, 0.0, 1.0, 1.0);
        let b = PlacedRect::new(0.5, 0.5, 1.0, 1.0);
        crate::assert_close!(a.intersection_area(&b), 0.25);
        let c = PlacedRect::new(2.0, 2.0, 1.0, 1.0);
        assert_eq!(a.intersection_area(&c), 0.0);
    }

    #[test]
    fn containment() {
        let outer = PlacedRect::new(0.0, 0.0, 1.0, 10.0);
        let inner = PlacedRect::new(0.2, 3.0, 0.5, 2.0);
        assert!(inner.contained_in(&outer));
        assert!(!outer.contained_in(&inner));
        // Boundary containment counts.
        assert!(outer.contained_in(&outer));
    }
}
