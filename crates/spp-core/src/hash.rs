//! The workspace's one content-hashing implementation: FNV-1a (64-bit)
//! plus the canonical [`InstanceDigest`] built on it.
//!
//! Everything in the batch pipeline that needs an identity fingerprint —
//! shard-plan file lists, solve-config knobs, and (since the solve cache)
//! whole instances — hashes through this module, so there is exactly one
//! algorithm, one tag format (`fnv1a:<16 hex digits>`), and one place to
//! swap the function if 64 bits ever stop being enough. FNV-1a is not
//! cryptographic; the fingerprints defend against *staleness and
//! corruption*, not adversaries, which is the contract every consumer
//! (resume, merge, cache) actually needs.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Streaming 64-bit FNV-1a hasher.
///
/// ```
/// use spp_core::hash::Fnv1a;
/// let mut h = Fnv1a::new();
/// h.write(b"hello");
/// assert_eq!(h.finish(), Fnv1a::hash(b"hello"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a string's UTF-8 bytes.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    /// The hash of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot hash of a byte slice.
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::new();
        h.write(bytes);
        h.finish()
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// The canonical tagged rendering of an FNV-1a value: `fnv1a:<16 hex>`.
/// Every fingerprint the workspace writes to disk uses this form, so a
/// reader can tell at a glance which function produced it.
pub fn fnv1a_tag(h: u64) -> String {
    format!("fnv1a:{h:016x}")
}

/// Content digest of one instance, computed over its **canonical**
/// serialized form — the `{:.17e}` `spp-instance` JSON document with
/// sorted edges ([`crate::json::InstanceFile::to_json`]). Two instances
/// have equal digests iff their canonical documents are byte-identical,
/// regardless of which on-disk format (or in-memory construction) they
/// came from; this is the instance half of the solve-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceDigest(u64);

impl InstanceDigest {
    /// Digest a canonical `spp-instance` JSON document. The caller is
    /// responsible for canonical form — pass the output of
    /// [`crate::json::InstanceFile::to_json`] (or `spp_gen::fileio::to_json`,
    /// which sorts edges first), never raw file bytes that may be
    /// hand-formatted.
    pub fn of_canonical_json(doc: &str) -> Self {
        InstanceDigest(Fnv1a::hash(doc.as_bytes()))
    }

    /// The raw 64-bit value.
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// Bare 16-hex-digit form (for file names, no `fnv1a:` tag).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the tagged form produced by `Display`.
    pub fn parse(s: &str) -> Option<Self> {
        let hex = s.strip_prefix("fnv1a:")?;
        if hex.len() != 16 {
            return None;
        }
        u64::from_str_radix(hex, 16).ok().map(InstanceDigest)
    }
}

impl fmt::Display for InstanceDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fnv1a_tag(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::InstanceFile;
    use crate::Item;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference vectors from the FNV specification (64-bit FNV-1a).
        assert_eq!(Fnv1a::hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"hello ");
        h.write_str("world");
        assert_eq!(h.finish(), Fnv1a::hash(b"hello world"));
    }

    #[test]
    fn tag_format_is_stable() {
        assert_eq!(fnv1a_tag(0xdead_beef), "fnv1a:00000000deadbeef");
        assert_eq!(fnv1a_tag(Fnv1a::hash(b"")), "fnv1a:cbf29ce484222325");
    }

    fn digest_of(file: &InstanceFile) -> InstanceDigest {
        InstanceDigest::of_canonical_json(&file.to_json())
    }

    fn file(items: Vec<Item>, edges: Vec<(usize, usize)>) -> InstanceFile {
        InstanceFile::new(items, edges)
    }

    #[test]
    fn digest_separates_content_not_representation() {
        let a = file(
            vec![
                Item::with_release(0, 0.5, 1.0, 0.0),
                Item::with_release(1, 0.25, 2.0, 1.5),
            ],
            vec![(0, 1)],
        );
        let same = a.clone();
        assert_eq!(digest_of(&a), digest_of(&same));

        // Any content change moves the digest.
        let mut other = a.clone();
        other.items[0].w = 0.75;
        assert_ne!(digest_of(&a), digest_of(&other));
        let mut no_edge = a.clone();
        no_edge.edges.clear();
        assert_ne!(digest_of(&a), digest_of(&no_edge));

        // And parsing the canonical document back reproduces the digest.
        let reparsed = InstanceFile::parse(&a.to_json()).unwrap();
        assert_eq!(digest_of(&a), digest_of(&reparsed));
    }

    #[test]
    fn digest_display_roundtrips() {
        let d = InstanceDigest::of_canonical_json("{}");
        let shown = d.to_string();
        assert!(shown.starts_with("fnv1a:"), "{shown}");
        assert_eq!(InstanceDigest::parse(&shown), Some(d));
        assert_eq!(InstanceDigest::parse("fnv1a:xyz"), None);
        assert_eq!(InstanceDigest::parse("sha256:deadbeef"), None);
        assert_eq!(d.hex().len(), 16);
    }
}
