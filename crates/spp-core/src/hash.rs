//! The workspace's one content-hashing implementation: FNV-1a (64-bit)
//! plus the canonical [`InstanceDigest`] built on it.
//!
//! Everything in the batch pipeline that needs an identity fingerprint —
//! shard-plan file lists, solve-config knobs, and (since the solve cache)
//! whole instances — hashes through this module, so there is exactly one
//! algorithm, one tag format (`fnv1a:<16 hex digits>`), and one place to
//! swap the function if 64 bits ever stop being enough. FNV-1a is not
//! cryptographic; the fingerprints defend against *staleness and
//! corruption*, not adversaries, which is the contract every consumer
//! (resume, merge, cache) actually needs.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Streaming 64-bit FNV-1a hasher.
///
/// ```
/// use spp_core::hash::Fnv1a;
/// let mut h = Fnv1a::new();
/// h.write(b"hello");
/// assert_eq!(h.finish(), Fnv1a::hash(b"hello"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a string's UTF-8 bytes.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    /// The hash of everything written so far.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot hash of a byte slice.
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::new();
        h.write(bytes);
        h.finish()
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// The canonical tagged rendering of an FNV-1a value: `fnv1a:<16 hex>`.
/// Every fingerprint the workspace writes to disk uses this form, so a
/// reader can tell at a glance which function produced it.
pub fn fnv1a_tag(h: u64) -> String {
    format!("fnv1a:{h:016x}")
}

/// Content digest of one instance, computed over its **canonical**
/// serialized form — the `{:.17e}` `spp-instance` JSON document with
/// sorted edges ([`crate::json::InstanceFile::to_json`]). Two instances
/// have equal digests iff their canonical documents are byte-identical,
/// regardless of which on-disk format (or in-memory construction) they
/// came from; this is the instance half of the solve-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceDigest(u64);

impl InstanceDigest {
    /// Digest a canonical `spp-instance` JSON document. The caller is
    /// responsible for canonical form — pass the output of
    /// [`crate::json::InstanceFile::to_json`] (or `spp_gen::fileio::to_json`,
    /// which sorts edges first), never raw file bytes that may be
    /// hand-formatted.
    pub fn of_canonical_json(doc: &str) -> Self {
        InstanceDigest(Fnv1a::hash(doc.as_bytes()))
    }

    /// The raw 64-bit value.
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// Bare 16-hex-digit form (for file names, no `fnv1a:` tag).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the tagged form produced by `Display`.
    pub fn parse(s: &str) -> Option<Self> {
        let hex = s.strip_prefix("fnv1a:")?;
        if hex.len() != 16 {
            return None;
        }
        u64::from_str_radix(hex, 16).ok().map(InstanceDigest)
    }
}

impl fmt::Display for InstanceDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fnv1a_tag(self.0))
    }
}

/// Virtual points each node contributes to a [`HashRing`]. 64 points
/// keeps the per-node load spread within a few percent of uniform while
/// the whole ring for a realistic fleet (tens of nodes) still fits in a
/// couple of KiB and rebuilds in microseconds.
pub const RING_POINTS_PER_NODE: usize = 64;

/// A consistent-hash ring over a list of node labels (e.g. cache URLs).
///
/// Each node is expanded into [`RING_POINTS_PER_NODE`] virtual points —
/// `Fnv1a::hash("<label>#<v>")` — and a key hashed to `h` is owned by
/// the node whose point is the first at or after `h` (wrapping). The
/// replica set for replication factor R is the first R *distinct* nodes
/// met walking the ring from there, so adding or removing one node only
/// remaps the ~1/N of keys whose successor span it occupied; everything
/// else keeps its owner. That stability is the whole point: a cache
/// fleet can grow without invalidating the warm entries on the nodes
/// that stayed.
///
/// Node identity is positional: `successors` yields indices into the
/// label slice the ring was built from, in replica order (primary
/// first). The ring itself never talks to a network — it is pure
/// arithmetic shared by any consumer that needs stable placement.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, node index)`, sorted by point. Ties between nodes on an
    /// identical point (vanishingly rare but possible) resolve to the
    /// lower index, deterministically, via the tuple sort.
    points: Vec<(u64, usize)>,
    nodes: usize,
}

/// SplitMix64 finalizer applied to every value before it is placed on
/// the ring. FNV-1a is a fine *fingerprint* but has weak avalanche on
/// short, similar inputs — sequential key names hash to tight clusters
/// in the u64 space, which would pile whole key families onto one node.
/// The finalizer is a bijection (it cannot create collisions), so the
/// FNV identity contract is untouched; it only spreads positions
/// uniformly around the ring.
fn ring_mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// The SplitMix64 finalizer as a standalone bijective mixer.
///
/// Used wherever a family of related integers must be spread into
/// uncorrelated 64-bit values — e.g. the anytime portfolio derives
/// stream `i`'s seed as `base ^ splitmix_mix(i)`. Two properties
/// consumers rely on: it is a bijection (distinct inputs stay distinct,
/// so derived streams never collide), and `splitmix_mix(0) == 0` (so
/// stream 0 of a portfolio replays the single-stream search exactly).
pub fn splitmix_mix(h: u64) -> u64 {
    ring_mix(h)
}

/// The golden-ratio increment of the SplitMix64 stream.
const SPLITMIX_GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 sequence generator (Steele–Lea–Flood): a Weyl sequence on
/// the golden-ratio increment, finalized by the same bijective mixer the
/// [`HashRing`] uses. Two properties the workspace relies on:
///
/// * **Deterministic and seed-addressed** — the whole stream is a pure
///   function of the seed, so any consumer that derives its seed from
///   content (e.g. `digest ^ user_seed` in the anytime improvement loop)
///   replays identically on every machine and every run.
/// * **Stateless jumps** — the k-th output is `mix(seed + k·golden)`,
///   so streams never need to be stored, only reseeded.
///
/// Not cryptographic; like the rest of this module it defends against
/// clustering, not adversaries.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream addressed by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(SPLITMIX_GOLDEN);
        ring_mix(self.state)
    }

    /// Uniform value in `[0, n)`; `n` must be positive. Uses the
    /// multiply-shift reduction (Lemire), which is bias-negligible for
    /// the small `n` (subset sizes, insertion positions) used here.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "next_below needs a positive bound");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// In-place Fisher–Yates shuffle driven by this stream.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl HashRing {
    /// Build a ring with the default [`RING_POINTS_PER_NODE`].
    pub fn new<S: AsRef<str>>(labels: &[S]) -> Self {
        Self::with_points(labels, RING_POINTS_PER_NODE)
    }

    /// Build a ring with an explicit virtual-point count (tests use
    /// small counts to probe skew; production uses [`new`](Self::new)).
    pub fn with_points<S: AsRef<str>>(labels: &[S], points_per_node: usize) -> Self {
        let mut points = Vec::with_capacity(labels.len() * points_per_node);
        for (index, label) in labels.iter().enumerate() {
            for v in 0..points_per_node {
                let mut h = Fnv1a::new();
                h.write_str(label.as_ref());
                h.write_str("#");
                h.write_str(&v.to_string());
                points.push((ring_mix(h.finish()), index));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            nodes: labels.len(),
        }
    }

    /// Number of nodes on the ring.
    pub fn len(&self) -> usize {
        self.nodes
    }

    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// The first `count` *distinct* nodes met walking the ring from the
    /// successor of `key_hash` — the key's replica set, primary first.
    /// Yields fewer than `count` indices only when the ring has fewer
    /// nodes than that.
    pub fn successors(&self, key_hash: u64, count: usize) -> Vec<usize> {
        let want = count.min(self.nodes);
        let mut out = Vec::with_capacity(want);
        if want == 0 {
            return out;
        }
        let mixed = ring_mix(key_hash);
        let start = self.points.partition_point(|&(p, _)| p < mixed);
        for offset in 0..self.points.len() {
            let (_, node) = self.points[(start + offset) % self.points.len()];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The node that owns `key_hash` (first successor), if any node
    /// exists.
    pub fn primary(&self, key_hash: u64) -> Option<usize> {
        self.successors(key_hash, 1).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::InstanceFile;
    use crate::Item;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference vectors from the FNV specification (64-bit FNV-1a).
        assert_eq!(Fnv1a::hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"hello ");
        h.write_str("world");
        assert_eq!(h.finish(), Fnv1a::hash(b"hello world"));
    }

    #[test]
    fn tag_format_is_stable() {
        assert_eq!(fnv1a_tag(0xdead_beef), "fnv1a:00000000deadbeef");
        assert_eq!(fnv1a_tag(Fnv1a::hash(b"")), "fnv1a:cbf29ce484222325");
    }

    fn digest_of(file: &InstanceFile) -> InstanceDigest {
        InstanceDigest::of_canonical_json(&file.to_json())
    }

    fn file(items: Vec<Item>, edges: Vec<(usize, usize)>) -> InstanceFile {
        InstanceFile::new(items, edges)
    }

    #[test]
    fn digest_separates_content_not_representation() {
        let a = file(
            vec![
                Item::with_release(0, 0.5, 1.0, 0.0),
                Item::with_release(1, 0.25, 2.0, 1.5),
            ],
            vec![(0, 1)],
        );
        let same = a.clone();
        assert_eq!(digest_of(&a), digest_of(&same));

        // Any content change moves the digest.
        let mut other = a.clone();
        other.items[0].w = 0.75;
        assert_ne!(digest_of(&a), digest_of(&other));
        let mut no_edge = a.clone();
        no_edge.edges.clear();
        assert_ne!(digest_of(&a), digest_of(&no_edge));

        // And parsing the canonical document back reproduces the digest.
        let reparsed = InstanceFile::parse(&a.to_json()).unwrap();
        assert_eq!(digest_of(&a), digest_of(&reparsed));
    }

    #[test]
    fn ring_replicas_are_distinct_and_bounded_by_node_count() {
        let nodes = ["http://a:1", "http://b:1", "http://c:1"];
        let ring = HashRing::new(&nodes);
        assert_eq!(ring.len(), 3);
        for key in 0..200u64 {
            let hash = Fnv1a::hash(format!("key-{key}").as_bytes());
            let replicas = ring.successors(hash, 2);
            assert_eq!(replicas.len(), 2);
            assert_ne!(replicas[0], replicas[1]);
            // Asking for more replicas than nodes yields every node once.
            let mut all = ring.successors(hash, 10);
            assert_eq!(all[0], replicas[0], "walk order must be stable");
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2]);
        }
    }

    #[test]
    fn ring_walk_is_deterministic_and_covers_all_nodes() {
        let nodes = ["http://a:1", "http://b:1", "http://c:1", "http://d:1"];
        let ring = HashRing::new(&nodes);
        let mut seen_primary = [false; 4];
        for key in 0..1000u64 {
            let hash = Fnv1a::hash(format!("key-{key}").as_bytes());
            let primary = ring.primary(hash).unwrap();
            seen_primary[primary] = true;
            assert_eq!(ring.primary(hash).unwrap(), primary);
        }
        assert!(
            seen_primary.iter().all(|&s| s),
            "every node should own some keys: {seen_primary:?}"
        );
        let empty: [&str; 0] = [];
        assert!(HashRing::new(&empty).primary(42).is_none());
    }

    /// The consistent-hashing stability property: growing the fleet from
    /// N to N+1 nodes moves only the keys the new node takes over
    /// (~1/(N+1) of them); every other key keeps its primary. This is
    /// the invariant that keeps a cache fleet's warm entries warm across
    /// a resize.
    #[test]
    fn ring_stability_adding_a_node_moves_only_its_share_of_keys() {
        let two = ["http://a:1", "http://b:1"];
        let three = ["http://a:1", "http://b:1", "http://c:1"];
        let before = HashRing::new(&two);
        let after = HashRing::new(&three);
        const KEYS: u64 = 3000;
        let mut moved = 0u64;
        for key in 0..KEYS {
            let hash = Fnv1a::hash(format!("stability-key-{key}").as_bytes());
            let old = before.primary(hash).unwrap();
            let new = after.primary(hash).unwrap();
            if new != old {
                moved += 1;
                // A key may only move TO the new node; old nodes never
                // trade keys among themselves.
                assert_eq!(new, 2, "key {key} moved between pre-existing nodes");
            }
        }
        let fraction = moved as f64 / KEYS as f64;
        // Expected share is 1/3; 64 vnodes keeps the realized share in a
        // loose band around it.
        assert!(
            (0.15..=0.55).contains(&fraction),
            "moved fraction {fraction} out of band (expected ~1/3)"
        );
    }

    #[test]
    fn splitmix_streams_are_deterministic_and_seed_separated() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys, "same seed must replay the same stream");
        assert_ne!(xs, zs, "adjacent seeds must diverge");
        // Reference value: mix(seed + golden) with the published
        // splitmix64 constants (checked against the Steele et al. code).
        assert_eq!(SplitMix64::new(0).next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn splitmix_bounded_draws_stay_in_range() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.next_below(5);
            assert!(v < 5);
            seen[v as usize] = true;
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all residues drawn: {seen:?}");
    }

    #[test]
    fn splitmix_shuffle_is_a_deterministic_permutation() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b: Vec<usize> = (0..20).collect();
        SplitMix64::new(9).shuffle(&mut a);
        SplitMix64::new(9).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(a, sorted, "seed 9 must actually permute 20 elements");
    }

    #[test]
    fn digest_display_roundtrips() {
        let d = InstanceDigest::of_canonical_json("{}");
        let shown = d.to_string();
        assert!(shown.starts_with("fnv1a:"), "{shown}");
        assert_eq!(InstanceDigest::parse(&shown), Some(d));
        assert_eq!(InstanceDigest::parse("fnv1a:xyz"), None);
        assert_eq!(InstanceDigest::parse("sha256:deadbeef"), None);
        assert_eq!(d.hex().len(), 16);
    }
}
