//! Log-bucketed histograms for latency measurement.
//!
//! The serving layer needs latency quantiles (p50/p95/p99/p999) both in
//! the load harness (`spp bench serve`) and live in the server's
//! `GET /stats` — at request rates where storing every sample is out of
//! the question. [`Hist`] is the standard HDR-style compromise: buckets
//! are spaced logarithmically (each power of two split into
//! `2^SUB_BITS = 8` linear sub-buckets), so every recorded value lands in
//! a bucket whose width is at most ~12.5% of its magnitude. Quantiles
//! read back the bucket midpoint, bounding relative error by half that.
//!
//! Values are plain `u64`s; the serving layer records **nanoseconds**
//! (a `u64` holds ~584 years of them, and integer nanoseconds keep the
//! hot-path `record` free of floating point). Two flavors share the
//! bucket math:
//!
//! * [`Hist`] — single-owner counts, mergeable (each load-generator
//!   thread owns one and they are merged at the end);
//! * [`AtomicHist`] — relaxed atomic counts for concurrent recording
//!   (the server's worker pool records every request into one).

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power of two: `2^SUB_BITS`.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: values `0..SUB` get exact buckets, every later
/// octave (up to the 63-bit one) gets `SUB` buckets.
pub const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

/// Bucket index of a value — monotone in `v`, exact below `SUB`.
fn index_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) as usize) & (SUB - 1);
    ((msb - SUB_BITS + 1) as usize) * SUB + sub
}

/// Inclusive lower edge of bucket `i` (the smallest value mapping to it).
fn bucket_lo(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let octave = (i / SUB - 1) as u32 + SUB_BITS;
    let sub = (i % SUB) as u64;
    (1u64 << octave) + (sub << (octave - SUB_BITS))
}

/// Exclusive upper edge of bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    if i + 1 < BUCKETS {
        bucket_lo(i + 1)
    } else {
        u64::MAX
    }
}

/// The value a bucket reports back: its midpoint, which halves the
/// worst-case quantile error versus either edge.
fn bucket_mid(i: usize) -> f64 {
    (bucket_lo(i) as f64 + bucket_hi(i) as f64) / 2.0
}

/// A mergeable log-bucketed histogram (single-writer).
#[derive(Clone)]
pub struct Hist {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

impl Hist {
    pub fn new() -> Hist {
        Hist {
            counts: Box::new([0u64; BUCKETS]),
            total: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.total += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Fold another histogram's counts into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
    }

    /// Nearest-rank quantile, `q ∈ [0, 1]`, as the matched bucket's
    /// midpoint (relative error ≤ ~6.25% by construction). Returns 0.0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(i);
            }
        }
        unreachable!("cumulative count reaches total")
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Hist {{ count: {}, p50: {:.0}, p99: {:.0} }}",
            self.total,
            self.quantile(0.50),
            self.quantile(0.99)
        )
    }
}

/// Concurrent recorder over the same buckets: `record` is one relaxed
/// `fetch_add`, safe from any number of threads; [`AtomicHist::snapshot`]
/// produces a plain [`Hist`] for quantile queries (the snapshot is not
/// atomic across buckets — quantiles of a live histogram are
/// approximate by nature, which is all `/stats` needs).
pub struct AtomicHist {
    counts: Box<[AtomicU64; BUCKETS]>,
}

impl Default for AtomicHist {
    fn default() -> Self {
        AtomicHist::new()
    }
}

impl AtomicHist {
    pub fn new() -> AtomicHist {
        // `AtomicU64` is not `Copy`; build the array element by element.
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let counts: Box<[AtomicU64; BUCKETS]> = counts
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("vec has exactly BUCKETS elements"));
        AtomicHist { counts }
    }

    pub fn record(&self, v: u64) {
        self.counts[index_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> Hist {
        let mut h = Hist::new();
        for (dst, src) in h.counts.iter_mut().zip(self.counts.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        h.total = h.counts.iter().sum();
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_monotone_and_edges_are_consistent() {
        // Every bucket's lower edge maps back into that bucket, and the
        // index function never decreases as values grow.
        for i in 0..BUCKETS {
            assert_eq!(index_of(bucket_lo(i)), i, "lo edge of bucket {i}");
        }
        // Dense ascending check over the small range, then spot checks
        // around every power of two.
        for v in 0..100_000u64 {
            assert!(index_of(v) <= index_of(v + 1), "non-monotone at {v}");
        }
        for shift in 1..63u32 {
            let p = 1u64 << shift;
            for v in [p - 1, p, p + 1] {
                assert!(index_of(v) <= index_of(v + 1), "non-monotone at {v}");
                assert!(index_of(v) < BUCKETS);
            }
        }
        assert_eq!(index_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Hist::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), SUB as u64);
        // Quantile of the singleton bucket {3} is within its unit width.
        let mut h = Hist::new();
        h.record(3);
        assert!((h.quantile(0.5) - 3.5).abs() <= 0.5);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        // A deterministic spread over 4 decades: histogram quantiles must
        // agree with exact nearest-rank quantiles to ~6.25%.
        let samples: Vec<u64> = (1..=10_000u64).map(|i| i * i).collect(); // 1 .. 1e8
        let mut h = Hist::new();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1] as f64;
            let approx = h.quantile(q);
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= 0.0626,
                "q={q}: exact {exact}, approx {approx}, rel {rel}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let xs: Vec<u64> = (0..500).map(|i| (i * 7919) % 100_000).collect();
        let mut all = Hist::new();
        let mut a = Hist::new();
        let mut b = Hist::new();
        for (i, &x) in xs.iter().enumerate() {
            all.record(x);
            if i % 2 == 0 { &mut a } else { &mut b }.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let ah = AtomicHist::new();
        let mut h = Hist::new();
        for v in [0u64, 1, 9, 100, 12345, 1 << 40] {
            ah.record(v);
            h.record(v);
        }
        let snap = ah.snapshot();
        assert_eq!(snap.count(), h.count());
        for q in [0.25, 0.5, 0.99] {
            assert_eq!(snap.quantile(q), h.quantile(q));
        }
        // Concurrent recording loses nothing.
        let ah = AtomicHist::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000u64 {
                        ah.record(i * 31);
                    }
                });
            }
        });
        assert_eq!(ah.snapshot().count(), 4000);
    }

    #[test]
    fn empty_hist_quantile_is_zero() {
        assert_eq!(Hist::new().quantile(0.5), 0.0);
        assert_eq!(Hist::new().count(), 0);
    }
}
