//! Packing instances (sets of rectangles over the unit-width strip).

use crate::error::CoreError;
use crate::item::Item;

/// A strip packing instance: `n` rectangles to pack into the strip of
/// width 1 and unbounded height.
///
/// Invariants (enforced at construction):
/// * `items[i].id == i` for all `i`,
/// * every item satisfies [`Item::check`].
///
/// Precedence constraints are *not* stored here — they live in
/// `spp-dag::PrecInstance`, which pairs an `Instance` with a DAG. This keeps
/// the unconstrained packing algorithms (`spp-pack`) independent of graph
/// machinery.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    items: Vec<Item>,
}

impl Instance {
    /// Build an instance, validating every item.
    pub fn new(items: Vec<Item>) -> Result<Self, CoreError> {
        for (i, it) in items.iter().enumerate() {
            it.check(i)?;
        }
        Ok(Instance { items })
    }

    /// Build from `(w, h)` pairs; ids are assigned by position.
    pub fn from_dims(dims: &[(f64, f64)]) -> Result<Self, CoreError> {
        Instance::new(
            dims.iter()
                .enumerate()
                .map(|(i, &(w, h))| Item::new(i, w, h))
                .collect(),
        )
    }

    /// Build from `(w, h, release)` triples; ids are assigned by position.
    pub fn from_dims_release(dims: &[(f64, f64, f64)]) -> Result<Self, CoreError> {
        Instance::new(
            dims.iter()
                .enumerate()
                .map(|(i, &(w, h, r))| Item::with_release(i, w, h, r))
                .collect(),
        )
    }

    /// Number of rectangles.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff the instance has no rectangles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Immutable access to the items.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Item by id (== index).
    #[inline]
    pub fn item(&self, id: usize) -> &Item {
        &self.items[id]
    }

    /// Sum of rectangle areas — the paper's `AREA(S)` (strip width is 1, so
    /// this is also a lower bound on the optimal height).
    pub fn total_area(&self) -> f64 {
        self.items.iter().map(Item::area).sum()
    }

    /// Maximum rectangle height, 0 for an empty instance.
    pub fn max_height(&self) -> f64 {
        self.items.iter().map(|it| it.h).fold(0.0, f64::max)
    }

    /// Maximum rectangle width, 0 for an empty instance.
    pub fn max_width(&self) -> f64 {
        self.items.iter().map(|it| it.w).fold(0.0, f64::max)
    }

    /// Maximum release time, 0 for an empty instance.
    pub fn max_release(&self) -> f64 {
        self.items.iter().map(|it| it.release).fold(0.0, f64::max)
    }

    /// True iff all items share the same height (up to exact equality).
    ///
    /// The uniform-height algorithms of §2.2 require this.
    pub fn uniform_height(&self) -> Option<f64> {
        let h0 = self.items.first()?.h;
        if self.items.iter().all(|it| it.h == h0) {
            Some(h0)
        } else {
            None
        }
    }

    /// The sub-instance containing the given ids, re-indexed to `0..k`.
    ///
    /// Returns the new instance and the mapping `new index -> old id`.
    pub fn restrict(&self, ids: &[usize]) -> (Instance, Vec<usize>) {
        let mut items = Vec::with_capacity(ids.len());
        let mut back = Vec::with_capacity(ids.len());
        for (new_id, &old) in ids.iter().enumerate() {
            let mut it = self.items[old];
            it.id = new_id;
            items.push(it);
            back.push(old);
        }
        (Instance { items }, back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_items() {
        assert!(Instance::from_dims(&[(0.5, 1.0), (0.25, 2.0)]).is_ok());
        assert!(Instance::from_dims(&[(1.5, 1.0)]).is_err());
        assert!(Instance::from_dims(&[(0.5, -1.0)]).is_err());
    }

    #[test]
    fn id_mismatch_rejected() {
        let items = vec![Item::new(1, 0.5, 1.0)];
        assert!(matches!(
            Instance::new(items),
            Err(CoreError::IdMismatch { .. })
        ));
    }

    #[test]
    fn aggregates() {
        let inst = Instance::from_dims(&[(0.5, 2.0), (0.25, 4.0), (1.0, 0.5)]).unwrap();
        assert_eq!(inst.len(), 3);
        crate::assert_close!(inst.total_area(), 0.5 * 2.0 + 0.25 * 4.0 + 0.5);
        assert_eq!(inst.max_height(), 4.0);
        assert_eq!(inst.max_width(), 1.0);
        assert_eq!(inst.max_release(), 0.0);
    }

    #[test]
    fn uniform_height_detection() {
        let u = Instance::from_dims(&[(0.5, 1.0), (0.25, 1.0)]).unwrap();
        assert_eq!(u.uniform_height(), Some(1.0));
        let v = Instance::from_dims(&[(0.5, 1.0), (0.25, 2.0)]).unwrap();
        assert_eq!(v.uniform_height(), None);
        let empty = Instance::new(vec![]).unwrap();
        assert_eq!(empty.uniform_height(), None);
    }

    #[test]
    fn restrict_reindexes() {
        let inst = Instance::from_dims(&[(0.1, 1.0), (0.2, 2.0), (0.3, 3.0), (0.4, 4.0)]).unwrap();
        let (sub, back) = inst.restrict(&[3, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(back, vec![3, 1]);
        assert_eq!(sub.item(0).w, 0.4);
        assert_eq!(sub.item(0).id, 0);
        assert_eq!(sub.item(1).h, 2.0);
    }

    #[test]
    fn empty_instance_aggregates_are_zero() {
        let inst = Instance::new(vec![]).unwrap();
        assert!(inst.is_empty());
        assert_eq!(inst.total_area(), 0.0);
        assert_eq!(inst.max_height(), 0.0);
        assert_eq!(inst.max_width(), 0.0);
    }

    #[test]
    fn release_triples() {
        let inst = Instance::from_dims_release(&[(0.5, 1.0, 2.0), (0.5, 1.0, 0.0)]).unwrap();
        assert_eq!(inst.max_release(), 2.0);
        assert_eq!(inst.item(0).release, 2.0);
    }
}
