//! Rectangles / tasks.

use crate::error::CoreError;

/// A rectangle to be packed; equivalently a task to be scheduled.
///
/// Following the paper's model (§1): the width `w ∈ (0, 1]` is the fraction
/// of the linear resource (e.g. FPGA columns) the task occupies, the height
/// `h > 0` is its duration, and `release ≥ 0` is the earliest `y` at which
/// it may be placed (0 for the precedence-constrained variant, which does
/// not use release times).
///
/// `id` always equals the item's index inside its [`crate::Instance`]; the
/// invariant is enforced by [`crate::Instance::new`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Identifier; equals the index in the owning instance.
    pub id: usize,
    /// Width in `(0, 1]` (the strip has width 1).
    pub w: f64,
    /// Height (duration), strictly positive.
    pub h: f64,
    /// Release time; the rectangle must be placed at `y ≥ release`.
    pub release: f64,
}

impl Item {
    /// A rectangle with no release constraint.
    pub fn new(id: usize, w: f64, h: f64) -> Self {
        Item {
            id,
            w,
            h,
            release: 0.0,
        }
    }

    /// A rectangle with a release time.
    pub fn with_release(id: usize, w: f64, h: f64, release: f64) -> Self {
        Item { id, w, h, release }
    }

    /// Area `w · h`.
    #[inline]
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Check the paper's domain constraints; used by `Instance::new`.
    pub fn check(&self, index: usize) -> Result<(), CoreError> {
        if self.id != index {
            return Err(CoreError::IdMismatch { index, id: self.id });
        }
        // `is_finite` first so NaN falls through to the range checks only
        // when the comparisons are meaningful.
        if !self.w.is_finite() || self.w <= 0.0 || self.w > 1.0 {
            return Err(CoreError::BadWidth {
                id: self.id,
                w: self.w,
            });
        }
        if !self.h.is_finite() || self.h <= 0.0 {
            return Err(CoreError::BadHeight {
                id: self.id,
                h: self.h,
            });
        }
        if !self.release.is_finite() || self.release < 0.0 {
            return Err(CoreError::BadRelease {
                id: self.id,
                r: self.release,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_is_width_times_height() {
        let it = Item::new(0, 0.5, 2.0);
        assert_eq!(it.area(), 1.0);
    }

    #[test]
    fn default_release_is_zero() {
        assert_eq!(Item::new(0, 0.5, 1.0).release, 0.0);
        assert_eq!(Item::with_release(0, 0.5, 1.0, 3.0).release, 3.0);
    }

    #[test]
    fn check_accepts_valid_items() {
        assert!(Item::new(2, 1.0, 0.001).check(2).is_ok());
        assert!(Item::with_release(0, 0.25, 1.0, 10.0).check(0).is_ok());
    }

    #[test]
    fn check_rejects_bad_width() {
        assert!(matches!(
            Item::new(0, 0.0, 1.0).check(0),
            Err(CoreError::BadWidth { .. })
        ));
        assert!(matches!(
            Item::new(0, 1.2, 1.0).check(0),
            Err(CoreError::BadWidth { .. })
        ));
        assert!(matches!(
            Item::new(0, f64::NAN, 1.0).check(0),
            Err(CoreError::BadWidth { .. })
        ));
    }

    #[test]
    fn check_rejects_bad_height_and_release() {
        assert!(matches!(
            Item::new(0, 0.5, 0.0).check(0),
            Err(CoreError::BadHeight { .. })
        ));
        assert!(matches!(
            Item::with_release(0, 0.5, 1.0, -1.0).check(0),
            Err(CoreError::BadRelease { .. })
        ));
        assert!(matches!(
            Item::with_release(0, 0.5, 1.0, f64::INFINITY).check(0),
            Err(CoreError::BadRelease { .. })
        ));
    }

    #[test]
    fn check_rejects_id_mismatch() {
        assert!(matches!(
            Item::new(5, 0.5, 1.0).check(4),
            Err(CoreError::IdMismatch { index: 4, id: 5 })
        ));
    }
}
