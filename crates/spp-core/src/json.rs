//! The canonical on-disk instance format (JSON) and a minimal JSON
//! parser to read it.
//!
//! The allowed dependency set contains no data-format crate, so both the
//! JSON reader and the writer are hand rolled. The reader is a strict
//! recursive-descent parser that tracks the **line** of every value, so
//! schema errors can name the offending field *and* line — the contract
//! the batch tooling relies on when a 10 000-file shard run rejects one
//! input.
//!
//! On-disk schema (`InstanceFile`):
//!
//! ```json
//! {
//!   "format": "spp-instance",
//!   "version": 1,
//!   "items": [
//!     {"id": 0, "w": 5.00000000000000000e-1, "h": 1.00000000000000000e0, "release": 0.00000000000000000e0}
//!   ],
//!   "edges": [
//!     [0, 1]
//!   ]
//! }
//! ```
//!
//! Floats are written with `{:.17e}` so `parse ∘ serialize` is the
//! identity bit-for-bit. Edges are stored as raw `[pred, succ]` id pairs;
//! cycle checking belongs to the DAG layer (`spp-dag`), which this crate
//! deliberately does not depend on.

use std::fmt::Write as _;

use crate::error::CoreError;
use crate::instance::Instance;
use crate::item::Item;

// ---------------------------------------------------------------------------
// Low-level JSON values
// ---------------------------------------------------------------------------

/// A parsed JSON value (payload only; the line lives in [`JsonValue`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl Json {
    /// Human name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A JSON value together with the 1-based line it started on.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonValue {
    pub json: Json,
    pub line: usize,
}

/// A syntax error from the low-level parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonSyntaxError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for JsonSyntaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for JsonSyntaxError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> JsonSyntaxError {
        JsonSyntaxError {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonSyntaxError> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => {
                Err(self.err(format!("expected {:?}, found {:?}", b as char, got as char)))
            }
            None => Err(self.err(format!("expected {:?}, found end of input", b as char))),
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonSyntaxError> {
        self.skip_ws();
        let line = self.line;
        let json = match self.peek() {
            Some(b'{') => self.parse_object()?,
            Some(b'[') => self.parse_array()?,
            Some(b'"') => Json::Str(self.parse_string()?),
            Some(b't') | Some(b'f') => self.parse_bool()?,
            Some(b'n') => {
                self.parse_keyword("null")?;
                Json::Null
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => Json::Num(self.parse_number()?),
            Some(c) => return Err(self.err(format!("unexpected character {:?}", c as char))),
            None => return Err(self.err("unexpected end of input")),
        };
        Ok(JsonValue { json, line })
    }

    fn parse_keyword(&mut self, kw: &str) -> Result<(), JsonSyntaxError> {
        for want in kw.bytes() {
            match self.bump() {
                Some(got) if got == want => {}
                _ => return Err(self.err(format!("expected keyword {kw:?}"))),
            }
        }
        Ok(())
    }

    fn parse_bool(&mut self) -> Result<Json, JsonSyntaxError> {
        if self.peek() == Some(b't') {
            self.parse_keyword("true")?;
            Ok(Json::Bool(true))
        } else {
            self.parse_keyword("false")?;
            Ok(Json::Bool(false))
        }
    }

    fn parse_number(&mut self) -> Result<f64, JsonSyntaxError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') {
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        token
            .parse::<f64>()
            .map_err(|_| self.err(format!("invalid number {token:?}")))
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonSyntaxError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, JsonSyntaxError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let unit = self.parse_hex4()?;
                        let code = if (0xD800..=0xDBFF).contains(&unit) {
                            // High surrogate: JSON encodes astral-plane
                            // characters as a \uXXXX\uXXXX pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("high surrogate not followed by \\u escape"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err(self.err("invalid low surrogate in \\u pair"));
                            }
                            0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            unit
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(first) => {
                    // Re-decode a multi-byte UTF-8 sequence (input is &str,
                    // so the bytes are valid UTF-8 by construction).
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonSyntaxError> {
        self.expect(b'[')?;
        let mut vals = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Json::Arr(vals));
        }
        loop {
            vals.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Json::Arr(vals)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonSyntaxError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<JsonValue, JsonSyntaxError> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.peek().is_some() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Schema layer: the instance file
// ---------------------------------------------------------------------------

/// A schema error: which field is wrong, on which line, and why.
#[derive(Debug, Clone, PartialEq)]
pub enum FileFormatError {
    /// The document is not JSON at all.
    Syntax(JsonSyntaxError),
    /// The document is JSON but violates the `spp-instance` schema.
    Field {
        /// Dotted/indexed path of the offending field, e.g. `items[3].w`.
        field: String,
        /// 1-based line the offending value starts on.
        line: usize,
        msg: String,
    },
}

impl std::fmt::Display for FileFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileFormatError::Syntax(e) => write!(f, "invalid JSON: {e}"),
            FileFormatError::Field { field, line, msg } => {
                write!(f, "field {field} (line {line}): {msg}")
            }
        }
    }
}

impl std::error::Error for FileFormatError {}

impl From<JsonSyntaxError> for FileFormatError {
    fn from(e: JsonSyntaxError) -> Self {
        FileFormatError::Syntax(e)
    }
}

fn field_err(field: &str, line: usize, msg: impl Into<String>) -> FileFormatError {
    FileFormatError::Field {
        field: field.to_string(),
        line,
        msg: msg.into(),
    }
}

/// The on-disk instance document: items plus raw precedence edges.
///
/// This is the *transport* form — it stores exactly what the file stores.
/// [`InstanceFile::instance`] builds the validated [`Instance`]; pairing
/// the edges with a checked DAG is the caller's job (`spp-gen::fileio`),
/// because `spp-core` does not depend on the graph crate.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceFile {
    pub items: Vec<Item>,
    pub edges: Vec<(usize, usize)>,
}

/// Current schema version written by [`InstanceFile::to_json`].
pub const INSTANCE_FORMAT_VERSION: u64 = 1;

/// The `format` tag written by [`InstanceFile::to_json`].
pub const INSTANCE_FORMAT_NAME: &str = "spp-instance";

impl InstanceFile {
    pub fn new(items: Vec<Item>, edges: Vec<(usize, usize)>) -> Self {
        InstanceFile { items, edges }
    }

    /// Snapshot an instance (+ optional edge list) into transport form.
    pub fn from_instance(inst: &Instance, edges: Vec<(usize, usize)>) -> Self {
        InstanceFile {
            items: inst.items().to_vec(),
            edges,
        }
    }

    /// Build the validated [`Instance`] (ids must be exactly `0..n`).
    pub fn instance(&self) -> Result<Instance, CoreError> {
        Instance::new(self.items.clone())
    }

    /// Canonical serialization: fixed field order, one item / edge per
    /// line, floats via `{:.17e}` so the round-trip is exact.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"format\": \"{INSTANCE_FORMAT_NAME}\",");
        let _ = writeln!(out, "  \"version\": {INSTANCE_FORMAT_VERSION},");
        out.push_str("  \"items\": [");
        for (i, it) in self.items.iter().enumerate() {
            let sep = if i + 1 < self.items.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{\"id\": {}, \"w\": {:.17e}, \"h\": {:.17e}, \"release\": {:.17e}}}{sep}",
                it.id, it.w, it.h, it.release
            );
        }
        out.push_str(if self.items.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"edges\": [");
        for (i, (u, v)) in self.edges.iter().enumerate() {
            let sep = if i + 1 < self.edges.len() { "," } else { "" };
            let _ = write!(out, "\n    [{u}, {v}]{sep}");
        }
        out.push_str(if self.edges.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Parse and schema-check a document produced by [`Self::to_json`]
    /// (or written by hand). Items may appear in any order; their ids must
    /// be exactly `0..n`. Every schema violation names the offending
    /// field path and the line it starts on.
    pub fn parse(text: &str) -> Result<Self, FileFormatError> {
        let doc = parse(text)?;
        let obj = as_obj(&doc, "$")?;

        // Reject unknown top-level fields so typos ("edgs") are named
        // instead of silently dropped.
        for (key, val) in obj {
            if !matches!(key.as_str(), "format" | "version" | "items" | "edges") {
                return Err(field_err(key, val.line, "unknown field"));
            }
        }

        let format = get_field(obj, &doc, "format")?;
        match &format.json {
            Json::Str(s) if s == INSTANCE_FORMAT_NAME => {}
            Json::Str(s) => {
                return Err(field_err(
                    "format",
                    format.line,
                    format!("expected {INSTANCE_FORMAT_NAME:?}, found {s:?}"),
                ))
            }
            other => {
                return Err(field_err(
                    "format",
                    format.line,
                    format!("expected string, found {}", other.type_name()),
                ))
            }
        }

        let version = get_field(obj, &doc, "version")?;
        let v = as_u64(version, "version")?;
        if v != INSTANCE_FORMAT_VERSION {
            return Err(field_err(
                "version",
                version.line,
                format!("unsupported version {v} (this build reads {INSTANCE_FORMAT_VERSION})"),
            ));
        }

        let items_val = get_field(obj, &doc, "items")?;
        let items_arr = as_arr(items_val, "items")?;
        let mut items: Vec<Item> = Vec::with_capacity(items_arr.len());
        for (i, iv) in items_arr.iter().enumerate() {
            items.push(parse_item(iv, i)?);
        }
        items.sort_by_key(|it| it.id);
        for (index, it) in items.iter().enumerate() {
            if it.id != index {
                return Err(field_err(
                    "items",
                    items_val.line,
                    format!(
                        "item ids must be exactly 0..{}; missing id {index}",
                        items.len()
                    ),
                ));
            }
        }

        let edges_val = get_field(obj, &doc, "edges")?;
        let edges_arr = as_arr(edges_val, "edges")?;
        let mut edges = Vec::with_capacity(edges_arr.len());
        for (i, ev) in edges_arr.iter().enumerate() {
            let path = format!("edges[{i}]");
            let pair = as_arr(ev, &path)?;
            if pair.len() != 2 {
                return Err(field_err(
                    &path,
                    ev.line,
                    format!("expected [pred, succ], found {} elements", pair.len()),
                ));
            }
            let u = as_u64(&pair[0], &format!("{path}[0]"))? as usize;
            let v = as_u64(&pair[1], &format!("{path}[1]"))? as usize;
            for (endpoint, which) in [(u, "[0]"), (v, "[1]")] {
                if endpoint >= items.len() {
                    return Err(field_err(
                        &format!("{path}{which}"),
                        ev.line,
                        format!("id {endpoint} out of range (n = {})", items.len()),
                    ));
                }
            }
            edges.push((u, v));
        }

        Ok(InstanceFile { items, edges })
    }
}

/// Typed accessor: the value must be an object; `path` names it in the
/// error. (These accessors are public so every schema layer built on this
/// parser — instance files here, shard reports in `spp-engine` — shares
/// one implementation and one error style.)
pub fn as_obj<'a>(
    v: &'a JsonValue,
    path: &str,
) -> Result<&'a Vec<(String, JsonValue)>, FileFormatError> {
    match &v.json {
        Json::Obj(fields) => Ok(fields),
        other => Err(field_err(
            path,
            v.line,
            format!("expected object, found {}", other.type_name()),
        )),
    }
}

/// Typed accessor: the value must be an array.
pub fn as_arr<'a>(v: &'a JsonValue, path: &str) -> Result<&'a Vec<JsonValue>, FileFormatError> {
    match &v.json {
        Json::Arr(vals) => Ok(vals),
        other => Err(field_err(
            path,
            v.line,
            format!("expected array, found {}", other.type_name()),
        )),
    }
}

/// Typed accessor: the value must be a number.
pub fn as_num(v: &JsonValue, path: &str) -> Result<f64, FileFormatError> {
    match &v.json {
        Json::Num(x) => Ok(*x),
        other => Err(field_err(
            path,
            v.line,
            format!("expected number, found {}", other.type_name()),
        )),
    }
}

/// Typed accessor: the value must be a non-negative integer.
pub fn as_u64(v: &JsonValue, path: &str) -> Result<u64, FileFormatError> {
    let x = as_num(v, path)?;
    if x < 0.0 || x.fract() != 0.0 || !x.is_finite() {
        return Err(field_err(
            path,
            v.line,
            format!("expected a non-negative integer, found {x}"),
        ));
    }
    Ok(x as u64)
}

/// Typed accessor: the value must be a string.
pub fn as_str<'a>(v: &'a JsonValue, path: &str) -> Result<&'a str, FileFormatError> {
    match &v.json {
        Json::Str(s) => Ok(s),
        other => Err(field_err(
            path,
            v.line,
            format!("expected string, found {}", other.type_name()),
        )),
    }
}

/// Look up a required field of an object (`doc` supplies the error line
/// when the field is absent).
pub fn get_field<'a>(
    obj: &'a [(String, JsonValue)],
    doc: &JsonValue,
    name: &str,
) -> Result<&'a JsonValue, FileFormatError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| field_err(name, doc.line, "missing required field"))
}

fn parse_item(v: &JsonValue, index: usize) -> Result<Item, FileFormatError> {
    let path = format!("items[{index}]");
    let fields = as_obj(v, &path)?;
    for (key, val) in fields {
        if !matches!(key.as_str(), "id" | "w" | "h" | "release") {
            return Err(field_err(
                &format!("{path}.{key}"),
                val.line,
                "unknown field",
            ));
        }
    }
    let get = |name: &str| -> Result<&JsonValue, FileFormatError> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, fv)| fv)
            .ok_or_else(|| field_err(&format!("{path}.{name}"), v.line, "missing required field"))
    };
    let id = as_u64(get("id")?, &format!("{path}.id"))? as usize;
    let w = as_num(get("w")?, &format!("{path}.w"))?;
    let h = as_num(get("h")?, &format!("{path}.h"))?;
    let release = as_num(get("release")?, &format!("{path}.release"))?;
    let item = Item::with_release(id, w, h, release);
    // Domain checks here so the error carries the field path + line
    // instead of a bare CoreError at Instance construction.
    if !w.is_finite() || w <= 0.0 || w > 1.0 {
        return Err(field_err(
            &format!("{path}.w"),
            get("w")?.line,
            format!("width {w} outside (0, 1]"),
        ));
    }
    if !h.is_finite() || h <= 0.0 {
        return Err(field_err(
            &format!("{path}.h"),
            get("h")?.line,
            format!("height {h} must be positive and finite"),
        ));
    }
    if !release.is_finite() || release < 0.0 {
        return Err(field_err(
            &format!("{path}.release"),
            get("release")?.line,
            format!("release {release} must be non-negative and finite"),
        ));
    }
    Ok(item)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InstanceFile {
        InstanceFile::new(
            vec![
                Item::with_release(0, 0.5, 1.0, 0.0),
                Item::with_release(1, 0.25, 2.0, 1.5),
                Item::with_release(2, 1.0, 0.125, 0.0),
            ],
            vec![(0, 1), (1, 2)],
        )
    }

    #[test]
    fn roundtrip_is_identity() {
        let f = sample();
        let text = f.to_json();
        let back = InstanceFile::parse(&text).unwrap();
        assert_eq!(f, back);
        // And serialization is canonical: serialize ∘ parse ∘ serialize = serialize.
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn empty_instance_roundtrips() {
        let f = InstanceFile::new(vec![], vec![]);
        assert_eq!(InstanceFile::parse(&f.to_json()).unwrap(), f);
    }

    #[test]
    fn items_in_any_order_are_sorted() {
        let text = r#"{"format": "spp-instance", "version": 1,
            "items": [{"id": 1, "w": 0.5, "h": 1, "release": 0},
                      {"id": 0, "w": 0.25, "h": 2, "release": 0}],
            "edges": []}"#;
        let f = InstanceFile::parse(text).unwrap();
        assert_eq!(f.items[0].id, 0);
        assert_eq!(f.items[0].w, 0.25);
        assert!(f.instance().is_ok());
    }

    #[test]
    fn errors_name_field_and_line() {
        // Non-numeric width on line 4 of the document.
        let text = "{\"format\": \"spp-instance\",\n \"version\": 1,\n \"items\": [\n  {\"id\": 0, \"w\": \"wide\", \"h\": 1, \"release\": 0}\n ],\n \"edges\": []}";
        let err = InstanceFile::parse(text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("items[0].w"), "{msg}");
        assert!(msg.contains("line 4"), "{msg}");

        // Edge referencing a nonexistent item.
        let text = "{\"format\": \"spp-instance\", \"version\": 1,\n \"items\": [{\"id\": 0, \"w\": 0.5, \"h\": 1, \"release\": 0}],\n \"edges\": [[0, 7]]}";
        let err = InstanceFile::parse(text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("edges[0][1]"), "{msg}");
        assert!(msg.contains("line 3"), "{msg}");
    }

    #[test]
    fn unknown_fields_rejected_by_name() {
        let text = "{\"format\": \"spp-instance\", \"version\": 1,\n \"items\": [], \"edges\": [],\n \"edgs\": []}";
        let msg = InstanceFile::parse(text).unwrap_err().to_string();
        assert!(msg.contains("edgs"), "{msg}");

        let text = "{\"format\": \"spp-instance\", \"version\": 1,\n \"items\": [{\"id\": 0, \"w\": 0.5, \"h\": 1, \"release\": 0, \"color\": 3}], \"edges\": []}";
        let msg = InstanceFile::parse(text).unwrap_err().to_string();
        assert!(msg.contains("items[0].color"), "{msg}");
    }

    #[test]
    fn wrong_format_or_version_rejected() {
        let text = "{\"format\": \"gif\", \"version\": 1, \"items\": [], \"edges\": []}";
        let msg = InstanceFile::parse(text).unwrap_err().to_string();
        assert!(msg.contains("format") && msg.contains("gif"), "{msg}");

        let text = "{\"format\": \"spp-instance\", \"version\": 99, \"items\": [], \"edges\": []}";
        let msg = InstanceFile::parse(text).unwrap_err().to_string();
        assert!(msg.contains("version") && msg.contains("99"), "{msg}");
    }

    #[test]
    fn domain_violations_name_the_field() {
        let text = "{\"format\": \"spp-instance\", \"version\": 1,\n \"items\": [{\"id\": 0, \"w\": 1.5, \"h\": 1, \"release\": 0}], \"edges\": []}";
        let msg = InstanceFile::parse(text).unwrap_err().to_string();
        assert!(
            msg.contains("items[0].w") && msg.contains("(0, 1]"),
            "{msg}"
        );

        let text = "{\"format\": \"spp-instance\", \"version\": 1,\n \"items\": [{\"id\": 0, \"w\": 0.5, \"h\": 1, \"release\": -2}], \"edges\": []}";
        let msg = InstanceFile::parse(text).unwrap_err().to_string();
        assert!(msg.contains("items[0].release"), "{msg}");
    }

    #[test]
    fn gapped_ids_rejected() {
        let text = "{\"format\": \"spp-instance\", \"version\": 1,\n \"items\": [{\"id\": 0, \"w\": 0.5, \"h\": 1, \"release\": 0},\n {\"id\": 2, \"w\": 0.5, \"h\": 1, \"release\": 0}], \"edges\": []}";
        let msg = InstanceFile::parse(text).unwrap_err().to_string();
        assert!(msg.contains("missing id 1"), "{msg}");
    }

    #[test]
    fn syntax_errors_carry_lines() {
        let err = InstanceFile::parse("{\n \"format\": \"spp-instance\",\n oops\n}").unwrap_err();
        match err {
            FileFormatError::Syntax(e) => assert_eq!(e.line, 3),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn json_parser_handles_generic_documents() {
        let v = parse(r#"{"a": [1, -2.5e3, true, null, "x\nA"], "b": {}}"#).unwrap();
        let obj = match &v.json {
            Json::Obj(f) => f,
            _ => panic!(),
        };
        let arr = match &obj[0].1.json {
            Json::Arr(a) => a,
            _ => panic!(),
        };
        assert_eq!(arr[0].json, Json::Num(1.0));
        assert_eq!(arr[1].json, Json::Num(-2500.0));
        assert_eq!(arr[2].json, Json::Bool(true));
        assert_eq!(arr[3].json, Json::Null);
        assert_eq!(arr[4].json, Json::Str("x\nA".into()));
        assert!(parse("{,}").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("[1] trailing").is_err());
    }

    #[test]
    fn escape_covers_control_characters() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_fail() {
        // U+1F600 written as a JSON surrogate pair.
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.json, Json::Str("\u{1F600}".into()));
        // Literal (non-escaped) astral characters pass through too.
        let v = parse("\"\u{1F600}\"").unwrap();
        assert_eq!(v.json, Json::Str("\u{1F600}".into()));
        // Lone high surrogate, lone low surrogate, malformed pair.
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
        assert!(parse(r#""\ud83dx""#).is_err());
        assert!(parse(r#""\ud83dA""#).is_err());
    }
}
