//! # spp-core — shared substrate for the strip-packing workspace
//!
//! This crate holds the vocabulary types used by every other crate in the
//! reproduction of *"Strip packing with precedence constraints and strip
//! packing with release times"* (Augustine, Banerjee, Irani; SPAA 2006 /
//! TCS 2009):
//!
//! * [`Item`] — a rectangle (task) with width, height and release time,
//! * [`Instance`] — a set of items to be packed into the unit-width strip,
//! * [`Placement`] — an assignment of lower-left corners `(x, y)` to items,
//! * [`validate`] — geometric validity checks (strip bounds, overlap,
//!   release times),
//! * [`bounds`] — the simple lower bounds used throughout the paper
//!   (`AREA(S)`, `h_max`, `max (r_s + h_s)`),
//! * [`eps`] — the single source of truth for tolerant `f64` comparisons,
//! * [`hash`] — the one FNV-1a implementation behind every fingerprint
//!   (shard plans, config knobs) and the canonical [`InstanceDigest`],
//! * [`stats`] — summary statistics used by the experiment harness,
//! * [`hist`] — log-bucketed latency histograms shared by the serving
//!   layer's `/stats` endpoint and the `spp bench serve` load harness,
//! * [`json`] — the canonical on-disk instance format (`spp-instance`
//!   JSON) plus the minimal line-tracking JSON parser behind it.
//!
//! The strip always has width 1, exactly as in the paper; the FPGA crate
//! maps a `K`-column device onto the unit strip (column width `1/K`).

pub mod bounds;
pub mod eps;
pub mod error;
pub mod geom;
pub mod hash;
pub mod hist;
pub mod instance;
pub mod item;
pub mod json;
pub mod placement;
pub mod render;
pub mod stats;
pub mod validate;

pub use error::{CoreError, ValidationError};
pub use geom::PlacedRect;
pub use hash::InstanceDigest;
pub use instance::Instance;
pub use item::Item;
pub use json::{FileFormatError, InstanceFile};
pub use placement::Placement;
