//! Placements: solutions to strip packing instances.

use crate::geom::PlacedRect;
use crate::instance::Instance;

/// The position of one rectangle: its lower-left corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pos {
    pub x: f64,
    pub y: f64,
}

/// A (candidate) solution: one position per item, indexed by item id.
///
/// A `Placement` is just data — validity is checked separately by
/// [`crate::validate::validate`] so that tests can construct deliberately
/// broken placements.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    pos: Vec<Pos>,
}

impl Placement {
    /// Placement with every rectangle at the origin (useful as a builder
    /// starting point; *not* valid unless the instance has ≤ 1 item).
    pub fn zeroed(n: usize) -> Self {
        Placement {
            pos: vec![Pos { x: 0.0, y: 0.0 }; n],
        }
    }

    /// Build from raw `(x, y)` pairs.
    pub fn from_xy(xy: &[(f64, f64)]) -> Self {
        Placement {
            pos: xy.iter().map(|&(x, y)| Pos { x, y }).collect(),
        }
    }

    /// Number of positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True iff there are no positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Position of item `id`.
    #[inline]
    pub fn pos(&self, id: usize) -> Pos {
        self.pos[id]
    }

    /// Set the position of item `id`.
    #[inline]
    pub fn set(&mut self, id: usize, x: f64, y: f64) {
        self.pos[id] = Pos { x, y };
    }

    /// All positions.
    #[inline]
    pub fn positions(&self) -> &[Pos] {
        &self.pos
    }

    /// The placed rectangle of item `id` within `inst`.
    pub fn rect(&self, inst: &Instance, id: usize) -> PlacedRect {
        let it = inst.item(id);
        let p = self.pos[id];
        PlacedRect::new(p.x, p.y, it.w, it.h)
    }

    /// All placed rectangles, in id order.
    pub fn rects(&self, inst: &Instance) -> Vec<PlacedRect> {
        (0..self.pos.len()).map(|i| self.rect(inst, i)).collect()
    }

    /// Total height of the packing: `max_s (y_s + h_s)`, the objective of
    /// every problem in the paper. 0 for an empty placement.
    pub fn height(&self, inst: &Instance) -> f64 {
        self.pos
            .iter()
            .zip(inst.items())
            .map(|(p, it)| p.y + it.h)
            .fold(0.0, f64::max)
    }

    /// Lowest bottom edge among placed rectangles (`min_s y_s`); 0 for an
    /// empty placement.
    pub fn min_y(&self) -> f64 {
        if self.pos.is_empty() {
            0.0
        } else {
            self.pos.iter().map(|p| p.y).fold(f64::INFINITY, f64::min)
        }
    }

    /// Shift the whole placement up by `dy` (used when concatenating
    /// sub-placements, e.g. in the `DC` algorithm).
    pub fn shift_y(&mut self, dy: f64) {
        for p in &mut self.pos {
            p.y += dy;
        }
    }

    /// Copy a sub-placement back into `self` through an id mapping
    /// (`back[i]` is the id in `self` of item `i` of the sub-instance),
    /// shifting it up by `dy`.
    pub fn absorb(&mut self, sub: &Placement, back: &[usize], dy: f64) {
        for (i, &old) in back.iter().enumerate() {
            let p = sub.pos(i);
            self.set(old, p.x, p.y + dy);
        }
    }

    /// Density of the packing: total item area divided by
    /// `strip width (=1) × height`. In `[0, 1]` for valid placements.
    pub fn density(&self, inst: &Instance) -> f64 {
        let h = self.height(inst);
        if h <= 0.0 {
            return 0.0;
        }
        inst.total_area() / h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst2() -> Instance {
        Instance::from_dims(&[(0.5, 1.0), (0.5, 2.0)]).unwrap()
    }

    #[test]
    fn height_is_max_top() {
        let inst = inst2();
        let p = Placement::from_xy(&[(0.0, 0.0), (0.5, 0.0)]);
        assert_eq!(p.height(&inst), 2.0);
        let q = Placement::from_xy(&[(0.0, 5.0), (0.5, 0.0)]);
        assert_eq!(q.height(&inst), 6.0);
    }

    #[test]
    fn empty_height_zero() {
        let inst = Instance::new(vec![]).unwrap();
        let p = Placement::zeroed(0);
        assert_eq!(p.height(&inst), 0.0);
        assert!(p.is_empty());
    }

    #[test]
    fn shift_moves_everything() {
        let inst = inst2();
        let mut p = Placement::from_xy(&[(0.0, 0.0), (0.5, 0.0)]);
        p.shift_y(3.0);
        assert_eq!(p.pos(0).y, 3.0);
        assert_eq!(p.pos(1).y, 3.0);
        assert_eq!(p.height(&inst), 5.0);
    }

    #[test]
    fn absorb_maps_ids_and_offsets() {
        let mut p = Placement::zeroed(4);
        let sub = Placement::from_xy(&[(0.1, 0.5), (0.2, 1.5)]);
        p.absorb(&sub, &[3, 1], 10.0);
        assert_eq!(p.pos(3), Pos { x: 0.1, y: 10.5 });
        assert_eq!(p.pos(1), Pos { x: 0.2, y: 11.5 });
        assert_eq!(p.pos(0), Pos { x: 0.0, y: 0.0 });
    }

    #[test]
    fn rects_use_item_dims() {
        let inst = inst2();
        let p = Placement::from_xy(&[(0.0, 0.0), (0.5, 1.0)]);
        let r = p.rect(&inst, 1);
        assert_eq!(r.w, 0.5);
        assert_eq!(r.h, 2.0);
        assert_eq!(r.top(), 3.0);
        assert_eq!(p.rects(&inst).len(), 2);
    }

    #[test]
    fn density_in_unit_interval_for_valid() {
        let inst = inst2();
        let p = Placement::from_xy(&[(0.0, 0.0), (0.5, 0.0)]);
        let d = p.density(&inst);
        assert!(d > 0.0 && d <= 1.0, "density = {d}");
        crate::assert_close!(d, (0.5 + 1.0) / 2.0);
    }
}
