//! Placement rendering: ASCII (for terminals/tests) and SVG (for docs).
//!
//! No external crates: the SVG writer emits a minimal hand-rolled
//! document (rect elements on a flipped y-axis so the strip base is at
//! the bottom, as in the paper's figures).

use crate::instance::Instance;
use crate::placement::Placement;
use std::fmt::Write as _;

/// Render the placement as an ASCII grid: `cols` characters across the
/// strip, one row per `dt` of height, top row first. Cells show the item
/// id as a base-36 digit, `.` for empty space.
pub fn ascii(inst: &Instance, pl: &Placement, cols: usize, dt: f64) -> String {
    assert!(cols >= 1 && dt > 0.0);
    let h = pl.height(inst);
    let rows = (h / dt).ceil() as usize;
    let mut grid = vec![vec![b'.'; cols]; rows.max(1)];
    for it in inst.items() {
        let p = pl.pos(it.id);
        let c0 = (p.x * cols as f64).floor() as usize;
        let c1 = (((p.x + it.w) * cols as f64).ceil() as usize).min(cols);
        let r0 = (p.y / dt).floor() as usize;
        let r1 = (((p.y + it.h) / dt).ceil() as usize).min(grid.len());
        const DIGITS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
        let glyph = DIGITS[it.id % 36];
        for row in grid.iter_mut().take(r1).skip(r0) {
            for cell in row.iter_mut().take(c1.max(c0)).skip(c0) {
                *cell = glyph;
            }
        }
    }
    let mut out = String::new();
    for row in grid.iter().rev() {
        out.push('|');
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push_str("+\n");
    out
}

/// Render the placement as a standalone SVG document (`px_per_unit`
/// pixels per strip-width unit). The y-axis is flipped so the strip base
/// sits at the bottom. Items are colored deterministically by id and
/// labeled when large enough.
pub fn svg(inst: &Instance, pl: &Placement, px_per_unit: f64) -> String {
    assert!(px_per_unit > 0.0);
    let height_units = pl.height(inst).max(1e-9);
    let w_px = px_per_unit;
    let h_px = height_units * px_per_unit;
    let mut out = String::new();
    writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.1}" height="{:.1}" viewBox="0 0 {:.4} {:.4}">"#,
        w_px + 2.0,
        h_px + 2.0,
        w_px + 2.0,
        h_px + 2.0
    )
    .expect("write to String cannot fail");
    writeln!(
        out,
        r#"<rect x="1" y="1" width="{w_px:.4}" height="{h_px:.4}" fill="none" stroke="black" stroke-width="1"/>"#,
    )
    .expect("write to String cannot fail");
    for it in inst.items() {
        let p = pl.pos(it.id);
        let x = 1.0 + p.x * px_per_unit;
        // flip y: svg origin is top-left
        let y = 1.0 + (height_units - p.y - it.h) * px_per_unit;
        let w = it.w * px_per_unit;
        let h = it.h * px_per_unit;
        let hue = (it.id * 47) % 360;
        writeln!(
            out,
            r#"<rect x="{x:.4}" y="{y:.4}" width="{w:.4}" height="{h:.4}" fill="hsl({hue},60%,70%)" stroke="black" stroke-width="0.5"/>"#,
        )
        .expect("write to String cannot fail");
        if w > 14.0 && h > 10.0 {
            writeln!(
                out,
                r#"<text x="{:.4}" y="{:.4}" font-size="9" text-anchor="middle">{}</text>"#,
                x + w / 2.0,
                y + h / 2.0 + 3.0,
                it.id
            )
            .expect("write to String cannot fail");
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Instance, Placement) {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0), (1.0, 0.5)]).unwrap();
        let pl = Placement::from_xy(&[(0.0, 0.0), (0.5, 0.0), (0.0, 1.0)]);
        (inst, pl)
    }

    #[test]
    fn ascii_shows_items_and_box() {
        let (inst, pl) = sample();
        let a = ascii(&inst, &pl, 8, 0.5);
        // bottom row (printed last before the box edge): items 0 and 1
        assert!(a.contains("|00001111|"), "got:\n{a}");
        // top row: item 2 spans the full width
        assert!(a.starts_with("|22222222|"), "got:\n{a}");
        assert!(a.ends_with("+--------+\n"));
    }

    #[test]
    fn ascii_empty_instance() {
        let inst = Instance::new(vec![]).unwrap();
        let pl = Placement::zeroed(0);
        let a = ascii(&inst, &pl, 4, 1.0);
        assert!(a.contains("|....|"));
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let (inst, pl) = sample();
        let s = svg(&inst, &pl, 100.0);
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        // one border + 3 items
        assert_eq!(s.matches("<rect").count(), 4);
        // tags balance
        assert_eq!(s.matches("<svg").count(), s.matches("</svg>").count());
    }

    #[test]
    fn svg_flips_y_axis() {
        let inst = Instance::from_dims(&[(1.0, 1.0), (1.0, 1.0)]).unwrap();
        let pl = Placement::from_xy(&[(0.0, 0.0), (0.0, 1.0)]);
        let s = svg(&inst, &pl, 10.0);
        // item 0 (bottom of strip) must be drawn BELOW item 1: larger svg y
        let y_of = |id: usize| -> f64 {
            let marker = format!("hsl({},60%,70%)", (id * 47) % 360);
            let line = s.lines().find(|l| l.contains(&marker)).unwrap();
            let y_part = line.split("y=\"").nth(1).unwrap();
            y_part.split('"').next().unwrap().parse().unwrap()
        };
        assert!(y_of(0) > y_of(1));
    }
}
