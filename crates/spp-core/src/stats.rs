//! Small statistics helpers for the experiment harness.

/// Summary statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p90: f64,
}

impl Summary {
    /// Compute summary statistics. Returns `None` for an empty sample.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile_sorted(&sorted, 0.50),
            p90: percentile_sorted(&sorted, 0.90),
        })
    }
}

/// Nearest-rank percentile of an already-sorted sample, `q ∈ [0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Geometric mean of strictly positive samples (standard for reporting
/// ratio-type metrics across heterogeneous workloads).
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    fn summary_of_ramp() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs).unwrap();
        crate::assert_close!(s.mean, 50.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentile_edges() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 1.0), 4.0);
        assert_eq!(percentile_sorted(&xs, 0.5), 2.0);
    }

    #[test]
    fn geomean_basics() {
        crate::assert_close!(geomean(&[2.0, 8.0]).unwrap(), 4.0);
        assert!(geomean(&[]).is_none());
        assert!(geomean(&[1.0, 0.0]).is_none());
    }
}
