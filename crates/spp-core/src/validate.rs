//! Placement validation.
//!
//! Two independent overlap checkers are provided:
//!
//! * [`validate`] / [`find_overlap_quadratic`] — the obvious O(n²)
//!   pairwise check, trusted as the reference oracle;
//! * [`find_overlap_sweep`] — a y-sweep that keeps the set of rectangles
//!   crossing the current horizontal line and checks x-interval overlap on
//!   insertion, O((n + c) log n) for typical packings with c conflicts.
//!
//! Tests cross-check the two on random placements (including deliberately
//! corrupted ones), so algorithm bugs cannot hide behind validator bugs.

use crate::eps::{approx_ge, approx_le, EPS};
use crate::error::ValidationError;
use crate::instance::Instance;
use crate::placement::Placement;

/// Validate geometry: every rectangle inside the strip, at or above its
/// release time, no two rectangles overlapping with positive area.
///
/// Precedence constraints are validated in `spp-dag` (they need the DAG).
/// Returns the first violation found, or `Ok(())`.
pub fn validate(inst: &Instance, pl: &Placement) -> Result<(), ValidationError> {
    if inst.len() != pl.len() {
        return Err(ValidationError::LengthMismatch {
            items: inst.len(),
            positions: pl.len(),
        });
    }
    for it in inst.items() {
        let p = pl.pos(it.id);
        if !p.x.is_finite() || !p.y.is_finite() {
            return Err(ValidationError::NonFinite {
                id: it.id,
                x: p.x,
                y: p.y,
            });
        }
        if !approx_ge(p.x, 0.0) || !approx_le(p.x + it.w, 1.0) {
            return Err(ValidationError::OutOfStrip {
                id: it.id,
                x: p.x,
                w: it.w,
            });
        }
        if !approx_ge(p.y, 0.0) {
            return Err(ValidationError::BelowBase { id: it.id, y: p.y });
        }
        if !approx_ge(p.y, it.release) {
            return Err(ValidationError::ReleaseViolated {
                id: it.id,
                y: p.y,
                release: it.release,
            });
        }
    }
    if let Some((a, b)) = find_overlap_sweep(inst, pl) {
        return Err(ValidationError::Overlap { a, b });
    }
    Ok(())
}

/// Like [`validate`] but panics with a descriptive message on failure.
/// Convenience for tests and examples.
pub fn assert_valid(inst: &Instance, pl: &Placement) {
    if let Err(e) = validate(inst, pl) {
        panic!("invalid placement: {e}");
    }
}

/// Reference O(n²) overlap finder. Returns the lowest-id pair that
/// overlaps with positive area, if any.
pub fn find_overlap_quadratic(inst: &Instance, pl: &Placement) -> Option<(usize, usize)> {
    let rects = pl.rects(inst);
    for i in 0..rects.len() {
        for j in (i + 1)..rects.len() {
            if rects[i].overlaps(&rects[j]) {
                return Some((i, j));
            }
        }
    }
    None
}

/// Sweep-line overlap finder.
///
/// Events are rectangle bottoms (insert) and tops (remove), processed in
/// increasing y; tops strictly before bottoms at equal coordinate so that
/// stacked rectangles do not conflict. The active set holds rectangles
/// whose vertical extent crosses the sweep line; a new rectangle is checked
/// against active rectangles for x-overlap.
///
/// Returns *some* overlapping pair (not necessarily the same pair as the
/// quadratic checker), or `None`.
pub fn find_overlap_sweep(inst: &Instance, pl: &Placement) -> Option<(usize, usize)> {
    #[derive(Clone, Copy)]
    struct Event {
        y: f64,
        /// false = removal (top edge), true = insertion (bottom edge);
        /// removals sort first at equal y.
        insert: bool,
        id: usize,
    }
    let n = inst.len();
    let mut events = Vec::with_capacity(2 * n);
    for it in inst.items() {
        let p = pl.pos(it.id);
        // Shrink each rectangle by EPS vertically so that touching
        // edges (within tolerance) never produce events in the wrong
        // order; this mirrors the positive-area semantics of
        // `PlacedRect::overlaps`.
        events.push(Event {
            y: p.y + EPS,
            insert: true,
            id: it.id,
        });
        events.push(Event {
            y: p.y + it.h - EPS,
            insert: false,
            id: it.id,
        });
    }
    events.sort_by(|a, b| {
        a.y.partial_cmp(&b.y)
            .unwrap()
            .then_with(|| a.insert.cmp(&b.insert)) // removals (false) first
    });

    // Active set as a vector of (x, right, id); typical packings keep this
    // small (bounded by strip width / min item width).
    let mut active: Vec<(f64, f64, usize)> = Vec::new();
    for ev in events {
        if ev.insert {
            let it = inst.item(ev.id);
            let p = pl.pos(ev.id);
            let (lo, hi) = (p.x, p.x + it.w);
            for &(ax, aright, aid) in &active {
                if crate::eps::intervals_overlap(lo, hi, ax, aright) {
                    let (a, b) = if aid < ev.id {
                        (aid, ev.id)
                    } else {
                        (ev.id, aid)
                    };
                    return Some((a, b));
                }
            }
            active.push((lo, hi, ev.id));
        } else {
            active.retain(|&(_, _, id)| id != ev.id);
        }
    }
    None
}

/// Check that every rectangle of `inner` instance/placement pair sits
/// inside the region `[0,1] × [0, height]`. Used by shelf machinery.
pub fn within_height(inst: &Instance, pl: &Placement, height: f64) -> bool {
    inst.items()
        .iter()
        .all(|it| approx_le(pl.pos(it.id).y + it.h, height))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;

    fn simple() -> (Instance, Placement) {
        // Two side-by-side, one stacked on top.
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0), (1.0, 0.5)]).unwrap();
        let pl = Placement::from_xy(&[(0.0, 0.0), (0.5, 0.0), (0.0, 1.0)]);
        (inst, pl)
    }

    #[test]
    fn valid_placement_passes() {
        let (inst, pl) = simple();
        assert!(validate(&inst, &pl).is_ok());
    }

    #[test]
    fn overlap_detected_by_both_checkers() {
        let inst = Instance::from_dims(&[(0.6, 1.0), (0.6, 1.0)]).unwrap();
        let pl = Placement::from_xy(&[(0.0, 0.0), (0.3, 0.5)]);
        assert_eq!(find_overlap_quadratic(&inst, &pl), Some((0, 1)));
        assert_eq!(find_overlap_sweep(&inst, &pl), Some((0, 1)));
        assert!(matches!(
            validate(&inst, &pl),
            Err(ValidationError::Overlap { .. })
        ));
    }

    #[test]
    fn touching_edges_are_fine() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0), (0.5, 1.0)]).unwrap();
        // side by side + exactly stacked
        let pl = Placement::from_xy(&[(0.0, 0.0), (0.5, 0.0), (0.0, 1.0)]);
        assert!(validate(&inst, &pl).is_ok());
    }

    #[test]
    fn out_of_strip_detected() {
        let inst = Instance::from_dims(&[(0.6, 1.0)]).unwrap();
        let pl = Placement::from_xy(&[(0.5, 0.0)]);
        assert!(matches!(
            validate(&inst, &pl),
            Err(ValidationError::OutOfStrip { id: 0, .. })
        ));
        let pl2 = Placement::from_xy(&[(-0.1, 0.0)]);
        assert!(matches!(
            validate(&inst, &pl2),
            Err(ValidationError::OutOfStrip { id: 0, .. })
        ));
    }

    #[test]
    fn below_base_detected() {
        let inst = Instance::from_dims(&[(0.5, 1.0)]).unwrap();
        let pl = Placement::from_xy(&[(0.0, -0.5)]);
        assert!(matches!(
            validate(&inst, &pl),
            Err(ValidationError::BelowBase { id: 0, .. })
        ));
    }

    #[test]
    fn release_violation_detected() {
        let inst = Instance::new(vec![Item::with_release(0, 0.5, 1.0, 2.0)]).unwrap();
        let early = Placement::from_xy(&[(0.0, 1.0)]);
        assert!(matches!(
            validate(&inst, &early),
            Err(ValidationError::ReleaseViolated { id: 0, .. })
        ));
        let on_time = Placement::from_xy(&[(0.0, 2.0)]);
        assert!(validate(&inst, &on_time).is_ok());
    }

    #[test]
    fn non_finite_detected() {
        let inst = Instance::from_dims(&[(0.5, 1.0)]).unwrap();
        let pl = Placement::from_xy(&[(f64::NAN, 0.0)]);
        assert!(matches!(
            validate(&inst, &pl),
            Err(ValidationError::NonFinite { .. })
        ));
    }

    #[test]
    fn length_mismatch_detected() {
        let inst = Instance::from_dims(&[(0.5, 1.0)]).unwrap();
        let pl = Placement::zeroed(2);
        assert!(matches!(
            validate(&inst, &pl),
            Err(ValidationError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn sweep_matches_quadratic_on_random_placements() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..200 {
            let n = rng.gen_range(1..30);
            let items: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.05..0.9), rng.gen_range(0.05..1.0)))
                .collect();
            let inst = Instance::from_dims(&items).unwrap();
            let pl = Placement::from_xy(
                &(0..n)
                    .map(|i| {
                        (
                            rng.gen_range(0.0..(1.0 - items[i].0)),
                            rng.gen_range(0.0..3.0),
                        )
                    })
                    .collect::<Vec<_>>(),
            );
            let quad = find_overlap_quadratic(&inst, &pl).is_some();
            let sweep = find_overlap_sweep(&inst, &pl).is_some();
            assert_eq!(quad, sweep, "checkers disagree on trial {trial}");
        }
    }

    #[test]
    fn within_height_checks_tops() {
        let (inst, pl) = simple();
        assert!(within_height(&inst, &pl, 1.5));
        assert!(!within_height(&inst, &pl, 1.0));
    }
}
