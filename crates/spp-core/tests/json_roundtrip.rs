//! Round-trip property tests for the `spp-instance` JSON format:
//! `parse ∘ serialize` is the identity on arbitrary valid documents, the
//! serialization is canonical (a second serialize is byte-identical), and
//! malformed inputs are rejected with errors naming the offending field
//! and line.

use proptest::prelude::*;
use spp_core::json::FileFormatError;
use spp_core::{InstanceFile, Item};

/// Build a valid `InstanceFile` from raw generator output: dims drive the
/// items, `edge_picks` is reduced modulo `n` into in-range forward edges
/// (`u < v`, so the edge list is trivially acyclic — cycle checking is the
/// DAG layer's job anyway).
fn build(dims: &[(f64, f64, f64)], edge_picks: &[(usize, usize)]) -> InstanceFile {
    let items: Vec<Item> = dims
        .iter()
        .enumerate()
        .map(|(i, &(w, h, r))| Item::with_release(i, w, h, r))
        .collect();
    let n = items.len();
    let edges = if n < 2 {
        Vec::new()
    } else {
        edge_picks
            .iter()
            .map(|&(a, b)| {
                let (mut u, mut v) = (a % n, b % n);
                if u == v {
                    v = (u + 1) % n;
                }
                if u > v {
                    std::mem::swap(&mut u, &mut v);
                }
                (u, v)
            })
            .collect()
    };
    InstanceFile::new(items, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_serialize_is_identity(
        dims in proptest::collection::vec(
            (0.001f64..1.0, 0.001f64..3.0, 0.0f64..10.0), 0..40),
        edge_picks in proptest::collection::vec((0usize..1000, 0usize..1000), 0..30),
    ) {
        let file = build(&dims, &edge_picks);
        let text = file.to_json();
        let back = InstanceFile::parse(&text).unwrap();
        // Bit-for-bit identity: `{:.17e}` floats survive the round trip.
        prop_assert_eq!(&back, &file);
        // Canonical: serializing the parsed document reproduces the bytes.
        prop_assert_eq!(back.to_json(), text);
        // And the items build a valid Instance.
        prop_assert!(file.instance().is_ok());
    }

    /// Truncating a serialized document anywhere never panics, and always
    /// fails (a strict format cannot accept a prefix of itself).
    #[test]
    fn truncated_documents_are_rejected_not_panicked(
        dims in proptest::collection::vec(
            (0.001f64..1.0, 0.001f64..3.0, 0.0f64..10.0), 1..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let file = build(&dims, &[]);
        let text = file.to_json();
        let cut = ((text.len() as f64 - 1.0) * cut_frac) as usize;
        let truncated = &text[..cut];
        prop_assert!(InstanceFile::parse(truncated).is_err());
    }
}

#[test]
fn malformed_inputs_name_field_and_line() {
    // One probe per failure class: (document, expected field, expected line).
    let cases: &[(&str, &str, usize)] = &[
        // wrong type for a required scalar
        (
            "{\"format\": \"spp-instance\",\n\"version\": true,\n\"items\": [], \"edges\": []}",
            "version",
            2,
        ),
        // item with a missing field
        (
            "{\"format\": \"spp-instance\", \"version\": 1,\n\"items\": [\n{\"id\": 0, \"w\": 0.5, \"h\": 1}\n], \"edges\": []}",
            "items[0].release",
            3,
        ),
        // edge that is not a pair
        (
            "{\"format\": \"spp-instance\", \"version\": 1,\n\"items\": [{\"id\": 0, \"w\": 0.5, \"h\": 1, \"release\": 0}],\n\"edges\": [[0]]}",
            "edges[0]",
            3,
        ),
        // non-integer id
        (
            "{\"format\": \"spp-instance\", \"version\": 1,\n\"items\": [\n{\"id\": 0.5, \"w\": 0.5, \"h\": 1, \"release\": 0}\n], \"edges\": []}",
            "items[0].id",
            3,
        ),
        // out-of-domain height
        (
            "{\"format\": \"spp-instance\", \"version\": 1,\n\"items\": [\n{\"id\": 0, \"w\": 0.5, \"h\": -1, \"release\": 0}\n], \"edges\": []}",
            "items[0].h",
            3,
        ),
    ];
    for (text, field, line) in cases {
        let err = InstanceFile::parse(text).unwrap_err();
        match &err {
            FileFormatError::Field {
                field: f, line: l, ..
            } => {
                assert_eq!(f, field, "wrong field for input:\n{text}");
                assert_eq!(l, line, "wrong line for field {field}");
            }
            other => panic!("expected a field error for {field}, got {other:?}"),
        }
        // The rendered message carries both, for CLI users.
        let msg = err.to_string();
        assert!(
            msg.contains(field) && msg.contains(&format!("line {line}")),
            "{msg}"
        );
    }
}
