//! The paper's `F(s)` function and tight (critical) paths.
//!
//! `F(s)` is defined recursively in §2:
//!
//! * if `IN(s) = ∅`, then `F(s) = h_s`;
//! * otherwise `F(s) = h_s + max_{s' ∈ IN(s)} F(s')`.
//!
//! `F(s)` is the height of the top edge of `s` when every rectangle is
//! dropped as early as its predecessors allow in an *infinitely wide*
//! strip; `F(S) = max_s F(s)` is the second lower bound on
//! `OPT(S, E)` (the first being `AREA(S)`).

use crate::graph::Dag;
use crate::topo::topological_order;
use spp_core::Instance;

/// Compute `F(s)` for every node, in O(V + E) via a topological order.
///
/// `heights[v]` is `h_v`; items and DAG must agree on node count.
pub fn critical_path_values(dag: &Dag, heights: &[f64]) -> Vec<f64> {
    assert_eq!(dag.len(), heights.len(), "DAG/heights size mismatch");
    let order = topological_order(dag).expect("Dag invariant: acyclic");
    let mut f = vec![0.0; dag.len()];
    for &v in &order {
        let pred_max = dag.preds(v).iter().map(|&p| f[p]).fold(0.0_f64, f64::max);
        f[v] = heights[v] + pred_max;
    }
    f
}

/// `F(S) = max_s F(s)` — the critical-path lower bound on `OPT(S, E)`.
/// 0 for an empty instance.
pub fn critical_path_lb(dag: &Dag, inst: &Instance) -> f64 {
    let heights: Vec<f64> = inst.items().iter().map(|it| it.h).collect();
    critical_path_values(dag, &heights)
        .into_iter()
        .fold(0.0, f64::max)
}

/// Extract a *tight path*: a path `s_base → … → s_top` with
/// `F(s_top) = F(S)` such that the heights along the path sum to `F(S)`
/// (Lemma 2.2's witness). Returns node ids from base to top; empty for an
/// empty DAG.
pub fn tight_path(dag: &Dag, heights: &[f64]) -> Vec<usize> {
    if dag.is_empty() {
        return Vec::new();
    }
    let f = critical_path_values(dag, heights);
    // start from an argmax of F
    let mut top = 0;
    for v in 1..dag.len() {
        if f[v] > f[top] {
            top = v;
        }
    }
    let mut path = vec![top];
    let mut cur = top;
    // walk down: a predecessor p with F(p) = F(cur) - h_cur is tight
    loop {
        let need = f[cur] - heights[cur];
        if dag.preds(cur).is_empty() {
            break;
        }
        let p = *dag
            .preds(cur)
            .iter()
            .find(|&&p| (f[p] - need).abs() <= spp_core::eps::EPS)
            .expect("by construction of F some predecessor is tight");
        path.push(p);
        cur = p;
    }
    path.reverse();
    path
}

/// The earliest-start schedule implied by `F`: item `v` starts at
/// `F(v) − h_v`. This is the "optimal placement in an infinitely wide
/// strip" used in the proof of Lemma 2.1.
pub fn earliest_starts(dag: &Dag, heights: &[f64]) -> Vec<f64> {
    critical_path_values(dag, heights)
        .iter()
        .zip(heights)
        .map(|(f, h)| f - h)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_core::assert_close;

    #[test]
    fn chain_accumulates_heights() {
        let d = Dag::chain(3);
        let f = critical_path_values(&d, &[1.0, 2.0, 3.0]);
        assert_eq!(f, vec![1.0, 3.0, 6.0]);
    }

    #[test]
    fn sources_have_f_equal_height() {
        let d = Dag::empty(3);
        let f = critical_path_values(&d, &[0.5, 1.5, 2.5]);
        assert_eq!(f, vec![0.5, 1.5, 2.5]);
    }

    #[test]
    fn diamond_takes_max_branch() {
        // 0 -> {1, 2} -> 3; branch through 2 is taller.
        let d = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let f = critical_path_values(&d, &[1.0, 1.0, 5.0, 1.0]);
        assert_eq!(f[3], 1.0 + 5.0 + 1.0);
    }

    #[test]
    fn lb_matches_instance() {
        let d = Dag::chain(3);
        let inst = Instance::from_dims(&[(0.1, 1.0), (0.1, 2.0), (0.1, 3.0)]).unwrap();
        assert_close!(critical_path_lb(&d, &inst), 6.0);
    }

    #[test]
    fn tight_path_sums_to_f() {
        let d = Dag::new(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]).unwrap();
        let h = [1.0, 3.0, 1.0, 10.0, 2.0, 2.0];
        let f = critical_path_values(&d, &h);
        let fs = f.iter().cloned().fold(0.0, f64::max);
        let path = tight_path(&d, &h);
        let sum: f64 = path.iter().map(|&v| h[v]).sum();
        assert_close!(sum, fs);
        // path respects edges
        for w in path.windows(2) {
            assert!(d.succs(w[0]).contains(&w[1]), "not a path: {path:?}");
        }
        // base is a source
        assert!(d.preds(path[0]).is_empty());
    }

    #[test]
    fn tight_path_of_empty_dag() {
        assert!(tight_path(&Dag::empty(0), &[]).is_empty());
    }

    #[test]
    fn earliest_starts_respect_edges() {
        let d = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let h = [1.0, 2.0, 5.0, 1.0];
        let y = earliest_starts(&d, &h);
        for (u, v) in d.edges() {
            assert!(
                y[u] + h[u] <= y[v] + spp_core::eps::EPS,
                "edge ({u},{v}) violated by earliest starts"
            );
        }
        assert_eq!(y[0], 0.0);
        assert_eq!(y[3], 6.0); // after the taller branch through 2
    }

    #[test]
    fn lemma_2_1_crossers_are_independent() {
        // Lemma 2.1: rectangles whose infinite-width schedule straddles a
        // horizontal line y are pairwise independent. This is the property
        // that lets DC pack S_mid with an unconstrained subroutine.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2101);
        for _ in 0..40 {
            let n = rng.gen_range(2..25);
            let p = rng.gen_range(0.05..0.5);
            let d = crate::gen::random_order(&mut rng, n, p);
            let h: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
            let f = critical_path_values(&d, &h);
            let big_h = f.iter().cloned().fold(0.0f64, f64::max);
            let y = rng.gen_range(0.0..big_h);
            let crossers: Vec<usize> = (0..n).filter(|&v| f[v] > y && f[v] - h[v] <= y).collect();
            for (i, &a) in crossers.iter().enumerate() {
                for &b in &crossers[i + 1..] {
                    assert!(
                        crate::reach::independent(&d, a, b),
                        "crossers {a} and {b} are ordered"
                    );
                }
            }
        }
    }

    #[test]
    fn single_node() {
        let d = Dag::empty(1);
        assert_eq!(tight_path(&d, &[4.0]), vec![0]);
        let inst = Instance::from_dims(&[(0.5, 4.0)]).unwrap();
        assert_close!(critical_path_lb(&d, &inst), 4.0);
    }
}
