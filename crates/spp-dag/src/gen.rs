//! Structural DAG generators.
//!
//! These generate *edge structure only*; item dimensions are drawn by
//! `spp-gen`. All generators are deterministic given the `rng` state.

use crate::graph::Dag;
use rand::Rng;

/// `k` disjoint chains covering `n` nodes as evenly as possible
/// (node ids are assigned chain-by-chain).
pub fn disjoint_chains(n: usize, k: usize) -> Dag {
    assert!(k >= 1, "need at least one chain");
    let mut edges = Vec::new();
    let mut start = 0;
    for c in 0..k {
        let len = n / k + usize::from(c < n % k);
        for i in 1..len {
            edges.push((start + i - 1, start + i));
        }
        start += len;
    }
    Dag::new(n, &edges).expect("chains are acyclic")
}

/// Random layered DAG: nodes are split into `layers` consecutive groups;
/// each node (other than in the first layer) receives an edge from a
/// uniform random node of the previous layer, plus extra edges from the
/// previous layer with probability `extra_p` each. Mirrors the structure
/// of image/signal-processing task graphs the paper motivates.
pub fn layered<R: Rng>(rng: &mut R, n: usize, layers: usize, extra_p: f64) -> Dag {
    assert!(layers >= 1);
    let layers = layers.min(n.max(1));
    // layer boundaries
    let mut bounds = vec![0usize];
    for l in 0..layers {
        let len = n / layers + usize::from(l < n % layers);
        bounds.push(bounds[l] + len);
    }
    let mut edges = Vec::new();
    for l in 1..layers {
        let (plo, phi) = (bounds[l - 1], bounds[l]);
        let (lo, hi) = (bounds[l], bounds[l + 1]);
        for v in lo..hi {
            if phi > plo {
                let forced = rng.gen_range(plo..phi);
                edges.push((forced, v));
                for p in plo..phi {
                    if p != forced && rng.gen_bool(extra_p) {
                        edges.push((p, v));
                    }
                }
            }
        }
    }
    Dag::new(n, &edges).expect("layered construction is acyclic")
}

/// Random DAG: for each pair `i < j`, edge `(i, j)` with probability `p`.
/// Orientation along the index order guarantees acyclicity.
pub fn random_order<R: Rng>(rng: &mut R, n: usize, p: f64) -> Dag {
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                edges.push((i, j));
            }
        }
    }
    Dag::new(n, &edges).expect("order-oriented edges are acyclic")
}

/// Fork–join: a source `0`, `n-2` parallel middle nodes, a sink `n-1`.
/// Requires `n ≥ 2`.
pub fn fork_join(n: usize) -> Dag {
    assert!(n >= 2, "fork-join needs source and sink");
    let mut edges = Vec::new();
    for v in 1..(n - 1) {
        edges.push((0, v));
        edges.push((v, n - 1));
    }
    if n == 2 {
        edges.push((0, 1));
    }
    Dag::new(n, &edges).expect("fork-join is acyclic")
}

/// Random series-parallel DAG on `n` nodes, built by recursive series /
/// parallel composition (classic SP recursion). Node ids are assigned in
/// construction order; the result always has a single source and sink for
/// `n ≥ 2`.
pub fn series_parallel<R: Rng>(rng: &mut R, n: usize) -> Dag {
    // Build the SP structure recursively over node-count budgets; returns
    // (edges, source, sink, next_free_id).
    fn build<R: Rng>(
        rng: &mut R,
        budget: usize,
        next: usize,
        edges: &mut Vec<(usize, usize)>,
    ) -> (usize, usize, usize) {
        if budget <= 1 {
            return (next, next, next + 1);
        }
        if budget == 2 {
            edges.push((next, next + 1));
            return (next, next + 1, next + 2);
        }
        let left = rng.gen_range(1..budget);
        let right = budget - left;
        if rng.gen_bool(0.5) {
            // series: left then right
            let (s1, t1, mid) = build(rng, left, next, edges);
            let (s2, t2, end) = build(rng, right, mid, edges);
            edges.push((t1, s2));
            (s1, t2, end)
        } else {
            // parallel: shared new source and sink around both branches
            // (consumes 2 nodes for the endpoints when budget allows)
            if budget < 4 {
                // not enough nodes for endpoints: fall back to series
                let (s1, t1, mid) = build(rng, left, next, edges);
                let (s2, t2, end) = build(rng, right, mid, edges);
                edges.push((t1, s2));
                return (s1, t2, end);
            }
            let src = next;
            let inner = budget - 2;
            let l = inner.min(left.max(1));
            let r = inner - l;
            let (s1, t1, mid) = build(rng, l.max(1), next + 1, edges);
            edges.push((src, s1));
            let (_s2, t2, mid2) = if r >= 1 {
                let b = build(rng, r, mid, edges);
                edges.push((src, b.0));
                (b.0, b.1, b.2)
            } else {
                (s1, t1, mid)
            };
            let sink = mid2;
            edges.push((t1, sink));
            if r >= 1 {
                edges.push((t2, sink));
            }
            (src, sink, sink + 1)
        }
    }
    if n == 0 {
        return Dag::empty(0);
    }
    let mut edges = Vec::new();
    let (_, _, used) = build(rng, n, 0, &mut edges);
    debug_assert_eq!(used, n, "SP construction must consume exactly n ids");
    Dag::new(n, &edges).expect("series-parallel is acyclic")
}

/// Random out-tree (anti-arborescence toward the leaves): node 0 is the
/// root; each node `v ≥ 1` gets a single parent drawn uniformly from
/// `0..v`.
pub fn random_out_tree<R: Rng>(rng: &mut R, n: usize) -> Dag {
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((rng.gen_range(0..v), v));
    }
    Dag::new(n, &edges).expect("tree is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn chains_cover_all_nodes() {
        let d = disjoint_chains(10, 3);
        assert_eq!(d.len(), 10);
        // 3 chains of sizes 4,3,3 -> 3+2+2 = 7 edges
        assert_eq!(d.edge_count(), 7);
        assert_eq!(d.sources().len(), 3);
        assert_eq!(d.sinks().len(), 3);
    }

    #[test]
    fn chains_edge_cases() {
        let d = disjoint_chains(3, 5); // more chains than nodes
        assert_eq!(d.edge_count(), 0);
        let e = disjoint_chains(5, 1);
        assert_eq!(e.edge_count(), 4);
    }

    #[test]
    fn layered_every_nonfirst_layer_node_has_pred() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = layered(&mut rng, 40, 5, 0.2);
        assert_eq!(d.len(), 40);
        let lvls = crate::levels::levels(&d);
        for (v, &lvl) in lvls.iter().enumerate() {
            if lvl > 0 {
                assert!(d.in_degree(v) >= 1, "node {v} at level {lvl} orphaned");
            }
        }
    }

    #[test]
    fn random_order_density_scales_with_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let sparse = random_order(&mut rng, 30, 0.05);
        let dense = random_order(&mut rng, 30, 0.5);
        assert!(sparse.edge_count() < dense.edge_count());
    }

    #[test]
    fn random_order_p0_and_p1() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(random_order(&mut rng, 10, 0.0).edge_count(), 0);
        assert_eq!(random_order(&mut rng, 10, 1.0).edge_count(), 45);
    }

    #[test]
    fn fork_join_shape() {
        let d = fork_join(6);
        assert_eq!(d.sources(), vec![0]);
        assert_eq!(d.sinks(), vec![5]);
        assert_eq!(d.out_degree(0), 4);
        assert_eq!(d.in_degree(5), 4);
        let tiny = fork_join(2);
        assert_eq!(tiny.edge_count(), 1);
    }

    #[test]
    fn series_parallel_consumes_exact_n() {
        let mut rng = StdRng::seed_from_u64(99);
        for n in [0usize, 1, 2, 3, 5, 8, 13, 40] {
            let d = series_parallel(&mut rng, n);
            assert_eq!(d.len(), n, "n={n}");
            if n >= 2 {
                assert!(d.edge_count() >= n - 1);
            }
        }
    }

    #[test]
    fn out_tree_every_nonroot_has_one_parent() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = random_out_tree(&mut rng, 25);
        assert_eq!(d.in_degree(0), 0);
        for v in 1..25 {
            assert_eq!(d.in_degree(v), 1);
        }
        assert_eq!(d.edge_count(), 24);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = layered(&mut StdRng::seed_from_u64(3), 20, 4, 0.3);
        let b = layered(&mut StdRng::seed_from_u64(3), 20, 4, 0.3);
        assert_eq!(a, b);
    }
}
