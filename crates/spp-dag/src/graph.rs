//! DAG representation.

use std::fmt;

/// Errors from DAG construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge endpoint is outside `0..n`.
    NodeOutOfRange { edge: (usize, usize), n: usize },
    /// A self-loop `(v, v)`.
    SelfLoop { v: usize },
    /// The edge set contains a directed cycle.
    Cyclic,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::NodeOutOfRange { edge, n } => {
                write!(f, "edge {edge:?} out of range for {n} nodes")
            }
            DagError::SelfLoop { v } => write!(f, "self-loop at node {v}"),
            DagError::Cyclic => write!(f, "edge set contains a directed cycle"),
        }
    }
}

impl std::error::Error for DagError {}

/// A directed acyclic graph over nodes `0..n` (node = item id).
///
/// Stored as forward and backward adjacency lists. Construction verifies
/// acyclicity (Kahn's algorithm) and rejects self-loops and out-of-range
/// endpoints. Duplicate edges are deduplicated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dag {
    n: usize,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
    m: usize,
}

impl Dag {
    /// Build a DAG on `n` nodes from an edge list `(pred, succ)`.
    pub fn new(n: usize, edges: &[(usize, usize)]) -> Result<Self, DagError> {
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut m = 0;
        for &(u, v) in edges {
            if u >= n || v >= n {
                return Err(DagError::NodeOutOfRange { edge: (u, v), n });
            }
            if u == v {
                return Err(DagError::SelfLoop { v });
            }
            if !succs[u].contains(&v) {
                succs[u].push(v);
                preds[v].push(u);
                m += 1;
            }
        }
        let dag = Dag { n, succs, preds, m };
        if crate::topo::topological_order(&dag).is_none() {
            return Err(DagError::Cyclic);
        }
        Ok(dag)
    }

    /// The empty DAG (no edges) on `n` nodes — i.e. no precedence
    /// constraints; every packing problem in the paper degenerates to this
    /// when `E = ∅`.
    pub fn empty(n: usize) -> Self {
        Dag {
            n,
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// A single chain `0 -> 1 -> … -> n-1`.
    pub fn chain(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        Dag::new(n, &edges).expect("chain is acyclic")
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the DAG has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of (deduplicated) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Successors of `v` (the out-neighborhood).
    #[inline]
    pub fn succs(&self, v: usize) -> &[usize] {
        &self.succs[v]
    }

    /// Predecessors of `v` — the paper's in-neighborhood `IN(s)`.
    #[inline]
    pub fn preds(&self, v: usize) -> &[usize] {
        &self.preds[v]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: usize) -> usize {
        self.preds[v].len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: usize) -> usize {
        self.succs[v].len()
    }

    /// Iterate over all edges `(pred, succ)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succs
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// Sources (no predecessors).
    pub fn sources(&self) -> Vec<usize> {
        (0..self.n).filter(|&v| self.preds[v].is_empty()).collect()
    }

    /// Sinks (no successors).
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.n).filter(|&v| self.succs[v].is_empty()).collect()
    }

    /// The sub-DAG induced by `ids`, re-indexed to `0..ids.len()` in the
    /// order given. Edges with an endpoint outside `ids` are dropped —
    /// exactly the "subgraph of the original DAG induced by S" used in
    /// step 2 of Algorithm 1 (`DC`).
    pub fn induced(&self, ids: &[usize]) -> Dag {
        let mut index_of = vec![usize::MAX; self.n];
        for (new, &old) in ids.iter().enumerate() {
            index_of[old] = new;
        }
        let mut edges = Vec::new();
        for &old_u in ids {
            for &old_v in &self.succs[old_u] {
                if index_of[old_v] != usize::MAX {
                    edges.push((index_of[old_u], index_of[old_v]));
                }
            }
        }
        Dag::new(ids.len(), &edges).expect("induced subgraph of a DAG is a DAG")
    }

    /// Union of edge sets with another DAG on the same node set.
    /// Returns `Err(DagError::Cyclic)` if the union creates a cycle.
    pub fn union(&self, other: &Dag) -> Result<Dag, DagError> {
        assert_eq!(self.n, other.n, "union requires equal node counts");
        let mut edges: Vec<(usize, usize)> = self.edges().collect();
        edges.extend(other.edges());
        Dag::new(self.n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_dedups_edges() {
        let d = Dag::new(3, &[(0, 1), (0, 1), (1, 2)]).unwrap();
        assert_eq!(d.edge_count(), 2);
        assert_eq!(d.succs(0), &[1]);
        assert_eq!(d.preds(2), &[1]);
    }

    #[test]
    fn rejects_cycles_self_loops_and_bad_nodes() {
        assert_eq!(Dag::new(2, &[(0, 1), (1, 0)]), Err(DagError::Cyclic));
        assert_eq!(Dag::new(2, &[(1, 1)]), Err(DagError::SelfLoop { v: 1 }));
        assert_eq!(
            Dag::new(2, &[(0, 5)]),
            Err(DagError::NodeOutOfRange { edge: (0, 5), n: 2 })
        );
    }

    #[test]
    fn longer_cycle_detected() {
        assert_eq!(
            Dag::new(4, &[(0, 1), (1, 2), (2, 3), (3, 1)]),
            Err(DagError::Cyclic)
        );
    }

    #[test]
    fn chain_and_empty() {
        let c = Dag::chain(4);
        assert_eq!(c.edge_count(), 3);
        assert_eq!(c.sources(), vec![0]);
        assert_eq!(c.sinks(), vec![3]);
        let e = Dag::empty(3);
        assert_eq!(e.edge_count(), 0);
        assert_eq!(e.sources(), vec![0, 1, 2]);
    }

    #[test]
    fn degrees() {
        // diamond 0 -> {1,2} -> 3
        let d = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(d.out_degree(0), 2);
        assert_eq!(d.in_degree(3), 2);
        assert_eq!(d.in_degree(0), 0);
    }

    #[test]
    fn induced_subgraph_drops_external_edges() {
        // 0 -> 1 -> 2 -> 3
        let d = Dag::chain(4);
        // keep {0, 1, 3}: edge 0->1 survives (reindexed), 1->2, 2->3 dropped
        let sub = d.induced(&[0, 1, 3]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(sub.succs(0), &[1]);
        assert!(sub.succs(1).is_empty());
        assert!(sub.succs(2).is_empty());
    }

    #[test]
    fn induced_respects_id_ordering() {
        let d = Dag::new(3, &[(0, 2)]).unwrap();
        // order [2, 0]: old 0 -> new 1, old 2 -> new 0; edge becomes 1 -> 0
        let sub = d.induced(&[2, 0]);
        assert_eq!(sub.succs(1), &[0]);
    }

    #[test]
    fn edges_iterator_roundtrips() {
        let edges = [(0, 2), (1, 2), (2, 3)];
        let d = Dag::new(4, &edges).unwrap();
        let mut got: Vec<_> = d.edges().collect();
        got.sort();
        assert_eq!(got, edges.to_vec());
    }

    #[test]
    fn union_detects_created_cycle() {
        let a = Dag::new(2, &[(0, 1)]).unwrap();
        let b = Dag::new(2, &[(1, 0)]).unwrap();
        assert_eq!(a.union(&b), Err(DagError::Cyclic));
        let c = Dag::new(2, &[]).unwrap();
        assert_eq!(a.union(&c).unwrap().edge_count(), 1);
    }
}
