//! Longest-path layer decomposition.
//!
//! `level(v) = 0` for sources, otherwise `1 + max level of predecessors`.
//! Items within a level are pairwise independent (no path connects them
//! within the same level because every edge increases the level by ≥ 1),
//! so each level can be handed to an unconstrained packing algorithm —
//! this is the classical "layered" baseline the `DC` algorithm is compared
//! against in the experiments.

use crate::graph::Dag;
use crate::topo::topological_order;

/// Level (longest edge-count distance from a source) of every node.
pub fn levels(dag: &Dag) -> Vec<usize> {
    let order = topological_order(dag).expect("Dag invariant: acyclic");
    let mut lvl = vec![0usize; dag.len()];
    for &v in &order {
        for &p in dag.preds(v) {
            lvl[v] = lvl[v].max(lvl[p] + 1);
        }
    }
    lvl
}

/// Group node ids by level; `groups[l]` lists the nodes at level `l`,
/// each sorted ascending. Empty for an empty DAG.
pub fn level_groups(dag: &Dag) -> Vec<Vec<usize>> {
    let lvl = levels(dag);
    let depth = lvl.iter().copied().max().map_or(0, |d| d + 1);
    let mut groups = vec![Vec::new(); depth];
    for (v, &l) in lvl.iter().enumerate() {
        groups[l].push(v);
    }
    groups
}

/// Verify the defining property used by the layered baseline: no edge
/// connects two nodes of the same level.
pub fn levels_are_antichains(dag: &Dag) -> bool {
    let lvl = levels(dag);
    dag.edges().all(|(u, v)| lvl[u] < lvl[v])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_levels_count_up() {
        let d = Dag::chain(4);
        assert_eq!(levels(&d), vec![0, 1, 2, 3]);
    }

    #[test]
    fn diamond_levels() {
        let d = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(levels(&d), vec![0, 1, 1, 2]);
        let groups = level_groups(&d);
        assert_eq!(groups, vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn level_of_skip_edge() {
        // 0 -> 1 -> 2 and 0 -> 2: node 2 should be at level 2
        let d = Dag::new(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(levels(&d), vec![0, 1, 2]);
    }

    #[test]
    fn empty_dag_single_group_per_node() {
        let d = Dag::empty(3);
        assert_eq!(level_groups(&d), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn antichain_property_always_holds() {
        for d in [
            Dag::chain(6),
            Dag::new(5, &[(0, 3), (1, 3), (3, 4), (2, 4)]).unwrap(),
            Dag::empty(4),
        ] {
            assert!(levels_are_antichains(&d));
        }
    }

    #[test]
    fn zero_node_dag() {
        let d = Dag::empty(0);
        assert!(levels(&d).is_empty());
        assert!(level_groups(&d).is_empty());
    }
}
