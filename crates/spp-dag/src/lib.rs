//! # spp-dag — precedence DAG substrate
//!
//! Section 2 of the paper packs rectangles subject to a DAG
//! `G = (S, E)`: for each edge `(s, s')`, any valid placement must satisfy
//! `y_s + h_s ≤ y_{s'}` (the predecessor finishes before the successor
//! starts). This crate provides:
//!
//! * [`Dag`] — a validated adjacency-list DAG over item ids,
//! * [`topo`] — topological orders and cycle detection,
//! * [`critical`] — the paper's `F(s)` function (height of the top edge of
//!   `s` in an infinitely wide strip; recursively
//!   `F(s) = h_s + max_{s' ∈ IN(s)} F(s')`) and tight-path extraction,
//! * [`levels`] — longest-path layer decomposition (used by baselines),
//! * [`reach`] — reachability queries (used by the exact solvers and the
//!   skip-shelf analysis of Lemma 2.5),
//! * [`PrecInstance`] — an [`spp_core::Instance`] paired with a `Dag`,
//!   with combined validation,
//! * [`gen`] — structural DAG generators (chains, layered, fork–join,
//!   series-parallel, random) used by the workload crate.

pub mod critical;
pub mod gen;
pub mod graph;
pub mod levels;
pub mod prec_instance;
pub mod reach;
pub mod topo;

pub use critical::{critical_path_lb, critical_path_values, tight_path};
pub use graph::{Dag, DagError};
pub use prec_instance::PrecInstance;
