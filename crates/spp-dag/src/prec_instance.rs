//! Instances with precedence constraints.

use crate::critical::critical_path_lb;
use crate::graph::Dag;
use spp_core::error::ValidationError;
use spp_core::{Instance, Placement};

/// A precedence-constrained strip packing instance: rectangles plus a DAG
/// over their ids (§2 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct PrecInstance {
    pub inst: Instance,
    pub dag: Dag,
}

impl PrecInstance {
    /// Pair an instance with a DAG; panics if sizes disagree (programmer
    /// error, not data error).
    pub fn new(inst: Instance, dag: Dag) -> Self {
        assert_eq!(
            inst.len(),
            dag.len(),
            "instance has {} items but DAG has {} nodes",
            inst.len(),
            dag.len()
        );
        PrecInstance { inst, dag }
    }

    /// An unconstrained instance (empty DAG).
    pub fn unconstrained(inst: Instance) -> Self {
        let n = inst.len();
        PrecInstance {
            inst,
            dag: Dag::empty(n),
        }
    }

    /// Number of rectangles.
    pub fn len(&self) -> usize {
        self.inst.len()
    }

    /// True iff there are no rectangles.
    pub fn is_empty(&self) -> bool {
        self.inst.is_empty()
    }

    /// `AREA(S)` lower bound.
    pub fn area_lb(&self) -> f64 {
        self.inst.total_area()
    }

    /// `F(S)` critical-path lower bound.
    pub fn critical_lb(&self) -> f64 {
        critical_path_lb(&self.dag, &self.inst)
    }

    /// `max(AREA(S), F(S))` — the combined lower bound on `OPT(S, E)` used
    /// throughout §2 (note `F(S) ≥ h_max` by definition).
    pub fn lower_bound(&self) -> f64 {
        self.area_lb().max(self.critical_lb())
    }

    /// Validate a placement: geometry (strip bounds, overlap, releases)
    /// plus every precedence edge `y_pred + h_pred ≤ y_succ`.
    pub fn validate(&self, pl: &Placement) -> Result<(), ValidationError> {
        spp_core::validate::validate(&self.inst, pl)?;
        for (u, v) in self.dag.edges() {
            let top_u = pl.pos(u).y + self.inst.item(u).h;
            let bot_v = pl.pos(v).y;
            if !spp_core::eps::approx_le(top_u, bot_v) {
                return Err(ValidationError::PrecedenceViolated {
                    pred: u,
                    succ: v,
                    pred_top: top_u,
                    succ_bottom: bot_v,
                });
            }
        }
        Ok(())
    }

    /// Panic with a descriptive message unless `pl` is valid.
    pub fn assert_valid(&self, pl: &Placement) {
        if let Err(e) = self.validate(pl) {
            panic!("invalid precedence placement: {e}");
        }
    }

    /// Restrict to a subset of ids (re-indexed); returns the sub-problem
    /// and the `new -> old` id map. The induced DAG drops edges leaving
    /// the subset, exactly as Algorithm 1 requires.
    pub fn restrict(&self, ids: &[usize]) -> (PrecInstance, Vec<usize>) {
        let (inst, back) = self.inst.restrict(ids);
        let dag = self.dag.induced(ids);
        (PrecInstance::new(inst, dag), back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_core::assert_close;

    fn two_chain() -> PrecInstance {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 2.0)]).unwrap();
        PrecInstance::new(inst, Dag::chain(2))
    }

    #[test]
    fn validate_accepts_stacked_order() {
        let p = two_chain();
        let pl = Placement::from_xy(&[(0.0, 0.0), (0.0, 1.0)]);
        assert!(p.validate(&pl).is_ok());
    }

    #[test]
    fn validate_rejects_side_by_side_dependents() {
        let p = two_chain();
        // Geometrically fine, but 1 must start after 0 finishes.
        let pl = Placement::from_xy(&[(0.0, 0.0), (0.5, 0.0)]);
        assert!(matches!(
            p.validate(&pl),
            Err(ValidationError::PrecedenceViolated {
                pred: 0,
                succ: 1,
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_partial_overlap_in_time() {
        let p = two_chain();
        let pl = Placement::from_xy(&[(0.0, 0.0), (0.5, 0.5)]);
        assert!(p.validate(&pl).is_err());
    }

    #[test]
    fn geometry_checked_before_precedence() {
        let p = two_chain();
        let pl = Placement::from_xy(&[(0.9, 0.0), (0.0, 1.0)]); // 0 out of strip
        assert!(matches!(
            p.validate(&pl),
            Err(ValidationError::OutOfStrip { .. })
        ));
    }

    #[test]
    fn lower_bounds() {
        let p = two_chain();
        assert_close!(p.area_lb(), 1.5);
        assert_close!(p.critical_lb(), 3.0);
        assert_close!(p.lower_bound(), 3.0);
    }

    #[test]
    fn unconstrained_critical_lb_is_hmax() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 2.0)]).unwrap();
        let p = PrecInstance::unconstrained(inst);
        assert_close!(p.critical_lb(), 2.0);
    }

    #[test]
    fn restrict_preserves_constraints_within_subset() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 2.0), (0.5, 3.0)]).unwrap();
        let p = PrecInstance::new(inst, Dag::chain(3));
        let (sub, back) = p.restrict(&[1, 2]);
        assert_eq!(back, vec![1, 2]);
        assert_eq!(sub.dag.edge_count(), 1);
        assert_close!(sub.critical_lb(), 5.0);
    }

    #[test]
    #[should_panic(expected = "instance has")]
    fn size_mismatch_panics() {
        let inst = Instance::from_dims(&[(0.5, 1.0)]).unwrap();
        PrecInstance::new(inst, Dag::empty(2));
    }
}
