//! Reachability queries.

use crate::graph::Dag;

/// All nodes reachable from `v` by directed paths (excluding `v` itself).
pub fn descendants(dag: &Dag, v: usize) -> Vec<usize> {
    let mut seen = vec![false; dag.len()];
    let mut stack = vec![v];
    let mut out = Vec::new();
    while let Some(u) = stack.pop() {
        for &w in dag.succs(u) {
            if !seen[w] {
                seen[w] = true;
                out.push(w);
                stack.push(w);
            }
        }
    }
    out.sort_unstable();
    out
}

/// All nodes that reach `v` (excluding `v` itself).
pub fn ancestors(dag: &Dag, v: usize) -> Vec<usize> {
    let mut seen = vec![false; dag.len()];
    let mut stack = vec![v];
    let mut out = Vec::new();
    while let Some(u) = stack.pop() {
        for &w in dag.preds(u) {
            if !seen[w] {
                seen[w] = true;
                out.push(w);
                stack.push(w);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Is there a directed path from `u` to `v`? (`u == v` counts as true.)
pub fn reaches(dag: &Dag, u: usize, v: usize) -> bool {
    if u == v {
        return true;
    }
    let mut seen = vec![false; dag.len()];
    let mut stack = vec![u];
    while let Some(x) = stack.pop() {
        for &w in dag.succs(x) {
            if w == v {
                return true;
            }
            if !seen[w] {
                seen[w] = true;
                stack.push(w);
            }
        }
    }
    false
}

/// Are `u` and `v` independent (no path either way)? Two rectangles can be
/// packed side by side iff they are independent — the property behind
/// Lemma 2.1.
pub fn independent(dag: &Dag, u: usize, v: usize) -> bool {
    u != v && !reaches(dag, u, v) && !reaches(dag, v, u)
}

/// Full transitive-closure matrix (bit-packed per row into `Vec<u64>`);
/// `closure[v]` has bit `w` set iff `v` reaches `w` (including `v` itself).
/// O(V·E/64) via reverse topological sweep; intended for the exact solvers
/// on small instances, but correct at any size.
pub fn transitive_closure(dag: &Dag) -> Vec<Vec<u64>> {
    let n = dag.len();
    let words = n.div_ceil(64);
    let mut closure = vec![vec![0u64; words]; n];
    let order = crate::topo::topological_order(dag).expect("Dag invariant: acyclic");
    for &v in order.iter().rev() {
        closure[v][v / 64] |= 1u64 << (v % 64);
        // merge successors' closures
        let succs: Vec<usize> = dag.succs(v).to_vec();
        for w in succs {
            // split borrow: copy w's row
            let row = closure[w].clone();
            for (a, b) in closure[v].iter_mut().zip(row) {
                *a |= b;
            }
        }
    }
    closure
}

/// Query the closure matrix: does `u` reach `v`?
#[inline]
pub fn closure_reaches(closure: &[Vec<u64>], u: usize, v: usize) -> bool {
    closure[u][v / 64] & (1u64 << (v % 64)) != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn descendants_and_ancestors() {
        let d = diamond();
        assert_eq!(descendants(&d, 0), vec![1, 2, 3]);
        assert_eq!(descendants(&d, 1), vec![3]);
        assert_eq!(ancestors(&d, 3), vec![0, 1, 2]);
        assert!(ancestors(&d, 0).is_empty());
    }

    #[test]
    fn reaches_includes_self() {
        let d = diamond();
        assert!(reaches(&d, 0, 0));
        assert!(reaches(&d, 0, 3));
        assert!(!reaches(&d, 3, 0));
        assert!(!reaches(&d, 1, 2));
    }

    #[test]
    fn independence_is_symmetric_antireflexive() {
        let d = diamond();
        assert!(independent(&d, 1, 2));
        assert!(independent(&d, 2, 1));
        assert!(!independent(&d, 0, 3));
        assert!(!independent(&d, 1, 1));
    }

    #[test]
    fn closure_matches_reaches() {
        let d = Dag::new(7, &[(0, 2), (1, 2), (2, 3), (3, 4), (1, 5), (5, 6), (2, 6)]).unwrap();
        let c = transitive_closure(&d);
        for u in 0..7 {
            for v in 0..7 {
                assert_eq!(
                    closure_reaches(&c, u, v),
                    reaches(&d, u, v),
                    "mismatch at ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn closure_on_wide_graph_crosses_word_boundary() {
        // 130 nodes: chain, to exercise >2 u64 words per row.
        let d = Dag::chain(130);
        let c = transitive_closure(&d);
        assert!(closure_reaches(&c, 0, 129));
        assert!(closure_reaches(&c, 64, 65));
        assert!(!closure_reaches(&c, 129, 0));
    }
}
