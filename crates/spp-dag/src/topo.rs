//! Topological orders.

use crate::graph::Dag;

/// Kahn's algorithm. Returns a topological order of all nodes, or `None`
/// if the edge relation is cyclic (used during [`Dag`] construction, where
/// the adjacency lists exist before acyclicity is certified).
pub fn topological_order(dag: &Dag) -> Option<Vec<usize>> {
    let n = dag.len();
    let mut indeg: Vec<usize> = (0..n).map(|v| dag.in_degree(v)).collect();
    // Process smallest-index-first for determinism.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| indeg[v] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(v)) = ready.pop() {
        order.push(v);
        for &w in dag.succs(v) {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                ready.push(std::cmp::Reverse(w));
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// Verify that `order` is a permutation of `0..n` consistent with all
/// edges (every predecessor appears before its successor).
pub fn is_topological(dag: &Dag, order: &[usize]) -> bool {
    let n = dag.len();
    if order.len() != n {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        if v >= n || pos[v] != usize::MAX {
            return false;
        }
        pos[v] = i;
    }
    dag.edges().all(|(u, v)| pos[u] < pos[v])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_order_is_identity() {
        let d = Dag::chain(5);
        let order = topological_order(&d).unwrap();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(is_topological(&d, &order));
    }

    #[test]
    fn diamond_orders_are_valid() {
        let d = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let order = topological_order(&d).unwrap();
        assert!(is_topological(&d, &order));
        assert_eq!(order[0], 0);
        assert_eq!(order[3], 3);
    }

    #[test]
    fn reversed_edge_order_still_topological() {
        // edges pointing "backwards" in index space
        let d = Dag::new(3, &[(2, 1), (1, 0)]).unwrap();
        let order = topological_order(&d).unwrap();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn is_topological_rejects_bad_orders() {
        let d = Dag::chain(3);
        assert!(!is_topological(&d, &[1, 0, 2]));
        assert!(!is_topological(&d, &[0, 1]));
        assert!(!is_topological(&d, &[0, 0, 1]));
        assert!(!is_topological(&d, &[0, 1, 7]));
    }

    #[test]
    fn deterministic_smallest_first() {
        let d = Dag::empty(4);
        assert_eq!(topological_order(&d).unwrap(), vec![0, 1, 2, 3]);
    }
}
