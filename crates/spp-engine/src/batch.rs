//! The one cell-execution pipeline behind batch, shard, and resume.
//!
//! A **cell** is an `(instance, solver, config)` triple; everything the
//! engine runs at scale — `run_batch` over in-memory jobs, `run_shard`
//! over instance files, warm resumes of either — is a list of cells fed
//! through [`execute_cells`]: look the cell up in the
//! [`SolveCache`](crate::cache::SolveCache) (if one is attached), invoke
//! the solver only on a miss, write the portable outcome back, and
//! return deterministically ordered results. There is no second
//! execution path: attaching a cache dir *is* resume, and a warm rerun
//! is bounded by I/O, not solver time.
//!
//! Cells run in parallel over `spp_par::par_map` with deterministic
//! result ordering (job-major, then solver input order) and aggregate
//! per-solver statistics.

use std::time::Duration;

use spp_core::InstanceDigest;

use crate::cache::{CacheError, CacheKey, CachedCell, SolveCache};
use crate::report::SolveReport;
use crate::request::SolveRequest;
use crate::solver::{solve, EngineError, Solver};

/// Outcome class of one cell — the portable classification shared by
/// batch results, shard reports, and cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// A report with passing (or skipped) validation.
    Solved,
    /// The engine refused the request (capability/model mismatch).
    Unsupported,
    /// The placement failed validation — a solver bug.
    Invalid,
}

impl CellStatus {
    /// Stable on-disk token (shard reports, cache entries).
    pub fn as_str(&self) -> &'static str {
        match self {
            CellStatus::Solved => "solved",
            CellStatus::Unsupported => "unsupported",
            CellStatus::Invalid => "invalid",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "solved" => Some(CellStatus::Solved),
            "unsupported" => Some(CellStatus::Unsupported),
            "invalid" => Some(CellStatus::Invalid),
            _ => None,
        }
    }
}

/// One instance to be solved (by every solver passed to the executor).
pub struct BatchJob {
    /// Caller-chosen label (e.g. `"layered/seed=7"`), echoed in results.
    pub label: String,
    pub request: SolveRequest,
}

impl BatchJob {
    pub fn new(label: impl Into<String>, request: SolveRequest) -> Self {
        BatchJob {
            label: label.into(),
            request,
        }
    }
}

/// Outcome of one executed cell.
///
/// The portable fields (`status`, `makespan`, `combined_lb`) are always
/// present and deterministic — byte-stable across cold and warm runs.
/// The full [`SolveReport`] (placement, timings) exists only when the
/// solver actually ran: a cache hit has `outcome == None`, which is
/// precisely the engine's proof that no solver was invoked.
pub struct CellOutcome {
    /// Index into the jobs slice.
    pub job: usize,
    /// The job's label.
    pub label: String,
    /// The solver's name.
    pub solver: String,
    pub status: CellStatus,
    /// Height of the packing (0 for unsupported cells).
    pub makespan: f64,
    /// Combined lower bound of the request (0 for unsupported cells).
    pub combined_lb: f64,
    /// True iff the cell was served from the cache.
    pub from_cache: bool,
    /// Seed makespan recorded when the anytime loop strictly improved
    /// this cell (fresh solve or cached entry alike); `None` otherwise.
    pub improved_from: Option<f64>,
    /// Canonical digest of the job's instance — present iff a cache was
    /// attached (the cache-less path never computes content addresses).
    /// Lets consumers (e.g. the `spp serve` solve endpoint) reuse the
    /// digest instead of re-serializing the instance to recompute it.
    pub digest: Option<InstanceDigest>,
    /// The fresh solve's full outcome; `None` iff `from_cache`.
    pub outcome: Option<Result<SolveReport, EngineError>>,
}

impl CellOutcome {
    /// Wall time the solver spent on this cell (zero for cache hits and
    /// refusals).
    pub fn solve_time(&self) -> Duration {
        match &self.outcome {
            Some(Ok(report)) => report.total_time(),
            _ => Duration::ZERO,
        }
    }
}

/// Classify a solve outcome into the portable cell fields
/// `(status, makespan, combined lower bound)`.
///
/// This is the **one** definition of the Solved / Invalid / Unsupported
/// rule: the executor uses it to produce cells and cache entries, the
/// aggregates use it to count, and `spp cache verify` uses it to
/// re-classify fresh solves — so the classification can never drift
/// between what the cache stores and what a verifier recomputes.
pub fn classify_outcome(outcome: &Result<SolveReport, EngineError>) -> (CellStatus, f64, f64) {
    match outcome {
        Ok(report) => {
            let status =
                if report.validation.passed() || report.validation == crate::Validation::Skipped {
                    CellStatus::Solved
                } else {
                    CellStatus::Invalid
                };
            (status, report.makespan, report.bounds.combined)
        }
        Err(_) => (CellStatus::Unsupported, 0.0, 0.0),
    }
}

/// Execute every `(job, solver)` cell, in parallel, consulting `cache`
/// before each solve and writing portable outcomes back on miss.
///
/// The result order is deterministic — job-major, then solver in input
/// order — regardless of scheduling, because `par_map` scatters results
/// back into input order. Nested parallelism (e.g. `DC`'s internal
/// `spp_par::join`) is safe: the fork budget in `spp-par` degrades
/// gracefully to sequential execution.
///
/// Cache semantics:
/// * a hit yields the stored portable fields and **no solver call** —
///   `outcome` is `None`;
/// * a miss solves, then stores the cell unless its placement failed
///   validation ([`CellStatus::Invalid`] marks a solver bug; caching it
///   would keep serving the bug after a fix);
/// * a failed cache *write* aborts the run (the caller asked for
///   durability it is not getting); a damaged cache *entry* is silently
///   a miss — recomputed and overwritten, never served.
pub fn execute_cells(
    jobs: &[BatchJob],
    solvers: &[Box<dyn Solver>],
    cache: Option<&dyn SolveCache>,
) -> Result<Vec<CellOutcome>, CacheError> {
    // Canonical digests, one per job (not per cell), computed only when a
    // cache is attached — the cache-less path never pays for canonical
    // serialization it would not use.
    let digests: Option<Vec<InstanceDigest>> =
        cache.map(|_| spp_par::par_map(jobs, |job| spp_gen::fileio::digest(&job.request.prec)));
    let cells: Vec<(usize, usize)> = (0..jobs.len())
        .flat_map(|j| (0..solvers.len()).map(move |s| (j, s)))
        .collect();
    let outcomes: Vec<Result<CellOutcome, CacheError>> = spp_par::par_map(&cells, |&(j, s)| {
        let job = &jobs[j];
        let solver = &solvers[s];
        let key = digests
            .as_ref()
            .map(|d| CacheKey::new(d[j], solver.name(), &job.request.config));
        if let (Some(cache), Some(key)) = (cache, &key) {
            if let Some(cell) = cache.get(key) {
                return Ok(CellOutcome {
                    job: j,
                    label: job.label.clone(),
                    solver: solver.name().to_string(),
                    status: cell.status,
                    makespan: cell.makespan,
                    combined_lb: cell.combined_lb,
                    from_cache: true,
                    improved_from: cell.improved_from,
                    digest: Some(key.digest),
                    outcome: None,
                });
            }
        }
        let outcome = solve(solver.as_ref(), &job.request);
        let (status, makespan, combined_lb) = classify_outcome(&outcome);
        let improved_from = match &outcome {
            Ok(report) if report.improved() => Some(report.seed_makespan),
            _ => None,
        };
        if let (Some(cache), Some(key)) = (cache, &key) {
            if status != CellStatus::Invalid {
                // Best-so-far publish: a concurrent (or previous) writer
                // holding a better makespan for this key is never
                // clobbered by a worse fresh result; the reverse always
                // overwrites.
                cache.put_best(
                    key,
                    &CachedCell {
                        status,
                        makespan,
                        combined_lb,
                        improved_from,
                    },
                )?;
            }
        }
        Ok(CellOutcome {
            job: j,
            label: job.label.clone(),
            solver: solver.name().to_string(),
            status,
            makespan,
            combined_lb,
            from_cache: false,
            improved_from,
            digest: key.as_ref().map(|k| k.digest),
            outcome: Some(outcome),
        })
    });
    outcomes.into_iter().collect()
}

/// Outcome of one (job, solver) cell in [`run_batch`]'s full-report view.
pub struct BatchResult {
    /// Index into the jobs slice.
    pub job: usize,
    /// The job's label.
    pub label: String,
    /// The solver's name.
    pub solver: String,
    pub outcome: Result<SolveReport, EngineError>,
}

/// Aggregate statistics for one solver across every job it ran.
#[derive(Debug, Clone)]
pub struct SolverStats {
    pub solver: String,
    /// Cells that produced a report with passing (or skipped) validation.
    pub solved: usize,
    /// Cells refused with an engine error (capability or model mismatch).
    pub unsupported: usize,
    /// Cells whose placement failed validation (solver bugs).
    pub invalid: usize,
    /// Mean makespan / combined-lower-bound over solved cells.
    pub mean_ratio: f64,
    /// Worst ratio over solved cells.
    pub max_ratio: f64,
    /// Sum of makespans over solved cells (comparable across solvers only
    /// when they solved the same cells).
    pub total_makespan: f64,
    /// Sum of per-report phase timings (CPU cost, not wall clock — cells
    /// run in parallel).
    pub total_time: Duration,
}

/// Aggregated view of a batch run: one [`SolverStats`] per solver, in the
/// order the solvers were passed (deterministic).
#[derive(Debug, Clone)]
pub struct BatchSummary {
    pub per_solver: Vec<SolverStats>,
}

impl BatchSummary {
    fn from_results(solvers: &[Box<dyn Solver>], results: &[BatchResult]) -> Self {
        let per_solver = solvers
            .iter()
            .map(|s| {
                let name = s.name();
                let mut stats = SolverStats {
                    solver: name.to_string(),
                    solved: 0,
                    unsupported: 0,
                    invalid: 0,
                    mean_ratio: 0.0,
                    max_ratio: 0.0,
                    total_makespan: 0.0,
                    total_time: Duration::ZERO,
                };
                let mut ratios: Vec<f64> = Vec::new();
                for r in results.iter().filter(|r| r.solver == name) {
                    if let Ok(report) = &r.outcome {
                        stats.total_time += report.total_time();
                    }
                    match classify_outcome(&r.outcome).0 {
                        CellStatus::Solved => {
                            let report = r.outcome.as_ref().expect("solved cells carry a report");
                            stats.solved += 1;
                            stats.total_makespan += report.makespan;
                            let ratio = report.ratio();
                            if ratio.is_finite() {
                                ratios.push(ratio);
                            }
                        }
                        CellStatus::Invalid => stats.invalid += 1,
                        // Any engine refusal counts as unsupported.
                        CellStatus::Unsupported => stats.unsupported += 1,
                    }
                }
                if !ratios.is_empty() {
                    stats.mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
                    stats.max_ratio = ratios.iter().cloned().fold(f64::MIN, f64::max);
                }
                stats
            })
            .collect();
        BatchSummary { per_solver }
    }
}

/// Run every solver on every job, in parallel, and return per-cell
/// results (with full reports) plus per-solver aggregates.
///
/// This is the full-report view of [`execute_cells`] for consumers that
/// need placements and timings; it runs cache-less, so every cell is
/// freshly solved. Throughput-oriented consumers (sharding, the CLI's
/// file mode) call [`execute_cells`] with a cache instead.
pub fn run_batch(
    jobs: &[BatchJob],
    solvers: &[Box<dyn Solver>],
) -> (Vec<BatchResult>, BatchSummary) {
    let results: Vec<BatchResult> = execute_cells(jobs, solvers, None)
        .expect("cache-less execution cannot fail")
        .into_iter()
        .map(|c| BatchResult {
            job: c.job,
            label: c.label,
            solver: c.solver,
            outcome: c.outcome.expect("cache-less cells always solve"),
        })
        .collect();
    let summary = BatchSummary::from_results(solvers, &results);
    (results, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::MemoryCache;
    use crate::registry::Registry;
    use spp_core::Instance;

    fn jobs(n: usize) -> Vec<BatchJob> {
        (0..n)
            .map(|i| {
                let w = 0.2 + 0.6 * (i as f64 / n as f64);
                let inst = Instance::from_dims(&[(w, 1.0), (0.5, 0.5), (0.3, 0.8)]).unwrap();
                BatchJob::new(format!("job{i}"), SolveRequest::unconstrained(inst))
            })
            .collect()
    }

    fn solvers(names: &[&str]) -> Vec<Box<dyn Solver>> {
        let registry = Registry::builtin();
        names.iter().map(|n| registry.get(n).unwrap()).collect()
    }

    #[test]
    fn deterministic_order_and_aggregates() {
        let solvers = solvers(&["nfdh", "ffdh", "skyline"]);
        let js = jobs(20);
        let (results, summary) = run_batch(&js, &solvers);
        assert_eq!(results.len(), 60);
        // Job-major, solver order within each job.
        assert_eq!(results[0].solver, "nfdh");
        assert_eq!(results[1].solver, "ffdh");
        assert_eq!(results[2].solver, "skyline");
        assert_eq!(results[3].job, 1);
        // Two identical runs agree cell-for-cell.
        let (again, _) = run_batch(&js, &solvers);
        for (a, b) in results.iter().zip(&again) {
            let (ra, rb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
            assert_eq!(ra.makespan, rb.makespan);
            assert_eq!(ra.placement, rb.placement);
        }
        // Aggregates: every cell solved, sensible ratios.
        assert_eq!(summary.per_solver.len(), 3);
        for s in &summary.per_solver {
            assert_eq!(s.solved, 20, "{} solved {}", s.solver, s.solved);
            assert_eq!(s.invalid, 0);
            assert!(s.mean_ratio >= 1.0 - 1e-9, "{}", s.solver);
            assert!(s.max_ratio >= s.mean_ratio - 1e-12);
        }
    }

    #[test]
    fn unsupported_cells_are_counted_not_fatal() {
        let registry = Registry::builtin();
        // aptas refuses narrow items (width < 1/K with default K = 8 only
        // when w < 1/8; use 0.05 to trip it).
        let inst = Instance::from_dims(&[(0.05, 0.5), (0.5, 0.5)]).unwrap();
        let js = vec![BatchJob::new("narrow", SolveRequest::unconstrained(inst))];
        let solvers = vec![
            registry.get("aptas").unwrap(),
            registry.get("nfdh").unwrap(),
        ];
        let (results, summary) = run_batch(&js, &solvers);
        assert_eq!(results.len(), 2);
        assert!(results[0].outcome.is_err());
        assert!(results[1].outcome.is_ok());
        assert_eq!(summary.per_solver[0].unsupported, 1);
        assert_eq!(summary.per_solver[1].solved, 1);
    }

    #[test]
    fn warm_cache_run_is_identical_with_zero_solver_invocations() {
        let solvers = solvers(&["nfdh", "ffdh", "greedy"]);
        let js = jobs(8);
        let cache = MemoryCache::new();

        let cold = execute_cells(&js, &solvers, Some(&cache)).unwrap();
        assert!(cold.iter().all(|c| !c.from_cache));
        assert_eq!(cache.stats().writes, 24);

        let warm = execute_cells(&js, &solvers, Some(&cache)).unwrap();
        assert!(warm.iter().all(|c| c.from_cache), "every cell a hit");
        assert!(
            warm.iter().all(|c| c.outcome.is_none()),
            "no solver was invoked on the warm run"
        );
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.job, b.job);
            assert_eq!(a.solver, b.solver);
            assert_eq!(a.status, b.status);
            // Bit-identical, not approximately equal.
            assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
            assert_eq!(a.combined_lb.to_bits(), b.combined_lb.to_bits());
        }
        assert_eq!(cache.stats().hits, 24);
    }

    #[test]
    fn unsupported_cells_are_cached_too() {
        let inst = Instance::from_dims(&[(0.05, 0.5), (0.5, 0.5)]).unwrap();
        let js = vec![BatchJob::new("narrow", SolveRequest::unconstrained(inst))];
        let solvers = solvers(&["aptas"]);
        let cache = MemoryCache::new();
        let cold = execute_cells(&js, &solvers, Some(&cache)).unwrap();
        assert_eq!(cold[0].status, CellStatus::Unsupported);
        let warm = execute_cells(&js, &solvers, Some(&cache)).unwrap();
        assert_eq!(warm[0].status, CellStatus::Unsupported);
        assert!(warm[0].from_cache, "refusals are deterministic: cacheable");
    }

    #[test]
    fn config_changes_miss_the_cache() {
        let solvers = solvers(&["nfdh"]);
        let js = jobs(3);
        let cache = MemoryCache::new();
        execute_cells(&js, &solvers, Some(&cache)).unwrap();

        // Same instances, different epsilon: every cell recomputes.
        let mut other: Vec<BatchJob> = jobs(3);
        for j in &mut other {
            j.request.config.epsilon = 0.25;
        }
        let outcomes = execute_cells(&other, &solvers, Some(&cache)).unwrap();
        assert!(outcomes.iter().all(|c| !c.from_cache));
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn equal_content_shares_cache_cells_across_jobs() {
        // Two jobs with identical instances (different labels) collapse
        // onto one content-addressed entry — the label is not part of the
        // key. (Both cells may still solve when scheduled concurrently,
        // so the assertion is on the entry count, not the hit count.)
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.4, 0.7)]).unwrap();
        let js = vec![
            BatchJob::new("first", SolveRequest::unconstrained(inst.clone())),
            BatchJob::new("second", SolveRequest::unconstrained(inst)),
        ];
        let cache = MemoryCache::new();
        let outcomes = execute_cells(&js, &solvers(&["nfdh"]), Some(&cache)).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 2);
        assert_eq!(cache.len(), 1, "one content-addressed entry");
        assert_eq!(
            outcomes[0].makespan.to_bits(),
            outcomes[1].makespan.to_bits()
        );
    }
}
