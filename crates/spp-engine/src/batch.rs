//! Batched parallel execution: many (instance, solver) jobs over
//! `spp_par::par_map`, with deterministic result ordering and aggregate
//! per-solver statistics.

use std::time::Duration;

use crate::report::SolveReport;
use crate::request::SolveRequest;
use crate::solver::{solve, EngineError, Solver};

/// One instance to be solved (by every solver passed to [`run_batch`]).
pub struct BatchJob {
    /// Caller-chosen label (e.g. `"layered/seed=7"`), echoed in results.
    pub label: String,
    pub request: SolveRequest,
}

impl BatchJob {
    pub fn new(label: impl Into<String>, request: SolveRequest) -> Self {
        BatchJob {
            label: label.into(),
            request,
        }
    }
}

/// Outcome of one (job, solver) cell.
pub struct BatchResult {
    /// Index into the jobs slice.
    pub job: usize,
    /// The job's label.
    pub label: String,
    /// The solver's name.
    pub solver: String,
    pub outcome: Result<SolveReport, EngineError>,
}

/// Aggregate statistics for one solver across every job it ran.
#[derive(Debug, Clone)]
pub struct SolverStats {
    pub solver: String,
    /// Cells that produced a report with passing (or skipped) validation.
    pub solved: usize,
    /// Cells refused with an engine error (capability or model mismatch).
    pub unsupported: usize,
    /// Cells whose placement failed validation (solver bugs).
    pub invalid: usize,
    /// Mean makespan / combined-lower-bound over solved cells.
    pub mean_ratio: f64,
    /// Worst ratio over solved cells.
    pub max_ratio: f64,
    /// Sum of makespans over solved cells (comparable across solvers only
    /// when they solved the same cells).
    pub total_makespan: f64,
    /// Sum of per-report phase timings (CPU cost, not wall clock — cells
    /// run in parallel).
    pub total_time: Duration,
}

/// Aggregated view of a batch run: one [`SolverStats`] per solver, in the
/// order the solvers were passed (deterministic).
#[derive(Debug, Clone)]
pub struct BatchSummary {
    pub per_solver: Vec<SolverStats>,
}

impl BatchSummary {
    fn from_results(solvers: &[Box<dyn Solver>], results: &[BatchResult]) -> Self {
        let per_solver = solvers
            .iter()
            .map(|s| {
                let name = s.name();
                let mut stats = SolverStats {
                    solver: name.to_string(),
                    solved: 0,
                    unsupported: 0,
                    invalid: 0,
                    mean_ratio: 0.0,
                    max_ratio: 0.0,
                    total_makespan: 0.0,
                    total_time: Duration::ZERO,
                };
                let mut ratios: Vec<f64> = Vec::new();
                for r in results.iter().filter(|r| r.solver == name) {
                    match &r.outcome {
                        Ok(report) => {
                            stats.total_time += report.total_time();
                            if report.validation.passed()
                                || report.validation == crate::Validation::Skipped
                            {
                                stats.solved += 1;
                                stats.total_makespan += report.makespan;
                                let ratio = report.ratio();
                                if ratio.is_finite() {
                                    ratios.push(ratio);
                                }
                            } else {
                                stats.invalid += 1;
                            }
                        }
                        // Any engine refusal counts as unsupported.
                        // (`solve` on an already-constructed solver can only
                        // return `Unsupported` today; a future `check` that
                        // returned `UnknownSolver` would still be a refusal,
                        // not an invalid placement.)
                        Err(_) => stats.unsupported += 1,
                    }
                }
                if !ratios.is_empty() {
                    stats.mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
                    stats.max_ratio = ratios.iter().cloned().fold(f64::MIN, f64::max);
                }
                stats
            })
            .collect();
        BatchSummary { per_solver }
    }
}

/// Run every solver on every job, in parallel, and return per-cell results
/// plus per-solver aggregates.
///
/// The cell order is deterministic — job-major, then solver in input
/// order — regardless of how `spp_par::par_map` schedules the work,
/// because `par_map` scatters results back into input order. Nested
/// parallelism (e.g. `DC`'s internal `spp_par::join`) is safe: the fork
/// budget in `spp-par` degrades gracefully to sequential execution.
pub fn run_batch(
    jobs: &[BatchJob],
    solvers: &[Box<dyn Solver>],
) -> (Vec<BatchResult>, BatchSummary) {
    let cells: Vec<(usize, usize)> = (0..jobs.len())
        .flat_map(|j| (0..solvers.len()).map(move |s| (j, s)))
        .collect();
    let results: Vec<BatchResult> = spp_par::par_map(&cells, |&(j, s)| {
        let job = &jobs[j];
        let solver = &solvers[s];
        BatchResult {
            job: j,
            label: job.label.clone(),
            solver: solver.name().to_string(),
            outcome: solve(solver.as_ref(), &job.request),
        }
    });
    let summary = BatchSummary::from_results(solvers, &results);
    (results, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use spp_core::Instance;

    fn jobs(n: usize) -> Vec<BatchJob> {
        (0..n)
            .map(|i| {
                let w = 0.2 + 0.6 * (i as f64 / n as f64);
                let inst = Instance::from_dims(&[(w, 1.0), (0.5, 0.5), (0.3, 0.8)]).unwrap();
                BatchJob::new(format!("job{i}"), SolveRequest::unconstrained(inst))
            })
            .collect()
    }

    #[test]
    fn deterministic_order_and_aggregates() {
        let registry = Registry::builtin();
        let solvers: Vec<_> = ["nfdh", "ffdh", "skyline"]
            .iter()
            .map(|n| registry.get(n).unwrap())
            .collect();
        let js = jobs(20);
        let (results, summary) = run_batch(&js, &solvers);
        assert_eq!(results.len(), 60);
        // Job-major, solver order within each job.
        assert_eq!(results[0].solver, "nfdh");
        assert_eq!(results[1].solver, "ffdh");
        assert_eq!(results[2].solver, "skyline");
        assert_eq!(results[3].job, 1);
        // Two identical runs agree cell-for-cell.
        let (again, _) = run_batch(&js, &solvers);
        for (a, b) in results.iter().zip(&again) {
            let (ra, rb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
            assert_eq!(ra.makespan, rb.makespan);
            assert_eq!(ra.placement, rb.placement);
        }
        // Aggregates: every cell solved, sensible ratios.
        assert_eq!(summary.per_solver.len(), 3);
        for s in &summary.per_solver {
            assert_eq!(s.solved, 20, "{} solved {}", s.solver, s.solved);
            assert_eq!(s.invalid, 0);
            assert!(s.mean_ratio >= 1.0 - 1e-9, "{}", s.solver);
            assert!(s.max_ratio >= s.mean_ratio - 1e-12);
        }
    }

    #[test]
    fn unsupported_cells_are_counted_not_fatal() {
        let registry = Registry::builtin();
        // aptas refuses narrow items (width < 1/K with default K = 8 only
        // when w < 1/8; use 0.05 to trip it).
        let inst = Instance::from_dims(&[(0.05, 0.5), (0.5, 0.5)]).unwrap();
        let js = vec![BatchJob::new("narrow", SolveRequest::unconstrained(inst))];
        let solvers = vec![
            registry.get("aptas").unwrap(),
            registry.get("nfdh").unwrap(),
        ];
        let (results, summary) = run_batch(&js, &solvers);
        assert_eq!(results.len(), 2);
        assert!(results[0].outcome.is_err());
        assert!(results[1].outcome.is_ok());
        assert_eq!(summary.per_solver[0].unsupported, 1);
        assert_eq!(summary.per_solver[1].solved, 1);
    }
}
