//! Content-addressed solve cache.
//!
//! Every deterministic solver in the registry maps a cell — an
//! `(instance, solver, config)` triple — to exactly one portable outcome
//! (status, makespan, combined lower bound). The cache memoizes that map
//! under a **content-addressed key**:
//!
//! * the instance's canonical [`InstanceDigest`] (FNV-1a over the
//!   `{:.17e}` `spp-instance` JSON form, so identity follows content,
//!   never file paths or formats),
//! * the solver's registry name,
//! * the [`SolveConfig`] signature (every knob that can change output).
//!
//! Two backends implement [`SolveCache`]: [`MemoryCache`] (a mutexed map,
//! for in-process warm reruns and tests) and [`DiskCache`] (one
//! `spp-cache-entry` JSON file per key, shareable between processes and
//! machines the same way shard reports are). Both are consulted by the
//! engine's [`execute_cells`](crate::batch::execute_cells) pipeline:
//! batch, shard, and resume all flow through the same get-before-solve /
//! put-on-miss path, which is what makes a warm rerun's merged output
//! byte-identical to the cold run with **zero** solver invocations.
//!
//! Trust model: cached values are only served when the entry's embedded
//! key (digest, solver, full config signature) matches the request — a
//! truncated, corrupted, or mis-filed entry is *rejected and recomputed*,
//! never served. Cells whose placement failed validation
//! ([`CellStatus::Invalid`]) are never written: an invalid cell is a
//! solver bug, and caching it would keep reporting the bug after the fix
//! ships.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use spp_core::hash::Fnv1a;
use spp_core::json::{self, JsonValue};
use spp_core::InstanceDigest;

use crate::batch::CellStatus;
use crate::request::SolveConfig;

/// Cache-layer failures: always filesystem problems (a *logically* bad
/// entry is a miss, not an error — the pipeline recomputes and overwrites).
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    Io { path: String, err: String },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io { path, err } => write!(f, "cache: {path}: {err}"),
        }
    }
}

impl std::error::Error for CacheError {}

fn io_err(path: &Path, err: impl std::fmt::Display) -> CacheError {
    CacheError::Io {
        path: path.display().to_string(),
        err: err.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Keys and values
// ---------------------------------------------------------------------------

/// The full cache key of one cell. Equality of all three components is
/// required to serve an entry; the on-disk file name additionally encodes
/// the config through its FNV-1a fingerprint (signatures are long), with
/// the full signature embedded in the entry to catch fingerprint
/// collisions and stale files.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical content digest of the instance.
    pub digest: InstanceDigest,
    /// Registry name of the solver.
    pub solver: String,
    /// Full [`SolveConfig::signature`] string.
    pub config_sig: String,
}

impl CacheKey {
    pub fn new(digest: InstanceDigest, solver: &str, config: &SolveConfig) -> Self {
        CacheKey {
            digest,
            solver: solver.to_string(),
            config_sig: config.signature(),
        }
    }

    /// On-disk entry file name:
    /// `<instance hex>-<solver>-<config fingerprint hex>.json`.
    /// Solver names are registry identifiers (`[a-z0-9-]`), so the name
    /// needs no escaping and stays stable across platforms.
    pub fn file_name(&self) -> String {
        format!(
            "{}-{}-{:016x}.json",
            self.digest.hex(),
            self.solver,
            Fnv1a::hash(self.config_sig.as_bytes())
        )
    }
}

/// The portable outcome of one cell — exactly the deterministic fields of
/// a [`CellRow`](crate::sharding::CellRow), minus the per-run identity
/// (job index, label) that content addressing makes irrelevant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedCell {
    pub status: CellStatus,
    pub makespan: f64,
    pub combined_lb: f64,
    /// Seed (pre-improvement) makespan, recorded when the anytime loop
    /// strictly improved the cell — `makespan` is then the *improved*
    /// value. `None` for one-shot cells and entries written before the
    /// field existed (old entries stay parseable).
    pub improved_from: Option<f64>,
}

impl CachedCell {
    /// The best-so-far ordering used by [`SolveCache::put_best`]: a cell
    /// replaces an existing entry only when it is strictly better —
    /// solved beats unsolved, and among solved cells a strictly lower
    /// makespan wins. Ties keep the incumbent, so two runs can never
    /// ping-pong an entry.
    pub fn better_than(&self, incumbent: &CachedCell) -> bool {
        match (self.status, incumbent.status) {
            (CellStatus::Solved, CellStatus::Solved) => self.makespan < incumbent.makespan,
            (CellStatus::Solved, _) => true,
            _ => false,
        }
    }
}

const ENTRY_FORMAT: &str = "spp-cache-entry";
const ENTRY_VERSION: u64 = 1;

/// Serialize one entry as a canonical `spp-cache-entry` document.
pub fn entry_to_json(key: &CacheKey, cell: &CachedCell) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"format\": \"{ENTRY_FORMAT}\",");
    let _ = writeln!(out, "  \"version\": {ENTRY_VERSION},");
    let _ = writeln!(out, "  \"instance\": \"{}\",", key.digest);
    let _ = writeln!(out, "  \"solver\": \"{}\",", json::escape(&key.solver));
    let _ = writeln!(out, "  \"config\": \"{}\",", json::escape(&key.config_sig));
    let _ = writeln!(out, "  \"status\": \"{}\",", cell.status.as_str());
    // Optional field, emitted only for improved cells so pre-anytime
    // entries and one-shot entries share one canonical form.
    if let Some(seed) = cell.improved_from {
        let _ = writeln!(out, "  \"improved_from\": {seed:.17e},");
    }
    let _ = writeln!(out, "  \"makespan\": {:.17e},", cell.makespan);
    let _ = writeln!(out, "  \"lb\": {:.17e}", cell.combined_lb);
    out.push_str("}\n");
    out
}

/// Parse an entry document back into its key and value. Any deviation —
/// syntax, schema, unknown status, wrong format tag — is an `Err` whose
/// message names the problem; callers treat it as "not a cache entry".
pub fn entry_parse(text: &str) -> Result<(CacheKey, CachedCell), String> {
    let doc = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let obj = json::as_obj(&doc, "$").map_err(|e| e.to_string())?;
    let field = |name: &str| json::get_field(obj, &doc, name).map_err(|e| e.to_string());
    let str_field = |name: &str| -> Result<String, String> {
        json::as_str(field(name)?, name)
            .map(str::to_string)
            .map_err(|e| e.to_string())
    };

    if str_field("format")? != ENTRY_FORMAT {
        return Err(format!("format tag is not {ENTRY_FORMAT:?}"));
    }
    if json::as_u64(field("version")?, "version").map_err(|e| e.to_string())? != ENTRY_VERSION {
        return Err("unsupported cache entry version".to_string());
    }
    let digest_str = str_field("instance")?;
    let digest = InstanceDigest::parse(&digest_str)
        .ok_or_else(|| format!("bad instance digest {digest_str:?}"))?;
    let status_str = str_field("status")?;
    let status =
        CellStatus::parse(&status_str).ok_or_else(|| format!("unknown status {status_str:?}"))?;
    let num = |v: &JsonValue, name: &str| -> Result<f64, String> {
        json::as_num(v, name).map_err(|e| e.to_string())
    };
    // `improved_from` arrived with the anytime layer; absence means a
    // one-shot (or pre-anytime) entry, so old documents keep parsing.
    let improved_from = match json::get_field(obj, &doc, "improved_from") {
        Ok(v) => Some(num(v, "improved_from")?),
        Err(_) => None,
    };
    Ok((
        CacheKey {
            digest,
            solver: str_field("solver")?,
            config_sig: str_field("config")?,
        },
        CachedCell {
            status,
            makespan: num(field("makespan")?, "makespan")?,
            combined_lb: num(field("lb")?, "lb")?,
            improved_from,
        },
    ))
}

// ---------------------------------------------------------------------------
// The trait and its stats
// ---------------------------------------------------------------------------

/// Counters accumulated by a cache over its lifetime (snapshot — see
/// [`SolveCache::stats`]). `rejected` counts entries that were *present
/// but refused* (corrupt, truncated, or keyed to different content);
/// every rejection is also a miss, so `hits + misses` always equals the
/// number of `get` calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub writes: u64,
    pub rejected: u64,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} written",
            self.hits, self.misses, self.writes
        )?;
        if self.rejected > 0 {
            write!(f, ", {} rejected", self.rejected)?;
        }
        Ok(())
    }
}

#[derive(Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    rejected: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// A memoization backend for solved cells. Implementations must be
/// thread-safe: the executor calls `get`/`put` from worker threads.
///
/// `get` is infallible by design — anything short of a byte-exact,
/// key-matching entry is a miss (the pipeline recomputes and `put`
/// overwrites). `put` reports real I/O failures: a user who asked for a
/// cache directory should hear that it is unwritable rather than paying
/// full solve cost on every "warm" run.
pub trait SolveCache: Sync {
    /// Look up a cell; `None` is a miss.
    fn get(&self, key: &CacheKey) -> Option<CachedCell>;

    /// Store a cell (overwriting any previous entry for the key).
    fn put(&self, key: &CacheKey, cell: &CachedCell) -> Result<(), CacheError>;

    /// Store a cell under the **best-so-far rule**: an existing entry is
    /// overwritten only when `cell` is strictly better
    /// ([`CachedCell::better_than`]) — a worse result can never clobber
    /// an improved one, whichever machine or budget produced it. The
    /// default forwards to [`put`](Self::put) (correct for backends
    /// without cheap read-back, e.g. remote proxies whose server applies
    /// the rule on its side); local backends override it with a
    /// stats-free peek so the comparison does not distort hit/miss
    /// counters.
    fn put_best(&self, key: &CacheKey, cell: &CachedCell) -> Result<(), CacheError> {
        self.put(key, cell)
    }

    /// Lifetime counters.
    fn stats(&self) -> CacheStats;
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

/// Process-local backend: a mutexed map. The unit of sharing is the
/// process — use it for warm in-process reruns (e.g. parameter sweeps
/// that revisit instances) and tests.
#[derive(Default)]
pub struct MemoryCache {
    map: Mutex<HashMap<CacheKey, CachedCell>>,
    stats: AtomicStats,
}

impl MemoryCache {
    pub fn new() -> Self {
        MemoryCache::default()
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache mutex poisoned").len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SolveCache for MemoryCache {
    fn get(&self, key: &CacheKey) -> Option<CachedCell> {
        let found = self
            .map
            .lock()
            .expect("cache mutex poisoned")
            .get(key)
            .copied();
        match found {
            Some(cell) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(cell)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, key: &CacheKey, cell: &CachedCell) -> Result<(), CacheError> {
        self.map
            .lock()
            .expect("cache mutex poisoned")
            .insert(key.clone(), *cell);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn put_best(&self, key: &CacheKey, cell: &CachedCell) -> Result<(), CacheError> {
        // One lock for compare + insert: concurrent writers serialize on
        // the map, so the best entry wins regardless of arrival order.
        let mut map = self.map.lock().expect("cache mutex poisoned");
        if map.get(key).is_some_and(|old| !cell.better_than(old)) {
            return Ok(());
        }
        map.insert(key.clone(), *cell);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }
}

// ---------------------------------------------------------------------------
// On-disk backend
// ---------------------------------------------------------------------------

/// Durable backend: one `spp-cache-entry` JSON file per key, directly in
/// `dir`. The directory is the unit of sharing — concurrent processes
/// (e.g. the shard processes of one batch) can point at the same
/// directory. Writes publish atomically ([`write_entry_atomic`]: unique
/// temp file, then `rename`), so a reader of a live key only ever sees a
/// complete entry — a crashed or concurrently-scheduled writer can orphan
/// a `*.tmp` file (swept by [`gc_dir`]) but never leave a truncated file
/// at the live name. Entry validation on `get` remains the second line of
/// defense for damage that arrives by other routes (bad copies, disk
/// corruption).
///
/// In read-only mode (`--cache-readonly`) `put` is a no-op, so a
/// production cache can be served to untrusted batch runs without letting
/// them grow or overwrite it.
pub struct DiskCache {
    dir: PathBuf,
    readonly: bool,
    stats: AtomicStats,
}

impl DiskCache {
    /// Open (and create, unless read-only) a cache directory.
    pub fn new(dir: &Path, readonly: bool) -> Result<Self, CacheError> {
        if !readonly {
            std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        }
        Ok(DiskCache {
            dir: dir.to_path_buf(),
            readonly,
            stats: AtomicStats::default(),
        })
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// True iff `put` is a no-op.
    pub fn is_readonly(&self) -> bool {
        self.readonly
    }
}

impl SolveCache for DiskCache {
    fn get(&self, key: &CacheKey) -> Option<CachedCell> {
        let path = self.dir.join(key.file_name());
        let miss = |rejected: bool| {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            if rejected {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            }
            None
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return miss(false),
        };
        match entry_parse(&text) {
            // Serve only when the *embedded* key matches the request —
            // this is what turns corruption, truncation, fingerprint
            // collisions and mis-filed entries into recomputation.
            Ok((entry_key, cell)) if entry_key == *key => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(cell)
            }
            _ => miss(true),
        }
    }

    fn put(&self, key: &CacheKey, cell: &CachedCell) -> Result<(), CacheError> {
        if self.readonly {
            return Ok(());
        }
        write_entry_atomic(&self.dir, &key.file_name(), &entry_to_json(key, cell))?;
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn put_best(&self, key: &CacheKey, cell: &CachedCell) -> Result<(), CacheError> {
        if self.readonly {
            return Ok(());
        }
        // Stats-free peek: a damaged or mis-keyed file never blocks the
        // write (it could not be served anyway), only a genuinely better
        // incumbent does. The compare-then-rename window is racy in
        // principle, but both racers hold *valid* results for the same
        // cell, and the atomic rename keeps whichever landed last intact.
        let incumbent = std::fs::read_to_string(self.dir.join(key.file_name()))
            .ok()
            .and_then(|text| entry_parse(&text).ok())
            .filter(|(entry_key, _)| entry_key == key)
            .map(|(_, old)| old);
        if incumbent.is_some_and(|old| !cell.better_than(&old)) {
            return Ok(());
        }
        self.put(key, cell)
    }

    fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }
}

/// Monotonic discriminator for temp-file names within this process.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// File extension of in-flight temp files (never scanned as entries,
/// swept by [`gc_dir`] when orphaned by a crash).
const TEMP_EXT: &str = "tmp";

/// Publish `text` under `dir/file_name` **atomically**: write a unique
/// temp file in the same directory, then `rename` it into place (atomic
/// on POSIX). Readers of the live name therefore only ever see either the
/// previous complete entry or the new complete entry — never a truncated
/// in-progress write, whatever crashes or concurrent same-key writers do.
/// A crashed writer leaves only an orphaned `*.tmp` file, which
/// [`gc_dir`] sweeps and which [`scan_dir`] never mistakes for an entry.
///
/// Shared by [`DiskCache::put`] and the `spp serve` cache server's PUT
/// handler, so every process that writes a shared cache directory writes
/// it the same safe way.
pub fn write_entry_atomic(dir: &Path, file_name: &str, text: &str) -> Result<(), CacheError> {
    let path = dir.join(file_name);
    // pid + sequence makes the temp name unique across the concurrent
    // writers of one directory, so writers never trample each other's
    // in-flight bytes.
    let tmp = dir.join(format!(
        "{file_name}.{}-{}.{TEMP_EXT}",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, text).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, &path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        io_err(&path, e)
    })
}

// ---------------------------------------------------------------------------
// Directory inspection (spp cache stats / gc / verify)
// ---------------------------------------------------------------------------

/// One file found while scanning a cache directory.
pub struct ScannedEntry {
    pub path: PathBuf,
    /// Size in bytes.
    pub bytes: u64,
    /// Time since the file was last written, when the filesystem reports
    /// one (`None` on filesystems without mtimes — such files are never
    /// age-evicted, only damage-evicted).
    pub age: Option<std::time::Duration>,
    /// The parsed entry, or why the file is not a valid entry. A file
    /// whose embedded key does not reproduce its own file name is an
    /// `Err` too — it can never be served, so it is garbage by definition.
    pub entry: Result<(CacheKey, CachedCell), String>,
}

/// Scan a cache directory, sorted by file name (deterministic output for
/// the CLI and tests). Non-`.json` files are ignored — the directory may
/// hold editor droppings or a README.
pub fn scan_dir(dir: &Path) -> Result<Vec<ScannedEntry>, CacheError> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| io_err(dir, e))?
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| io_err(dir, e))?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let meta = std::fs::metadata(&path).map_err(|e| io_err(&path, e))?;
        let bytes = meta.len();
        let age = meta
            .modified()
            .ok()
            .and_then(|m| std::time::SystemTime::now().duration_since(m).ok());
        let entry = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| entry_parse(&text))
            .and_then(|(key, cell)| {
                let expected = key.file_name();
                let actual = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if actual == expected {
                    Ok((key, cell))
                } else {
                    Err(format!(
                        "entry key maps to file name {expected:?}, found under {actual:?}"
                    ))
                }
            });
        out.push(ScannedEntry {
            path,
            bytes,
            age,
            entry,
        });
    }
    Ok(out)
}

/// Labels of the [`DirStats::ages`] histogram buckets, oldest last.
pub const AGE_BUCKETS: [&str; 4] = ["1h", "1d", "7d", "old"];

/// Bucket index of an entry age: under an hour, under a day, under a
/// week, older (unknown ages count as fresh — they can never expire).
fn age_bucket(age: Option<std::time::Duration>) -> usize {
    const HOUR: u64 = 3600;
    match age.map(|a| a.as_secs()) {
        None => 0,
        Some(s) if s < HOUR => 0,
        Some(s) if s < 24 * HOUR => 1,
        Some(s) if s < 7 * 24 * HOUR => 2,
        Some(_) => 3,
    }
}

/// Aggregate view of a cache directory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DirStats {
    /// Valid entries (would be served on a matching request).
    pub entries: usize,
    /// Files that parse as no valid entry (corrupt/truncated/mis-filed).
    pub corrupt: usize,
    /// Total size of all scanned files.
    pub bytes: u64,
    /// Valid entries per solver, sorted by solver name.
    pub per_solver: Vec<(String, usize)>,
    /// Distinct instance digests among valid entries.
    pub instances: usize,
    /// Distinct config signatures among valid entries.
    pub configs: usize,
    /// Valid entries by age, bucketed as [`AGE_BUCKETS`] (&lt; 1 hour,
    /// &lt; 1 day, &lt; 7 days, older) — the input to choosing a
    /// `gc --max-age` threshold.
    pub ages: [usize; 4],
}

/// Summarize a cache directory (the `spp cache stats` view).
pub fn dir_stats(dir: &Path) -> Result<DirStats, CacheError> {
    let mut stats = DirStats::default();
    let mut per_solver: HashMap<String, usize> = HashMap::new();
    let mut instances = std::collections::HashSet::new();
    let mut configs = std::collections::HashSet::new();
    for scanned in scan_dir(dir)? {
        stats.bytes += scanned.bytes;
        match scanned.entry {
            Ok((key, _)) => {
                stats.entries += 1;
                stats.ages[age_bucket(scanned.age)] += 1;
                *per_solver.entry(key.solver).or_insert(0) += 1;
                instances.insert(key.digest);
                configs.insert(key.config_sig);
            }
            Err(_) => stats.corrupt += 1,
        }
    }
    stats.instances = instances.len();
    stats.configs = configs.len();
    stats.per_solver = per_solver.into_iter().collect();
    stats.per_solver.sort();
    Ok(stats)
}

/// Outcome of [`gc_dir`] / [`gc_dir_aged`].
#[derive(Debug, Clone, PartialEq)]
pub struct GcReport {
    /// Files removed (corrupt, truncated, mis-filed, or orphaned temp
    /// files), sorted within each sweep.
    pub removed: Vec<PathBuf>,
    /// Valid entries evicted by age (subset bookkeeping of `removed`'s
    /// length is deliberate: they are listed in `removed` too).
    pub expired: usize,
    /// Valid entries left in place.
    pub kept: usize,
}

/// How old (by mtime) a `*.tmp` file must be before gc treats it as an
/// orphan rather than a live writer's in-flight publish. A healthy
/// [`write_entry_atomic`] holds its temp file for the duration of one
/// `fs::write` + `fs::rename` — microseconds to low milliseconds — so a
/// minute of grace distinguishes "crashed writer's litter" from "writer
/// mid-publish" with enormous margin, while still letting routine gc
/// reclaim genuine orphans on its next pass.
pub const TMP_GRACE: std::time::Duration = std::time::Duration::from_secs(60);

/// Garbage-collect a cache directory: delete every `.json` file that is
/// not a servable entry, plus every orphaned `*.tmp` file left behind by
/// a writer that crashed between temp-write and rename. Valid entries are
/// never touched — content-addressed keys cannot go *stale*, only
/// damaged. To also bound the directory's size in time, use
/// [`gc_dir_aged`] (the CLI's `spp cache gc --max-age`).
///
/// Safe to run concurrently with live writers: a temp file younger than
/// [`TMP_GRACE`] (or whose mtime is unreadable) is presumed to be an
/// in-flight publish and left alone, so gc cannot yank a writer's file
/// between its `fs::write` and `fs::rename` and fail the put.
pub fn gc_dir(dir: &Path) -> Result<GcReport, CacheError> {
    gc_dir_aged(dir, None)
}

/// [`gc_dir`] plus age-based eviction: a *valid* entry whose file was
/// last written at least `max_age` ago is deleted too. Evicting a live
/// entry is always safe — the cache is a pure memoization, so the cell
/// simply recomputes (and re-publishes) on its next use; the knob trades
/// disk for solve time on caches that accrete one-off workloads.
/// Entries without a readable mtime are treated as fresh.
pub fn gc_dir_aged(
    dir: &Path,
    max_age: Option<std::time::Duration>,
) -> Result<GcReport, CacheError> {
    gc_dir_with_grace(dir, max_age, TMP_GRACE)
}

/// [`gc_dir_aged`] with an explicit temp-file grace period. The public
/// entry points always pass [`TMP_GRACE`]; tests pass `Duration::ZERO`
/// to exercise the orphan sweep without waiting a minute.
pub fn gc_dir_with_grace(
    dir: &Path,
    max_age: Option<std::time::Duration>,
    tmp_grace: std::time::Duration,
) -> Result<GcReport, CacheError> {
    let mut report = GcReport {
        removed: Vec::new(),
        expired: 0,
        kept: 0,
    };
    for scanned in scan_dir(dir)? {
        let expired = scanned.entry.is_ok()
            && match (max_age, scanned.age) {
                (Some(limit), Some(age)) => age >= limit,
                _ => false,
            };
        match (&scanned.entry, expired) {
            (Ok(_), false) => report.kept += 1,
            (Ok(_), true) => {
                std::fs::remove_file(&scanned.path).map_err(|e| io_err(&scanned.path, e))?;
                report.expired += 1;
                report.removed.push(scanned.path);
            }
            (Err(_), _) => {
                std::fs::remove_file(&scanned.path).map_err(|e| io_err(&scanned.path, e))?;
                report.removed.push(scanned.path);
            }
        }
    }
    // Orphaned temp files sort after the corrupt-entry sweep so the
    // report stays deterministic. A temp file younger than `tmp_grace`
    // (or with an unreadable mtime — presume fresh) may belong to a
    // writer that is between `fs::write` and `fs::rename` right now;
    // sweeping it would fail that put, so it is skipped and picked up by
    // a later gc pass if it really was an orphan.
    let now = std::time::SystemTime::now();
    let is_aged_orphan = |p: &PathBuf| {
        std::fs::metadata(p)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| now.duration_since(mtime).ok())
            .is_some_and(|age| age >= tmp_grace)
    };
    let mut orphans: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| io_err(dir, e))?
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| io_err(dir, e))?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == TEMP_EXT))
        .filter(is_aged_orphan)
        .collect();
    orphans.sort();
    for path in orphans {
        std::fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
        report.removed.push(path);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: &str) -> CacheKey {
        CacheKey {
            digest: InstanceDigest::of_canonical_json(tag),
            solver: "nfdh".into(),
            config_sig: SolveConfig::default().signature(),
        }
    }

    fn cell(makespan: f64) -> CachedCell {
        CachedCell {
            status: CellStatus::Solved,
            makespan,
            combined_lb: makespan / 2.0,
            improved_from: None,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spp_engine_cache_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn entry_roundtrips_exactly() {
        let (k, c) = (key("a"), cell(1.25));
        let text = entry_to_json(&k, &c);
        let (k2, c2) = entry_parse(&text).unwrap();
        assert_eq!(k2, k);
        assert_eq!(c2, c);
        // Canonical: serialize ∘ parse ∘ serialize = serialize.
        assert_eq!(entry_to_json(&k2, &c2), text);
    }

    #[test]
    fn improved_entries_roundtrip_and_old_entries_stay_parseable() {
        let k = key("a");
        let improved = CachedCell {
            improved_from: Some(2.5),
            ..cell(1.75)
        };
        let text = entry_to_json(&k, &improved);
        assert!(text.contains("improved_from"));
        let (_, c2) = entry_parse(&text).unwrap();
        assert_eq!(c2, improved);
        assert_eq!(entry_to_json(&k, &c2), text, "canonical form");

        // A document without the field — exactly what every pre-anytime
        // entry on disk looks like — parses to `improved_from: None`.
        let old = entry_to_json(&k, &cell(1.75));
        assert!(!old.contains("improved_from"));
        let (_, c3) = entry_parse(&old).unwrap();
        assert_eq!(c3.improved_from, None);
        assert_eq!(c3.makespan, 1.75);
    }

    #[test]
    fn best_so_far_ordering_and_put_best() {
        let unsupported = CachedCell {
            status: CellStatus::Unsupported,
            ..cell(0.0)
        };
        assert!(cell(1.0).better_than(&cell(2.0)));
        assert!(!cell(2.0).better_than(&cell(1.0)));
        assert!(!cell(1.0).better_than(&cell(1.0)), "ties keep incumbent");
        assert!(cell(9.0).better_than(&unsupported));
        assert!(!unsupported.better_than(&cell(9.0)));

        for (name, cache) in [
            (
                "memory",
                Box::new(MemoryCache::new()) as Box<dyn SolveCache>,
            ),
            (
                "disk",
                Box::new(DiskCache::new(&tmp_dir("put_best"), false).unwrap()),
            ),
        ] {
            cache.put_best(&key("a"), &cell(4.0)).unwrap();
            // Worse result arrives later (slower machine / smaller
            // budget): the improved entry must survive.
            cache.put_best(&key("a"), &cell(5.0)).unwrap();
            assert_eq!(cache.get(&key("a")), Some(cell(4.0)), "{name}");
            // Strictly better overwrites.
            let better = CachedCell {
                improved_from: Some(4.0),
                ..cell(3.0)
            };
            cache.put_best(&key("a"), &better).unwrap();
            assert_eq!(cache.get(&key("a")), Some(better), "{name}");
        }
    }

    #[test]
    fn entry_rejects_malformed_documents() {
        assert!(entry_parse("").is_err());
        assert!(entry_parse("{}").is_err());
        let (k, c) = (key("a"), cell(1.0));
        let text = entry_to_json(&k, &c);
        // Truncation at every prefix is rejected, never misparsed.
        for cut in 0..text.len() - 1 {
            assert!(entry_parse(&text[..cut]).is_err(), "prefix {cut} accepted");
        }
        let wrong_format = text.replace(ENTRY_FORMAT, "spp-instance");
        assert!(entry_parse(&wrong_format).is_err());
    }

    #[test]
    fn memory_cache_hits_after_put() {
        let cache = MemoryCache::new();
        assert!(cache.get(&key("a")).is_none());
        cache.put(&key("a"), &cell(2.0)).unwrap();
        assert_eq!(cache.get(&key("a")), Some(cell(2.0)));
        assert!(cache.get(&key("b")).is_none());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                writes: 1,
                rejected: 0
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_cache_roundtrips_and_validates() {
        let dir = tmp_dir("roundtrip");
        let cache = DiskCache::new(&dir, false).unwrap();
        assert!(cache.get(&key("a")).is_none()); // cold miss
        cache.put(&key("a"), &cell(3.5)).unwrap();
        assert_eq!(cache.get(&key("a")), Some(cell(3.5)));

        // A fresh handle on the same directory serves the entry too.
        let again = DiskCache::new(&dir, false).unwrap();
        assert_eq!(again.get(&key("a")), Some(cell(3.5)));

        // Corrupt the entry: it is rejected (counted), never served.
        let path = dir.join(key("a").file_name());
        std::fs::write(&path, "garbage").unwrap();
        assert!(again.get(&key("a")).is_none());
        assert_eq!(again.stats().rejected, 1);

        // Truncate instead of corrupting: same outcome.
        let full = entry_to_json(&key("a"), &cell(3.5));
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(again.get(&key("a")).is_none());

        // A recompute overwrites and the entry serves again.
        again.put(&key("a"), &cell(3.5)).unwrap();
        assert_eq!(again.get(&key("a")), Some(cell(3.5)));
    }

    #[test]
    fn disk_cache_rejects_entries_keyed_to_other_content() {
        let dir = tmp_dir("wrongkey");
        let cache = DiskCache::new(&dir, false).unwrap();
        // File placed under a's name but holding b's entry (e.g. a bad
        // copy): embedded-key validation refuses it.
        let text = entry_to_json(&key("b"), &cell(1.0));
        std::fs::write(dir.join(key("a").file_name()), text).unwrap();
        assert!(cache.get(&key("a")).is_none());
        assert_eq!(cache.stats().rejected, 1);

        // Same digest + solver, different config: distinct file names, so
        // both live side by side.
        let tighter = SolveConfig {
            epsilon: 0.25,
            ..SolveConfig::default()
        };
        let k_default = key("a");
        let k_tighter = CacheKey::new(k_default.digest, "nfdh", &tighter);
        assert_ne!(k_default.file_name(), k_tighter.file_name());
    }

    #[test]
    fn readonly_cache_never_writes() {
        let dir = tmp_dir("readonly");
        let rw = DiskCache::new(&dir, false).unwrap();
        rw.put(&key("a"), &cell(1.0)).unwrap();

        let ro = DiskCache::new(&dir, true).unwrap();
        assert!(ro.is_readonly());
        assert_eq!(ro.get(&key("a")), Some(cell(1.0)));
        ro.put(&key("b"), &cell(2.0)).unwrap(); // silently dropped
        assert!(rw.get(&key("b")).is_none());
        assert_eq!(ro.stats().writes, 0);

        // A read-only handle on a *missing* directory is all misses, not
        // an error (and must not create the directory).
        let missing = tmp_dir("readonly_missing");
        let ro2 = DiskCache::new(&missing, true).unwrap();
        assert!(ro2.get(&key("a")).is_none());
        assert!(!missing.exists());
    }

    #[test]
    fn scan_stats_and_gc() {
        let dir = tmp_dir("scan");
        let cache = DiskCache::new(&dir, false).unwrap();
        cache.put(&key("a"), &cell(1.0)).unwrap();
        cache.put(&key("b"), &cell(2.0)).unwrap();
        let other = CacheKey {
            solver: "ffdh".into(),
            ..key("a")
        };
        cache.put(&other, &cell(3.0)).unwrap();
        // Two damaged files: garbage and a mis-filed (renamed) entry.
        std::fs::write(dir.join("0000-bad-entry.json"), "garbage").unwrap();
        std::fs::write(
            dir.join(format!(
                "{}-renamed-0000000000000000.json",
                key("a").digest.hex()
            )),
            entry_to_json(&key("a"), &cell(1.0)),
        )
        .unwrap();
        // And one non-entry file the scan must ignore.
        std::fs::write(dir.join("README.txt"), "not an entry").unwrap();

        let stats = dir_stats(&dir).unwrap();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.corrupt, 2);
        assert_eq!(
            stats.per_solver,
            vec![("ffdh".to_string(), 1), ("nfdh".to_string(), 2)]
        );
        assert_eq!(stats.instances, 2);
        assert_eq!(stats.configs, 1);
        assert!(stats.bytes > 0);

        let gc = gc_dir(&dir).unwrap();
        assert_eq!(gc.kept, 3);
        assert_eq!(gc.removed.len(), 2);
        let after = dir_stats(&dir).unwrap();
        assert_eq!(after.entries, 3);
        assert_eq!(after.corrupt, 0);
        // gc is idempotent.
        assert_eq!(gc_dir(&dir).unwrap().removed.len(), 0);
    }

    #[test]
    fn gc_max_age_evicts_old_entries_but_never_damage_blind() {
        let dir = tmp_dir("maxage");
        let cache = DiskCache::new(&dir, false).unwrap();
        cache.put(&key("a"), &cell(1.0)).unwrap();
        cache.put(&key("b"), &cell(2.0)).unwrap();
        std::fs::write(dir.join("0000-bad-entry.json"), "garbage").unwrap();
        std::fs::write(dir.join("whatever.json.123-0.tmp"), "orphan").unwrap();

        // Fresh files survive any realistic threshold; damage is swept
        // regardless, but the just-written tmp is inside its grace
        // period and must be left alone (it may be a live writer's).
        let gc = gc_dir_aged(&dir, Some(std::time::Duration::from_secs(3600))).unwrap();
        assert_eq!(gc.kept, 2);
        assert_eq!(gc.expired, 0);
        assert_eq!(gc.removed.len(), 1, "{:?}", gc.removed);
        assert!(dir.join("whatever.json.123-0.tmp").exists());

        // max-age 0 means "everything has aged out": both live entries
        // are evicted (safe — the cells recompute on next use). Zero tmp
        // grace sweeps the orphan too.
        let gc = gc_dir_with_grace(
            &dir,
            Some(std::time::Duration::ZERO),
            std::time::Duration::ZERO,
        )
        .unwrap();
        assert_eq!(gc.expired, 2);
        assert_eq!(gc.removed.len(), 3);
        assert_eq!(gc.kept, 0);
        assert_eq!(dir_stats(&dir).unwrap().entries, 0);
        assert!(cache.get(&key("a")).is_none(), "evicted entry is a miss");

        // And the eviction is recoverable: a re-put serves again.
        cache.put(&key("a"), &cell(1.0)).unwrap();
        assert_eq!(cache.get(&key("a")), Some(cell(1.0)));
    }

    #[test]
    fn dir_stats_age_histogram_counts_fresh_entries() {
        let dir = tmp_dir("ages");
        let cache = DiskCache::new(&dir, false).unwrap();
        cache.put(&key("a"), &cell(1.0)).unwrap();
        cache.put(&key("b"), &cell(2.0)).unwrap();
        let stats = dir_stats(&dir).unwrap();
        // Just-written entries land in the freshest bucket; the buckets
        // always sum to the entry count.
        assert_eq!(stats.ages[0], 2, "{:?}", stats.ages);
        assert_eq!(stats.ages.iter().sum::<usize>(), stats.entries);
        assert_eq!(AGE_BUCKETS.len(), stats.ages.len());
    }

    #[test]
    fn gc_sweeps_orphaned_temp_files_but_scan_ignores_them() {
        let dir = tmp_dir("tempsweep");
        let cache = DiskCache::new(&dir, false).unwrap();
        cache.put(&key("a"), &cell(1.0)).unwrap();
        // Simulate two writers that crashed between temp-write and rename.
        let orphan_a = dir.join(format!("{}.{}-0.tmp", key("a").file_name(), 99999));
        let orphan_b = dir.join("whatever.json.12345-7.tmp");
        std::fs::write(&orphan_a, "half an ent").unwrap();
        std::fs::write(&orphan_b, "").unwrap();

        // Scanning and stats never mistake a temp file for an entry.
        assert_eq!(scan_dir(&dir).unwrap().len(), 1);
        let stats = dir_stats(&dir).unwrap();
        assert_eq!((stats.entries, stats.corrupt), (1, 0));

        // With zero grace both aged-out orphans are swept.
        let gc = gc_dir_with_grace(&dir, None, std::time::Duration::ZERO).unwrap();
        assert_eq!(gc.kept, 1);
        assert_eq!(gc.removed.len(), 2);
        assert!(!orphan_a.exists() && !orphan_b.exists());
        // The live entry survived and still serves.
        assert_eq!(cache.get(&key("a")), Some(cell(1.0)));
    }

    /// Regression: `gc_dir` used to sweep every `*.tmp` unconditionally,
    /// so a gc pass racing `write_entry_atomic` could delete the
    /// writer's in-flight temp file between its `fs::write` and
    /// `fs::rename`, failing the put. A temp file younger than
    /// [`TMP_GRACE`] must now survive gc (this assertion fails against
    /// the pre-fix sweep), while an aged-out orphan is still removed.
    #[test]
    fn gc_leaves_fresh_tmp_files_for_live_writers() {
        let dir = tmp_dir("tmp_grace");
        let cache = DiskCache::new(&dir, false).unwrap();
        cache.put(&key("a"), &cell(1.0)).unwrap();
        // A writer is "mid-publish": its temp file exists right now.
        let in_flight = dir.join(format!("{}.{}-0.tmp", key("b").file_name(), 4242));
        std::fs::write(&in_flight, "half-written entry").unwrap();

        let gc = gc_dir(&dir).unwrap();
        assert!(
            in_flight.exists(),
            "gc swept a temp file inside its grace period (live-writer race)"
        );
        assert_eq!(gc.kept, 1);
        assert_eq!(gc.removed.len(), 0);

        // The same file past its grace period is a genuine orphan and
        // goes; the writer's rename target was never affected.
        let gc = gc_dir_with_grace(&dir, None, std::time::Duration::ZERO).unwrap();
        assert!(!in_flight.exists());
        assert_eq!(gc.removed.len(), 1);
        assert_eq!(cache.get(&key("a")), Some(cell(1.0)));
    }

    /// Live writers and gc running concurrently: every put must succeed.
    /// Pre-fix, the unconditional tmp sweep would occasionally delete an
    /// in-flight temp file and fail that put with a rename error.
    #[test]
    fn gc_concurrent_with_writers_never_fails_a_put() {
        let dir = tmp_dir("gc_race");
        let cache = DiskCache::new(&dir, false).unwrap();
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for i in 0..200 {
                    cache.put(&key(&format!("k{i}")), &cell(i as f64 + 1.0))?;
                }
                Ok::<(), CacheError>(())
            });
            for _ in 0..50 {
                gc_dir(&dir).unwrap();
            }
            writer
                .join()
                .expect("writer panicked")
                .expect("a put failed while gc was running");
        });
        assert_eq!(dir_stats(&dir).unwrap().entries, 200);
    }

    #[test]
    fn put_leaves_no_temp_files_and_write_entry_atomic_replaces() {
        let dir = tmp_dir("atomic");
        let cache = DiskCache::new(&dir, false).unwrap();
        for i in 0..20 {
            cache.put(&key("a"), &cell(i as f64 + 1.0)).unwrap();
        }
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "put leaked temp files: {leftovers:?}");
        assert_eq!(cache.get(&key("a")), Some(cell(20.0)));

        // Direct use of the helper overwrites the live name atomically.
        let text = entry_to_json(&key("a"), &cell(7.0));
        write_entry_atomic(&dir, &key("a").file_name(), &text).unwrap();
        assert_eq!(cache.get(&key("a")), Some(cell(7.0)));
        // And a missing directory is a real error, not a silent no-op.
        let gone = tmp_dir("atomic_missing");
        assert!(write_entry_atomic(&gone, "x.json", "y").is_err());
    }
}
