//! # spp-engine — the unified solver engine
//!
//! Every algorithm in the workspace — the unconstrained packers of
//! `spp-pack`, the §2 `DC` family and precedence heuristics of
//! `spp-precedence`, and the §3 release-time APTAS, baselines and online
//! policies of `spp-release` — is exposed behind one [`Solver`] trait with
//! a typed [`SolveRequest`] / [`SolveReport`] pair, a named
//! [`Registry`] with per-algorithm [`Capabilities`], and a parallel
//! [`batch`] executor built on `spp_par::par_map`.
//!
//! Consumers (the `spp` CLI, the experiment harness, examples) look
//! algorithms up by name instead of hand-rolling `match` arms, and iterate
//! the registry filtered by capability instead of hard-coding algorithm
//! lists, so a newly registered solver automatically appears in every
//! sweep, bench and CLI listing.
//!
//! ```
//! use spp_core::Instance;
//! use spp_engine::{Registry, SolveRequest};
//!
//! let registry = Registry::builtin();
//! let solver = registry.get("nfdh").unwrap();
//! let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 2.0)]).unwrap();
//! let report = spp_engine::solve(&*solver, &SolveRequest::unconstrained(inst)).unwrap();
//! assert!(report.makespan <= 2.0 * report.bounds.area + 2.0 + 1e-9);
//! assert!(report.validation.passed());
//! ```
//!
//! | module | contents |
//! |---|---|
//! | [`request`] | [`SolveRequest`], [`SolveConfig`] |
//! | [`report`] | [`SolveReport`], [`LowerBounds`], [`Validation`] |
//! | [`solver`] | the [`Solver`] trait, [`Capabilities`], [`EngineError`] |
//! | [`solvers`] | built-in implementations wrapping the algorithm crates |
//! | [`registry`] | name → constructor + capability flags + advertised bounds |
//! | [`batch`] | the one cell-execution pipeline (cache-consulting) + aggregates |
//! | [`cache`] | content-addressed solve cache: key schema, memory + disk backends |
//! | [`sharding`] | instance-file shards: plan, per-shard run, merge |
//! | [`work`] | pull-based work distribution: `WorkSource`, lease queue, pull loop |

pub mod batch;
pub mod cache;
pub mod registry;
pub mod report;
pub mod request;
pub mod sharding;
pub mod solver;
pub mod solvers;
pub mod work;

pub use batch::{
    classify_outcome, execute_cells, run_batch, BatchJob, BatchResult, BatchSummary, CellOutcome,
    CellStatus, SolverStats,
};
pub use cache::{CacheError, CacheKey, CacheStats, CachedCell, DiskCache, MemoryCache, SolveCache};
pub use registry::{AdvertisedBound, Registry, RegistryEntry};
pub use report::{Constraint, LowerBounds, SolveReport, Validation};
pub use request::{SolveConfig, SolveRequest};
pub use sharding::{
    merge_reports, run_shard, run_sharded, CellRow, MergedReport, ShardError, ShardPlan,
    ShardReport, ShardRuntime, SolverSummary,
};
pub use solver::{solve, Capabilities, EngineError, Solver};
pub use work::{
    execute_lease, pull_work, LeaseGrant, LocalPlan, PullStats, WorkError, WorkLease, WorkQueue,
    WorkSource, WorkStatus,
};
