//! The algorithm registry: name → constructor + capability flags.
//!
//! This subsumes the old `spp_pack::packer_by_name` (which covered only
//! the six unconstrained packers) and the CLI's hand-rolled `--algo`
//! match: every algorithm in the workspace is constructible by name, and
//! consumers discover what exists — and what each entry can honor — by
//! iterating [`Registry::entries`] instead of maintaining copy-pasted
//! lists.

use spp_pack::Packer;

use crate::report::LowerBounds;
use crate::request::SolveRequest;
use crate::solver::{Capabilities, EngineError, Solver};
use crate::solvers::{
    AptasSolver, CombinedGreedySolver, DcReleaseSolver, DcSolver, GreedySolver, LayeredSolver,
    OnlineSolver, PackerSolver, ReleaseBaselineSolver, ShelfFSolver,
};

/// A mechanically checkable performance guarantee: an upper bound on the
/// solver's makespan as a function of the request and its lower bounds.
///
/// Entries that advertise a bound are held to it by the cross-solver
/// conformance suite on every workload matching their capability flags —
/// `makespan ≤ eval(request, bounds) + ε` — so a regression in any
/// algorithm crate is caught at the registry boundary, not in a
/// per-algorithm test someone forgot to write.
#[derive(Clone, Copy)]
pub struct AdvertisedBound {
    /// Human-readable formula for listings, e.g. `"2·AREA + h_max"`.
    pub formula: &'static str,
    /// Evaluate the bound for a concrete request.
    pub eval: fn(&SolveRequest, &LowerBounds) -> f64,
}

/// `2·AREA + h_max` — the §2 subroutine-`A` contract (NFDH, WSNF).
fn adv_a_bound(req: &SolveRequest, b: &LowerBounds) -> f64 {
    2.0 * b.area + req.prec.inst.max_height()
}

/// `2·AREA + h_max` — the shelf-area envelope for FFDH/BFDH. The famous
/// CGJT factor 1.7 is relative to *OPT*, which is not computable from
/// [`LowerBounds`]: items of width just over 1/2 have OPT ≈ 2·AREA, so
/// `1.7·AREA + h_max` would be violated by a perfectly correct FFDH.
/// The area-style argument (consecutive decreasing-height shelves pair
/// up to cover more than half their bounding box) gives the same sound
/// `2·AREA + h_max` as NFDH.
fn adv_ffdh(req: &SolveRequest, b: &LowerBounds) -> f64 {
    2.0 * b.area + req.prec.inst.max_height()
}

/// `2·AREA + 1.5·h_max` — proven envelope for this crate's Sleator
/// implementation, tightened from the original `2·AREA + 2·h_max`.
///
/// Sketch, following the implementation's three phases (wide stack,
/// first full-width level, two half-columns):
/// * wide stack: every item has `w > 1/2`, so `h0 ≤ 2·AREA_wide`;
/// * levels: items are placed in globally non-increasing height order,
///   and level `j` (height `l_j`) opens only when its first item does
///   not fit in level `j-1`, so `filled_{j-1} + w_first(j) > 1/2` and
///   every item of level `j-1` has height `≥ l_j`. Charging each level's
///   area once as the "previous level" and each first item once gives
///   `Σ_{j≥2} l_j / 2 ≤ 2·AREA_narrow`, i.e. `S ≤ 4·AREA_narrow`;
/// * balance: a level always opens on the lower column, so the final
///   height is `≤ (T0+T1)/2 + l/2` for some level height `l ≤ h_max`,
///   and `T0+T1 = 2·(h0 + f) + S` with first-level height `f ≤ h_max`.
///
/// Combining: `H ≤ h0 + f + S/2 + l/2 ≤ 2·AREA + 1.5·h_max`.
///
/// The literature's headline bound (`≤ 2.5·OPT`, Sleator 1980) is
/// deliberately **not** advertised: it is relative to OPT, which cannot
/// be evaluated from [`LowerBounds`] — the same reason FFDH advertises
/// an area envelope instead of CGJT's `1.7·OPT`. The conformance suite
/// includes a thin-and-tall adversary (`plain-thin-tall`) that pushes
/// the half-column seams, documenting that the `h_max` term is not
/// slack that could be dropped.
fn adv_sleator(req: &SolveRequest, b: &LowerBounds) -> f64 {
    2.0 * b.area + 1.5 * req.prec.inst.max_height()
}

/// Theorem 2.3: `log₂(n+1)·F + 2·AREA` (the certified `DC` bound).
fn adv_dc(req: &SolveRequest, _b: &LowerBounds) -> f64 {
    spp_precedence::dc_bound(&req.prec)
}

/// Theorem 2.6 decomposition for uniform heights: `2·AREA + F`.
fn adv_shelf_f(_req: &SolveRequest, b: &LowerBounds) -> f64 {
    2.0 * b.area + b.critical_path
}

/// Per-release-batch FFDH envelope with idle gaps, closing the second
/// ROADMAP bound candidate: `batched-ffdh` processes distinct release
/// levels in order, packing each batch `b` (area `AREA_b`, tallest item
/// `h_max,b`) with FFDH into a block starting at `max(top, r_b)`. The
/// block height obeys FFDH's shelf-area envelope `2·AREA_b + h_max,b`
/// (the same decreasing-shelves argument behind the `ffdh` entry's
/// bound), and the fold
/// `top ← max(top, r_b) + 2·AREA_b + h_max,b`
/// dominates the algorithm's real top because each block base is
/// monotone in the block heights below it. There is no *fixed-form*
/// closed formula (the idle gaps depend on the interleaving of releases
/// and block heights), but the fold is exactly evaluable from the
/// request, which is all [`AdvertisedBound`] requires. The batch
/// decomposition here must mirror `spp_release::baselines::batched_ffdh`
/// (same `release_levels`, same ε-tolerant membership test).
fn adv_batched_ffdh(req: &SolveRequest, _b: &LowerBounds) -> f64 {
    let inst = &req.prec.inst;
    let mut top = 0.0f64;
    for &level in &spp_release::rounding::release_levels(inst) {
        let mut area = 0.0f64;
        let mut h_max = 0.0f64;
        for it in inst.items() {
            if (it.release - level).abs() <= spp_core::eps::EPS {
                area += it.w * it.h;
                h_max = h_max.max(it.h);
            }
        }
        if h_max == 0.0 {
            continue;
        }
        top = top.max(level) + 2.0 * area + h_max;
    }
    top
}

/// Theorem 3.5: `(1+ε)·OPT_f + (W+1)(R+1)` — `OPT_f` computed exactly by
/// column generation, so evaluating this bound is itself expensive; the
/// conformance suite keeps APTAS instances small.
fn adv_aptas(req: &SolveRequest, _b: &LowerBounds) -> f64 {
    let cfg = spp_release::AptasConfig {
        epsilon: req.config.epsilon,
        k: req.config.k,
    };
    (1.0 + cfg.epsilon) * spp_release::colgen::opt_f(&req.prec.inst) + cfg.additive_term()
}

/// One registered algorithm.
pub struct RegistryEntry {
    /// Stable lookup/CLI/report name.
    pub name: &'static str,
    /// What the algorithm honors (duplicated from the solver so listings
    /// don't need to construct one).
    pub capabilities: Capabilities,
    /// One-line human description for listings.
    pub summary: &'static str,
    /// The performance guarantee the entry is held to, if it claims one.
    pub advertised: Option<AdvertisedBound>,
    ctor: fn() -> Box<dyn Solver>,
}

impl RegistryEntry {
    pub fn new(
        name: &'static str,
        capabilities: Capabilities,
        summary: &'static str,
        ctor: fn() -> Box<dyn Solver>,
    ) -> Self {
        RegistryEntry {
            name,
            capabilities,
            summary,
            advertised: None,
            ctor,
        }
    }

    /// Attach a mechanically checkable guarantee (builder style).
    pub fn with_advertised(mut self, advertised: AdvertisedBound) -> Self {
        self.advertised = Some(advertised);
        self
    }

    /// Construct the solver.
    pub fn build(&self) -> Box<dyn Solver> {
        (self.ctor)()
    }
}

/// Ordered collection of registered algorithms. Order is deterministic and
/// meaningful: listings, sweeps and batch summaries present entries in
/// registration order.
pub struct Registry {
    entries: Vec<RegistryEntry>,
}

// Every offline entry opts into the anytime improvement wrapper: the
// remove-and-reinsert decode always emits placements feasible under
// precedence *and* release, which satisfies any subset of constraint
// families an entry validates against, and best-so-far acceptance means
// a budget can only lower the makespan (advertised bounds keep holding).
// Online policies are the exception — see `Capabilities::anytime`.
const CAP_NONE: Capabilities = Capabilities {
    precedence: false,
    release: false,
    online: false,
    a_bound: false,
    uniform_height_only: false,
    anytime: true,
};
const CAP_A_BOUND: Capabilities = Capabilities {
    a_bound: true,
    ..CAP_NONE
};
const CAP_PREC: Capabilities = Capabilities {
    precedence: true,
    ..CAP_NONE
};
const CAP_PREC_UNIFORM: Capabilities = Capabilities {
    precedence: true,
    uniform_height_only: true,
    ..CAP_NONE
};
const CAP_PREC_REL: Capabilities = Capabilities {
    precedence: true,
    release: true,
    ..CAP_NONE
};
const CAP_REL: Capabilities = Capabilities {
    release: true,
    ..CAP_NONE
};
const CAP_REL_ONLINE: Capabilities = Capabilities {
    release: true,
    online: true,
    anytime: false,
    ..CAP_NONE
};

impl Registry {
    /// An empty registry (extension point for downstream crates).
    pub fn empty() -> Self {
        Registry {
            entries: Vec::new(),
        }
    }

    /// Every algorithm in the workspace.
    pub fn builtin() -> Self {
        let mut r = Registry::empty();
        // Unconstrained packers (the subroutine-A family of §2).
        r.register(
            RegistryEntry::new(
                "nfdh",
                CAP_A_BOUND,
                "next-fit decreasing height; proven A-bound (2·AREA + h_max)",
                || Box::new(PackerSolver::new(Packer::Nfdh)),
            )
            .with_advertised(AdvertisedBound {
                formula: "2·AREA + h_max",
                eval: adv_a_bound,
            }),
        );
        r.register(
            RegistryEntry::new(
                "ffdh",
                CAP_NONE,
                "first-fit decreasing height (Coffman–Garey–Johnson–Tarjan)",
                || Box::new(PackerSolver::new(Packer::Ffdh)),
            )
            .with_advertised(AdvertisedBound {
                formula: "2·AREA + h_max",
                eval: adv_ffdh,
            }),
        );
        r.register(
            RegistryEntry::new(
                "bfdh",
                CAP_NONE,
                "best-fit decreasing height shelf variant",
                || Box::new(PackerSolver::new(Packer::Bfdh)),
            )
            .with_advertised(AdvertisedBound {
                formula: "2·AREA + h_max",
                eval: adv_ffdh,
            }),
        );
        r.register(
            RegistryEntry::new(
                "sleator",
                CAP_NONE,
                "Sleator's wide-stack split; 2.5·OPT overall",
                || Box::new(PackerSolver::new(Packer::Sleator)),
            )
            .with_advertised(AdvertisedBound {
                formula: "2·AREA + 1.5·h_max",
                eval: adv_sleator,
            }),
        );
        r.register(RegistryEntry::new(
            "skyline",
            CAP_NONE,
            "bottom-left skyline; strong practical baseline, no guarantee",
            || Box::new(PackerSolver::new(Packer::Skyline)),
        ));
        r.register(
            RegistryEntry::new(
                "wsnf",
                CAP_A_BOUND,
                "wide-stack + NFDH; proven A-bound (2·AREA + h_max)",
                || Box::new(PackerSolver::new(Packer::Wsnf)),
            )
            .with_advertised(AdvertisedBound {
                formula: "2·AREA + h_max",
                eval: adv_a_bound,
            }),
        );
        // §2: precedence constraints.
        r.register(
            RegistryEntry::new(
                "dc-nfdh",
                CAP_PREC,
                "Algorithm 1 DC with subroutine A = NFDH (Theorem 2.3)",
                || Box::new(DcSolver::new("dc-nfdh", Packer::Nfdh)),
            )
            .with_advertised(AdvertisedBound {
                formula: "log₂(n+1)·F + 2·AREA",
                eval: adv_dc,
            }),
        );
        r.register(
            RegistryEntry::new("dc-wsnf", CAP_PREC, "DC with subroutine A = WSNF", || {
                Box::new(DcSolver::new("dc-wsnf", Packer::Wsnf))
            })
            .with_advertised(AdvertisedBound {
                formula: "log₂(n+1)·F + 2·AREA",
                eval: adv_dc,
            }),
        );
        r.register(RegistryEntry::new(
            "dc-ffdh",
            CAP_PREC,
            "DC with subroutine A = FFDH (empirical A-bound only)",
            || Box::new(DcSolver::new("dc-ffdh", Packer::Ffdh)),
        ));
        r.register(RegistryEntry::new(
            "dc-bfdh",
            CAP_PREC,
            "DC with subroutine A = BFDH (ablation)",
            || Box::new(DcSolver::new("dc-bfdh", Packer::Bfdh)),
        ));
        r.register(RegistryEntry::new(
            "dc-sleator",
            CAP_PREC,
            "DC with subroutine A = Sleator (ablation)",
            || Box::new(DcSolver::new("dc-sleator", Packer::Sleator)),
        ));
        r.register(RegistryEntry::new(
            "dc-skyline",
            CAP_PREC,
            "DC with subroutine A = skyline (ablation, no guarantee)",
            || Box::new(DcSolver::new("dc-skyline", Packer::Skyline)),
        ));
        r.register(RegistryEntry::new(
            "layered",
            CAP_PREC,
            "antichain level decomposition, each layer packed by NFDH",
            || Box::new(LayeredSolver),
        ));
        r.register(RegistryEntry::new(
            "greedy",
            CAP_PREC,
            "precedence-aware bottom-left skyline",
            || Box::new(GreedySolver),
        ));
        r.register(
            RegistryEntry::new(
                "shelf-f",
                CAP_PREC_UNIFORM,
                "§2.2 shelf algorithm F; 3-approximation for uniform heights",
                || Box::new(ShelfFSolver),
            )
            .with_advertised(AdvertisedBound {
                formula: "2·AREA + F",
                eval: adv_shelf_f,
            }),
        );
        // Combined extension: precedence + release.
        r.register(RegistryEntry::new(
            "dc-release",
            CAP_PREC_REL,
            "DC per release class, classes stacked (combined extension)",
            || Box::new(DcReleaseSolver),
        ));
        r.register(RegistryEntry::new(
            "combined-greedy",
            CAP_PREC_REL,
            "skyline greedy honoring edges and release floors",
            || Box::new(CombinedGreedySolver),
        ));
        // §3: release times.
        r.register(
            RegistryEntry::new(
                "batched-ffdh",
                CAP_REL,
                "FFDH per release batch (offline baseline)",
                || Box::new(ReleaseBaselineSolver::batched_ffdh()),
            )
            .with_advertised(AdvertisedBound {
                formula: "fold max(top,r_b)+2·AREA_b+h_max,b",
                eval: adv_batched_ffdh,
            }),
        );
        r.register(RegistryEntry::new(
            "skyline-release",
            CAP_REL,
            "skyline bottom-left with release floors (offline baseline)",
            || Box::new(ReleaseBaselineSolver::skyline_release()),
        ));
        r.register(RegistryEntry::new(
            "online-skyline",
            CAP_REL_ONLINE,
            "online skyline: place at arrival, no lookahead (§1 FPGA OS)",
            || Box::new(OnlineSolver::skyline()),
        ));
        r.register(RegistryEntry::new(
            "online-shelf",
            CAP_REL_ONLINE,
            "online Csirik–Woeginger shelves with ratio r",
            || Box::new(OnlineSolver::shelf()),
        ));
        r.register(
            RegistryEntry::new(
                "aptas",
                CAP_REL,
                "Algorithm 2 APTAS (Theorem 3.5); needs heights ≤ 1, widths ≥ 1/K",
                || Box::new(AptasSolver),
            )
            .with_advertised(AdvertisedBound {
                formula: "(1+ε)·OPT_f + (W+1)(R+1)",
                eval: adv_aptas,
            }),
        );
        r
    }

    /// Add an entry. Panics on duplicate names — registration happens at
    /// startup, so this is a programmer error.
    pub fn register(&mut self, entry: RegistryEntry) {
        assert!(
            self.entry(entry.name).is_none(),
            "duplicate solver name {:?}",
            entry.name
        );
        self.entries.push(entry);
    }

    /// Entry by name.
    pub fn entry(&self, name: &str) -> Option<&RegistryEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Construct a solver by name.
    pub fn get(&self, name: &str) -> Option<Box<dyn Solver>> {
        self.entry(name).map(RegistryEntry::build)
    }

    /// Construct a solver by name, or a descriptive error listing what the
    /// registry knows (CLI-friendly).
    pub fn get_or_err(&self, name: &str) -> Result<Box<dyn Solver>, EngineError> {
        self.get(name).ok_or_else(|| EngineError::UnknownSolver {
            name: name.to_string(),
            known: self.names().iter().map(|s| s.to_string()).collect(),
        })
    }

    /// All entry names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[RegistryEntry] {
        &self.entries
    }

    /// Entries whose capabilities satisfy `pred`, in registration order.
    pub fn filter(
        &self,
        pred: impl Fn(&Capabilities) -> bool,
    ) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter().filter(move |e| pred(&e.capabilities))
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_algorithm_family() {
        let r = Registry::builtin();
        for name in [
            "nfdh",
            "ffdh",
            "bfdh",
            "sleator",
            "skyline",
            "wsnf",
            "dc-nfdh",
            "dc-wsnf",
            "dc-ffdh",
            "layered",
            "greedy",
            "shelf-f",
            "dc-release",
            "combined-greedy",
            "batched-ffdh",
            "skyline-release",
            "online-skyline",
            "online-shelf",
            "aptas",
        ] {
            assert!(r.entry(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn entry_flags_match_solver_flags() {
        let r = Registry::builtin();
        for e in r.entries() {
            let solver = e.build();
            assert_eq!(solver.name(), e.name, "name mismatch for {}", e.name);
            assert_eq!(
                solver.capabilities(),
                e.capabilities,
                "capability mismatch for {}",
                e.name
            );
        }
    }

    #[test]
    fn lookup_and_error_listing() {
        let r = Registry::builtin();
        assert!(r.get("nfdh").is_some());
        assert!(r.get("nope").is_none());
        match r.get_or_err("nope") {
            Err(EngineError::UnknownSolver { known, .. }) => {
                assert!(known.contains(&"aptas".to_string()));
            }
            Err(other) => panic!("expected UnknownSolver, got {other:?}"),
            Ok(_) => panic!("expected UnknownSolver, got a solver"),
        }
    }

    #[test]
    fn capability_filters() {
        let r = Registry::builtin();
        let prec: Vec<_> = r.filter(|c| c.precedence).map(|e| e.name).collect();
        assert!(prec.contains(&"dc-nfdh") && prec.contains(&"greedy"));
        assert!(!prec.contains(&"nfdh"));
        let a: Vec<_> = r.filter(|c| c.a_bound).map(|e| e.name).collect();
        assert_eq!(a, vec!["nfdh", "wsnf"]);
        let online: Vec<_> = r.filter(|c| c.online).map(|e| e.name).collect();
        assert_eq!(online, vec!["online-skyline", "online-shelf"]);
    }

    #[test]
    fn anytime_covers_exactly_the_offline_entries() {
        let r = Registry::builtin();
        for e in r.entries() {
            assert_eq!(
                e.capabilities.anytime, !e.capabilities.online,
                "{}: anytime must be every offline entry and no online one",
                e.name
            );
        }
        let anytime: Vec<_> = r.filter(|c| c.anytime).map(|e| e.name).collect();
        assert_eq!(anytime.len(), r.entries().len() - 2);
        assert!(anytime.contains(&"greedy") && anytime.contains(&"aptas"));
    }

    #[test]
    fn advertised_bounds_cover_the_guaranteed_entries() {
        let r = Registry::builtin();
        let advertised: Vec<_> = r
            .entries()
            .iter()
            .filter(|e| e.advertised.is_some())
            .map(|e| e.name)
            .collect();
        assert_eq!(
            advertised,
            vec![
                "nfdh",
                "ffdh",
                "bfdh",
                "sleator",
                "wsnf",
                "dc-nfdh",
                "dc-wsnf",
                "shelf-f",
                "batched-ffdh",
                "aptas"
            ]
        );
        // Heuristics without a proven guarantee must not claim one.
        for name in ["skyline", "greedy", "dc-release", "online-skyline"] {
            assert!(r.entry(name).unwrap().advertised.is_none(), "{name}");
        }
        // The tightened Sleator envelope (was 2·AREA + 2·h_max).
        assert_eq!(
            r.entry("sleator").unwrap().advertised.unwrap().formula,
            "2·AREA + 1.5·h_max"
        );
        // Sanity: every advertised bound is at least the combined LB on a
        // tiny request (a bound below the LB would be unsatisfiable).
        let inst = spp_core::Instance::from_dims(&[(0.5, 1.0), (0.5, 0.5)]).unwrap();
        let req = crate::SolveRequest::unconstrained(inst);
        let bounds = crate::solver::lower_bounds(&req.prec);
        for e in r.entries().iter().filter(|e| e.advertised.is_some()) {
            let val = (e.advertised.as_ref().unwrap().eval)(&req, &bounds);
            assert!(val >= bounds.combined - 1e-9, "{}: {val}", e.name);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        let mut r = Registry::builtin();
        r.register(RegistryEntry::new("nfdh", CAP_NONE, "dup", || {
            Box::new(crate::solvers::PackerSolver::new(Packer::Nfdh))
        }));
    }

    #[test]
    fn get_or_err_display_mentions_known_names() {
        let r = Registry::builtin();
        let msg = match r.get_or_err("quantum") {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected an error"),
        };
        assert!(msg.contains("quantum") && msg.contains("nfdh") && msg.contains("aptas"));
    }
}
