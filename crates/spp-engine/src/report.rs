//! Solve reports: placement, makespan, lower bounds, timings, validation.

use std::time::Duration;

use spp_core::Placement;

/// A constraint family a request can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Constraint {
    /// Precedence edges (`y_pred + h_pred ≤ y_succ`).
    Precedence,
    /// Release times (`y_s ≥ r_s`).
    Release,
}

impl std::fmt::Display for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Constraint::Precedence => "precedence",
            Constraint::Release => "release",
        })
    }
}

/// The paper's simple lower bounds, evaluated on the request.
#[derive(Debug, Clone, Copy)]
pub struct LowerBounds {
    /// `AREA(S)` — total item area (strip width is 1).
    pub area: f64,
    /// `F(S)` — critical-path height over the DAG (equals `h_max` when the
    /// DAG is empty).
    pub critical_path: f64,
    /// `max_s (r_s + h_s)` — the release-time bound.
    pub release: f64,
    /// The strongest combination the workspace knows how to certify.
    pub combined: f64,
}

/// What validation concluded about a placement.
#[derive(Debug, Clone, PartialEq)]
pub enum Validation {
    /// Geometry and every constraint family present in the request hold.
    Passed,
    /// Geometry holds and so do the supported constraint families, but the
    /// listed families were present in the request and *ignored* because
    /// the solver does not support them (non-strict mode).
    PassedIgnoring(Vec<Constraint>),
    /// The placement violates geometry or a supported constraint: always a
    /// bug in the solver, never in the instance.
    Failed(String),
    /// Validation was disabled in the config.
    Skipped,
}

impl Validation {
    /// True for [`Validation::Passed`] and [`Validation::PassedIgnoring`].
    pub fn passed(&self) -> bool {
        matches!(self, Validation::Passed | Validation::PassedIgnoring(_))
    }
}

/// Everything a consumer needs to rank, trust, and display one solve.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// `Solver::name()` of the producer.
    pub solver: String,
    /// Lower-left corners, indexed by item id.
    pub placement: Placement,
    /// Height of the packing — the objective of every problem in the paper.
    pub makespan: f64,
    /// Height of the constructive *seed* placement before the anytime
    /// improvement loop ran. Equals `makespan` when no budget was set,
    /// the solver is not `anytime`-capable, or no candidate improved.
    pub seed_makespan: f64,
    /// Rounds the improvement loop attempted across all portfolio
    /// streams (`0` when it did not run).
    pub improve_rounds: u64,
    /// Portfolio streams the improvement loop ran (`0` when it did not
    /// run; `1` is the single-stream search).
    pub improve_streams: u64,
    /// Decodes abandoned against the *shared* envelope (`0` unless
    /// envelope sharing was requested).
    pub improve_prunes: u64,
    /// Lower bounds evaluated on the request.
    pub bounds: LowerBounds,
    /// Per-phase wall-clock timings, in execution order (at minimum
    /// `"solve"` and, unless skipped, `"validate"`; solvers may prepend
    /// finer-grained internal phases). Phases are disjoint — `"solve"`
    /// holds only the remainder not covered by solver-internal phases —
    /// so [`SolveReport::total_time`] is their plain sum.
    pub phases: Vec<(String, Duration)>,
    /// Outcome of post-solve validation.
    pub validation: Validation,
}

impl SolveReport {
    /// Makespan relative to the combined lower bound (∞ when the bound is
    /// zero, i.e. the empty instance).
    pub fn ratio(&self) -> f64 {
        if self.bounds.combined <= 0.0 {
            if self.makespan <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.makespan / self.bounds.combined
        }
    }

    /// True iff the anytime improvement loop strictly beat the seed.
    pub fn improved(&self) -> bool {
        self.makespan < self.seed_makespan
    }

    /// Makespan removed by improvement (≥ 0; 0 when nothing improved).
    pub fn improve_gain(&self) -> f64 {
        (self.seed_makespan - self.makespan).max(0.0)
    }

    /// Sum of all phase timings.
    pub fn total_time(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Wall-clock of one named phase, if recorded.
    pub fn phase(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(makespan: f64, combined: f64) -> SolveReport {
        SolveReport {
            solver: "x".into(),
            placement: Placement::zeroed(0),
            makespan,
            seed_makespan: makespan,
            improve_rounds: 0,
            improve_streams: 0,
            improve_prunes: 0,
            bounds: LowerBounds {
                area: 0.0,
                critical_path: 0.0,
                release: 0.0,
                combined,
            },
            phases: vec![
                ("solve".into(), Duration::from_millis(3)),
                ("validate".into(), Duration::from_millis(1)),
            ],
            validation: Validation::Passed,
        }
    }

    #[test]
    fn ratio_handles_empty_instances() {
        assert_eq!(dummy(0.0, 0.0).ratio(), 1.0);
        assert_eq!(dummy(1.0, 0.0).ratio(), f64::INFINITY);
        assert!((dummy(3.0, 2.0).ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn phase_lookup_and_total() {
        let r = dummy(1.0, 1.0);
        assert_eq!(r.phase("solve"), Some(Duration::from_millis(3)));
        assert_eq!(r.phase("nope"), None);
        assert_eq!(r.total_time(), Duration::from_millis(4));
    }

    #[test]
    fn improvement_accessors() {
        let mut r = dummy(3.0, 2.0);
        assert!(!r.improved());
        assert_eq!(r.improve_gain(), 0.0);
        r.seed_makespan = 4.5;
        r.improve_rounds = 17;
        assert!(r.improved());
        assert!((r.improve_gain() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn validation_predicate() {
        assert!(Validation::Passed.passed());
        assert!(Validation::PassedIgnoring(vec![Constraint::Release]).passed());
        assert!(!Validation::Failed("x".into()).passed());
        assert!(!Validation::Skipped.passed());
    }
}
