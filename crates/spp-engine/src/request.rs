//! Typed solve requests: instance + optional DAG + optional release times
//! + tuning knobs.

use spp_core::Instance;
use spp_dag::PrecInstance;

/// Tuning knobs shared by every solver; each solver reads the fields it
/// cares about and ignores the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveConfig {
    /// APTAS target error `ε > 0` (Theorem 3.5).
    pub epsilon: f64,
    /// Number of FPGA columns `K` (the APTAS needs widths ≥ `1/K`).
    pub k: usize,
    /// Bucketing ratio `r ∈ (0, 1)` of the online shelf policy.
    pub shelf_r: f64,
    /// When true, [`crate::solve`] refuses a request carrying a constraint
    /// family (precedence edges, release times) the solver does not
    /// support. When false (default, matching the historical CLI), such
    /// constraints are ignored and recorded in the report's
    /// [`crate::Validation`].
    pub strict: bool,
    /// Validate the placement after solving (on by default; batch sweeps
    /// over trusted solvers may switch it off for throughput).
    pub validate: bool,
    /// Anytime improvement budget in milliseconds. `0` (the default) is
    /// one-shot constructive solving; a positive budget runs the
    /// remove-and-reinsert loop (`spp_pack::improve`) on any solver whose
    /// capabilities flag `anytime`, keeping the best placement found by
    /// the deadline. The improvement search is a pure function of
    /// `(instance digest, improve_seed)`; the budget only truncates it.
    pub budget_ms: u64,
    /// Seed mixed with the instance digest to address the improvement
    /// loop's removal-subset stream.
    pub improve_seed: u64,
    /// Portfolio width of the anytime layer: number of independent
    /// improvement streams run per budget (stream i is seeded
    /// `base ^ splitmix_mix(i)` and the strictly best stream wins, ties
    /// to the lowest index). Part of the signature — different widths
    /// explore different seed sets and can return different placements.
    /// Must be ≥ 1; `1` replays the single-stream search exactly.
    pub improve_streams: u64,
    /// Share a best-so-far envelope across portfolio streams. Extra
    /// pruning throughput, but results become scheduling-dependent, so
    /// it is off by default. In the signature: it changes outputs.
    pub improve_envelope: bool,
    /// Worker threads for the portfolio (`0` = available parallelism).
    /// Deliberately NOT in the signature: with the envelope off, the
    /// deterministic reduction makes results identical for any worker
    /// count, so caching by it would only fragment the cache.
    pub improve_workers: u64,
}

impl SolveConfig {
    /// Deterministic signature of every knob that can change a solver's
    /// output, with floats in `{:.17e}` so equal signatures mean
    /// bit-equal configs. Shard reports store it (merge refuses a report
    /// written under different knobs) and the solve cache embeds it in
    /// every entry; cache file names carry its FNV-1a hash (see
    /// `CacheKey::file_name`).
    pub fn signature(&self) -> String {
        format!(
            "epsilon={:.17e} k={} shelf_r={:.17e} strict={} validate={} budget_ms={} improve_seed={} improve_streams={} improve_envelope={}",
            self.epsilon,
            self.k,
            self.shelf_r,
            self.strict,
            self.validate,
            self.budget_ms,
            self.improve_seed,
            self.improve_streams,
            self.improve_envelope
        )
    }
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            epsilon: 1.0,
            k: 8,
            shelf_r: 0.622,
            strict: false,
            validate: true,
            budget_ms: 0,
            improve_seed: 0,
            improve_streams: 1,
            improve_envelope: false,
            improve_workers: 0,
        }
    }
}

/// One problem to solve: a [`PrecInstance`] (rectangles + DAG; release
/// times live on the items) plus a [`SolveConfig`].
///
/// All three problem variants of the paper are expressible: an empty DAG
/// and zero releases give plain strip packing, edges give §2, positive
/// releases give §3, and both together give the combined extension.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    pub prec: PrecInstance,
    pub config: SolveConfig,
}

impl SolveRequest {
    /// Request over a precedence-constrained (and/or released) instance.
    pub fn new(prec: PrecInstance) -> Self {
        SolveRequest {
            prec,
            config: SolveConfig::default(),
        }
    }

    /// Request over a plain instance (empty DAG).
    pub fn unconstrained(inst: Instance) -> Self {
        SolveRequest::new(PrecInstance::unconstrained(inst))
    }

    /// Replace the config (builder style).
    pub fn with_config(mut self, config: SolveConfig) -> Self {
        self.config = config;
        self
    }

    /// True iff the request carries at least one precedence edge.
    pub fn has_precedence(&self) -> bool {
        self.prec.dag.edge_count() > 0
    }

    /// True iff the request carries at least one positive release time.
    pub fn has_release(&self) -> bool {
        self.prec.inst.items().iter().any(|it| it.release > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_signature_tracks_every_knob() {
        let base = SolveConfig::default();
        assert_eq!(base.signature(), SolveConfig::default().signature());
        let variants = [
            SolveConfig {
                epsilon: 0.5,
                ..base.clone()
            },
            SolveConfig {
                k: 16,
                ..base.clone()
            },
            SolveConfig {
                shelf_r: 0.5,
                ..base.clone()
            },
            SolveConfig {
                strict: true,
                ..base.clone()
            },
            SolveConfig {
                validate: false,
                ..base.clone()
            },
            SolveConfig {
                budget_ms: 250,
                ..base.clone()
            },
            SolveConfig {
                improve_seed: 1,
                ..base.clone()
            },
            SolveConfig {
                improve_streams: 4,
                ..base.clone()
            },
            SolveConfig {
                improve_envelope: true,
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(v.signature(), base.signature());
        }
    }

    #[test]
    fn improve_workers_is_an_execution_detail_not_identity() {
        // Worker count cannot change results (envelope off), so two
        // configs differing only in workers must share a signature —
        // their cache entries are interchangeable.
        let base = SolveConfig::default();
        let threaded = SolveConfig {
            improve_workers: 8,
            ..base.clone()
        };
        assert_eq!(base.signature(), threaded.signature());
    }

    #[test]
    fn constraint_detection() {
        let plain =
            SolveRequest::unconstrained(Instance::from_dims(&[(0.5, 1.0), (0.5, 2.0)]).unwrap());
        assert!(!plain.has_precedence());
        assert!(!plain.has_release());

        let released =
            SolveRequest::unconstrained(Instance::from_dims_release(&[(0.5, 1.0, 3.0)]).unwrap());
        assert!(released.has_release());

        let dag = spp_dag::Dag::new(2, &[(0, 1)]).unwrap();
        let prec = SolveRequest::new(PrecInstance::new(
            Instance::from_dims(&[(0.5, 1.0), (0.5, 2.0)]).unwrap(),
            dag,
        ));
        assert!(prec.has_precedence());
        assert!(!prec.has_release());
    }
}
