//! Sharded batch execution over instance files.
//!
//! [`execute_cells`](crate::batch::execute_cells) runs one in-process
//! cell list; this module scales the same work across *processes and
//! machines* by making the unit of distribution a **shard of instance
//! files**:
//!
//! 1. a [`ShardPlan`] turns a directory or file list into a sorted,
//!    deterministically split sequence of shards (contiguous ranges, so
//!    shard outputs concatenate back into global order);
//! 2. [`run_shard`] loads one shard's files and feeds every
//!    (instance, solver) cell through the engine's single
//!    cache-consulting pipeline, distilling the outcome into a
//!    [`ShardReport`] of portable [`CellRow`]s — exactly the
//!    deterministic fields (status, makespan, combined LB), no
//!    wall-clock noise;
//! 3. [`merge_reports`] stitches shard reports (possibly produced by
//!    different processes) into a [`MergedReport`] whose cells are in
//!    global order, so the rendered summary is **byte-identical** to a
//!    single-process run over the same inputs;
//! 4. [`run_sharded`] drives all shards concurrently in one process
//!    (capped outer parallelism via `spp_par::par_map_capped` — each
//!    shard fans out again internally) and streams per-shard aggregates
//!    to an observer as they finish.
//!
//! **A `ShardPlan` is one [`WorkSource`](crate::work::WorkSource)
//! construction.** Since PR 5 the execution side of this module is a
//! thin shard-shaped view over the pull-based work layer in
//! [`crate::work`]: [`ShardPlan::work_queue`] partitions the plan's
//! sorted file list into a [`WorkQueue`](crate::work::WorkQueue) whose
//! chunks are exactly the shard ranges, [`run_shard`] executes one such
//! chunk via [`execute_lease`](crate::work::execute_lease), and
//! [`run_sharded`] drives the whole queue with in-process
//! [`pull_work`](crate::work::pull_work) workers — the same loop the
//! distributed `spp work` pullers run against a remote dispatcher.
//!
//! **Resume is the cache.** There is no separate manifest code path:
//! attach a [`DiskCache`](crate::cache::DiskCache) and every already
//! solved `(instance, solver, config)` cell is served from disk, so a
//! killed run redoes only its unfinished *cells* (finer than the old
//! per-shard manifests), and adding/removing/renaming input files —
//! which shifts the contiguous shard split — invalidates nothing: the
//! cache key is the instance's content digest, not its position in the
//! plan. Stale knobs are equally harmless: the key embeds the
//! [`SolveConfig::signature`], so a run under different knobs simply
//! misses.
//!
//! Shard reports serialize as JSON (`spp-shard-report` documents) through
//! the same hand-rolled layer as instance files, with `{:.17e}` floats,
//! so a merge across processes loses no precision.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use spp_core::hash::Fnv1a;
use spp_core::json::{self, JsonValue};

use crate::batch::CellStatus;
use crate::cache::{CacheError, SolveCache};
use crate::request::SolveConfig;
use crate::solver::Solver;
use crate::work::{execute_lease, pull_work, LocalPlan, WorkError, WorkLease, WorkQueue};

/// Failures of the sharded pipeline. Per-cell solver refusals are *not*
/// errors (they are [`CellStatus::Unsupported`] rows); these are the
/// failures that abort a shard: unreadable inputs, malformed reports,
/// inconsistent merges.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// Filesystem failure.
    Io { path: String, err: String },
    /// An instance file failed to parse (message names field and line).
    Load { path: String, err: String },
    /// The plan parameters are unusable (zero shards, bad index).
    BadPlan(String),
    /// A shard report file is malformed or inconsistent with its peers.
    BadReport { context: String, err: String },
}

impl From<CacheError> for ShardError {
    fn from(e: CacheError) -> Self {
        match e {
            CacheError::Io { path, err } => ShardError::Io { path, err },
        }
    }
}

impl From<WorkError> for ShardError {
    fn from(e: WorkError) -> Self {
        match e {
            WorkError::Io { path, err } => ShardError::Io { path, err },
            WorkError::Load { path, err } => ShardError::Load { path, err },
            WorkError::Protocol { context, err } => ShardError::BadReport { context, err },
            WorkError::Aborted => ShardError::BadReport {
                context: "work".into(),
                err: "aborted".into(),
            },
        }
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Io { path, err } => write!(f, "{path}: {err}"),
            ShardError::Load { path, err } => write!(f, "{path}: {err}"),
            ShardError::BadPlan(msg) => write!(f, "bad shard plan: {msg}"),
            ShardError::BadReport { context, err } => write!(f, "{context}: {err}"),
        }
    }
}

impl std::error::Error for ShardError {}

// ---------------------------------------------------------------------------
// Shard planning
// ---------------------------------------------------------------------------

/// A deterministic split of an instance-file list into contiguous shards.
///
/// The file list is sorted by path before splitting, so every process
/// that builds a plan from the same inputs — whatever the directory
/// iteration order of its filesystem — derives the *same* global job
/// numbering. Shard `i` owns the contiguous range
/// `[i·n/shards, (i+1)·n/shards)`.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    paths: Vec<PathBuf>,
    shards: usize,
}

impl ShardPlan {
    /// Plan over an explicit path list (sorted internally; duplicate
    /// paths collapse to one — a file listed twice is one instance, and
    /// double-counting it would silently skew every aggregate).
    pub fn new(mut paths: Vec<PathBuf>, shards: usize) -> Result<Self, ShardError> {
        if shards == 0 {
            return Err(ShardError::BadPlan("shard count must be ≥ 1".into()));
        }
        paths.sort();
        paths.dedup();
        Ok(ShardPlan { paths, shards })
    }

    /// Plan over every `*.json` / `*.spp` file directly inside `dir`.
    pub fn from_dir(dir: &Path, shards: usize) -> Result<Self, ShardError> {
        let entries = std::fs::read_dir(dir).map_err(|e| ShardError::Io {
            path: dir.display().to_string(),
            err: e.to_string(),
        })?;
        let mut paths = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| ShardError::Io {
                path: dir.display().to_string(),
                err: e.to_string(),
            })?;
            let path = entry.path();
            let ext = path.extension().and_then(|e| e.to_str());
            if path.is_file() && matches!(ext, Some("json" | "spp")) {
                paths.push(path);
            }
        }
        if paths.is_empty() {
            return Err(ShardError::BadPlan(format!(
                "no *.json or *.spp instance files in {}",
                dir.display()
            )));
        }
        ShardPlan::new(paths, shards)
    }

    /// Plan over a file list: one path per line, `#` comments and blank
    /// lines ignored, relative paths resolved against the list's parent
    /// directory.
    pub fn from_file_list(list: &Path, shards: usize) -> Result<Self, ShardError> {
        let text = std::fs::read_to_string(list).map_err(|e| ShardError::Io {
            path: list.display().to_string(),
            err: e.to_string(),
        })?;
        let base = list.parent().unwrap_or(Path::new(""));
        let mut paths = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let p = PathBuf::from(line);
            paths.push(if p.is_absolute() { p } else { base.join(p) });
        }
        if paths.is_empty() {
            return Err(ShardError::BadPlan(format!(
                "file list {} names no instances",
                list.display()
            )));
        }
        ShardPlan::new(paths, shards)
    }

    /// Total number of instance files.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True iff the plan holds no files.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// All paths in global (sorted) order.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }

    /// Global index range owned by shard `shard`.
    pub fn shard_range(&self, shard: usize) -> Result<std::ops::Range<usize>, ShardError> {
        if shard >= self.shards {
            return Err(ShardError::BadPlan(format!(
                "shard index {shard} out of range (shards = {})",
                self.shards
            )));
        }
        let n = self.paths.len();
        Ok(shard * n / self.shards..(shard + 1) * n / self.shards)
    }

    /// The paths of one shard, with their global indices.
    pub fn shard_paths(&self, shard: usize) -> Result<&[PathBuf], ShardError> {
        Ok(&self.paths[self.shard_range(shard)?])
    }

    /// The plan as a pull-based [`WorkQueue`]: one chunk per shard range,
    /// in shard order — which is why a merged pull-based run is
    /// byte-identical to the eager split. `timeout` is the lease expiry
    /// for distributed dispatch (`None` in-process: local workers cannot
    /// die without the queue dying too).
    pub fn work_queue(
        &self,
        solvers: Vec<String>,
        config: SolveConfig,
        timeout: Option<Duration>,
    ) -> WorkQueue {
        let ranges = (0..self.shards)
            .map(|s| self.shard_range(s).expect("index in range by construction"))
            .collect();
        WorkQueue::new(self.paths.clone(), solvers, config, ranges, timeout)
    }

    /// FNV-1a fingerprint of the full (sorted) path list. Every shard
    /// report records it, so a merge can prove its reports were cut from
    /// the same batch even when they were produced on different machines.
    ///
    /// The fingerprint covers the paths *as given*: shard processes that
    /// should merge must be launched with the same `--input-dir` /
    /// `--file-list` spelling (the natural way to script a fan-out).
    /// Editing a file's *contents* in place between shard runs is not
    /// detected — the unit of identity is the file list, not the bytes.
    pub fn fingerprint(&self) -> String {
        let mut h = Fnv1a::new();
        for p in &self.paths {
            h.write_str(&p.display().to_string());
            h.write(b"\n");
        }
        spp_core::hash::fnv1a_tag(h.finish())
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// The portable outcome of one cell: only deterministic fields, so shard
/// reports (and anything derived from them) are byte-stable across runs,
/// processes and machines.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRow {
    /// Global job index (position in the plan's sorted path list).
    pub job: usize,
    /// Instance label — the file stem.
    pub label: String,
    /// Solver name.
    pub solver: String,
    pub status: CellStatus,
    /// Height of the packing (0 for unsupported cells).
    pub makespan: f64,
    /// Combined lower bound of the request (0 for unsupported cells).
    pub combined_lb: f64,
}

impl CellRow {
    /// Makespan / combined-LB with the same conventions as
    /// [`SolveReport::ratio`](crate::SolveReport::ratio).
    pub fn ratio(&self) -> f64 {
        if self.combined_lb <= 0.0 {
            if self.makespan <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.makespan / self.combined_lb
        }
    }
}

/// One shard's worth of cells, plus the identity needed to merge and
/// resume safely.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// This shard's index in `0..shards`.
    pub shard: usize,
    /// Total shard count of the plan that produced it.
    pub shards: usize,
    /// Solver names, in execution order (must agree across shards).
    pub solvers: Vec<String>,
    /// The instance-file paths this shard ran, in job order. Resume uses
    /// this to detect a stale manifest after files were added, removed or
    /// renamed (which shifts the plan's contiguous split).
    pub inputs: Vec<String>,
    /// Fingerprint of the *whole plan's* path list (see
    /// [`ShardPlan::fingerprint`]). Merging requires every report to come
    /// from the same plan, so shards of two unrelated batches — which can
    /// agree on shard count, solvers and config — refuse to combine.
    pub plan_fp: String,
    /// Signature of the [`SolveConfig`] the cells were computed with
    /// (see [`SolveConfig::signature`]); merging refuses reports written
    /// under different knobs.
    pub config_sig: String,
    /// Cells in (job-major, solver input order), jobs globally indexed.
    pub cells: Vec<CellRow>,
    /// Execution-side facts about how this shard was produced.
    /// Informational only and never serialized: parsed reports carry
    /// `None`, and two reports with different runtimes but equal cells
    /// merge to byte-identical output.
    pub runtime: Option<ShardRuntime>,
}

/// How a shard's cells were actually obtained (fresh solve vs. cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRuntime {
    /// Summed per-cell solver phase time (CPU cost, not wall clock).
    pub cpu_time: Duration,
    /// Cells served from the attached [`SolveCache`] without a solve.
    pub cache_hits: usize,
}

impl ShardRuntime {
    /// True iff every cell came from the cache — the "resumed" case.
    pub fn fully_cached(&self, cells: usize) -> bool {
        cells > 0 && self.cache_hits == cells
    }
}

/// Canonical single-line JSON object for one cell — the shared row
/// schema of shard reports, merged reports, and `spp-work-complete`
/// documents (one serialization, so the formats cannot drift apart).
pub fn cell_to_json(c: &CellRow) -> String {
    format!(
        "{{\"job\": {}, \"label\": \"{}\", \"solver\": \"{}\", \"status\": \"{}\", \"makespan\": {:.17e}, \"lb\": {:.17e}}}",
        c.job,
        json::escape(&c.label),
        json::escape(&c.solver),
        c.status.as_str(),
        c.makespan,
        c.combined_lb
    )
}

/// Inverse of [`cell_to_json`] for one parsed JSON value; `ctx` names
/// the value in error messages (e.g. `cells[3]`).
pub fn cell_parse(cv: &JsonValue, ctx: &str) -> Result<CellRow, String> {
    let schema = |e: spp_core::json::FileFormatError| e.to_string();
    let path = |name: &str| format!("{ctx}.{name}");
    let cobj = json::as_obj(cv, ctx).map_err(schema)?;
    let cfield = |name: &str| json::get_field(cobj, cv, name).map_err(schema);
    let status_str = json::as_str(cfield("status")?, &path("status")).map_err(schema)?;
    let status = CellStatus::parse(status_str)
        .ok_or_else(|| format!("{ctx}: unknown status {status_str:?}"))?;
    Ok(CellRow {
        job: json::as_u64(cfield("job")?, &path("job")).map_err(schema)? as usize,
        label: json::as_str(cfield("label")?, &path("label"))
            .map_err(schema)?
            .to_string(),
        solver: json::as_str(cfield("solver")?, &path("solver"))
            .map_err(schema)?
            .to_string(),
        status,
        makespan: json::as_num(cfield("makespan")?, &path("makespan")).map_err(schema)?,
        combined_lb: json::as_num(cfield("lb")?, &path("lb")).map_err(schema)?,
    })
}

const REPORT_FORMAT: &str = "spp-shard-report";
const MERGED_FORMAT: &str = "spp-merged-report";
const REPORT_VERSION: u64 = 1;

impl ShardReport {
    /// Serialize as a canonical `spp-shard-report` JSON document.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"format\": \"{REPORT_FORMAT}\",");
        let _ = writeln!(out, "  \"version\": {REPORT_VERSION},");
        let _ = writeln!(out, "  \"shard\": {},", self.shard);
        let _ = writeln!(out, "  \"shards\": {},", self.shards);
        let solvers: Vec<String> = self
            .solvers
            .iter()
            .map(|s| format!("\"{}\"", json::escape(s)))
            .collect();
        let _ = writeln!(out, "  \"solvers\": [{}],", solvers.join(", "));
        let inputs: Vec<String> = self
            .inputs
            .iter()
            .map(|p| format!("\"{}\"", json::escape(p)))
            .collect();
        let _ = writeln!(out, "  \"inputs\": [{}],", inputs.join(", "));
        let _ = writeln!(out, "  \"plan\": \"{}\",", json::escape(&self.plan_fp));
        let _ = writeln!(out, "  \"config\": \"{}\",", json::escape(&self.config_sig));
        out.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let sep = if i + 1 < self.cells.len() { "," } else { "" };
            let _ = write!(out, "\n    {}{sep}", cell_to_json(c));
        }
        out.push_str(if self.cells.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Parse a document produced by [`Self::to_json`]. Schema mapping
    /// reuses the typed accessors of `spp_core::json` (one implementation,
    /// one error style, shared with the instance-file format); unknown
    /// fields are tolerated here for forward compatibility — a report is
    /// machine output, unlike hand-written instance files.
    pub fn parse(text: &str) -> Result<Self, ShardError> {
        let bad = |err: String| ShardError::BadReport {
            context: "shard report".into(),
            err,
        };
        let schema = |e: spp_core::json::FileFormatError| bad(e.to_string());
        let doc = json::parse(text).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        let obj = json::as_obj(&doc, "$").map_err(schema)?;
        let field = |name: &str| json::get_field(obj, &doc, name).map_err(schema);
        let int =
            |v: &JsonValue, name: &str| json::as_u64(v, name).map(|x| x as usize).map_err(schema);
        let strings = |v: &JsonValue, name: &str| -> Result<Vec<String>, ShardError> {
            json::as_arr(v, name)
                .map_err(schema)?
                .iter()
                .enumerate()
                .map(|(i, sv)| {
                    json::as_str(sv, &format!("{name}[{i}]"))
                        .map(str::to_string)
                        .map_err(schema)
                })
                .collect()
        };

        let format = json::as_str(field("format")?, "format").map_err(schema)?;
        if format != REPORT_FORMAT {
            return Err(bad(format!("format tag is not {REPORT_FORMAT:?}")));
        }
        if int(field("version")?, "version")? != REPORT_VERSION as usize {
            return Err(bad("unsupported report version".into()));
        }
        let shard = int(field("shard")?, "shard")?;
        let shards = int(field("shards")?, "shards")?;
        let solvers = strings(field("solvers")?, "solvers")?;
        let inputs = strings(field("inputs")?, "inputs")?;
        let plan_fp = json::as_str(field("plan")?, "plan")
            .map_err(schema)?
            .to_string();
        let config_sig = json::as_str(field("config")?, "config")
            .map_err(schema)?
            .to_string();

        let cells_raw = json::as_arr(field("cells")?, "cells").map_err(schema)?;
        let mut cells = Vec::with_capacity(cells_raw.len());
        for (i, cv) in cells_raw.iter().enumerate() {
            cells.push(cell_parse(cv, &format!("cells[{i}]")).map_err(&bad)?);
        }
        Ok(ShardReport {
            shard,
            shards,
            solvers,
            inputs,
            plan_fp,
            config_sig,
            cells,
            runtime: None,
        })
    }
}

/// Deterministic per-solver aggregates over merged cells. The semantics
/// match [`SolverStats`](crate::SolverStats), minus the wall-clock field
/// (which would break cross-process byte-identity).
#[derive(Debug, Clone, PartialEq)]
pub struct SolverSummary {
    pub solver: String,
    pub solved: usize,
    pub unsupported: usize,
    pub invalid: usize,
    pub mean_ratio: f64,
    pub max_ratio: f64,
    pub total_makespan: f64,
}

/// Shard reports merged back into one globally ordered cell list.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedReport {
    pub solvers: Vec<String>,
    /// Cells sorted by (job, solver input order) — identical to what a
    /// single-process run over the same plan produces.
    pub cells: Vec<CellRow>,
}

impl MergedReport {
    /// Per-solver aggregates, in solver input order.
    pub fn summary(&self) -> Vec<SolverSummary> {
        self.solvers
            .iter()
            .map(|name| {
                let mut s = SolverSummary {
                    solver: name.clone(),
                    solved: 0,
                    unsupported: 0,
                    invalid: 0,
                    mean_ratio: 0.0,
                    max_ratio: 0.0,
                    total_makespan: 0.0,
                };
                let mut ratios = Vec::new();
                for c in self.cells.iter().filter(|c| &c.solver == name) {
                    match c.status {
                        CellStatus::Solved => {
                            s.solved += 1;
                            s.total_makespan += c.makespan;
                            let r = c.ratio();
                            if r.is_finite() {
                                ratios.push(r);
                            }
                        }
                        CellStatus::Unsupported => s.unsupported += 1,
                        CellStatus::Invalid => s.invalid += 1,
                    }
                }
                if !ratios.is_empty() {
                    s.mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
                    s.max_ratio = ratios.iter().cloned().fold(f64::MIN, f64::max);
                }
                s
            })
            .collect()
    }

    /// Number of cells whose placement failed validation.
    pub fn invalid_cells(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.status == CellStatus::Invalid)
            .count()
    }

    /// The canonical human-readable summary table. Both the single-process
    /// and the shard-merge CLI paths print exactly this string, which is
    /// what makes the two byte-comparable.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| {:<16} | {:>6} | {:>11} | {:>7} | {:>10} | {:>9} | {:>13} |",
            "solver", "solved", "unsupported", "invalid", "mean ratio", "max ratio", "sum makespan"
        );
        let _ = writeln!(
            out,
            "|{}|{}|{}|{}|{}|{}|{}|",
            "-".repeat(18),
            "-".repeat(8),
            "-".repeat(13),
            "-".repeat(9),
            "-".repeat(12),
            "-".repeat(11),
            "-".repeat(15)
        );
        for s in self.summary() {
            let _ = writeln!(
                out,
                "| {:<16} | {:>6} | {:>11} | {:>7} | {:>10.3} | {:>9.3} | {:>13.3} |",
                s.solver,
                s.solved,
                s.unsupported,
                s.invalid,
                s.mean_ratio,
                s.max_ratio,
                s.total_makespan
            );
        }
        out
    }

    /// Serialize as a portable `spp-merged-report` JSON document — what
    /// the dispatcher's `GET /work/report` hands to the thin
    /// `spp batch --dispatcher-url` client.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"format\": \"{MERGED_FORMAT}\",");
        let _ = writeln!(out, "  \"version\": {REPORT_VERSION},");
        let solvers: Vec<String> = self
            .solvers
            .iter()
            .map(|s| format!("\"{}\"", json::escape(s)))
            .collect();
        let _ = writeln!(out, "  \"solvers\": [{}],", solvers.join(", "));
        out.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let sep = if i + 1 < self.cells.len() { "," } else { "" };
            let _ = write!(out, "\n    {}{sep}", cell_to_json(c));
        }
        out.push_str(if self.cells.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Parse a document produced by [`Self::to_json`].
    pub fn parse(text: &str) -> Result<Self, ShardError> {
        let bad = |err: String| ShardError::BadReport {
            context: "merged report".into(),
            err,
        };
        let schema = |e: spp_core::json::FileFormatError| bad(e.to_string());
        let doc = json::parse(text).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        let obj = json::as_obj(&doc, "$").map_err(schema)?;
        let field = |name: &str| json::get_field(obj, &doc, name).map_err(schema);
        let format = json::as_str(field("format")?, "format").map_err(schema)?;
        if format != MERGED_FORMAT {
            return Err(bad(format!("format tag is not {MERGED_FORMAT:?}")));
        }
        if json::as_u64(field("version")?, "version").map_err(schema)? != REPORT_VERSION {
            return Err(bad("unsupported report version".into()));
        }
        let solvers = json::as_arr(field("solvers")?, "solvers")
            .map_err(schema)?
            .iter()
            .enumerate()
            .map(|(i, sv)| {
                json::as_str(sv, &format!("solvers[{i}]"))
                    .map(str::to_string)
                    .map_err(schema)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let cells_raw = json::as_arr(field("cells")?, "cells").map_err(schema)?;
        let mut cells = Vec::with_capacity(cells_raw.len());
        for (i, cv) in cells_raw.iter().enumerate() {
            cells.push(cell_parse(cv, &format!("cells[{i}]")).map_err(&bad)?);
        }
        Ok(MergedReport { solvers, cells })
    }

    /// One line per cell (full `{:.17e}` precision) for diff-based
    /// verification of sharded vs. single-process runs.
    pub fn render_cells(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in &self.cells {
            let _ = writeln!(
                out,
                "cell {} {} {} {} {:.17e} {:.17e}",
                c.job,
                c.label,
                c.solver,
                c.status.as_str(),
                c.makespan,
                c.combined_lb
            );
        }
        out
    }
}

/// Merge shard reports into global order. Every shard of the plan must be
/// present exactly once, and all reports must agree on shard count and
/// solver list.
pub fn merge_reports(mut reports: Vec<ShardReport>) -> Result<MergedReport, ShardError> {
    let bad = |err: String| ShardError::BadReport {
        context: "merge".into(),
        err,
    };
    if reports.is_empty() {
        return Err(bad("no shard reports to merge".into()));
    }
    reports.sort_by_key(|r| r.shard);
    let shards = reports[0].shards;
    let solvers = reports[0].solvers.clone();
    if reports.len() != shards {
        return Err(bad(format!(
            "plan has {shards} shards but {} report(s) were given",
            reports.len()
        )));
    }
    for (want, r) in reports.iter().enumerate() {
        if r.shard != want {
            return Err(bad(format!(
                "shard {want} missing (found shard {} instead)",
                r.shard
            )));
        }
        if r.shards != shards {
            return Err(bad(format!(
                "shard {} claims {} total shards, expected {shards}",
                r.shard, r.shards
            )));
        }
        if r.solvers != solvers {
            return Err(bad(format!(
                "shard {} ran solvers {:?}, expected {:?}",
                r.shard, r.solvers, solvers
            )));
        }
        if r.config_sig != reports[0].config_sig {
            return Err(bad(format!(
                "shard {} ran with config [{}], expected [{}]",
                r.shard, r.config_sig, reports[0].config_sig
            )));
        }
        // The plan fingerprint covers the full input list, so shards of
        // two unrelated batches (which can agree on everything above)
        // cannot combine into a plausible-looking wrong table.
        if r.plan_fp != reports[0].plan_fp {
            return Err(bad(format!(
                "shard {} was cut from a different batch (plan {}, expected {})",
                r.shard, r.plan_fp, reports[0].plan_fp
            )));
        }
    }
    // Contiguous shards in index order concatenate into global job order;
    // check the structure exactly (every input × every solver, jobs
    // consecutive across shards) so a truncated or hand-edited report is
    // rejected rather than folded into the aggregates.
    let mut cells = Vec::with_capacity(reports.iter().map(|r| r.cells.len()).sum());
    let mut base_job = 0usize;
    for r in reports {
        if r.cells.len() != r.inputs.len() * solvers.len() {
            return Err(bad(format!(
                "shard {} has {} cells, expected {} inputs × {} solvers",
                r.shard,
                r.cells.len(),
                r.inputs.len(),
                solvers.len()
            )));
        }
        for (idx, c) in r.cells.iter().enumerate() {
            let want_job = base_job + idx / solvers.len();
            let want_solver = &solvers[idx % solvers.len()];
            if c.job != want_job || &c.solver != want_solver {
                return Err(bad(format!(
                    "shard {} cell {idx} is (job {}, {}), expected (job {want_job}, {want_solver})",
                    r.shard, c.job, c.solver
                )));
            }
        }
        base_job += r.inputs.len();
        cells.extend(r.cells);
    }
    Ok(MergedReport { solvers, cells })
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

pub(crate) fn label_for(path: &Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// Wrap one completed chunk of a shard-shaped queue as the portable
/// [`ShardReport`] the CLI emits and `merge_reports` consumes.
fn shard_report_for(
    plan: &ShardPlan,
    lease: &WorkLease,
    cells: Vec<CellRow>,
    runtime: Option<ShardRuntime>,
) -> ShardReport {
    ShardReport {
        shard: lease.index,
        shards: plan.shards(),
        solvers: lease.solvers.clone(),
        inputs: lease
            .paths
            .iter()
            .map(|p| p.display().to_string())
            .collect(),
        plan_fp: plan.fingerprint(),
        config_sig: lease.config.signature(),
        cells,
        runtime,
    }
}

/// Run one shard: execute its chunk of the plan through the engine's
/// single cache-consulting pipeline
/// ([`execute_cells`](crate::batch::execute_cells), via
/// [`execute_lease`]), reducing to portable rows.
///
/// With a cache attached, already-solved cells are served from it and
/// the shard's [`ShardRuntime`] records how many — a fully cached shard
/// is a resume that invoked no solver at all.
pub fn run_shard(
    plan: &ShardPlan,
    shard: usize,
    solvers: &[Box<dyn Solver>],
    config: &SolveConfig,
    cache: Option<&dyn SolveCache>,
) -> Result<ShardReport, ShardError> {
    let range = plan.shard_range(shard)?;
    let lease = WorkLease {
        id: 0,
        index: shard,
        start: range.start,
        paths: plan.shard_paths(shard)?.to_vec(),
        solvers: solvers.iter().map(|s| s.name().to_string()).collect(),
        config: config.clone(),
    };
    let (cells, runtime) = execute_lease(&lease, solvers, cache)?;
    Ok(shard_report_for(plan, &lease, cells, Some(runtime)))
}

/// Run every shard of the plan concurrently and merge.
///
/// The plan becomes a [`WorkQueue`] (one chunk per shard) behind a
/// [`LocalPlan`] work source, drained by a small pool of in-process
/// [`pull_work`] workers — the same pull loop the distributed `spp work`
/// pullers run, so local and dispatched execution cannot drift apart.
/// Output is byte-identical to the pre-pull eager split (chunks
/// concatenate in shard order).
///
/// * `cache` — consulted cell-by-cell before any solve and written back
///   on miss; pass a [`DiskCache`](crate::cache::DiskCache) to make the
///   run resumable (and to share work with other processes pointing at
///   the same directory). There is no separate resume path: a rerun over
///   a warm cache recomputes nothing and produces byte-identical output.
/// * `observer` — called with each shard's report as it completes, from
///   worker threads, in completion order: the streaming progress hook.
pub fn run_sharded(
    plan: &ShardPlan,
    solvers: &[Box<dyn Solver>],
    config: &SolveConfig,
    cache: Option<&dyn SolveCache>,
    observer: Option<&(dyn Fn(&ShardReport) + Sync)>,
) -> Result<MergedReport, ShardError> {
    let names: Vec<String> = solvers.iter().map(|s| s.name().to_string()).collect();
    let source = LocalPlan::new(plan.work_queue(names, config.clone(), None));
    // Cap the puller pool: each lease saturates cores via the executor's
    // own par_map, so a handful of in-flight chunks is enough to hide
    // file-I/O latency without multiplying worker pools.
    let pullers = plan.shards().clamp(1, 4);
    let first_error: Mutex<Option<ShardError>> = Mutex::new(None);
    let execute = |lease: &WorkLease| execute_lease(lease, solvers, cache);
    let on_complete = |lease: &WorkLease, cells: &[CellRow], runtime: &ShardRuntime| {
        if let Some(obs) = observer {
            obs(&shard_report_for(
                plan,
                lease,
                cells.to_vec(),
                Some(*runtime),
            ));
        }
    };
    spp_par::run_workers(pullers, |_| {
        if let Err(e) = pull_work(
            &source,
            &execute,
            Some(&on_complete),
            Duration::from_millis(5),
        ) {
            // Keep the first *real* error; `Aborted` is only the echo a
            // sibling hears after someone else failed.
            if e != WorkError::Aborted {
                let mut slot = first_error.lock().expect("error slot poisoned");
                if slot.is_none() {
                    *slot = Some(e.into());
                }
            }
        }
    });
    if let Some(e) = first_error.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    source.into_merged().ok_or(ShardError::BadReport {
        context: "work".into(),
        err: "queue did not drain".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{DiskCache, MemoryCache};
    use crate::registry::Registry;

    fn write_suite(tag: &str, count: usize) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spp_engine_shard_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        spp_gen::suite::write_suite(&dir, 42, 12, count).unwrap();
        dir
    }

    fn solvers(names: &[&str]) -> Vec<Box<dyn Solver>> {
        let registry = Registry::builtin();
        names.iter().map(|n| registry.get(n).unwrap()).collect()
    }

    #[test]
    fn plan_splits_contiguously_and_covers_everything() {
        let paths: Vec<PathBuf> = (0..10)
            .map(|i| PathBuf::from(format!("i{i:02}.json")))
            .collect();
        let plan = ShardPlan::new(paths, 4).unwrap();
        let ranges: Vec<_> = (0..4).map(|s| plan.shard_range(s).unwrap()).collect();
        assert_eq!(ranges[0], 0..2);
        assert_eq!(ranges[1], 2..5);
        assert_eq!(ranges[2], 5..7);
        assert_eq!(ranges[3], 7..10);
        assert!(plan.shard_range(4).is_err());
        assert!(ShardPlan::new(vec![], 0).is_err());
        // More shards than files: trailing shards are empty, nothing lost.
        let plan = ShardPlan::new(vec![PathBuf::from("a.json")], 3).unwrap();
        let total: usize = (0..3).map(|s| plan.shard_range(s).unwrap().len()).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn sharded_equals_single_process_bytewise() {
        let dir = write_suite("equal", 12);
        let solvers = solvers(&["nfdh", "ffdh", "greedy", "dc-nfdh"]);
        let config = SolveConfig::default();

        let single = {
            let plan = ShardPlan::from_dir(&dir, 1).unwrap();
            run_sharded(&plan, &solvers, &config, None, None).unwrap()
        };
        let sharded = {
            let plan = ShardPlan::from_dir(&dir, 4).unwrap();
            // Simulate distributed execution: run each shard separately,
            // serialize, parse back, merge — the full cross-process path.
            let texts: Vec<String> = (0..4)
                .map(|s| {
                    run_shard(&plan, s, &solvers, &config, None)
                        .unwrap()
                        .to_json()
                })
                .collect();
            let reports = texts
                .iter()
                .map(|t| ShardReport::parse(t).unwrap())
                .collect();
            merge_reports(reports).unwrap()
        };
        assert_eq!(single.cells, sharded.cells);
        assert_eq!(single.render_table(), sharded.render_table());
        assert_eq!(single.render_cells(), sharded.render_cells());
    }

    #[test]
    fn shard_report_roundtrips_exactly() {
        let dir = write_suite("roundtrip", 6);
        let solvers = solvers(&["nfdh", "aptas"]);
        let plan = ShardPlan::from_dir(&dir, 2).unwrap();
        let report = run_shard(&plan, 1, &solvers, &SolveConfig::default(), None).unwrap();
        let back = ShardReport::parse(&report.to_json()).unwrap();
        assert_eq!(back.shard, report.shard);
        assert_eq!(back.solvers, report.solvers);
        assert_eq!(back.cells, report.cells);
        // Runtime facts are not part of the portable contract.
        assert!(report.runtime.is_some());
        assert!(back.runtime.is_none());
        // Canonical: serialize ∘ parse ∘ serialize = serialize.
        assert_eq!(back.to_json(), report.to_json());
    }

    #[test]
    fn merge_rejects_inconsistent_reports() {
        let mk = |shard, shards, solvers: &[&str]| ShardReport {
            shard,
            shards,
            solvers: solvers.iter().map(|s| s.to_string()).collect(),
            inputs: vec![],
            plan_fp: "fnv1a:test".into(),
            config_sig: SolveConfig::default().signature(),
            cells: vec![],
            runtime: None,
        };
        // Missing shard.
        assert!(merge_reports(vec![mk(0, 2, &["nfdh"])]).is_err());
        // Duplicate shard.
        assert!(merge_reports(vec![mk(0, 2, &["nfdh"]), mk(0, 2, &["nfdh"])]).is_err());
        // Solver mismatch.
        assert!(merge_reports(vec![mk(0, 2, &["nfdh"]), mk(1, 2, &["ffdh"])]).is_err());
        // Config mismatch.
        let mut other_cfg = mk(1, 2, &["nfdh"]);
        other_cfg.config_sig = "epsilon=0.5".into();
        assert!(merge_reports(vec![mk(0, 2, &["nfdh"]), other_cfg]).is_err());
        // Plan mismatch: shards cut from different batches refuse to merge
        // even though shard count, solvers and config all agree.
        let mut other_plan = mk(1, 2, &["nfdh"]);
        other_plan.plan_fp = "fnv1a:other".into();
        assert!(merge_reports(vec![mk(0, 2, &["nfdh"]), other_plan]).is_err());
        // Structural mismatch: cell count must be inputs × solvers.
        let mut truncated = mk(1, 2, &["nfdh"]);
        truncated.inputs = vec!["a.json".into()];
        assert!(merge_reports(vec![mk(0, 2, &["nfdh"]), truncated]).is_err());
        // Consistent pair merges.
        assert!(merge_reports(vec![mk(1, 2, &["nfdh"]), mk(0, 2, &["nfdh"])]).is_ok());
    }

    #[test]
    fn cache_resume_serves_completed_cells_and_survives_corruption() {
        let dir = write_suite("resume", 8);
        let cache_dir = std::env::temp_dir().join("spp_engine_shard_resume_cache");
        let _ = std::fs::remove_dir_all(&cache_dir);
        let solvers2 = solvers(&["nfdh", "greedy"]);
        let config = SolveConfig::default();
        let plan = ShardPlan::from_dir(&dir, 3).unwrap();

        let cache = DiskCache::new(&cache_dir, false).unwrap();
        let first = run_sharded(&plan, &solvers2, &config, Some(&cache), None).unwrap();
        assert_eq!(
            crate::cache::dir_stats(&cache_dir).unwrap().entries,
            first.cells.len()
        );

        // A warm rerun serves every cell from the cache — the observer
        // sees only fully cached ("resumed") shards — and the merged
        // output is byte-identical.
        let warm = DiskCache::new(&cache_dir, false).unwrap();
        let resumed = std::sync::Mutex::new(Vec::new());
        let observer = |r: &ShardReport| {
            let rt = r.runtime.expect("fresh shards carry runtime facts");
            if rt.fully_cached(r.cells.len()) {
                resumed.lock().unwrap().push(r.shard);
            }
        };
        let second = run_sharded(&plan, &solvers2, &config, Some(&warm), Some(&observer)).unwrap();
        assert_eq!(first.cells, second.cells);
        assert_eq!(first.render_cells(), second.render_cells());
        let mut resumed = resumed.lock().unwrap().clone();
        resumed.sort_unstable();
        assert_eq!(resumed, vec![0, 1, 2]);
        assert_eq!(warm.stats().misses, 0, "warm run invoked a solver");

        // Corrupt one entry: exactly that cell recomputes; output is
        // still identical and the damaged entry is never served.
        let scanned = crate::cache::scan_dir(&cache_dir).unwrap();
        std::fs::write(&scanned[0].path, "garbage").unwrap();
        let healed = DiskCache::new(&cache_dir, false).unwrap();
        let third = run_sharded(&plan, &solvers2, &config, Some(&healed), None).unwrap();
        assert_eq!(first.cells, third.cells);
        let stats = healed.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.writes, 1, "the healed entry was written back");

        // A different solver list shares the instance half of the key but
        // not the cells: ffdh cells all miss, nfdh/greedy entries are
        // untouched.
        let other = solvers(&["ffdh"]);
        let cold = DiskCache::new(&cache_dir, false).unwrap();
        let fourth = run_sharded(&plan, &other, &config, Some(&cold), None).unwrap();
        assert_eq!(fourth.solvers, vec!["ffdh".to_string()]);
        assert!(fourth.cells.iter().all(|c| c.solver == "ffdh"));
        assert_eq!(cold.stats().hits, 0);
    }

    #[test]
    fn cache_is_config_sensitive_and_immune_to_shard_resplits() {
        let dir = write_suite("stale", 8);
        let s = solvers(&["nfdh"]);
        let config = SolveConfig::default();
        let plan = ShardPlan::from_dir(&dir, 2).unwrap();
        let cache = MemoryCache::new();
        run_sharded(&plan, &s, &config, Some(&cache), None).unwrap();
        assert_eq!(cache.len(), 8);

        // Same instances, different knobs: every cell misses (an entry
        // computed under other knobs would be silently wrong).
        let mut tighter = config.clone();
        tighter.epsilon = 0.5;
        run_sharded(&plan, &s, &tighter, Some(&cache), None).unwrap();
        assert_eq!(cache.len(), 16, "different config = different cells");

        // Adding a file shifts every contiguous shard range — which is
        // exactly why the cache keys content, not position: the 8 old
        // cells are all served, only the new instance solves.
        spp_gen::fileio::write_path(
            &dir.join("zzz-extra.json"),
            &spp_dag::PrecInstance::unconstrained(
                spp_core::Instance::from_dims(&[(0.5, 1.0)]).unwrap(),
            ),
        )
        .unwrap();
        let grown = ShardPlan::from_dir(&dir, 2).unwrap();
        assert_eq!(grown.len(), plan.len() + 1);
        let before = cache.stats();
        run_sharded(&grown, &s, &config, Some(&cache), None).unwrap();
        let after = cache.stats();
        assert_eq!(after.hits - before.hits, 8, "old cells all resumed");
        assert_eq!(after.misses - before.misses, 1, "only the new file solved");
    }

    #[test]
    fn empty_input_dir_is_a_bad_plan_naming_the_dir() {
        // A directory with no instance files at all.
        let dir = std::env::temp_dir().join("spp_engine_shard_emptydir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let err = ShardPlan::from_dir(&dir, 2).unwrap_err();
        assert!(matches!(err, ShardError::BadPlan(_)), "{err:?}");
        assert!(
            err.to_string().contains("spp_engine_shard_emptydir"),
            "{err}"
        );

        // Non-instance files don't count either.
        std::fs::write(dir.join("README.txt"), "not an instance").unwrap();
        assert!(ShardPlan::from_dir(&dir, 1).is_err());

        // An empty file list is equally refused.
        let list = dir.join("list.txt");
        std::fs::write(&list, "# only comments\n\n").unwrap();
        let err = ShardPlan::from_file_list(&list, 1).unwrap_err();
        assert!(err.to_string().contains("names no instances"), "{err}");
    }

    #[test]
    fn duplicate_paths_in_file_list_collapse_to_one_job() {
        let dir = write_suite("dups", 3);
        let names: Vec<String> = ShardPlan::from_dir(&dir, 1)
            .unwrap()
            .paths()
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        // Every file listed twice (plus a repeat of the first at the end).
        let mut body = String::new();
        for n in &names {
            body.push_str(&format!("{n}\n{n}\n"));
        }
        body.push_str(&format!("{}\n", names[0]));
        let list = dir.join("list.txt");
        std::fs::write(&list, body).unwrap();

        let plan = ShardPlan::from_file_list(&list, 2).unwrap();
        assert_eq!(plan.len(), 3, "duplicates must not double-count jobs");
        // And the deduped plan is interchangeable with the from_dir one:
        // same fingerprint, same merged output.
        let from_dir = ShardPlan::from_dir(&dir, 2).unwrap();
        assert_eq!(plan.fingerprint(), from_dir.fingerprint());
        let s = solvers(&["nfdh"]);
        let config = SolveConfig::default();
        let a = run_sharded(&plan, &s, &config, None, None).unwrap();
        let b = run_sharded(&from_dir, &s, &config, None, None).unwrap();
        assert_eq!(a.render_cells(), b.render_cells());
    }

    #[test]
    fn more_shards_than_files_runs_empty_shards_harmlessly() {
        let dir = write_suite("overshard", 2);
        let s = solvers(&["nfdh", "ffdh"]);
        let config = SolveConfig::default();
        let wide = ShardPlan::from_dir(&dir, 5).unwrap();
        let narrow = ShardPlan::from_dir(&dir, 1).unwrap();

        // In-process: empty shards complete with zero cells and the
        // merged output matches the single-shard run byte-for-byte.
        let merged = run_sharded(&wide, &s, &config, None, None).unwrap();
        let reference = run_sharded(&narrow, &s, &config, None, None).unwrap();
        assert_eq!(merged.cells, reference.cells);
        assert_eq!(merged.render_cells(), reference.render_cells());

        // Cross-process: an empty shard's report serializes, parses, and
        // merges like any other.
        let empty_shard = (0..5)
            .find(|&i| wide.shard_range(i).unwrap().is_empty())
            .expect("5 shards over 2 files must leave an empty one");
        let report = run_shard(&wide, empty_shard, &s, &config, None).unwrap();
        assert!(report.cells.is_empty());
        assert!(report.inputs.is_empty());
        let back = ShardReport::parse(&report.to_json()).unwrap();
        assert_eq!(back.cells, report.cells);
        let texts: Vec<String> = (0..5)
            .map(|i| run_shard(&wide, i, &s, &config, None).unwrap().to_json())
            .collect();
        let remerged = merge_reports(
            texts
                .iter()
                .map(|t| ShardReport::parse(t).unwrap())
                .collect(),
        )
        .unwrap();
        assert_eq!(remerged.render_cells(), reference.render_cells());
    }

    #[test]
    fn merged_report_json_roundtrips_exactly() {
        let dir = write_suite("mergedjson", 4);
        let s = solvers(&["nfdh", "greedy"]);
        let merged = run_sharded(
            &ShardPlan::from_dir(&dir, 2).unwrap(),
            &s,
            &SolveConfig::default(),
            None,
            None,
        )
        .unwrap();
        let back = MergedReport::parse(&merged.to_json()).unwrap();
        assert_eq!(back, merged);
        assert_eq!(back.render_table(), merged.render_table());
        assert_eq!(back.render_cells(), merged.render_cells());
        // Canonical: serialize ∘ parse ∘ serialize = serialize.
        assert_eq!(back.to_json(), merged.to_json());
        // An empty report roundtrips too.
        let empty = MergedReport {
            solvers: vec!["nfdh".into()],
            cells: vec![],
        };
        assert_eq!(MergedReport::parse(&empty.to_json()).unwrap(), empty);
        // Malformed documents are named errors.
        assert!(MergedReport::parse("{}").is_err());
        assert!(MergedReport::parse(&merged.to_json().replace("spp-merged", "spp-shard")).is_err());
    }

    #[test]
    fn file_list_plans_resolve_relative_paths() {
        let dir = write_suite("list", 4);
        let list = dir.join("list.txt");
        let mut body = String::from("# instance list\n\n");
        for p in ShardPlan::from_dir(&dir, 1).unwrap().paths() {
            body.push_str(&format!("{}\n", p.file_name().unwrap().to_string_lossy()));
        }
        std::fs::write(&list, body).unwrap();
        let plan = ShardPlan::from_file_list(&list, 2).unwrap();
        assert_eq!(plan.len(), 4);
        let report =
            run_shard(&plan, 0, &solvers(&["nfdh"]), &SolveConfig::default(), None).unwrap();
        assert_eq!(report.cells.len(), 2);
    }

    #[test]
    fn unreadable_instance_is_a_load_error_naming_the_file() {
        let dir = std::env::temp_dir().join("spp_engine_shard_badfile");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.json"), "{\"format\": \"nope\"}").unwrap();
        let plan = ShardPlan::from_dir(&dir, 1).unwrap();
        let err =
            run_shard(&plan, 0, &solvers(&["nfdh"]), &SolveConfig::default(), None).unwrap_err();
        match err {
            ShardError::Load { path, err } => {
                assert!(path.contains("bad.json"), "{path}");
                assert!(err.contains("format"), "{err}");
            }
            other => panic!("expected Load error, got {other:?}"),
        }
    }
}
