//! The `Solver` trait, capability flags, and the timed/validated `solve`
//! driver.

use std::time::{Duration, Instant};

use spp_core::{Instance, Item, Placement};
use spp_dag::PrecInstance;

use crate::report::{Constraint, LowerBounds, SolveReport, Validation};
use crate::request::SolveRequest;

/// What a solver can honor. Flags drive request routing, validation depth,
/// and registry filtering — a solver is never handed work it cannot
/// represent unless the caller opted out of strict mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Capabilities {
    /// Honors precedence edges (`y_pred + h_pred ≤ y_succ`).
    pub precedence: bool,
    /// Honors release times (`y_s ≥ r_s`).
    pub release: bool,
    /// Processes items in arrival order with no lookahead (an online
    /// algorithm run on an offline instance).
    pub online: bool,
    /// Proven `A(S) ≤ 2·AREA(S) + h_max(S)` on unconstrained instances —
    /// the subroutine contract `DC` requires (§2).
    pub a_bound: bool,
    /// Only defined when every item has the same height (§2.2 shelf `F`).
    pub uniform_height_only: bool,
    /// Opted into the anytime improvement wrapper: with a positive
    /// [`SolveConfig::budget_ms`](crate::SolveConfig) the engine runs
    /// seeded remove-and-reinsert (`spp_pack::improve`) on the solver's
    /// placement, keeping the best feasible result by the deadline.
    /// Online policies never flag this — reshuffling placed items after
    /// the fact would break their no-lookahead semantics.
    pub anytime: bool,
}

/// Engine-level failures. Solver bugs (invalid placements) are *not*
/// errors — they surface as [`Validation::Failed`] so a batch sweep can
/// report them without aborting the other jobs.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The registry has no solver of this name; `known` lists what it has.
    UnknownSolver { name: String, known: Vec<String> },
    /// The request carries data the solver cannot honor (strict mode), or
    /// violates a structural precondition (e.g. APTAS width/height model).
    Unsupported { solver: String, reason: String },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownSolver { name, known } => {
                write!(f, "unknown solver {name:?}; known: {}", known.join(" "))
            }
            EngineError::Unsupported { solver, reason } => {
                write!(f, "solver {solver} cannot handle this request: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A strip packing algorithm usable by the engine.
///
/// Implementations wrap one algorithm crate entry point; they must be
/// deterministic and thread-safe (batch execution calls `run` from worker
/// threads). `run` returns the raw placement — timing, lower bounds and
/// validation are layered on by [`solve`].
pub trait Solver: Send + Sync {
    /// Stable registry/CLI/report identifier.
    fn name(&self) -> &str;

    /// What this solver honors.
    fn capabilities(&self) -> Capabilities;

    /// Structural preconditions beyond capability flags (e.g. the APTAS
    /// width/height model). Called by [`solve`] before `run`.
    fn check(&self, _req: &SolveRequest) -> Result<(), EngineError> {
        Ok(())
    }

    /// Produce a placement for the request. May record solver-internal
    /// phase timings by pushing onto `phases`; the engine appends a
    /// `"solve"` phase holding the *remainder* of the run (total minus the
    /// pushed phases), so all phases stay disjoint and
    /// [`SolveReport::total_time`](crate::SolveReport::total_time) is the
    /// plain sum.
    fn run(
        &self,
        req: &SolveRequest,
        phases: &mut Vec<(String, Duration)>,
    ) -> Result<Placement, EngineError>;
}

/// Copy of `inst` with all release times dropped (for validating solvers
/// that ignore them).
fn strip_releases(inst: &Instance) -> Instance {
    Instance::new(
        inst.items()
            .iter()
            .map(|it| Item::new(it.id, it.w, it.h))
            .collect(),
    )
    .expect("stripping releases keeps items valid")
}

/// Constraint families present in the request but not honored by `caps`.
pub(crate) fn ignored_constraints(req: &SolveRequest, caps: Capabilities) -> Vec<Constraint> {
    let mut ignored = Vec::new();
    if req.has_precedence() && !caps.precedence {
        ignored.push(Constraint::Precedence);
    }
    if req.has_release() && !caps.release {
        ignored.push(Constraint::Release);
    }
    ignored
}

/// Validate `pl` against exactly the constraint families `caps` honors:
/// geometry always, edges iff `caps.precedence`, releases iff
/// `caps.release`.
fn validate_supported(
    req: &SolveRequest,
    caps: Capabilities,
    pl: &Placement,
) -> Result<(), String> {
    let prec = &req.prec;
    let outcome = match (caps.precedence, caps.release) {
        (true, true) => prec.validate(pl),
        (true, false) => {
            PrecInstance::new(strip_releases(&prec.inst), prec.dag.clone()).validate(pl)
        }
        (false, true) => spp_core::validate::validate(&prec.inst, pl),
        (false, false) => spp_core::validate::validate(&strip_releases(&prec.inst), pl),
    };
    outcome.map_err(|e: spp_core::ValidationError| e.to_string())
}

/// Evaluate the paper's lower bounds on the request.
pub fn lower_bounds(prec: &PrecInstance) -> LowerBounds {
    LowerBounds {
        area: prec.area_lb(),
        critical_path: prec.critical_lb(),
        release: spp_core::bounds::release_lb(&prec.inst),
        combined: spp_precedence::combined::combined_lower_bound(prec),
    }
}

/// Run `solver` on `req`: capability gate → precondition check → timed
/// solve → timed capability-aware validation → report.
pub fn solve(solver: &dyn Solver, req: &SolveRequest) -> Result<SolveReport, EngineError> {
    let caps = solver.capabilities();
    let ignored = ignored_constraints(req, caps);
    if req.config.strict && !ignored.is_empty() {
        return Err(EngineError::Unsupported {
            solver: solver.name().to_string(),
            reason: format!(
                "request carries unsupported constraints: {}",
                ignored
                    .iter()
                    .map(Constraint::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        });
    }
    solver.check(req)?;

    let mut phases = Vec::new();
    let t0 = Instant::now();
    let mut placement = solver.run(req, &mut phases)?;
    // "solve" holds the remainder not covered by solver-internal phases,
    // keeping the phase list disjoint (summable without double-counting).
    let internal: Duration = phases.iter().map(|(_, d)| *d).sum();
    phases.push(("solve".to_string(), t0.elapsed().saturating_sub(internal)));

    // Anytime improvement: budgeted portfolio remove-and-reinsert on the
    // seed placement. `improve_streams` independent streams run per
    // budget (stream i seeded `digest ^ improve_seed ^ splitmix_mix(i)`),
    // each with its own `budget_ms` compute deadline, reduced to the
    // strictly best (ties to lowest stream index). With the envelope off
    // the result is a pure function of (instance digest, improve_seed,
    // improve_streams) — worker count cannot change it — and the budget
    // only truncates each stream's deterministic candidate sequence.
    let seed_makespan = placement.height(&req.prec.inst);
    let mut improve_rounds = 0u64;
    let mut improve_streams = 0u64;
    let mut improve_prunes = 0u64;
    if req.config.budget_ms > 0 && caps.anytime {
        let ti = Instant::now();
        let digest = spp_gen::fileio::digest(&req.prec);
        let outcome = spp_pack::improve_parallel(
            &req.prec,
            &placement,
            &spp_pack::PortfolioConfig {
                streams: req.config.improve_streams.max(1) as usize,
                workers: req.config.improve_workers as usize,
                share_envelope: req.config.improve_envelope,
                seed: digest.as_u64() ^ req.config.improve_seed,
                budget: Some(Duration::from_millis(req.config.budget_ms)),
                ..spp_pack::PortfolioConfig::default()
            },
        );
        improve_rounds = outcome.rounds;
        improve_streams = outcome.streams.len() as u64;
        improve_prunes = outcome.envelope_prunes;
        placement = outcome.placement;
        phases.push(("improve".to_string(), ti.elapsed()));
    }

    let validation = if req.config.validate {
        let tv = Instant::now();
        let outcome = match validate_supported(req, caps, &placement) {
            Ok(()) if ignored.is_empty() => Validation::Passed,
            Ok(()) => Validation::PassedIgnoring(ignored),
            Err(e) => Validation::Failed(e),
        };
        phases.push(("validate".to_string(), tv.elapsed()));
        outcome
    } else {
        Validation::Skipped
    };

    let makespan = placement.height(&req.prec.inst);
    Ok(SolveReport {
        solver: solver.name().to_string(),
        placement,
        makespan,
        seed_makespan,
        improve_rounds,
        improve_streams,
        improve_prunes,
        bounds: lower_bounds(&req.prec),
        phases,
        validation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A solver that stacks everything at x = 0 in id order — honors both
    /// constraint families the dumb way.
    struct Stacker;

    impl Solver for Stacker {
        fn name(&self) -> &str {
            "stacker"
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities {
                precedence: true,
                release: true,
                anytime: true,
                ..Capabilities::default()
            }
        }
        fn run(
            &self,
            req: &SolveRequest,
            _phases: &mut Vec<(String, Duration)>,
        ) -> Result<Placement, EngineError> {
            let inst = &req.prec.inst;
            let mut pl = Placement::zeroed(inst.len());
            let mut y = 0.0f64;
            for it in inst.items() {
                y = y.max(it.release);
                pl.set(it.id, 0.0, y);
                y += it.h;
            }
            Ok(pl)
        }
    }

    /// A solver that ignores everything and overlaps all items at origin.
    struct Broken;

    impl Solver for Broken {
        fn name(&self) -> &str {
            "broken"
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities::default()
        }
        fn run(
            &self,
            req: &SolveRequest,
            _phases: &mut Vec<(String, Duration)>,
        ) -> Result<Placement, EngineError> {
            Ok(Placement::zeroed(req.prec.inst.len()))
        }
    }

    fn released_request() -> SolveRequest {
        SolveRequest::unconstrained(
            spp_core::Instance::from_dims_release(&[(0.5, 1.0, 0.0), (0.6, 2.0, 3.0)]).unwrap(),
        )
    }

    #[test]
    fn solve_reports_makespan_bounds_and_phases() {
        let req = released_request();
        let report = solve(&Stacker, &req).unwrap();
        assert_eq!(report.solver, "stacker");
        assert_eq!(report.makespan, 5.0);
        assert_eq!(report.validation, Validation::Passed);
        assert!(report.phase("solve").is_some());
        assert!(report.phase("validate").is_some());
        assert!((report.bounds.release - 5.0).abs() < 1e-12);
        assert!(report.ratio() >= 1.0);
    }

    #[test]
    fn invalid_placement_is_a_validation_failure_not_an_error() {
        let mut req = released_request();
        // `Broken` claims no release support, so releases are ignored in
        // validation — but two items overlapping is still a geometry bug.
        let report = solve(&Broken, &req).unwrap();
        assert!(matches!(report.validation, Validation::Failed(_)));

        // Strict mode refuses instead of ignoring.
        req.config.strict = true;
        let err = solve(&Broken, &req).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported { .. }));
    }

    #[test]
    fn budgeted_solve_improves_the_seed_and_records_the_phase() {
        // Stacker piles four pairable squares into a height-4 tower; the
        // improvement loop must find the height-2 side-by-side packing.
        let mut req = SolveRequest::unconstrained(
            spp_core::Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0), (0.5, 1.0), (0.5, 1.0)])
                .unwrap(),
        );
        req.config.budget_ms = 2_000;
        let report = solve(&Stacker, &req).unwrap();
        assert_eq!(report.seed_makespan, 4.0);
        assert!(report.improved(), "budget must beat the stacked seed");
        assert!((report.makespan - 2.0).abs() < 1e-9);
        assert!(report.improve_rounds > 0);
        assert_eq!(report.improve_streams, 1);
        assert_eq!(report.improve_prunes, 0);
        assert!(report.phase("improve").is_some());
        assert_eq!(report.validation, Validation::Passed);

        // Zero budget is the one-shot special case: no improve phase.
        req.config.budget_ms = 0;
        let one_shot = solve(&Stacker, &req).unwrap();
        assert_eq!(one_shot.makespan, one_shot.seed_makespan);
        assert_eq!(one_shot.improve_rounds, 0);
        assert_eq!(one_shot.improve_streams, 0);
        assert!(one_shot.phase("improve").is_none());
    }

    #[test]
    fn portfolio_width_is_reported_and_worker_count_is_inert() {
        let mut req = SolveRequest::unconstrained(
            spp_core::Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0), (0.5, 1.0), (0.5, 1.0)])
                .unwrap(),
        );
        req.config.budget_ms = 2_000;
        req.config.improve_streams = 3;
        req.config.improve_workers = 1;
        let a = solve(&Stacker, &req).unwrap();
        assert_eq!(a.improve_streams, 3);
        assert!((a.makespan - 2.0).abs() < 1e-9);

        req.config.improve_workers = 4;
        let b = solve(&Stacker, &req).unwrap();
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    }

    #[test]
    fn validation_can_be_skipped() {
        let mut req = released_request();
        req.config.validate = false;
        let report = solve(&Stacker, &req).unwrap();
        assert_eq!(report.validation, Validation::Skipped);
        assert!(report.phase("validate").is_none());
    }
}
