//! Built-in [`Solver`] implementations wrapping the algorithm crates.
//!
//! Each wrapper is a thin adapter: it reads the knobs it needs from the
//! request's [`crate::SolveConfig`], calls the underlying crate entry
//! point, and reports honest capability flags. All paper algorithms and
//! baselines are covered:
//!
//! | names | crate entry point | honors |
//! |---|---|---|
//! | `nfdh ffdh bfdh sleator skyline wsnf` | `spp_pack::*` | — |
//! | `dc-nfdh dc-wsnf dc-ffdh` | `spp_precedence::dc` (§2, Thm 2.3) | precedence |
//! | `layered`, `greedy` | level / skyline heuristics | precedence |
//! | `shelf-f` | `spp_precedence::shelf_next_fit` (§2.2, Thm 2.6) | precedence (uniform heights) |
//! | `dc-release`, `combined-greedy` | `spp_precedence::combined` | precedence + release |
//! | `batched-ffdh`, `skyline-release` | `spp_release::baselines` | release |
//! | `online-skyline`, `online-shelf` | `spp_release::online::simulate` | release, online |
//! | `aptas` | `spp_release::aptas` (§3, Thm 3.5) | release |

use std::time::Duration;

use spp_core::{Instance, Placement};
use spp_pack::{Packer, StripPacker};
use spp_release::online::OnlinePolicy;
use spp_release::AptasConfig;

use crate::request::SolveRequest;
use crate::solver::{Capabilities, EngineError, Solver};

/// An unconstrained packer from `spp-pack` (ignores edges and releases).
pub struct PackerSolver {
    name: &'static str,
    packer: Packer,
}

impl PackerSolver {
    pub fn new(packer: Packer) -> Self {
        PackerSolver {
            name: packer.name(),
            packer,
        }
    }
}

impl Solver for PackerSolver {
    fn name(&self) -> &str {
        self.name
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            a_bound: self.packer.satisfies_a_bound(),
            anytime: true,
            ..Capabilities::default()
        }
    }

    fn run(
        &self,
        req: &SolveRequest,
        _phases: &mut Vec<(String, Duration)>,
    ) -> Result<Placement, EngineError> {
        Ok(self.packer.pack(&req.prec.inst))
    }
}

/// §2 `DC` (Theorem 2.3) parameterized by its unconstrained subroutine.
pub struct DcSolver {
    name: &'static str,
    packer: Packer,
}

impl DcSolver {
    pub fn new(name: &'static str, packer: Packer) -> Self {
        DcSolver { name, packer }
    }
}

impl Solver for DcSolver {
    fn name(&self) -> &str {
        self.name
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            precedence: true,
            anytime: true,
            ..Capabilities::default()
        }
    }

    fn run(
        &self,
        req: &SolveRequest,
        _phases: &mut Vec<(String, Duration)>,
    ) -> Result<Placement, EngineError> {
        Ok(spp_precedence::dc(&req.prec, &self.packer))
    }
}

/// Level-decomposition baseline: pack each antichain layer, stack layers.
pub struct LayeredSolver;

impl Solver for LayeredSolver {
    fn name(&self) -> &str {
        "layered"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            precedence: true,
            anytime: true,
            ..Capabilities::default()
        }
    }

    fn run(
        &self,
        req: &SolveRequest,
        _phases: &mut Vec<(String, Duration)>,
    ) -> Result<Placement, EngineError> {
        Ok(spp_precedence::layered_pack(&req.prec, &Packer::Nfdh))
    }
}

/// Precedence-aware bottom-left skyline baseline.
pub struct GreedySolver;

impl Solver for GreedySolver {
    fn name(&self) -> &str {
        "greedy"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            precedence: true,
            anytime: true,
            ..Capabilities::default()
        }
    }

    fn run(
        &self,
        req: &SolveRequest,
        _phases: &mut Vec<(String, Duration)>,
    ) -> Result<Placement, EngineError> {
        Ok(spp_precedence::greedy_skyline(&req.prec))
    }
}

/// §2.2 shelf algorithm `F` (Theorem 2.6): uniform heights only.
pub struct ShelfFSolver;

impl Solver for ShelfFSolver {
    fn name(&self) -> &str {
        "shelf-f"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            precedence: true,
            uniform_height_only: true,
            anytime: true,
            ..Capabilities::default()
        }
    }

    fn check(&self, req: &SolveRequest) -> Result<(), EngineError> {
        if !req.prec.inst.is_empty() && req.prec.inst.uniform_height().is_none() {
            return Err(EngineError::Unsupported {
                solver: "shelf-f".into(),
                reason: "shelf F requires all items to share one height (§2.2)".into(),
            });
        }
        Ok(())
    }

    fn run(
        &self,
        req: &SolveRequest,
        _phases: &mut Vec<(String, Duration)>,
    ) -> Result<Placement, EngineError> {
        Ok(spp_precedence::shelf_next_fit(&req.prec).placement)
    }
}

/// Combined extension: `DC` per release class, classes stacked.
pub struct DcReleaseSolver;

impl Solver for DcReleaseSolver {
    fn name(&self) -> &str {
        "dc-release"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            precedence: true,
            release: true,
            anytime: true,
            ..Capabilities::default()
        }
    }

    fn run(
        &self,
        req: &SolveRequest,
        _phases: &mut Vec<(String, Duration)>,
    ) -> Result<Placement, EngineError> {
        Ok(spp_precedence::combined::dc_release_batched(
            &req.prec,
            &Packer::Nfdh,
        ))
    }
}

/// Combined extension: skyline greedy with release floors and edge floors.
pub struct CombinedGreedySolver;

impl Solver for CombinedGreedySolver {
    fn name(&self) -> &str {
        "combined-greedy"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            precedence: true,
            release: true,
            anytime: true,
            ..Capabilities::default()
        }
    }

    fn run(
        &self,
        req: &SolveRequest,
        _phases: &mut Vec<(String, Duration)>,
    ) -> Result<Placement, EngineError> {
        Ok(spp_precedence::combined::greedy_skyline_combined(&req.prec))
    }
}

/// Offline release-time baselines from `spp_release::baselines`.
pub struct ReleaseBaselineSolver {
    name: &'static str,
    run: fn(&Instance) -> Placement,
}

impl ReleaseBaselineSolver {
    pub fn batched_ffdh() -> Self {
        ReleaseBaselineSolver {
            name: "batched-ffdh",
            run: spp_release::baselines::batched_ffdh,
        }
    }

    pub fn skyline_release() -> Self {
        ReleaseBaselineSolver {
            name: "skyline-release",
            run: spp_release::baselines::skyline_release,
        }
    }
}

impl Solver for ReleaseBaselineSolver {
    fn name(&self) -> &str {
        self.name
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            release: true,
            anytime: true,
            ..Capabilities::default()
        }
    }

    fn run(
        &self,
        req: &SolveRequest,
        _phases: &mut Vec<(String, Duration)>,
    ) -> Result<Placement, EngineError> {
        Ok((self.run)(&req.prec.inst))
    }
}

/// Online scheduling policies (the §1 FPGA-OS setting): tasks are placed
/// in release order with no lookahead.
pub struct OnlineSolver {
    name: &'static str,
    shelf: bool,
}

impl OnlineSolver {
    pub fn skyline() -> Self {
        OnlineSolver {
            name: "online-skyline",
            shelf: false,
        }
    }

    pub fn shelf() -> Self {
        OnlineSolver {
            name: "online-shelf",
            shelf: true,
        }
    }
}

impl Solver for OnlineSolver {
    fn name(&self) -> &str {
        self.name
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            release: true,
            online: true,
            ..Capabilities::default()
        }
    }

    fn check(&self, req: &SolveRequest) -> Result<(), EngineError> {
        if self.shelf {
            let r = req.config.shelf_r;
            if !(0.0 < r && r < 1.0) {
                return Err(EngineError::Unsupported {
                    solver: self.name.into(),
                    reason: format!("shelf ratio r = {r} outside (0, 1)"),
                });
            }
        }
        Ok(())
    }

    fn run(
        &self,
        req: &SolveRequest,
        _phases: &mut Vec<(String, Duration)>,
    ) -> Result<Placement, EngineError> {
        let policy = if self.shelf {
            OnlinePolicy::Shelf {
                r: req.config.shelf_r,
            }
        } else {
            OnlinePolicy::Skyline
        };
        Ok(spp_release::online::simulate(&req.prec.inst, policy).placement)
    }
}

/// §3 APTAS (Algorithm 2, Theorem 3.5). Requires the paper's model:
/// heights ≤ 1 and widths ≥ `1/K`.
pub struct AptasSolver;

impl Solver for AptasSolver {
    fn name(&self) -> &str {
        "aptas"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            release: true,
            anytime: true,
            ..Capabilities::default()
        }
    }

    fn check(&self, req: &SolveRequest) -> Result<(), EngineError> {
        let cfg = &req.config;
        if cfg.epsilon <= 0.0 {
            return Err(EngineError::Unsupported {
                solver: "aptas".into(),
                reason: format!("epsilon = {} must be positive", cfg.epsilon),
            });
        }
        if cfg.k == 0 {
            return Err(EngineError::Unsupported {
                solver: "aptas".into(),
                reason: "K must be at least 1".into(),
            });
        }
        let min_w = 1.0 / cfg.k as f64;
        for it in req.prec.inst.items() {
            if it.h > 1.0 + spp_core::eps::EPS {
                return Err(EngineError::Unsupported {
                    solver: "aptas".into(),
                    reason: format!(
                        "item {} has height {} > 1 (§3 assumes heights ≤ 1)",
                        it.id, it.h
                    ),
                });
            }
            if it.w + spp_core::eps::EPS < min_w {
                return Err(EngineError::Unsupported {
                    solver: "aptas".into(),
                    reason: format!(
                        "item {} has width {} < 1/K = {min_w} (§3 assumes ≥ one column)",
                        it.id, it.w
                    ),
                });
            }
        }
        Ok(())
    }

    fn run(
        &self,
        req: &SolveRequest,
        phases: &mut Vec<(String, Duration)>,
    ) -> Result<Placement, EngineError> {
        let result = spp_release::aptas(
            &req.prec.inst,
            AptasConfig {
                epsilon: req.config.epsilon,
                k: req.config.k,
            },
        );
        // One report phase per pipeline stage (Lemmas 3.1–3.4); the
        // engine's "solve" phase picks up the remainder, so the list
        // stays disjoint and summable.
        for (name, d) in result.phases.named() {
            phases.push((name.to_string(), d));
        }
        Ok(result.placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;

    #[test]
    fn aptas_preconditions_are_engine_errors_not_panics() {
        // Width below 1/K must be refused, not assert! inside spp-release.
        let inst = Instance::from_dims(&[(0.05, 0.5)]).unwrap();
        let mut req = SolveRequest::unconstrained(inst);
        req.config.k = 4;
        let err = solve(&AptasSolver, &req).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported { .. }));

        // Height above 1 likewise.
        let inst = Instance::from_dims(&[(0.5, 2.0)]).unwrap();
        let err = solve(&AptasSolver, &SolveRequest::unconstrained(inst)).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported { .. }));
    }

    #[test]
    fn shelf_f_requires_uniform_heights() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 2.0)]).unwrap();
        let err = solve(&ShelfFSolver, &SolveRequest::unconstrained(inst)).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported { .. }));

        let uniform = Instance::from_dims(&[(0.5, 1.0), (0.4, 1.0)]).unwrap();
        let report = solve(&ShelfFSolver, &SolveRequest::unconstrained(uniform)).unwrap();
        assert!(report.validation.passed());
    }

    #[test]
    fn online_shelf_rejects_bad_ratio() {
        let inst = Instance::from_dims(&[(0.5, 1.0)]).unwrap();
        let mut req = SolveRequest::unconstrained(inst);
        req.config.shelf_r = 1.5;
        assert!(solve(&OnlineSolver::shelf(), &req).is_err());
    }
}
