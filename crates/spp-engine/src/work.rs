//! Pull-based work distribution: the [`WorkSource`] seam.
//!
//! Everything the engine runs at scale is a list of instance files whose
//! cells flow through [`execute_cells`](crate::batch::execute_cells).
//! This module makes **"where the next batch of cells comes from"** a
//! first-class seam instead of an eager upfront partition:
//!
//! * a [`WorkSource`] hands out [`WorkLease`]s (a contiguous range of
//!   global job indices plus the instance files backing them, the solver
//!   names to run, and the [`SolveConfig`] knobs), accepts completed
//!   portable [`CellRow`]s back, and reports progress;
//! * [`pull_work`] is the one worker loop: lease → load → execute →
//!   complete, repeated until the source is drained — used identically
//!   by the in-process sharded driver and the distributed `spp work`
//!   pullers;
//! * [`WorkQueue`] is the one lease manager: fixed chunks handed out on
//!   demand, **expired leases requeued** (a killed worker loses
//!   nothing), completion **idempotent** (a chunk completes once; late
//!   or duplicate completions are acknowledged, never double-counted),
//!   structural validation on every completion (a broken worker cannot
//!   corrupt the merged report);
//! * [`LocalPlan`] wraps a `WorkQueue` behind the trait for in-process
//!   execution (today's `run_sharded` behavior, byte-identical output);
//!   the `spp-serve` dispatcher wraps the *same* queue behind
//!   `POST /work/lease` / `POST /work/complete` / `GET /work/status`,
//!   and its `RemoteLease` client implements the same trait over HTTP.
//!
//! Pull-based leasing is the classic fix for shard imbalance: per-cell
//! cost here spans microsecond shelf heuristics to the APTAS LP, so any
//! static `--shard-index` split leaves workers idle while one grinds.
//! With leases, a fast worker simply pulls more chunks.
//!
//! Determinism: chunks partition the global (sorted) job order and the
//! merged cells are concatenated in chunk order, so the merged report is
//! **byte-identical** to a single-process run over the same inputs — no
//! matter how many workers pulled, in what order they finished, or how
//! often a lease expired and was re-run (cells are deterministic, and a
//! re-run under a shared [`SolveCache`] is a cache hit).

use std::collections::{HashMap, VecDeque};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use spp_core::json::{self, JsonValue};

use crate::batch::{execute_cells, BatchJob};
use crate::cache::{CacheError, SolveCache};
use crate::request::{SolveConfig, SolveRequest};
use crate::sharding::{label_for, CellRow, MergedReport, ShardRuntime};
use crate::solver::Solver;

/// Failures of the work-distribution layer. Per-cell solver refusals are
/// *not* errors (they are `Unsupported` rows); these abort a worker or
/// reject a completion.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkError {
    /// Filesystem failure.
    Io { path: String, err: String },
    /// An instance file failed to parse (message names field and line).
    Load { path: String, err: String },
    /// The two sides of the seam disagree: unknown lease, mismatched
    /// cells, malformed wire document, unreachable dispatcher.
    Protocol { context: String, err: String },
    /// The source was aborted (another local worker hit a real error).
    Aborted,
}

impl WorkError {
    pub(crate) fn protocol(context: &str, err: impl std::fmt::Display) -> Self {
        WorkError::Protocol {
            context: context.to_string(),
            err: err.to_string(),
        }
    }
}

impl std::fmt::Display for WorkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkError::Io { path, err } => write!(f, "{path}: {err}"),
            WorkError::Load { path, err } => write!(f, "{path}: {err}"),
            WorkError::Protocol { context, err } => write!(f, "{context}: {err}"),
            WorkError::Aborted => write!(f, "work source aborted"),
        }
    }
}

impl std::error::Error for WorkError {}

impl From<CacheError> for WorkError {
    fn from(e: CacheError) -> Self {
        match e {
            CacheError::Io { path, err } => WorkError::Io { path, err },
        }
    }
}

/// One leased unit of work: chunk `index` of the source's partition,
/// covering global jobs `start..start + paths.len()`, to be run by the
/// named solvers under the given config.
///
/// The lease carries everything a worker needs: a freshly started
/// `spp work` puller knows nothing about the batch until its first lease
/// arrives.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkLease {
    /// Lease id — unique per grant, *not* per chunk: a requeued chunk is
    /// re-granted under a fresh id.
    pub id: u64,
    /// Chunk ordinal in the source's partition (shard index, for a
    /// shard-shaped partition).
    pub index: usize,
    /// First global job index of the chunk.
    pub start: usize,
    /// Instance files, in global order: `paths[i]` is job `start + i`.
    pub paths: Vec<PathBuf>,
    /// Registry names of the solvers to run on every job.
    pub solvers: Vec<String>,
    /// Solve knobs (cells computed under other knobs would not merge).
    pub config: SolveConfig,
}

impl WorkLease {
    /// Number of jobs in the lease.
    pub fn jobs(&self) -> usize {
        self.paths.len()
    }
}

/// What a [`WorkSource::lease`] call can answer.
#[derive(Debug, Clone, PartialEq)]
pub enum LeaseGrant {
    /// Here is work.
    Work(WorkLease),
    /// Nothing to hand out right now, but the batch is not finished —
    /// outstanding leases may yet expire and requeue. Poll again.
    Wait,
    /// Every chunk is completed; stop pulling.
    Done,
}

/// Progress snapshot of a work source (the `/work/status` document).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkStatus {
    /// Total jobs (instance files) in the batch.
    pub jobs: usize,
    /// Total chunks in the partition.
    pub chunks: usize,
    /// Chunks whose cells have been accepted.
    pub completed_chunks: usize,
    /// Chunks waiting to be leased.
    pub pending: usize,
    /// Chunks currently leased out.
    pub outstanding: usize,
    /// Leases granted so far (requeued chunks count once per grant).
    pub leases: u64,
    /// Chunks that were requeued after their lease expired.
    pub requeued: u64,
    /// Completions acknowledged but not stored (chunk already complete).
    pub duplicates: u64,
    /// True iff every chunk is completed.
    pub done: bool,
}

/// Where cells come from and where their results go — the seam between
/// the execution core and any distribution topology.
///
/// Implementations must be shareable across worker threads. `abort` is a
/// local-courtesy hook: the in-process [`LocalPlan`] uses it to stop
/// sibling workers when one hits a real error; a remote source ignores
/// it (the dispatcher requeues the lease at its deadline instead).
pub trait WorkSource: Sync {
    /// Ask for the next lease.
    fn lease(&self) -> Result<LeaseGrant, WorkError>;

    /// Report a completed lease with its portable cells (global job
    /// indices). Idempotent: completing an already-complete chunk is
    /// acknowledged, never double-counted.
    fn complete(&self, lease_id: u64, start: usize, cells: &[CellRow]) -> Result<(), WorkError>;

    /// Progress snapshot.
    fn progress(&self) -> Result<WorkStatus, WorkError>;

    /// Stop handing out work (best effort; default is a no-op).
    fn abort(&self) {}
}

// ---------------------------------------------------------------------------
// The lease manager
// ---------------------------------------------------------------------------

struct Outstanding {
    chunk: usize,
    deadline: Option<Instant>,
}

/// The one lease manager behind both [`LocalPlan`] and the `spp-serve`
/// dispatcher: a fixed partition of the (sorted) job list into chunks,
/// handed out on demand, requeued on expiry, completed idempotently.
///
/// Every method takes `now` explicitly so expiry is testable without
/// real clocks; callers pass `Instant::now()`.
pub struct WorkQueue {
    paths: Vec<PathBuf>,
    solvers: Vec<String>,
    config: SolveConfig,
    /// `None` = leases never expire (the in-process case: a local worker
    /// cannot vanish without the whole process vanishing).
    timeout: Option<Duration>,
    chunks: Vec<Range<usize>>,
    pending: VecDeque<usize>,
    outstanding: HashMap<u64, Outstanding>,
    /// Retired lease ids → chunk: every id that was granted and is no
    /// longer outstanding (expired *or* completed). A late completion
    /// from a presumed-dead worker is still valid work (cells are
    /// deterministic), so it is accepted if the chunk is still open; a
    /// *retried* completion whose first attempt was applied but whose
    /// response was lost finds its id here and gets the duplicate ack —
    /// which is what makes `complete` idempotent over a lossy transport.
    retired: HashMap<u64, usize>,
    cells: Vec<Option<Vec<CellRow>>>,
    next_lease: u64,
    leases: u64,
    requeued: u64,
    duplicates: u64,
}

/// Split `n` jobs into chunks of at most `chunk` jobs each.
pub fn chunk_ranges(n: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    (0..n.div_ceil(chunk))
        .map(|i| i * chunk..((i + 1) * chunk).min(n))
        .collect()
}

impl WorkQueue {
    /// A queue over `paths` (global job order), partitioned into the
    /// given chunks (which must cover `0..paths.len()` contiguously —
    /// empty chunks are allowed, mirroring empty shards of an
    /// over-split plan).
    pub fn new(
        paths: Vec<PathBuf>,
        solvers: Vec<String>,
        config: SolveConfig,
        chunks: Vec<Range<usize>>,
        timeout: Option<Duration>,
    ) -> Self {
        debug_assert_eq!(
            chunks.iter().map(|r| r.len()).sum::<usize>(),
            paths.len(),
            "chunks must partition the job list"
        );
        let pending = (0..chunks.len()).collect();
        let cells = chunks.iter().map(|_| None).collect();
        WorkQueue {
            paths,
            solvers,
            config,
            timeout,
            chunks,
            pending,
            outstanding: HashMap::new(),
            retired: HashMap::new(),
            cells,
            next_lease: 1,
            leases: 0,
            requeued: 0,
            duplicates: 0,
        }
    }

    /// Lease timeout (what a grant should advertise as its deadline).
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// Move expired leases back to the pending queue.
    fn expire(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.deadline.is_some_and(|d| d <= now))
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            let o = self.outstanding.remove(&id).expect("id came from the map");
            self.retired.insert(id, o.chunk);
            if self.cells[o.chunk].is_none() {
                self.pending.push_back(o.chunk);
                self.requeued += 1;
            }
        }
    }

    /// Hand out the next chunk, requeuing expired leases first.
    pub fn lease(&mut self, now: Instant) -> LeaseGrant {
        self.expire(now);
        let Some(chunk) = self.pending.pop_front() else {
            return if self.done() {
                LeaseGrant::Done
            } else {
                LeaseGrant::Wait
            };
        };
        let id = self.next_lease;
        self.next_lease += 1;
        self.leases += 1;
        self.outstanding.insert(
            id,
            Outstanding {
                chunk,
                deadline: self.timeout.and_then(|t| now.checked_add(t)),
            },
        );
        let range = self.chunks[chunk].clone();
        LeaseGrant::Work(WorkLease {
            id,
            index: chunk,
            start: range.start,
            paths: self.paths[range].to_vec(),
            solvers: self.solvers.clone(),
            config: self.config.clone(),
        })
    }

    /// Accept a completed lease. Validates that the cells are exactly
    /// the chunk's jobs × the solver list, in (job-major, solver input)
    /// order with the labels the paths imply, so a confused worker is
    /// rejected — its chunk stays open and requeues at the deadline.
    pub fn complete(
        &mut self,
        lease_id: u64,
        start: usize,
        cells: &[CellRow],
    ) -> Result<(), WorkError> {
        let bad = |err: String| WorkError::Protocol {
            context: format!("complete lease {lease_id}"),
            err,
        };
        let chunk = self
            .outstanding
            .get(&lease_id)
            .map(|o| o.chunk)
            .or_else(|| self.retired.get(&lease_id).copied())
            .ok_or_else(|| bad("unknown lease id".into()))?;
        let range = self.chunks[chunk].clone();
        if start != range.start {
            return Err(bad(format!(
                "lease covers jobs starting at {}, completion claims {start}",
                range.start
            )));
        }
        if self.cells[chunk].is_some() {
            // Already completed (by a requeued twin, or a transport-level
            // retry of the completion that stored the cells): acknowledge,
            // drop the duplicate, retire the lease.
            if self.outstanding.remove(&lease_id).is_some() {
                self.retired.insert(lease_id, chunk);
            }
            self.duplicates += 1;
            return Ok(());
        }
        if cells.len() != range.len() * self.solvers.len() {
            return Err(bad(format!(
                "{} cells, expected {} jobs x {} solvers",
                cells.len(),
                range.len(),
                self.solvers.len()
            )));
        }
        for (idx, c) in cells.iter().enumerate() {
            let want_job = range.start + idx / self.solvers.len();
            let want_solver = &self.solvers[idx % self.solvers.len()];
            let want_label = label_for(&self.paths[want_job]);
            if c.job != want_job || &c.solver != want_solver || c.label != want_label {
                return Err(bad(format!(
                    "cell {idx} is (job {}, {}, {:?}), expected (job {want_job}, {want_solver}, {want_label:?})",
                    c.job, c.solver, c.label
                )));
            }
        }
        self.cells[chunk] = Some(cells.to_vec());
        self.outstanding.remove(&lease_id);
        // Remember the id: if this completion's *response* is lost, the
        // worker's retry must land on the duplicate-ack path above, not
        // on "unknown lease".
        self.retired.insert(lease_id, chunk);
        Ok(())
    }

    /// True iff this queue ever granted `lease_id` (still outstanding,
    /// or retired by expiry or completion). A dispatcher uses it to tell
    /// a stale worker (unknown lease — e.g. one that outlived a
    /// dispatcher restart) from a malformed completion.
    pub fn knows_lease(&self, lease_id: u64) -> bool {
        self.outstanding.contains_key(&lease_id) || self.retired.contains_key(&lease_id)
    }

    /// True iff every chunk has accepted cells.
    pub fn done(&self) -> bool {
        self.cells.iter().all(Option::is_some)
    }

    /// Progress snapshot. Takes `now` because observation must see the
    /// same expiry the next lease call would apply: a dead worker's
    /// lease past its deadline reports as a *requeue*, not as healthy
    /// "outstanding" forever (nobody may be calling `lease` while an
    /// operator watches `/work/status`).
    pub fn status(&mut self, now: Instant) -> WorkStatus {
        self.expire(now);
        WorkStatus {
            jobs: self.paths.len(),
            chunks: self.chunks.len(),
            completed_chunks: self.cells.iter().filter(|c| c.is_some()).count(),
            pending: self.pending.len(),
            outstanding: self.outstanding.len(),
            leases: self.leases,
            requeued: self.requeued,
            duplicates: self.duplicates,
            done: self.done(),
        }
    }

    /// The merged report — `None` until [`Self::done`]. Chunks
    /// concatenate in partition order, which is global job order, so the
    /// result is byte-identical to a single-process run.
    pub fn merged(&self) -> Option<MergedReport> {
        if !self.done() {
            return None;
        }
        let cells = self
            .cells
            .iter()
            .flat_map(|c| c.as_ref().expect("done() checked every chunk").iter())
            .cloned()
            .collect();
        Some(MergedReport {
            solvers: self.solvers.clone(),
            cells,
        })
    }
}

// ---------------------------------------------------------------------------
// The in-process source
// ---------------------------------------------------------------------------

/// The in-process [`WorkSource`]: a mutexed [`WorkQueue`] with no lease
/// expiry (local workers cannot die independently of the queue), plus an
/// abort flag so one worker's hard error stops its siblings instead of
/// leaving them polling a queue that can never drain.
pub struct LocalPlan {
    queue: Mutex<WorkQueue>,
    aborted: AtomicBool,
}

impl LocalPlan {
    pub fn new(queue: WorkQueue) -> Self {
        LocalPlan {
            queue: Mutex::new(queue),
            aborted: AtomicBool::new(false),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WorkQueue> {
        self.queue.lock().expect("work queue mutex poisoned")
    }

    /// The merged report — `None` unless every chunk completed.
    pub fn into_merged(self) -> Option<MergedReport> {
        self.queue
            .into_inner()
            .expect("work queue mutex poisoned")
            .merged()
    }
}

impl WorkSource for LocalPlan {
    fn lease(&self) -> Result<LeaseGrant, WorkError> {
        if self.aborted.load(Ordering::Relaxed) {
            return Err(WorkError::Aborted);
        }
        Ok(self.lock().lease(Instant::now()))
    }

    fn complete(&self, lease_id: u64, start: usize, cells: &[CellRow]) -> Result<(), WorkError> {
        self.lock().complete(lease_id, start, cells)
    }

    fn progress(&self) -> Result<WorkStatus, WorkError> {
        Ok(self.lock().status(Instant::now()))
    }

    fn abort(&self) {
        self.aborted.store(true, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Lease execution and the pull loop
// ---------------------------------------------------------------------------

/// Load a lease's instance files and run every (instance, solver) cell
/// through the engine's one cache-consulting pipeline
/// ([`execute_cells`]), reducing to globally indexed portable rows plus
/// the runtime facts (CPU time, cache hits).
///
/// `solvers` must be the resolved instances of `lease.solvers` in the
/// same order (the in-process driver passes its own handles; `spp work`
/// resolves the names through the registry).
pub fn execute_lease(
    lease: &WorkLease,
    solvers: &[Box<dyn Solver>],
    cache: Option<&dyn SolveCache>,
) -> Result<(Vec<CellRow>, ShardRuntime), WorkError> {
    let mut jobs = Vec::with_capacity(lease.paths.len());
    for path in &lease.paths {
        let prec = spp_gen::fileio::read_path(path).map_err(|e| match e {
            spp_gen::fileio::FileIoError::Io { path, err } => WorkError::Io { path, err },
            other => WorkError::Load {
                path: path.display().to_string(),
                err: other.to_string(),
            },
        })?;
        jobs.push(BatchJob::new(
            label_for(path),
            SolveRequest::new(prec).with_config(lease.config.clone()),
        ));
    }
    let outcomes = execute_cells(&jobs, solvers, cache)?;
    let mut runtime = ShardRuntime {
        cpu_time: Duration::ZERO,
        cache_hits: 0,
    };
    let cells = outcomes
        .into_iter()
        .map(|c| {
            runtime.cpu_time += c.solve_time();
            if c.from_cache {
                runtime.cache_hits += 1;
            }
            CellRow {
                job: lease.start + c.job,
                label: c.label,
                solver: c.solver,
                status: c.status,
                makespan: c.makespan,
                combined_lb: c.combined_lb,
            }
        })
        .collect();
    Ok((cells, runtime))
}

/// What one worker's pull loop did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PullStats {
    /// Leases executed and completed.
    pub leases: u64,
    /// Cells reported back.
    pub cells: u64,
    /// `Wait` responses slept through.
    pub waits: u64,
}

/// How [`pull_work`] turns one lease into cells — usually a thin closure
/// over [`execute_lease`] that supplies resolved solvers and a cache.
pub type LeaseExecutor<'a> =
    dyn Fn(&WorkLease) -> Result<(Vec<CellRow>, ShardRuntime), WorkError> + Sync + 'a;

/// Called by [`pull_work`] after each lease is completed — the streaming
/// progress hook (e.g. `run_sharded`'s per-shard observer).
pub type LeaseObserver<'a> = dyn Fn(&WorkLease, &[CellRow], &ShardRuntime) + Sync + 'a;

/// The one worker loop: lease → execute → complete, until the source is
/// drained. `Wait` grants sleep `poll` and retry. A panicking `execute`
/// (a solver bug) aborts the source before resuming the panic, so
/// sibling local workers stop instead of waiting forever on the chunk
/// that will never complete; an execute *error* aborts the source and
/// returns.
///
/// Both distribution topologies run exactly this loop: `run_sharded`
/// over a [`LocalPlan`], and every `spp work` process over a
/// `RemoteLease` — the dispatcher cannot tell the difference.
pub fn pull_work(
    source: &dyn WorkSource,
    execute: &LeaseExecutor<'_>,
    on_complete: Option<&LeaseObserver<'_>>,
    poll: Duration,
) -> Result<PullStats, WorkError> {
    let mut stats = PullStats::default();
    loop {
        match source.lease()? {
            LeaseGrant::Done => return Ok(stats),
            LeaseGrant::Wait => {
                stats.waits += 1;
                std::thread::sleep(poll);
            }
            LeaseGrant::Work(lease) => {
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(&lease)));
                let (cells, runtime) = match outcome {
                    Ok(Ok(done)) => done,
                    Ok(Err(e)) => {
                        source.abort();
                        return Err(e);
                    }
                    Err(panic) => {
                        source.abort();
                        std::panic::resume_unwind(panic);
                    }
                };
                source.complete(lease.id, lease.start, &cells)?;
                stats.leases += 1;
                stats.cells += cells.len() as u64;
                if let Some(hook) = on_complete {
                    hook(&lease, &cells, &runtime);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Wire formats (`spp-work-*` documents)
// ---------------------------------------------------------------------------

const LEASE_FORMAT: &str = "spp-work-lease";
const COMPLETE_FORMAT: &str = "spp-work-complete";
const STATUS_FORMAT: &str = "spp-work-status";
const WORK_WIRE_VERSION: u64 = 1;

fn config_fields_to_json(out: &mut String, config: &SolveConfig) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "  \"epsilon\": {:.17e},", config.epsilon);
    let _ = writeln!(out, "  \"k\": {},", config.k);
    let _ = writeln!(out, "  \"shelf_r\": {:.17e},", config.shelf_r);
    let _ = writeln!(out, "  \"strict\": {},", config.strict);
    let _ = writeln!(out, "  \"validate\": {},", config.validate);
    let _ = writeln!(out, "  \"budget_ms\": {},", config.budget_ms);
    let _ = writeln!(out, "  \"improve_seed\": {},", config.improve_seed);
    let _ = writeln!(out, "  \"improve_streams\": {},", config.improve_streams);
    let _ = writeln!(out, "  \"improve_envelope\": {},", config.improve_envelope);
}

fn as_bool(v: &JsonValue, name: &str) -> Result<bool, String> {
    match v.json {
        json::Json::Bool(b) => Ok(b),
        _ => Err(format!(
            "{name}: expected bool, found {}",
            v.json.type_name()
        )),
    }
}

/// Reject documents from a future wire version instead of silently
/// misreading them as v1 (same discipline as the report parsers in
/// `sharding`).
fn check_wire_version(v: &JsonValue) -> Result<(), String> {
    let version = json::as_u64(v, "version").map_err(|e| e.to_string())?;
    if version != WORK_WIRE_VERSION {
        return Err(format!(
            "unsupported wire version {version} (this binary speaks {WORK_WIRE_VERSION})"
        ));
    }
    Ok(())
}

/// Serialize a grant as an `spp-work-lease` document (the
/// `POST /work/lease` response body).
pub fn grant_to_json(grant: &LeaseGrant, deadline_secs: Option<u64>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"format\": \"{LEASE_FORMAT}\",");
    let _ = writeln!(out, "  \"version\": {WORK_WIRE_VERSION},");
    match grant {
        LeaseGrant::Wait => {
            let _ = writeln!(out, "  \"grant\": \"wait\"");
        }
        LeaseGrant::Done => {
            let _ = writeln!(out, "  \"grant\": \"done\"");
        }
        LeaseGrant::Work(lease) => {
            let _ = writeln!(out, "  \"grant\": \"work\",");
            let _ = writeln!(out, "  \"lease\": {},", lease.id);
            let _ = writeln!(out, "  \"index\": {},", lease.index);
            let _ = writeln!(out, "  \"start\": {},", lease.start);
            let paths: Vec<String> = lease
                .paths
                .iter()
                .map(|p| format!("\"{}\"", json::escape(&p.display().to_string())))
                .collect();
            let _ = writeln!(out, "  \"paths\": [{}],", paths.join(", "));
            let solvers: Vec<String> = lease
                .solvers
                .iter()
                .map(|s| format!("\"{}\"", json::escape(s)))
                .collect();
            let _ = writeln!(out, "  \"solvers\": [{}],", solvers.join(", "));
            config_fields_to_json(&mut out, &lease.config);
            let _ = writeln!(out, "  \"deadline_secs\": {}", deadline_secs.unwrap_or(0));
        }
    }
    out.push_str("}\n");
    out
}

/// Parse an `spp-work-lease` document.
pub fn grant_parse(text: &str) -> Result<LeaseGrant, WorkError> {
    let bad = |err: String| WorkError::protocol("work lease", err);
    let doc = json::parse(text).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    let obj = json::as_obj(&doc, "$").map_err(|e| bad(e.to_string()))?;
    let field = |name: &str| json::get_field(obj, &doc, name).map_err(|e| bad(e.to_string()));
    let str_of = |v: &JsonValue, name: &str| -> Result<String, WorkError> {
        json::as_str(v, name)
            .map(str::to_string)
            .map_err(|e| bad(e.to_string()))
    };
    if str_of(field("format")?, "format")? != LEASE_FORMAT {
        return Err(bad(format!("format tag is not {LEASE_FORMAT:?}")));
    }
    check_wire_version(field("version")?).map_err(&bad)?;
    match str_of(field("grant")?, "grant")?.as_str() {
        "wait" => Ok(LeaseGrant::Wait),
        "done" => Ok(LeaseGrant::Done),
        "work" => {
            let int = |name: &str| -> Result<u64, WorkError> {
                json::as_u64(field(name)?, name).map_err(|e| bad(e.to_string()))
            };
            let num = |name: &str| -> Result<f64, WorkError> {
                json::as_num(field(name)?, name).map_err(|e| bad(e.to_string()))
            };
            let strings = |name: &str| -> Result<Vec<String>, WorkError> {
                json::as_arr(field(name)?, name)
                    .map_err(|e| bad(e.to_string()))?
                    .iter()
                    .enumerate()
                    .map(|(i, sv)| str_of(sv, &format!("{name}[{i}]")))
                    .collect()
            };
            // Absent on pre-anytime leases: default to one-shot solving.
            let opt_int = |name: &str| -> Result<u64, WorkError> {
                match json::get_field(obj, &doc, name) {
                    Ok(v) => json::as_u64(v, name).map_err(|e| bad(e.to_string())),
                    Err(_) => Ok(0),
                }
            };
            // Absent on pre-portfolio leases: default to one stream, no
            // shared envelope (the pre-portfolio behavior).
            let opt_int_default = |name: &str, default: u64| -> Result<u64, WorkError> {
                match json::get_field(obj, &doc, name) {
                    Ok(v) => json::as_u64(v, name).map_err(|e| bad(e.to_string())),
                    Err(_) => Ok(default),
                }
            };
            let opt_bool = |name: &str| -> Result<bool, WorkError> {
                match json::get_field(obj, &doc, name) {
                    Ok(v) => as_bool(v, name).map_err(&bad),
                    Err(_) => Ok(false),
                }
            };
            let config = SolveConfig {
                epsilon: num("epsilon")?,
                k: int("k")? as usize,
                shelf_r: num("shelf_r")?,
                strict: as_bool(field("strict")?, "strict").map_err(&bad)?,
                validate: as_bool(field("validate")?, "validate").map_err(&bad)?,
                budget_ms: opt_int("budget_ms")?,
                improve_seed: opt_int("improve_seed")?,
                improve_streams: opt_int_default("improve_streams", 1)?,
                improve_envelope: opt_bool("improve_envelope")?,
                // Execution detail, never serialized: each worker picks
                // its own parallelism.
                improve_workers: 0,
            };
            Ok(LeaseGrant::Work(WorkLease {
                id: int("lease")?,
                index: int("index")? as usize,
                start: int("start")? as usize,
                paths: strings("paths")?.into_iter().map(PathBuf::from).collect(),
                solvers: strings("solvers")?,
                config,
            }))
        }
        other => Err(bad(format!("unknown grant kind {other:?}"))),
    }
}

/// Serialize a completion as an `spp-work-complete` document (the
/// `POST /work/complete` request body).
pub fn complete_to_json(lease_id: u64, start: usize, cells: &[CellRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"format\": \"{COMPLETE_FORMAT}\",");
    let _ = writeln!(out, "  \"version\": {WORK_WIRE_VERSION},");
    let _ = writeln!(out, "  \"lease\": {lease_id},");
    let _ = writeln!(out, "  \"start\": {start},");
    out.push_str("  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 < cells.len() { "," } else { "" };
        let _ = write!(out, "\n    {}{sep}", crate::sharding::cell_to_json(c));
    }
    out.push_str(if cells.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

/// Parse an `spp-work-complete` document into `(lease id, start, cells)`.
pub fn complete_parse(text: &str) -> Result<(u64, usize, Vec<CellRow>), WorkError> {
    let bad = |err: String| WorkError::protocol("work completion", err);
    let doc = json::parse(text).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    let obj = json::as_obj(&doc, "$").map_err(|e| bad(e.to_string()))?;
    let field = |name: &str| json::get_field(obj, &doc, name).map_err(|e| bad(e.to_string()));
    let format = json::as_str(field("format")?, "format").map_err(|e| bad(e.to_string()))?;
    if format != COMPLETE_FORMAT {
        return Err(bad(format!("format tag is not {COMPLETE_FORMAT:?}")));
    }
    check_wire_version(field("version")?).map_err(&bad)?;
    let int = |name: &str| -> Result<u64, WorkError> {
        json::as_u64(field(name)?, name).map_err(|e| bad(e.to_string()))
    };
    let cells_raw = json::as_arr(field("cells")?, "cells").map_err(|e| bad(e.to_string()))?;
    let mut cells = Vec::with_capacity(cells_raw.len());
    for (i, cv) in cells_raw.iter().enumerate() {
        cells.push(
            crate::sharding::cell_parse(cv, &format!("cells[{i}]"))
                .map_err(|e| bad(e.to_string()))?,
        );
    }
    Ok((int("lease")?, int("start")? as usize, cells))
}

/// Serialize a status snapshot as an `spp-work-status` document (the
/// `GET /work/status` response body).
pub fn status_to_json(status: &WorkStatus) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"format\": \"{STATUS_FORMAT}\",");
    let _ = writeln!(out, "  \"version\": {WORK_WIRE_VERSION},");
    let _ = writeln!(out, "  \"jobs\": {},", status.jobs);
    let _ = writeln!(out, "  \"chunks\": {},", status.chunks);
    let _ = writeln!(out, "  \"completed_chunks\": {},", status.completed_chunks);
    let _ = writeln!(out, "  \"pending\": {},", status.pending);
    let _ = writeln!(out, "  \"outstanding\": {},", status.outstanding);
    let _ = writeln!(out, "  \"leases\": {},", status.leases);
    let _ = writeln!(out, "  \"requeued\": {},", status.requeued);
    let _ = writeln!(out, "  \"duplicates\": {},", status.duplicates);
    let _ = writeln!(out, "  \"done\": {}", status.done);
    out.push_str("}\n");
    out
}

/// Parse an `spp-work-status` document.
pub fn status_parse(text: &str) -> Result<WorkStatus, WorkError> {
    let bad = |err: String| WorkError::protocol("work status", err);
    let doc = json::parse(text).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    let obj = json::as_obj(&doc, "$").map_err(|e| bad(e.to_string()))?;
    let field = |name: &str| json::get_field(obj, &doc, name).map_err(|e| bad(e.to_string()));
    let format = json::as_str(field("format")?, "format").map_err(|e| bad(e.to_string()))?;
    if format != STATUS_FORMAT {
        return Err(bad(format!("format tag is not {STATUS_FORMAT:?}")));
    }
    check_wire_version(field("version")?).map_err(&bad)?;
    let int = |name: &str| -> Result<u64, WorkError> {
        json::as_u64(field(name)?, name).map_err(|e| bad(e.to_string()))
    };
    Ok(WorkStatus {
        jobs: int("jobs")? as usize,
        chunks: int("chunks")? as usize,
        completed_chunks: int("completed_chunks")? as usize,
        pending: int("pending")? as usize,
        outstanding: int("outstanding")? as usize,
        leases: int("leases")?,
        requeued: int("requeued")?,
        duplicates: int("duplicates")?,
        done: as_bool(field("done")?, "done").map_err(bad)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::CellStatus;

    fn paths(n: usize) -> Vec<PathBuf> {
        (0..n)
            .map(|i| PathBuf::from(format!("i{i:02}.json")))
            .collect()
    }

    fn queue(n: usize, chunk: usize, timeout: Option<Duration>) -> WorkQueue {
        WorkQueue::new(
            paths(n),
            vec!["nfdh".into(), "ffdh".into()],
            SolveConfig::default(),
            chunk_ranges(n, chunk),
            timeout,
        )
    }

    fn rows_for(lease: &WorkLease) -> Vec<CellRow> {
        let mut cells = Vec::new();
        for (i, path) in lease.paths.iter().enumerate() {
            for solver in &lease.solvers {
                cells.push(CellRow {
                    job: lease.start + i,
                    label: label_for(path),
                    solver: solver.clone(),
                    status: CellStatus::Solved,
                    makespan: (lease.start + i) as f64 + 1.0,
                    combined_lb: 1.0,
                });
            }
        }
        cells
    }

    fn take(q: &mut WorkQueue, now: Instant) -> WorkLease {
        match q.lease(now) {
            LeaseGrant::Work(l) => l,
            other => panic!("expected work, got {other:?}"),
        }
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(chunk_ranges(3, 5), vec![0..3]);
        assert!(chunk_ranges(0, 4).is_empty());
        // chunk 0 clamps to 1 instead of dividing by zero.
        assert_eq!(chunk_ranges(2, 0), vec![0..1, 1..2]);
    }

    #[test]
    fn lease_complete_drain() {
        let mut q = queue(5, 2, None);
        let now = Instant::now();
        let mut leases = Vec::new();
        while let LeaseGrant::Work(l) = q.lease(now) {
            leases.push(l);
        }
        assert_eq!(leases.len(), 3);
        assert_eq!(leases[0].start, 0);
        assert_eq!(leases[2].paths.len(), 1);
        // Not done until completions arrive; the queue says Wait.
        assert_eq!(q.lease(now), LeaseGrant::Wait);
        for l in &leases {
            q.complete(l.id, l.start, &rows_for(l)).unwrap();
        }
        assert!(q.done());
        assert_eq!(q.lease(now), LeaseGrant::Done);
        let merged = q.merged().unwrap();
        assert_eq!(merged.cells.len(), 10);
        // Global order: job-major, solver input order.
        for (i, c) in merged.cells.iter().enumerate() {
            assert_eq!(c.job, i / 2);
            assert_eq!(c.solver, if i % 2 == 0 { "nfdh" } else { "ffdh" });
        }
        let s = q.status(now);
        assert_eq!((s.leases, s.requeued, s.duplicates), (3, 0, 0));
    }

    #[test]
    fn expired_lease_requeues_and_late_completion_is_accepted() {
        let mut q = queue(2, 2, Some(Duration::from_secs(10)));
        let t0 = Instant::now();
        let first = take(&mut q, t0);
        // Before the deadline nothing requeues.
        assert_eq!(q.lease(t0 + Duration::from_secs(5)), LeaseGrant::Wait);
        // After the deadline the chunk is re-granted under a fresh id.
        let second = take(&mut q, t0 + Duration::from_secs(11));
        assert_ne!(first.id, second.id);
        assert_eq!(first.start, second.start);
        assert_eq!(q.status(t0 + Duration::from_secs(11)).requeued, 1);

        // The presumed-dead worker completes late: accepted (its cells
        // are as good as anyone's), chunk closes.
        q.complete(first.id, first.start, &rows_for(&first))
            .unwrap();
        assert!(q.done());
        // The requeued twin then completes too: acknowledged duplicate,
        // nothing double-counted.
        q.complete(second.id, second.start, &rows_for(&second))
            .unwrap();
        assert_eq!(q.status(t0 + Duration::from_secs(11)).duplicates, 1);
        assert_eq!(q.merged().unwrap().cells.len(), 4);
    }

    #[test]
    fn status_applies_expiry_without_a_lease_call() {
        // All workers dead, nobody calling lease(): an observer polling
        // status must still see the requeue once the deadline passes —
        // not "outstanding" forever.
        let mut q = queue(2, 2, Some(Duration::from_secs(10)));
        let t0 = Instant::now();
        let _held = take(&mut q, t0);
        let before = q.status(t0 + Duration::from_secs(5));
        assert_eq!((before.outstanding, before.requeued), (1, 0));
        let after = q.status(t0 + Duration::from_secs(11));
        assert_eq!((after.outstanding, after.requeued), (0, 1));
        assert_eq!(after.pending, 1, "the chunk is back in the queue");
    }

    #[test]
    fn retried_completion_of_a_completed_lease_is_a_duplicate_ack() {
        // The response-lost-in-transit case: the completion was applied,
        // the worker never heard, and re-sends the SAME lease id. That
        // must be a duplicate ack, never "unknown lease" (which would
        // hard-fail a worker whose work succeeded).
        let mut q = queue(2, 2, None);
        let lease = take(&mut q, Instant::now());
        let rows = rows_for(&lease);
        q.complete(lease.id, lease.start, &rows).unwrap();
        assert!(q.knows_lease(lease.id), "completed ids stay known");
        q.complete(lease.id, lease.start, &rows).unwrap();
        assert_eq!(q.status(Instant::now()).duplicates, 1);
        assert_eq!(q.merged().unwrap().cells.len(), 4);
    }

    #[test]
    fn completion_validates_structure() {
        let mut q = queue(2, 2, None);
        let lease = take(&mut q, Instant::now());
        // Unknown lease id.
        let err = q.complete(99, 0, &rows_for(&lease)).unwrap_err();
        assert!(err.to_string().contains("unknown lease"), "{err}");
        // Wrong start.
        assert!(q.complete(lease.id, 1, &rows_for(&lease)).is_err());
        // Wrong cell count.
        assert!(q.complete(lease.id, 0, &rows_for(&lease)[1..]).is_err());
        // Wrong solver order.
        let mut swapped = rows_for(&lease);
        swapped.swap(0, 1);
        assert!(q.complete(lease.id, 0, &swapped).is_err());
        // Wrong label.
        let mut mislabeled = rows_for(&lease);
        mislabeled[0].label = "nope".into();
        assert!(q.complete(lease.id, 0, &mislabeled).is_err());
        // A rejected completion leaves the chunk open.
        assert!(!q.done());
        q.complete(lease.id, 0, &rows_for(&lease)).unwrap();
        assert!(q.done());
    }

    #[test]
    fn empty_chunks_complete_with_no_cells() {
        // Shard-shaped partition with empty shards (more shards than
        // files): empty chunks lease out and complete with zero cells.
        let mut q = WorkQueue::new(
            paths(1),
            vec!["nfdh".into()],
            SolveConfig::default(),
            vec![0..0, 0..1, 1..1],
            None,
        );
        let now = Instant::now();
        let mut leased = 0;
        while let LeaseGrant::Work(l) = q.lease(now) {
            leased += 1;
            q.complete(l.id, l.start, &rows_for(&l)).unwrap();
        }
        assert_eq!(leased, 3);
        assert_eq!(q.merged().unwrap().cells.len(), 1);
    }

    #[test]
    fn local_plan_pull_loop_drains_concurrently() {
        let source = LocalPlan::new(queue(9, 2, None));
        let execute = |lease: &WorkLease| {
            let cells = rows_for(lease);
            Ok((
                cells,
                ShardRuntime {
                    cpu_time: Duration::ZERO,
                    cache_hits: 0,
                },
            ))
        };
        spp_par::run_workers(3, |_| {
            pull_work(&source, &execute, None, Duration::from_millis(1)).unwrap();
        });
        assert!(source.progress().unwrap().done);
        let merged = source.into_merged().unwrap();
        assert_eq!(merged.cells.len(), 18);
        for (i, c) in merged.cells.iter().enumerate() {
            assert_eq!(c.job, i / 2);
        }
    }

    #[test]
    fn pull_loop_aborts_siblings_on_error() {
        let source = LocalPlan::new(queue(8, 1, None));
        let failures = std::sync::atomic::AtomicUsize::new(0);
        let execute = |lease: &WorkLease| -> Result<(Vec<CellRow>, ShardRuntime), WorkError> {
            if lease.start == 3 {
                return Err(WorkError::Load {
                    path: "i03.json".into(),
                    err: "boom".into(),
                });
            }
            Ok((
                rows_for(lease),
                ShardRuntime {
                    cpu_time: Duration::ZERO,
                    cache_hits: 0,
                },
            ))
        };
        spp_par::run_workers(2, |_| {
            if pull_work(&source, &execute, None, Duration::from_millis(1)).is_err() {
                failures.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        });
        // At least the worker that hit the bad lease failed; no worker
        // hung waiting for the chunk that will never complete.
        assert!(failures.load(std::sync::atomic::Ordering::SeqCst) >= 1);
        assert!(source.into_merged().is_none());
    }

    #[test]
    fn wire_formats_roundtrip() {
        let lease = WorkLease {
            id: 7,
            index: 2,
            start: 4,
            paths: paths(3),
            solvers: vec!["nfdh".into(), "aptas".into()],
            config: SolveConfig {
                epsilon: 0.25,
                ..SolveConfig::default()
            },
        };
        for grant in [
            LeaseGrant::Work(lease.clone()),
            LeaseGrant::Wait,
            LeaseGrant::Done,
        ] {
            let text = grant_to_json(&grant, Some(60));
            assert_eq!(grant_parse(&text).unwrap(), grant, "{text}");
        }
        // Config knobs survive the wire bit-for-bit (signature equality).
        let LeaseGrant::Work(back) =
            grant_parse(&grant_to_json(&LeaseGrant::Work(lease.clone()), None)).unwrap()
        else {
            panic!("expected work grant");
        };
        assert_eq!(back.config.signature(), lease.config.signature());

        let cells = rows_for(&lease);
        let text = complete_to_json(7, 4, &cells);
        let (id, start, back) = complete_parse(&text).unwrap();
        assert_eq!((id, start), (7, 4));
        assert_eq!(back, cells);
        // Empty completions (an empty chunk) roundtrip too.
        let (_, _, none) = complete_parse(&complete_to_json(1, 0, &[])).unwrap();
        assert!(none.is_empty());

        let status = WorkStatus {
            jobs: 9,
            chunks: 5,
            completed_chunks: 3,
            pending: 1,
            outstanding: 1,
            leases: 6,
            requeued: 2,
            duplicates: 1,
            done: false,
        };
        assert_eq!(status_parse(&status_to_json(&status)).unwrap(), status);

        // Pre-portfolio leases (no improve_streams/improve_envelope
        // fields) still parse, defaulting to the single-stream search.
        let text = grant_to_json(&LeaseGrant::Work(lease.clone()), None);
        let stripped: String = text
            .lines()
            .filter(|l| !l.contains("improve_streams") && !l.contains("improve_envelope"))
            .map(|l| format!("{l}\n"))
            .collect();
        let LeaseGrant::Work(old) = grant_parse(&stripped).unwrap() else {
            panic!("expected work grant");
        };
        assert_eq!(old.config.improve_streams, 1);
        assert!(!old.config.improve_envelope);

        // Malformed documents are named errors, not panics.
        assert!(grant_parse("{}").is_err());
        assert!(complete_parse("{\"format\": \"nope\"}").is_err());
        assert!(status_parse("not json").is_err());
        // A future wire version is rejected by name, never misread as v1.
        let bump = |doc: String| doc.replace("\"version\": 1", "\"version\": 2");
        let grant_err = grant_parse(&bump(grant_to_json(&LeaseGrant::Done, None))).unwrap_err();
        assert!(grant_err.to_string().contains("unsupported wire version"));
        assert!(complete_parse(&bump(complete_to_json(1, 0, &[]))).is_err());
        assert!(status_parse(&bump(status_to_json(&status))).is_err());
    }
}
