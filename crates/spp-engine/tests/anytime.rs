//! Property tests for the anytime improvement subsystem at the engine
//! seam: determinism per (instance digest, improve seed), never-worse
//! makespans, and feasibility of the improved placements across every
//! suite family — deep-chain DAGs and bursty releases included.

use spp_engine::{solve, Registry, SolveRequest, Validation};
use spp_gen::suite::{self, FAMILIES};

const EPS: f64 = 1e-9;

/// A solver honoring the constraint families a scenario carries, so the
/// improved placement can be validated strictly (nothing ignored).
fn solver_for(prec: &spp_dag::PrecInstance) -> &'static str {
    if prec.dag.edge_count() > 0 {
        "dc-nfdh"
    } else if prec.inst.items().iter().any(|it| it.release > 0.0) {
        "skyline-release"
    } else {
        "skyline"
    }
}

/// The improvement search sequence is a pure function of the instance
/// digest and `improve_seed`: two budgeted solves of the same request
/// agree bit-for-bit — makespan, rounds, and every placement coordinate.
/// (The deadline only truncates; these instances converge long before
/// the generous budget expires, so truncation never fires.)
#[test]
fn budgeted_solves_are_deterministic_per_digest_and_seed() {
    let registry = Registry::builtin();
    for scenario in suite::suite(11, 16, FAMILIES.len()) {
        let name = solver_for(&scenario.prec);
        let solver = registry.get(name).unwrap();
        let mut request = SolveRequest::new(scenario.prec);
        request.config.budget_ms = 4_000;
        request.config.improve_seed = 42;
        let a = solve(&*solver, &request).unwrap();
        let b = solve(&*solver, &request).unwrap();
        assert_eq!(
            a.makespan.to_bits(),
            b.makespan.to_bits(),
            "{}: same (digest, seed) diverged on makespan",
            scenario.name
        );
        assert_eq!(
            a.seed_makespan.to_bits(),
            b.seed_makespan.to_bits(),
            "{}: seed makespans diverged",
            scenario.name
        );
        assert_eq!(
            a.improve_rounds, b.improve_rounds,
            "{}: round counts diverged (budget truncation should not fire here)",
            scenario.name
        );
        for it in request.prec.inst.items() {
            let (pa, pb) = (a.placement.pos(it.id), b.placement.pos(it.id));
            assert_eq!(
                (pa.x.to_bits(), pa.y.to_bits()),
                (pb.x.to_bits(), pb.y.to_bits()),
                "{}: item {} placed differently across identical runs",
                scenario.name,
                it.id
            );
        }
    }
}

/// Across all 8 suite families: the budgeted makespan never exceeds the
/// seed, stays above every lower bound, and the improved placement is
/// feasible under the instance's precedence edges and release times
/// (strict validation — nothing ignored).
#[test]
fn improvement_is_feasible_and_never_worse_on_every_family() {
    let registry = Registry::builtin();
    // Two scenarios per family, distinct seeds.
    for scenario in suite::suite(23, 24, 2 * FAMILIES.len()) {
        let name = solver_for(&scenario.prec);
        let solver = registry.get(name).unwrap();
        let mut request = SolveRequest::new(scenario.prec);
        request.config.strict = true;
        request.config.budget_ms = 300;
        let report = solve(&*solver, &request)
            .unwrap_or_else(|e| panic!("{name} refused {}: {e}", scenario.name));
        assert_eq!(
            report.validation,
            Validation::Passed,
            "{name} on {}: improved placement failed strict validation: {:?}",
            scenario.name,
            report.validation
        );
        assert!(
            report.makespan <= report.seed_makespan + EPS,
            "{name} on {}: budgeted makespan {} exceeds seed {}",
            scenario.name,
            report.makespan,
            report.seed_makespan
        );
        for (bound_name, bound) in [
            ("AREA", report.bounds.area),
            ("F", report.bounds.critical_path),
            ("release", report.bounds.release),
            ("combined", report.bounds.combined),
        ] {
            assert!(
                report.makespan >= bound - EPS,
                "{name} on {}: improved makespan {} fell below {bound_name} LB {}",
                scenario.name,
                report.makespan,
                bound
            );
        }
    }
}

/// `budget_ms = 0` is the one-shot special case: no improvement phase,
/// no rounds, seed makespan equals the final makespan.
#[test]
fn zero_budget_is_exactly_the_one_shot_path() {
    let registry = Registry::builtin();
    for scenario in suite::suite(5, 20, FAMILIES.len()) {
        let name = solver_for(&scenario.prec);
        let solver = registry.get(name).unwrap();
        let request = SolveRequest::new(scenario.prec);
        let report = solve(&*solver, &request).unwrap();
        assert_eq!(report.improve_rounds, 0, "{}", scenario.name);
        assert_eq!(
            report.makespan.to_bits(),
            report.seed_makespan.to_bits(),
            "{}",
            scenario.name
        );
        assert!(
            report.phase("improve").is_none(),
            "{}: improve phase recorded without a budget",
            scenario.name
        );
    }
}
