//! Concurrency safety of the shared `DiskCache` directory — the property
//! the multi-machine topology (shard workers + one shared cache, possibly
//! through `spp serve`) stands on:
//!
//! **a reader of a live cache key never observes a partial entry** —
//! every `get` returns either `None` (key not yet published) or a fully
//! valid cell, and once a key has been published, concurrent same-key
//! writers can never make it transiently unreadable.
//!
//! Against the pre-fix `DiskCache::put` (a bare `std::fs::write` to the
//! live path, which truncates before writing), these tests fail: a reader
//! scheduled inside the truncate-write window sees an empty or
//! half-written file, entry validation rejects it, and a key that *was*
//! warm turns into a miss — i.e. a recompute storm exactly when many
//! workers share the cache. With the temp-file + `rename` fix, the live
//! name always points at a complete entry and every read hits.

use spp_engine::cache::{entry_parse, entry_to_json, write_entry_atomic, CacheKey, CachedCell};
use spp_engine::{CellStatus, DiskCache, SolveCache, SolveConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spp_cache_concurrency_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(tag: &str) -> CacheKey {
    CacheKey {
        digest: spp_core::InstanceDigest::of_canonical_json(tag),
        solver: "nfdh".into(),
        config_sig: SolveConfig::default().signature(),
    }
}

fn cell() -> CachedCell {
    CachedCell {
        status: CellStatus::Solved,
        makespan: 12.5,
        combined_lb: 6.25,
        improved_from: None,
    }
}

const WRITERS: usize = 4;
const READERS: usize = 4;
const ROUNDS: usize = 400;

/// N threads hammer `put` on one key while readers `get` it: once the key
/// is published, no reader may ever see a miss (which is what a torn
/// write degrades to) — only the fully valid cell.
#[test]
fn concurrent_same_key_writers_never_make_a_published_key_unreadable() {
    let dir = tmp("hammer");
    let writer = DiskCache::new(&dir, false).unwrap();
    let k = key("hammer");
    let c = cell();
    writer.put(&k, &c).unwrap(); // publish once before the storm

    let reader = DiskCache::new(&dir, false).unwrap();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            scope.spawn(|| {
                let mine = DiskCache::new(&dir, false).unwrap();
                for _ in 0..ROUNDS {
                    mine.put(&k, &c).unwrap();
                }
            });
        }
        for _ in 0..READERS {
            scope.spawn(|| {
                while !done.load(Ordering::Relaxed) {
                    match reader.get(&k) {
                        Some(got) => assert_eq!(got, c, "reader saw a different cell"),
                        None => {
                            // Record the failure before the panic so the
                            // stats assertion below also trips.
                            panic!("published key turned unreadable mid-write");
                        }
                    }
                }
            });
        }
        // Let readers overlap the whole write storm, then stop them; the
        // scope joins the writers (who run to completion) either way.
        std::thread::sleep(std::time::Duration::from_millis(300));
        done.store(true, Ordering::Relaxed);
    });

    let stats = reader.stats();
    assert_eq!(stats.rejected, 0, "a reader observed a partial entry");
    assert_eq!(stats.misses, 0, "a published key turned into a miss");
    assert!(stats.hits > 0, "readers never actually read");

    // After the storm the live file is byte-exact and no temp debris
    // survived the renames.
    let text = std::fs::read_to_string(dir.join(k.file_name())).unwrap();
    assert_eq!(text, entry_to_json(&k, &c));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same property at the raw-file level, without `DiskCache::get`'s
/// forgiving miss semantics in the loop: every successful read of the
/// live path must parse as a complete entry. A truncate-then-write `put`
/// fails this within a handful of rounds.
#[test]
fn raw_reads_of_the_live_path_always_parse() {
    let dir = tmp("raw");
    let cache = DiskCache::new(&dir, false).unwrap();
    let k = key("raw");
    let c = cell();
    let path = dir.join(k.file_name());
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            scope.spawn(|| {
                for _ in 0..ROUNDS {
                    cache.put(&k, &c).unwrap();
                }
            });
        }
        for _ in 0..READERS {
            scope.spawn(|| {
                while !done.load(Ordering::Relaxed) {
                    // NotFound before first publication is fine; any text
                    // we do read must be a complete entry.
                    if let Ok(text) = std::fs::read_to_string(&path) {
                        let parsed = entry_parse(&text);
                        assert!(
                            parsed.is_ok(),
                            "raw read returned a partial entry ({} bytes): {:?}",
                            text.len(),
                            parsed.unwrap_err()
                        );
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        done.store(true, Ordering::Relaxed);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent *distinct*-key writers through the shared helper: all keys
/// land, each exactly once, no temp debris.
#[test]
fn concurrent_distinct_key_writers_all_publish() {
    let dir = tmp("distinct");
    std::fs::create_dir_all(&dir).unwrap();
    let keys: Vec<CacheKey> = (0..32).map(|i| key(&format!("k{i}"))).collect();
    std::thread::scope(|scope| {
        for k in &keys {
            let dir = &dir;
            scope.spawn(move || {
                let text = entry_to_json(k, &cell());
                write_entry_atomic(dir, &k.file_name(), &text).unwrap();
            });
        }
    });
    let scanned = spp_engine::cache::scan_dir(&dir).unwrap();
    assert_eq!(scanned.len(), 32);
    for s in scanned {
        let (k, c) = s.entry.expect("every concurrent write is a valid entry");
        assert!(keys.contains(&k));
        assert_eq!(c, cell());
    }
    let gc = spp_engine::cache::gc_dir(&dir).unwrap();
    assert_eq!((gc.kept, gc.removed.len()), (32, 0), "temp debris leaked");
    let _ = std::fs::remove_dir_all(&dir);
}
