//! Correctness of the content-addressed solve cache against the one
//! property that justifies its existence: **a warm run is the cold run**.
//!
//! * Across every `spp suite` scenario family (deep-chain DAGs, bursty /
//!   poisson releases, skyline adversaries, tall-wide, uniform-height),
//!   rerunning a file batch over a populated cache must produce
//!   byte-identical rendered output with zero solver invocations.
//! * A damaged cache — corrupted, truncated, or swapped entries — must
//!   degrade to recomputation, never to served garbage.

use proptest::prelude::*;
use spp_engine::cache::{entry_to_json, CacheKey, CachedCell};
use spp_engine::{
    execute_cells, run_sharded, BatchJob, CellStatus, DiskCache, MemoryCache, Registry, ShardPlan,
    SolveCache, SolveConfig, SolveRequest, Solver,
};
use std::path::PathBuf;

fn solvers(names: &[&str]) -> Vec<Box<dyn Solver>> {
    let registry = Registry::builtin();
    names.iter().map(|n| registry.get(n).unwrap()).collect()
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spp_cache_correctness_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One warm-vs-cold equivalence check over a generated suite: returns the
/// rendered (cells + table) outputs of both runs plus the warm cache's
/// miss count.
fn cold_then_warm(seed: u64, n: usize, count: usize, tag: &str) -> (String, String, u64) {
    let suite_dir = tmp(&format!("suite_{tag}"));
    spp_gen::suite::write_suite(&suite_dir, seed, n, count).unwrap();
    let cache_dir = tmp(&format!("cache_{tag}"));
    // greedy + nfdh cover precedence and plain; keep the matrix small so
    // the property test stays fast per case.
    let solvers = solvers(&["nfdh", "greedy"]);
    let config = SolveConfig::default();
    let plan = ShardPlan::from_dir(&suite_dir, 3).unwrap();

    let cold_cache = DiskCache::new(&cache_dir, false).unwrap();
    let cold = run_sharded(&plan, &solvers, &config, Some(&cold_cache), None).unwrap();
    let warm_cache = DiskCache::new(&cache_dir, false).unwrap();
    let warm = run_sharded(&plan, &solvers, &config, Some(&warm_cache), None).unwrap();

    let render = |m: &spp_engine::MergedReport| format!("{}{}", m.render_cells(), m.render_table());
    let misses = warm_cache.stats().misses;
    let _ = std::fs::remove_dir_all(&suite_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
    (render(&cold), render(&warm), misses)
}

/// The acceptance-criterion check, pinned on a suite large enough to hit
/// all 8 scenario families: warm output is byte-identical, with zero
/// solver invocations.
#[test]
fn warm_cache_rerun_is_byte_identical_across_all_families() {
    assert_eq!(spp_gen::suite::FAMILIES.len(), 8);
    let (cold, warm, misses) = cold_then_warm(2006, 16, 16, "all_families");
    assert_eq!(cold, warm, "warm rendered output differs from cold");
    assert_eq!(misses, 0, "warm run invoked a solver");
}

proptest! {
    // Each case generates + solves a suite twice; keep the case count
    // moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The same equivalence over random seeds and sizes — every case
    /// still cycles through all 8 families (count = 8 exactly).
    #[test]
    fn warm_cache_rerun_is_byte_identical(seed in 0u64..10_000, n in 6usize..20) {
        let (cold, warm, misses) = cold_then_warm(seed, n, 8, &format!("prop_{seed}_{n}"));
        prop_assert_eq!(&cold, &warm, "warm output diverged (seed {})", seed);
        prop_assert_eq!(misses, 0, "warm run invoked a solver (seed {})", seed);
    }
}

/// Damaged entries of every flavor are recomputed, never served. The
/// damage menu: garbage bytes, every truncation prefix of a real entry,
/// and a *well-formed entry for different content* dropped onto this
/// key's file (the digest-mismatch case).
#[test]
fn damaged_cache_entries_are_never_served() {
    let suite_dir = tmp("damage_suite");
    spp_gen::suite::write_suite(&suite_dir, 7, 12, 4).unwrap();
    let cache_dir = tmp("damage_cache");
    let solvers = solvers(&["nfdh"]);
    let config = SolveConfig::default();
    let plan = ShardPlan::from_dir(&suite_dir, 1).unwrap();

    let cache = DiskCache::new(&cache_dir, false).unwrap();
    let reference = run_sharded(&plan, &solvers, &config, Some(&cache), None).unwrap();
    let entries = spp_engine::cache::scan_dir(&cache_dir).unwrap();
    assert_eq!(entries.len(), 4);
    let victim = &entries[0].path;
    let intact = std::fs::read_to_string(victim).unwrap();

    let mut damages: Vec<(String, String)> = vec![
        ("garbage".into(), "not a cache entry at all".into()),
        ("empty".into(), String::new()),
    ];
    for cut in (0..intact.len()).step_by(intact.len() / 8 + 1) {
        damages.push((format!("truncated[..{cut}]"), intact[..cut].to_string()));
    }
    // A valid entry whose embedded key belongs to *other* content: the
    // file name says one digest, the payload says another. Served naively
    // it would report a wrong makespan; digest validation must refuse it.
    let foreign_key = CacheKey {
        digest: spp_core::InstanceDigest::of_canonical_json("something else"),
        solver: "nfdh".into(),
        config_sig: config.signature(),
    };
    let foreign = entry_to_json(
        &foreign_key,
        &CachedCell {
            status: CellStatus::Solved,
            makespan: 1234.5,
            combined_lb: 1.0,
            improved_from: None,
        },
    );
    damages.push(("digest-mismatch".into(), foreign));

    for (what, text) in damages {
        std::fs::write(victim, &text).unwrap();
        let healed = DiskCache::new(&cache_dir, false).unwrap();
        let rerun = run_sharded(&plan, &solvers, &config, Some(&healed), None).unwrap();
        assert_eq!(
            reference.render_cells(),
            rerun.render_cells(),
            "damage {what:?} leaked into the output"
        );
        let stats = healed.stats();
        assert_eq!(stats.misses, 1, "damage {what:?}: exactly one recompute");
        assert_eq!(stats.rejected, 1, "damage {what:?}: rejection counted");
        assert_eq!(stats.writes, 1, "damage {what:?}: entry healed");
        // And the healed file is the intact entry again.
        assert_eq!(std::fs::read_to_string(victim).unwrap(), intact);
    }

    let _ = std::fs::remove_dir_all(&suite_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// The memory and disk backends agree cell-for-cell on the same
/// workload: backend choice is an operational knob, not a semantic one.
#[test]
fn memory_and_disk_backends_agree() {
    let suite_dir = tmp("backend_suite");
    spp_gen::suite::write_suite(&suite_dir, 11, 10, 8).unwrap();
    let mut jobs = Vec::new();
    let plan = ShardPlan::from_dir(&suite_dir, 1).unwrap();
    for path in plan.paths() {
        let prec = spp_gen::fileio::read_path(path).unwrap();
        jobs.push(BatchJob::new(
            path.file_stem().unwrap().to_string_lossy().into_owned(),
            SolveRequest::new(prec),
        ));
    }
    let solvers = solvers(&["nfdh", "ffdh"]);

    let mem = MemoryCache::new();
    let disk_dir = tmp("backend_disk");
    let disk = DiskCache::new(&disk_dir, false).unwrap();
    for cache in [&mem as &dyn SolveCache, &disk as &dyn SolveCache] {
        execute_cells(&jobs, &solvers, Some(cache)).unwrap();
        let warm = execute_cells(&jobs, &solvers, Some(cache)).unwrap();
        assert!(warm.iter().all(|c| c.from_cache));
    }
    let from_mem = execute_cells(&jobs, &solvers, Some(&mem)).unwrap();
    let from_disk = execute_cells(&jobs, &solvers, Some(&disk)).unwrap();
    for (a, b) in from_mem.iter().zip(&from_disk) {
        assert_eq!(a.solver, b.solver);
        assert_eq!(a.status, b.status);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.combined_lb.to_bits(), b.combined_lb.to_bits());
    }
    let _ = std::fs::remove_dir_all(&suite_dir);
    let _ = std::fs::remove_dir_all(&disk_dir);
}
