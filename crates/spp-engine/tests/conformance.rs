//! Cross-solver conformance suite: one table-driven test that holds
//! every registry entry to the same three obligations on seeded
//! workloads matching its capability flags —
//!
//! (a) the placement validates (strict mode, so nothing is ignored),
//! (b) the makespan is ≥ every lower bound the request carries,
//! (c) if the entry advertises a performance bound, the makespan is
//!     ≤ the bound evaluated on the request.
//!
//! No per-solver boilerplate: a new registry entry is covered the moment
//! it is registered, on workloads chosen purely from its flags.

use rand::{rngs::StdRng, SeedableRng};
use spp_core::Instance;
use spp_dag::PrecInstance;
use spp_engine::{solve, Capabilities, Registry, SolveRequest, Validation};
use spp_gen::rects::DagFamily;
use spp_gen::release::ReleaseParams;

const EPS: f64 = 1e-9;

/// Release model shared by every released workload: widths ≥ 1/4 and
/// heights ≤ 1, so the APTAS (K = 8 by default) accepts them too.
fn release_params() -> ReleaseParams {
    ReleaseParams {
        k: 4,
        column_widths: true,
        h: (0.1, 1.0),
    }
}

/// Attach non-decreasing-by-id releases to an instance. Combined with
/// DAG families whose edges ascend in id (layered, deep-chain), every
/// edge then points to an equal-or-later release class — the combined
/// model both `dc-release` and `combined-greedy` are defined on.
fn with_monotone_releases(inst: &Instance, r_max: f64) -> Instance {
    let n = inst.len().max(2);
    Instance::new(
        inst.items()
            .iter()
            .map(|it| {
                let r = r_max * it.id as f64 / (n - 1) as f64;
                spp_core::Item::with_release(it.id, it.w, it.h, r)
            })
            .collect(),
    )
    .expect("releases are finite and non-negative")
}

/// Seeded workloads matching a capability set. Sizes stay small enough
/// that evaluating the APTAS advertised bound (exact `OPT_f` by column
/// generation) is cheap.
fn workloads_for(caps: Capabilities) -> Vec<(String, PrecInstance)> {
    let mut out = Vec::new();
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xC0DE + seed);
        if caps.uniform_height_only {
            // §2.2 model: all heights equal; DAG iff precedence is honored.
            let inst = spp_gen::rects::uniform_height(&mut rng, 18, (0.05, 0.95));
            let dag = if caps.precedence {
                DagFamily::Layered.build(&mut rng, inst.len())
            } else {
                spp_dag::Dag::empty(inst.len())
            };
            out.push((format!("uniform-h/{seed}"), PrecInstance::new(inst, dag)));
        } else if caps.precedence && caps.release {
            // Combined model: ascending-id DAG + monotone releases.
            let inst = spp_gen::release::no_releases(&mut rng, 14, release_params());
            let inst = with_monotone_releases(&inst, 3.0);
            let n = inst.len();
            for family in [DagFamily::Layered, DagFamily::DeepChain] {
                let dag = family.build(&mut rng, n);
                out.push((
                    format!("combined-{}/{seed}", family.name()),
                    PrecInstance::new(inst.clone(), dag),
                ));
            }
        } else if caps.precedence {
            let inst = spp_gen::rects::uniform(&mut rng, 20, (0.05, 0.95), (0.05, 1.0));
            let n = inst.len();
            for family in [DagFamily::Layered, DagFamily::Random, DagFamily::DeepChain] {
                let dag = family.build(&mut rng, n);
                out.push((
                    format!("prec-{}/{seed}", family.name()),
                    PrecInstance::new(inst.clone(), dag),
                ));
            }
        } else if caps.release {
            for (name, inst) in [
                (
                    "staircase",
                    spp_gen::release::staircase(&mut rng, 12, 4.0, release_params()),
                ),
                (
                    "bursty",
                    spp_gen::release::bursty(&mut rng, 12, 3, 1.5, 0.0, release_params()),
                ),
                (
                    "no-release",
                    spp_gen::release::no_releases(&mut rng, 12, release_params()),
                ),
            ] {
                out.push((
                    format!("rel-{name}/{seed}"),
                    PrecInstance::unconstrained(inst),
                ));
            }
        } else {
            // Plain strip packing: random mixes plus adversarial shapes.
            out.push((
                format!("plain-uniform/{seed}"),
                PrecInstance::unconstrained(spp_gen::rects::uniform(
                    &mut rng,
                    30,
                    (0.05, 0.95),
                    (0.05, 1.5),
                )),
            ));
            out.push((
                format!("plain-tallwide/{seed}"),
                PrecInstance::unconstrained(spp_gen::rects::tall_wide_mix(&mut rng, 30, 0.5)),
            ));
        }
    }
    if !caps.precedence && !caps.release && !caps.uniform_height_only {
        out.push((
            "plain-staircase".to_string(),
            PrecInstance::unconstrained(spp_gen::adversarial::skyline_staircase(4, 4, 0.5)),
        ));
        // Widths just over 1/2: one item per shelf, OPT = Σh ≈ 2·AREA.
        // This is the workload that separates sound area envelopes from
        // the unsound `1.7·AREA + h_max` misreading of CGJT's 1.7·OPT.
        let half_wide: Vec<(f64, f64)> = (0..20).map(|i| (0.51, 1.0 + 0.01 * i as f64)).collect();
        out.push((
            "plain-halfwide".to_string(),
            PrecInstance::unconstrained(Instance::from_dims(&half_wide).unwrap()),
        ));
        // Widths just over 1/4, slowly decreasing near-maximal heights:
        // in Sleator's half-columns (width 1/2) two of these never fit
        // side by side, so every level holds one item and wastes almost
        // half its box. This drives the packing toward ~Σh/2 against an
        // area term of ~2·0.26·Σh — the adversary documenting that the
        // advertised `2·AREA + 1.5·h_max` envelope's area coefficient is
        // nearly tight, and that the literature's `2.5·OPT` cannot be
        // checked here (OPT is not computable from LowerBounds).
        let thin_tall: Vec<(f64, f64)> = (0..24).map(|i| (0.26, 2.0 - 0.01 * i as f64)).collect();
        out.push((
            "plain-thin-tall".to_string(),
            PrecInstance::unconstrained(Instance::from_dims(&thin_tall).unwrap()),
        ));
    }
    out
}

#[test]
fn every_registry_entry_conforms_on_matching_workloads() {
    let registry = Registry::builtin();
    assert_eq!(
        registry.entries().len(),
        22,
        "registry size changed — conformance coverage claim is stale"
    );
    for entry in registry.entries() {
        let solver = entry.build();
        let workloads = workloads_for(entry.capabilities);
        assert!(
            !workloads.is_empty(),
            "{}: no workloads for {:?}",
            entry.name,
            entry.capabilities
        );
        for (label, prec) in workloads {
            let mut request = SolveRequest::new(prec);
            // Strict: a capability mismatch here is a bug in the workload
            // table, and must fail loudly instead of being ignored.
            request.config.strict = true;
            let report = solve(&*solver, &request).unwrap_or_else(|e| {
                panic!("{} refused conforming workload {label}: {e}", entry.name)
            });

            // (a) placements validate, with no ignored constraint family.
            assert_eq!(
                report.validation,
                Validation::Passed,
                "{} on {label}: {:?}",
                entry.name,
                report.validation
            );

            // (b) makespan ≥ every lower bound of the request.
            for (bound_name, bound) in [
                ("AREA", report.bounds.area),
                ("F", report.bounds.critical_path),
                ("release", report.bounds.release),
                ("combined", report.bounds.combined),
            ] {
                assert!(
                    report.makespan >= bound - EPS,
                    "{} on {label}: makespan {} below {bound_name} LB {}",
                    entry.name,
                    report.makespan,
                    bound
                );
            }

            // (c) makespan ≤ the advertised bound, when one is claimed.
            if let Some(adv) = &entry.advertised {
                let limit = (adv.eval)(&request, &report.bounds);
                assert!(
                    report.makespan <= limit + EPS,
                    "{} on {label}: makespan {} exceeds advertised {} = {}",
                    entry.name,
                    report.makespan,
                    adv.formula,
                    limit
                );
            }

            // (d) anytime entries: a budgeted solve of the same request
            // keeps every obligation above AND never worsens the seed.
            // The one-shot report *is* the seed (the loop starts from the
            // constructive placement), so `improved ≤ seed` is checked
            // against `report.makespan`, not re-derived.
            if entry.capabilities.anytime {
                let mut budgeted = request.clone();
                budgeted.config.budget_ms = 40;
                let improved = solve(&*solver, &budgeted).unwrap_or_else(|e| {
                    panic!("{} refused budgeted workload {label}: {e}", entry.name)
                });
                assert_eq!(
                    improved.validation,
                    Validation::Passed,
                    "{} on {label} (budgeted): {:?}",
                    entry.name,
                    improved.validation
                );
                assert_eq!(
                    improved.seed_makespan.to_bits(),
                    report.makespan.to_bits(),
                    "{} on {label}: budgeted seed differs from the one-shot solve",
                    entry.name
                );
                assert!(
                    improved.makespan <= improved.seed_makespan + EPS,
                    "{} on {label}: budgeted makespan {} exceeds seed {}",
                    entry.name,
                    improved.makespan,
                    improved.seed_makespan
                );
                for (bound_name, bound) in [
                    ("AREA", improved.bounds.area),
                    ("F", improved.bounds.critical_path),
                    ("release", improved.bounds.release),
                    ("combined", improved.bounds.combined),
                ] {
                    assert!(
                        improved.makespan >= bound - EPS,
                        "{} on {label}: improved makespan {} fell below {bound_name} LB {}",
                        entry.name,
                        improved.makespan,
                        bound
                    );
                }
            }
        }
    }
}

/// The advertised-bound table itself is exercised above; this pins the
/// claim from the issue: every entry with the `a_bound` capability also
/// advertises (at least) the `2·AREA + h_max` formula.
#[test]
fn a_bound_capability_implies_an_advertised_bound() {
    let registry = Registry::builtin();
    for entry in registry.filter(|c| c.a_bound) {
        let adv = entry
            .advertised
            .as_ref()
            .unwrap_or_else(|| panic!("{} claims a_bound but advertises nothing", entry.name));
        assert_eq!(adv.formula, "2·AREA + h_max", "{}", entry.name);
    }
}

/// APTAS phase reporting (ROADMAP open item): the engine report now
/// carries the four pipeline stages as distinct phases, and the phase
/// list stays disjoint — named stages sum to at most the report total.
#[test]
fn aptas_report_has_distinct_pipeline_phases() {
    let mut rng = StdRng::seed_from_u64(99);
    let inst = spp_gen::release::staircase(&mut rng, 14, 4.0, release_params());
    let registry = Registry::builtin();
    let solver = registry.get("aptas").unwrap();
    let report = solve(&*solver, &SolveRequest::unconstrained(inst)).unwrap();

    let names: Vec<&str> = report.phases.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        names,
        [
            "rounding",
            "grouping",
            "lp",
            "integralize",
            "solve",
            "validate"
        ],
        "phase list: {names:?}"
    );
    let stage_sum: std::time::Duration = report
        .phases
        .iter()
        .filter(|(n, _)| matches!(n.as_str(), "rounding" | "grouping" | "lp" | "integralize"))
        .map(|(_, d)| *d)
        .sum();
    assert!(
        stage_sum <= report.total_time(),
        "stages {stage_sum:?} exceed total {:?}",
        report.total_time()
    );
}
