//! Differential tests: algorithms that are documented to *coincide* on a
//! restricted input class must actually coincide there.
//!
//! On release-free instances the combined solvers degenerate to their
//! single-constraint counterparts by construction — one release class
//! means one `DC` call, one FFDH batch, an unchanged skyline — so the
//! documented factor between each pair is exactly 1: equal makespans (to
//! floating-point identity of the shared code path).

use rand::{rngs::StdRng, SeedableRng};
use spp_dag::PrecInstance;
use spp_engine::{solve, Registry, SolveRequest};
use spp_gen::rects::DagFamily;

/// Release-free precedence instances over several DAG shapes.
fn release_free_dag_instances() -> Vec<(String, PrecInstance)> {
    let mut out = Vec::new();
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xD1FF + seed);
        let inst = spp_gen::rects::uniform(&mut rng, 24, (0.05, 0.95), (0.05, 1.0));
        let n = inst.len();
        for family in [DagFamily::Layered, DagFamily::Random, DagFamily::DeepChain] {
            let dag = family.build(&mut rng, n);
            out.push((
                format!("{}/{seed}", family.name()),
                PrecInstance::new(inst.clone(), dag),
            ));
        }
    }
    out
}

/// Release-free unconstrained instances (for the §3 baselines).
fn release_free_plain_instances() -> Vec<(String, PrecInstance)> {
    (0..8u64)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(0xFD1F + seed);
            let inst = spp_gen::rects::uniform(&mut rng, 40, (0.05, 0.95), (0.05, 1.5));
            (format!("plain/{seed}"), PrecInstance::unconstrained(inst))
        })
        .collect()
}

fn makespan_of(registry: &Registry, algo: &str, prec: &PrecInstance) -> f64 {
    let solver = registry.get(algo).unwrap();
    let report =
        solve(&*solver, &SolveRequest::new(prec.clone())).unwrap_or_else(|e| panic!("{algo}: {e}"));
    assert!(
        report.validation.passed(),
        "{algo}: {:?}",
        report.validation
    );
    report.makespan
}

fn assert_agree(registry: &Registry, a: &str, b: &str, cases: &[(String, PrecInstance)]) {
    for (label, prec) in cases {
        let ma = makespan_of(registry, a, prec);
        let mb = makespan_of(registry, b, prec);
        assert!(
            (ma - mb).abs() <= 1e-12,
            "{a} vs {b} on {label}: {ma} != {mb} (documented factor is 1 on release-free inputs)"
        );
    }
}

/// `dc-release` partitions by release class and runs `DC` (with NFDH) per
/// class; with zero releases there is one class covering everything, so
/// it must match `dc-nfdh` exactly.
#[test]
fn dc_release_matches_dc_nfdh_without_releases() {
    let registry = Registry::builtin();
    assert_agree(
        &registry,
        "dc-release",
        "dc-nfdh",
        &release_free_dag_instances(),
    );
}

/// `combined-greedy` is the precedence skyline greedy with release
/// floors; zero releases mean zero extra floors, so it must match
/// `greedy` exactly.
#[test]
fn combined_greedy_matches_greedy_without_releases() {
    let registry = Registry::builtin();
    assert_agree(
        &registry,
        "combined-greedy",
        "greedy",
        &release_free_dag_instances(),
    );
}

/// `batched-ffdh` packs each release batch with FFDH; one batch (all
/// releases zero) is plain FFDH.
#[test]
fn batched_ffdh_matches_ffdh_without_releases() {
    let registry = Registry::builtin();
    assert_agree(
        &registry,
        "batched-ffdh",
        "ffdh",
        &release_free_plain_instances(),
    );
}

/// With releases present the pairs may legitimately diverge — but the
/// combined solver must never *lose* to stacking batches after the last
/// release, and both must stay valid. This pins the direction of the
/// divergence so a refactor that silently degrades the combined path
/// shows up.
#[test]
fn released_instances_keep_batched_ffdh_below_trivial_stacking() {
    let registry = Registry::builtin();
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xAB + seed);
        let inst = spp_gen::release::bursty(
            &mut rng,
            30,
            4,
            1.0,
            0.0,
            spp_gen::release::ReleaseParams::default(),
        );
        let r_max = inst.max_release();
        let prec = PrecInstance::unconstrained(inst);
        let batched = makespan_of(&registry, "batched-ffdh", &prec);
        // Trivial schedule: wait for the last release, then FFDH-pack
        // everything (ignoring releases) above it.
        let ffdh_all = makespan_of(&registry, "ffdh", &prec);
        assert!(
            batched <= r_max + ffdh_all + 1e-9,
            "batched-ffdh {batched} worse than trivial {r_max} + {ffdh_all}"
        );
    }
}
