//! Property tests for the parallel anytime portfolio at the pack/engine
//! seam, over every suite family: the portfolio is never worse than the
//! best of its streams run sequentially, and converged runs are
//! bit-identical across worker counts.

use spp_core::hash::splitmix_mix;
use spp_core::Placement;
use spp_dag::PrecInstance;
use spp_gen::suite::{self, FAMILIES};
use spp_pack::{improve, improve_parallel, ImproveConfig, PortfolioConfig};

/// A feasible seed placement for any instance: stack the items in
/// topological order, each at the max of the running top and its
/// release — deliberately bad, so the search has room to work.
fn stacked_seed(prec: &PrecInstance) -> Placement {
    let order = spp_dag::topo::topological_order(&prec.dag).expect("suite DAGs are acyclic");
    let mut pl = Placement::zeroed(prec.len());
    let mut y = 0.0f64;
    for v in order {
        let it = prec.inst.item(v);
        let at = y.max(it.release);
        pl.set(v, 0.0, at);
        y = at + it.h;
    }
    prec.assert_valid(&pl);
    pl
}

const K: usize = 3;
const SEED: u64 = 0xA5A5_1234;

/// (a) The portfolio reduction returns exactly the best of the same K
/// seeds run sequentially — never worse, and in fact bit-identical,
/// winner index included (ties break to the lowest stream).
#[test]
fn portfolio_equals_best_of_sequential_streams() {
    for scenario in suite::suite(23, 14, FAMILIES.len()) {
        let prec = &scenario.prec;
        let seed_pl = stacked_seed(prec);

        let sequential: Vec<_> = (0..K)
            .map(|i| {
                improve(
                    prec,
                    &seed_pl,
                    &ImproveConfig {
                        seed: SEED ^ splitmix_mix(i as u64),
                        ..ImproveConfig::default()
                    },
                )
            })
            .collect();
        let mut best = 0usize;
        for i in 1..K {
            if sequential[i].makespan < sequential[best].makespan {
                best = i;
            }
        }

        let port = improve_parallel(
            prec,
            &seed_pl,
            &PortfolioConfig {
                streams: K,
                seed: SEED,
                ..PortfolioConfig::default()
            },
        );
        assert!(
            port.converged,
            "{}: no deadline, must converge",
            scenario.name
        );
        assert_eq!(port.winner, best, "{}: winner diverged", scenario.name);
        assert_eq!(
            port.makespan.to_bits(),
            sequential[best].makespan.to_bits(),
            "{}: portfolio is not the best sequential stream",
            scenario.name
        );
        assert_eq!(
            port.placement, sequential[best].placement,
            "{}: placements diverged",
            scenario.name
        );
        assert!(
            port.makespan <= port.seed_makespan + 1e-12,
            "{}: worse than the seed",
            scenario.name
        );
        prec.assert_valid(&port.placement);
    }
}

/// (b) Worker count is invisible: 1 worker and 4 workers produce
/// bit-identical converged results, stream by stream.
#[test]
fn portfolio_is_bit_identical_across_worker_counts() {
    for scenario in suite::suite(29, 14, FAMILIES.len()) {
        let prec = &scenario.prec;
        let seed_pl = stacked_seed(prec);
        let run = |workers: usize| {
            improve_parallel(
                prec,
                &seed_pl,
                &PortfolioConfig {
                    streams: K,
                    workers,
                    seed: SEED ^ 99,
                    ..PortfolioConfig::default()
                },
            )
        };
        let a = run(1);
        let b = run(4);
        assert!(a.converged && b.converged, "{}", scenario.name);
        assert_eq!(a.winner, b.winner, "{}", scenario.name);
        assert_eq!(
            a.makespan.to_bits(),
            b.makespan.to_bits(),
            "{}: makespan bits diverged across worker counts",
            scenario.name
        );
        assert_eq!(a.placement, b.placement, "{}", scenario.name);
        assert_eq!(a.rounds, b.rounds, "{}", scenario.name);
        assert_eq!(a.improvements, b.improvements, "{}", scenario.name);
        for (sa, sb) in a.streams.iter().zip(b.streams.iter()) {
            assert_eq!(sa.stream, sb.stream);
            assert_eq!(
                sa.makespan.to_bits(),
                sb.makespan.to_bits(),
                "{}: stream {} diverged",
                scenario.name,
                sa.stream
            );
            assert_eq!(sa.rounds, sb.rounds, "{}", scenario.name);
        }
    }
}
