//! Property tests of the registry's *claims*: every entry that advertises
//! the A-bound capability must actually satisfy `height ≤ 2·AREA + h_max`
//! on seeded random and adversarial instances, and every report the
//! engine returns must carry a placement that `validate::assert_valid`
//! accepts (for the constraint families the solver claims).

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use spp_engine::{solve, Registry, SolveRequest, Validation};

/// `2·AREA + h_max` — the §2 subroutine contract.
fn a_bound(inst: &spp_core::Instance) -> f64 {
    2.0 * inst.total_area() + inst.max_height()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every registry entry claiming the A-bound satisfies it on random
    /// instances, and its placements validate.
    #[test]
    fn a_bound_claims_hold_on_random_instances(
        dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 0..60)
    ) {
        let registry = Registry::builtin();
        let inst = spp_core::Instance::from_dims(&dims).unwrap();
        for entry in registry.filter(|c| c.a_bound) {
            let solver = entry.build();
            let report = solve(
                &*solver,
                &SolveRequest::unconstrained(inst.clone()),
            )
            .unwrap();
            prop_assert!(
                report.validation.passed(),
                "{} produced an invalid placement", entry.name
            );
            spp_core::validate::assert_valid(&inst, &report.placement);
            prop_assert!(
                report.makespan <= a_bound(&inst) + 1e-9,
                "{}: height {} exceeds A-bound {}",
                entry.name, report.makespan, a_bound(&inst)
            );
        }
    }

    /// Every registry entry produces a valid placement on every request it
    /// accepts (random DAG instances; capability-aware validation).
    #[test]
    fn all_entries_validate_on_random_dag_instances(
        seed in 0u64..2000,
        n in 1usize..40,
        edge_p in 0.0f64..0.4,
    ) {
        let registry = Registry::builtin();
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = spp_gen::rects::uniform(&mut rng, n, (0.05, 0.95), (0.05, 1.0));
        let prec = spp_gen::rects::with_random_dag(&mut rng, inst, edge_p);
        let request = SolveRequest::new(prec);
        for entry in registry.entries() {
            let solver = entry.build();
            match solve(&*solver, &request) {
                Ok(report) => prop_assert!(
                    report.validation.passed(),
                    "{}: {:?}", entry.name, report.validation
                ),
                // Model-restricted solvers (aptas, shelf-f) may refuse
                // off-model instances; that must be an explicit error,
                // never a bogus placement.
                Err(e) => prop_assert!(
                    matches!(e, spp_engine::EngineError::Unsupported { .. }),
                    "{}: unexpected error {e}", entry.name
                ),
            }
        }
    }
}

/// The A-bound also holds on the paper's adversarial families — the
/// precedence-free *item sets* of Fig. 1 and Fig. 2 are exactly the
/// worst-case shelf workloads (many width-1 separators, geometric height
/// mixes) that stress cross-shelf arguments.
#[test]
fn a_bound_claims_hold_on_adversarial_instances() {
    let registry = Registry::builtin();
    let mut instances = Vec::new();
    for k in 1..=6 {
        for eps in [0.3, 0.05, 0.01] {
            instances.push(spp_gen::adversarial::fig1_lower_bound_gap(k, eps).prec.inst);
            instances.push(
                spp_gen::adversarial::fig2_ratio3_tightness(k, eps)
                    .prec
                    .inst,
            );
        }
    }
    // Plus deterministic tall/wide mixes, the classic NFDH stressor.
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        instances.push(spp_gen::rects::tall_wide_mix(&mut rng, 150, 0.5));
    }
    for inst in &instances {
        for entry in registry.filter(|c| c.a_bound) {
            let solver = entry.build();
            let report = solve(&*solver, &SolveRequest::unconstrained(inst.clone())).unwrap();
            assert_eq!(report.validation, Validation::Passed);
            spp_core::validate::assert_valid(inst, &report.placement);
            assert!(
                report.makespan <= a_bound(inst) + 1e-9,
                "{}: height {} exceeds A-bound {} on adversarial instance (n = {})",
                entry.name,
                report.makespan,
                a_bound(inst),
                inst.len()
            );
        }
    }
}
