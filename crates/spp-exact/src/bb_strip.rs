//! Exact (precedence-constrained) strip packing by branch-and-bound.
//!
//! # Completeness
//!
//! Any valid placement can be *normalized* by repeatedly pushing each
//! rectangle left (until it hits the strip edge or another rectangle) and
//! down (until it hits its floor — the max of its release time and its
//! predecessors' tops — or another rectangle); the total coordinate sum
//! strictly decreases, so a fixpoint exists, and the height never grows.
//! In a normalized placement:
//!
//! * every `x` is a sum of a subset of rectangle widths (chain of
//!   left-touching rectangles back to the wall — Herz's "normal
//!   patterns");
//! * processing rectangles in increasing `y`, every `y` is either the
//!   rectangle's floor or the top of an already-processed rectangle.
//!
//! The search therefore branches over: next available rectangle (all
//! predecessors placed — consistent with `y`-order since edges force
//! strictly smaller `y`), candidate `x` in the global subset-sum set, and
//! candidate `y` in `{floor} ∪ {tops of placed}`. It prunes with the
//! area / critical-path / current-top lower bounds against the incumbent,
//! and counts nodes against a budget so callers get a clean "don't know"
//! instead of an endless search.

use spp_core::{PlacedRect, Placement};
use spp_dag::PrecInstance;

/// Search configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExactConfig {
    /// Abort after this many search nodes.
    pub max_nodes: u64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_nodes: 2_000_000,
        }
    }
}

/// Outcome of the exact search.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// Best placement found (always valid); `None` only for empty input.
    pub placement: Option<Placement>,
    /// Height of `placement` (0 for empty input).
    pub height: f64,
    /// True iff the search ran to completion, certifying optimality.
    pub proven_optimal: bool,
    /// Search nodes expanded.
    pub nodes: u64,
}

/// Exactly solve (small) precedence strip packing. Practical to ~8
/// rectangles; `n ≤ 16` is enforced.
pub fn exact_strip(prec: &PrecInstance, cfg: ExactConfig) -> ExactResult {
    let n = prec.len();
    assert!(n <= 16, "exact_strip is for small instances (n ≤ 16)");
    if n == 0 {
        return ExactResult {
            placement: Some(Placement::zeroed(0)),
            height: 0.0,
            proven_optimal: true,
            nodes: 0,
        };
    }

    // ----- seed incumbent: stack everything in topological order -----
    let topo = spp_dag::topo::topological_order(&prec.dag).expect("acyclic");
    let mut seed = Placement::zeroed(n);
    let mut y = 0.0f64;
    for &v in &topo {
        let it = prec.inst.item(v);
        let base = y.max(it.release);
        seed.set(v, 0.0, base);
        y = base + it.h;
    }
    debug_assert!(prec.validate(&seed).is_ok());
    let mut best_h = seed.height(&prec.inst);
    let mut best_pl = seed;

    // ----- candidate x positions: subset sums of widths -----
    let widths: Vec<f64> = prec.inst.items().iter().map(|it| it.w).collect();
    let mut sums = vec![0.0f64];
    for &w in &widths {
        let mut extended: Vec<f64> = sums.iter().map(|&s| s + w).collect();
        sums.append(&mut extended);
    }
    sums.retain(|&s| s <= 1.0 + spp_core::eps::EPS);
    sums.sort_by(|a, b| a.partial_cmp(b).unwrap());
    sums.dedup_by(|a, b| (*a - *b).abs() <= spp_core::eps::EPS);

    let area_lb = prec.area_lb();
    let crit_lb = prec.critical_lb();
    let global_lb = area_lb.max(crit_lb);

    struct Ctx<'a> {
        prec: &'a PrecInstance,
        sums: Vec<f64>,
        cfg: ExactConfig,
        nodes: u64,
        budget_hit: bool,
        best_h: f64,
        best_pl: Placement,
        global_lb: f64,
    }

    fn dfs(
        ctx: &mut Ctx<'_>,
        placed: u32,
        rects: &mut Vec<(usize, PlacedRect)>,
        cur: &mut Placement,
        cur_top: f64,
    ) {
        let n = ctx.prec.len();
        ctx.nodes += 1;
        if ctx.nodes > ctx.cfg.max_nodes {
            ctx.budget_hit = true;
            return;
        }
        if placed == (1u32 << n) - 1 {
            if cur_top < ctx.best_h - spp_core::eps::EPS {
                ctx.best_h = cur_top;
                ctx.best_pl = cur.clone();
            }
            return;
        }
        // prune on lower bound
        if cur_top.max(ctx.global_lb) >= ctx.best_h - spp_core::eps::EPS {
            return;
        }
        for v in 0..n {
            if placed & (1 << v) != 0 {
                continue;
            }
            if ctx
                .prec
                .dag
                .preds(v)
                .iter()
                .any(|&p| placed & (1 << p) == 0)
            {
                continue;
            }
            // duplicate-item dominance: identical unconstrained items are
            // interchangeable, branch only on the smallest id.
            let it = ctx.prec.inst.item(v);
            let dup = (0..v).any(|u| {
                placed & (1 << u) == 0
                    && ctx.prec.inst.item(u).w == it.w
                    && ctx.prec.inst.item(u).h == it.h
                    && ctx.prec.inst.item(u).release == it.release
                    && ctx.prec.dag.preds(u).is_empty()
                    && ctx.prec.dag.succs(u).is_empty()
                    && ctx.prec.dag.preds(v).is_empty()
                    && ctx.prec.dag.succs(v).is_empty()
            });
            if dup {
                continue;
            }
            // floor for v
            let mut floor = it.release;
            for &p in ctx.prec.dag.preds(v) {
                let pit = ctx.prec.inst.item(p);
                floor = floor.max(cur.pos(p).y + pit.h);
            }
            // candidate ys: floor plus placed tops above the floor
            let mut ys: Vec<f64> = vec![floor];
            for &(_, r) in rects.iter() {
                let t = r.top();
                if t > floor + spp_core::eps::EPS {
                    ys.push(t);
                }
            }
            ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
            ys.dedup_by(|a, b| (*a - *b).abs() <= spp_core::eps::EPS);

            for xi in 0..ctx.sums.len() {
                let x = ctx.sums[xi];
                if x + it.w > 1.0 + spp_core::eps::EPS {
                    break; // sums sorted ascending
                }
                for &yv in &ys {
                    let cand = PlacedRect::new(x, yv, it.w, it.h);
                    // prune: placing here already exceeds incumbent
                    if cand.top().max(ctx.global_lb) >= ctx.best_h - spp_core::eps::EPS {
                        continue;
                    }
                    if rects.iter().any(|&(_, r)| r.overlaps(&cand)) {
                        continue;
                    }
                    rects.push((v, cand));
                    cur.set(v, x, yv);
                    dfs(ctx, placed | (1 << v), rects, cur, cur_top.max(cand.top()));
                    rects.pop();
                    if ctx.budget_hit {
                        return;
                    }
                }
            }
        }
    }

    let mut ctx = Ctx {
        prec,
        sums,
        cfg,
        nodes: 0,
        budget_hit: false,
        best_h,
        best_pl: best_pl.clone(),
        global_lb,
    };
    let mut cur = Placement::zeroed(n);
    let mut rects: Vec<(usize, PlacedRect)> = Vec::with_capacity(n);
    dfs(&mut ctx, 0, &mut rects, &mut cur, 0.0);
    best_h = ctx.best_h;
    best_pl = ctx.best_pl;

    debug_assert!(prec.validate(&best_pl).is_ok());
    ExactResult {
        height: best_h,
        placement: Some(best_pl),
        proven_optimal: !ctx.budget_hit,
        nodes: ctx.nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_core::Instance;
    use spp_dag::Dag;

    fn solve(prec: &PrecInstance) -> ExactResult {
        exact_strip(prec, ExactConfig::default())
    }

    #[test]
    fn empty_instance() {
        let p = PrecInstance::unconstrained(Instance::new(vec![]).unwrap());
        let r = solve(&p);
        assert_eq!(r.height, 0.0);
        assert!(r.proven_optimal);
    }

    #[test]
    fn two_halves_pack_side_by_side() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0)]).unwrap();
        let p = PrecInstance::unconstrained(inst);
        let r = solve(&p);
        assert!(r.proven_optimal);
        spp_core::assert_close!(r.height, 1.0);
    }

    #[test]
    fn chain_forces_stacking() {
        let inst = Instance::from_dims(&[(0.2, 1.0), (0.2, 1.0)]).unwrap();
        let p = PrecInstance::new(inst, Dag::chain(2));
        let r = solve(&p);
        assert!(r.proven_optimal);
        spp_core::assert_close!(r.height, 2.0);
    }

    #[test]
    fn four_squares_tile() {
        let inst = Instance::from_dims(&[(0.5, 0.5), (0.5, 0.5), (0.5, 0.5), (0.5, 0.5)]).unwrap();
        let r = solve(&PrecInstance::unconstrained(inst));
        assert!(r.proven_optimal);
        spp_core::assert_close!(r.height, 1.0);
    }

    #[test]
    fn needs_interleaving_for_optimality() {
        // L-shaped fit: one tall narrow + two short wide; optimal 1.0
        let inst = Instance::from_dims(&[(0.4, 1.0), (0.6, 0.5), (0.6, 0.5)]).unwrap();
        let r = solve(&PrecInstance::unconstrained(inst));
        assert!(r.proven_optimal);
        spp_core::assert_close!(r.height, 1.0);
    }

    #[test]
    fn release_times_delay() {
        let inst = Instance::from_dims_release(&[(0.5, 1.0, 0.0), (0.5, 1.0, 3.0)]).unwrap();
        let r = solve(&PrecInstance::unconstrained(inst));
        assert!(r.proven_optimal);
        spp_core::assert_close!(r.height, 4.0);
    }

    #[test]
    fn diamond_packs_middle_in_parallel() {
        // 0 -> {1, 2} -> 3, all 0.5 x 1: optimal 3 (middle pair shares)
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0), (0.5, 1.0), (0.5, 1.0)]).unwrap();
        let dag = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let r = solve(&PrecInstance::new(inst, dag));
        assert!(r.proven_optimal);
        spp_core::assert_close!(r.height, 3.0);
    }

    #[test]
    fn budget_exhaustion_reports_not_proven() {
        let inst = Instance::from_dims(&[
            (0.3, 0.7),
            (0.4, 0.9),
            (0.25, 0.55),
            (0.35, 0.8),
            (0.45, 0.6),
            (0.2, 1.0),
            (0.5, 0.3),
        ])
        .unwrap();
        let p = PrecInstance::unconstrained(inst);
        let r = exact_strip(&p, ExactConfig { max_nodes: 50 });
        assert!(!r.proven_optimal);
        // still returns the seed/best-so-far as a valid placement
        let pl = r.placement.unwrap();
        p.assert_valid(&pl);
    }

    #[test]
    fn never_below_lower_bounds_and_valid() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..15 {
            let n = rng.gen_range(1..6);
            let dims: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.1..0.9), rng.gen_range(0.1..1.0)))
                .collect();
            let inst = Instance::from_dims(&dims).unwrap();
            let dag = spp_dag::gen::random_order(&mut rng, n, 0.3);
            let p = PrecInstance::new(inst, dag);
            let r = solve(&p);
            assert!(r.proven_optimal);
            let pl = r.placement.unwrap();
            p.assert_valid(&pl);
            assert!(r.height + 1e-9 >= p.lower_bound());
            spp_core::assert_close!(pl.height(&p.inst), r.height);
        }
    }
}

#[cfg(test)]
mod differential_tests {
    use super::*;
    use spp_core::Instance;

    /// Uniform-height strip packing and precedence bin packing are
    /// equivalent (§2.2), so the two independent exact engines must agree:
    /// `exact_strip == h · exact_bins` on every uniform-height instance.
    #[test]
    fn bb_strip_matches_dp_bins_on_uniform_heights() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..12 {
            let n = rng.gen_range(1..7);
            let h = rng.gen_range(0.5..2.0);
            let widths: Vec<f64> = (0..n).map(|_| rng.gen_range(0.15..1.0)).collect();
            let dims: Vec<(f64, f64)> = widths.iter().map(|&w| (w, h)).collect();
            let dag = spp_dag::gen::random_order(&mut rng, n, 0.3);
            let prec = PrecInstance::new(Instance::from_dims(&dims).unwrap(), dag.clone());

            let strip = exact_strip(&prec, ExactConfig::default());
            assert!(strip.proven_optimal, "trial {trial} hit the budget");
            let bins = spp_exact_bins_view(&widths, &dag) as f64 * h;
            // bb_strip may beat the shelf bound? No: §2.2 proves any
            // placement converts to shelves without height increase, so
            // the two optima coincide exactly.
            assert!(
                (strip.height - bins).abs() < 1e-6,
                "trial {trial}: strip {} != bins {}",
                strip.height,
                bins
            );
        }
    }

    fn spp_exact_bins_view(widths: &[f64], dag: &spp_dag::Dag) -> usize {
        crate::dp_bins::exact_bins(widths, dag)
    }
}
