//! Exact precedence-constrained bin packing by bitmask DP.
//!
//! Model (§2.2 of the paper, after Garey–Graham–Johnson–Yao): `n` tasks
//! with sizes in `(0, 1]`, a partial order `≺`; tasks go into a sequence
//! of unit-capacity bins; `a ≺ b` forces `bin(a) < bin(b)` (strictly
//! earlier). Minimize the number of bins. By the shelf reduction this is
//! exactly uniform-height precedence strip packing with bin = shelf.
//!
//! DP over the set `S` of tasks already packed into *closed* bins:
//!
//! ```text
//! best(S) = 0                                if S = all
//! best(S) = 1 + min over maximal feasible fills B ⊆ avail(S) of best(S ∪ B)
//! ```
//!
//! where `avail(S)` are tasks with all predecessors in `S`, and a *fill*
//! is a subset with total size ≤ 1. Restricting to maximal fills is safe:
//! any optimal next bin can be extended to a maximal one without hurting
//! feasibility (added items only become available earlier). Memoized on
//! the bitmask; practical to ~20 tasks (the number of *reachable* states
//! is far below `2^n` for constrained orders).

use spp_dag::Dag;
use std::collections::HashMap;

/// Exact minimum number of bins for sizes + precedence DAG.
///
/// Panics if any size is outside `(0, 1]` or `n > 24` (state space).
pub fn exact_bins(sizes: &[f64], dag: &Dag) -> usize {
    let n = sizes.len();
    assert_eq!(dag.len(), n, "sizes/DAG size mismatch");
    assert!(n <= 24, "exact_bins is for small instances (n ≤ 24)");
    for &s in sizes {
        assert!(
            s > 0.0 && s <= 1.0 + spp_core::eps::EPS,
            "size {s} outside (0, 1]"
        );
    }
    if n == 0 {
        return 0;
    }
    // pred mask per task
    let pred_mask: Vec<u32> = (0..n)
        .map(|v| dag.preds(v).iter().fold(0u32, |m, &p| m | (1 << p)))
        .collect();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut memo: HashMap<u32, u32> = HashMap::new();

    fn avail(done: u32, pred_mask: &[u32]) -> u32 {
        let mut a = 0u32;
        for (v, &pm) in pred_mask.iter().enumerate() {
            if done & (1 << v) == 0 && pm & !done == 0 {
                a |= 1 << v;
            }
        }
        a
    }

    /// Enumerate maximal fills of `avail` within capacity, calling `f`.
    fn maximal_fills(
        sizes: &[f64],
        avail_list: &[usize],
        idx: usize,
        chosen: u32,
        used: f64,
        f: &mut impl FnMut(u32),
    ) {
        if idx == avail_list.len() {
            // maximal if no skipped available item fits
            let maximal = avail_list
                .iter()
                .all(|&v| chosen & (1 << v) != 0 || used + sizes[v] > 1.0 + spp_core::eps::EPS);
            if maximal && chosen != 0 {
                f(chosen);
            }
            return;
        }
        let v = avail_list[idx];
        if used + sizes[v] <= 1.0 + spp_core::eps::EPS {
            maximal_fills(
                sizes,
                avail_list,
                idx + 1,
                chosen | (1 << v),
                used + sizes[v],
                f,
            );
        }
        maximal_fills(sizes, avail_list, idx + 1, chosen, used, f);
    }

    fn solve(
        n: usize,
        done: u32,
        full: u32,
        sizes: &[f64],
        pred_mask: &[u32],
        memo: &mut HashMap<u32, u32>,
    ) -> u32 {
        if done == full {
            return 0;
        }
        if let Some(&v) = memo.get(&done) {
            return v;
        }
        let a = avail(done, pred_mask);
        // a == 0 with done != full would mean a cycle; Dag forbids that.
        debug_assert!(a != 0, "no available tasks yet not finished");
        let avail_list: Vec<usize> = (0..n).filter(|&v| a & (1 << v) != 0).collect();
        let mut best = u32::MAX;
        let mut fills: Vec<u32> = Vec::new();
        maximal_fills(sizes, &avail_list, 0, 0, 0.0, &mut |b| fills.push(b));
        for b in fills {
            let sub = solve(n, done | b, full, sizes, pred_mask, memo);
            best = best.min(1 + sub);
        }
        memo.insert(done, best);
        best
    }

    solve(n, 0, full, sizes, &pred_mask, &mut memo) as usize
}

/// Exact optimal height for *uniform-height* precedence strip packing:
/// `(number of bins) × h`, where widths are the bin sizes. Uses the §2.2
/// equivalence (any solution can be converted to a shelf solution with no
/// height increase, and shelves of height `h` are bins).
pub fn exact_uniform_height(prec: &spp_dag::PrecInstance) -> f64 {
    let h = prec
        .inst
        .uniform_height()
        .expect("exact_uniform_height requires uniform heights");
    let sizes: Vec<f64> = prec.inst.items().iter().map(|it| it.w).collect();
    exact_bins(&sizes, &prec.dag) as f64 * h
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_core::Instance;
    use spp_dag::PrecInstance;

    #[test]
    fn no_precedence_is_plain_bin_packing() {
        // sizes 0.6,0.6,0.4,0.4 -> 2 bins (0.6+0.4 twice)
        let d = Dag::empty(4);
        assert_eq!(exact_bins(&[0.6, 0.6, 0.4, 0.4], &d), 2);
    }

    #[test]
    fn chain_forces_one_bin_each() {
        let d = Dag::chain(4);
        assert_eq!(exact_bins(&[0.1, 0.1, 0.1, 0.1], &d), 4);
    }

    #[test]
    fn diamond_allows_middle_sharing() {
        // 0 -> {1,2} -> 3, all size 0.4: bins {0}, {1,2}, {3}
        let d = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(exact_bins(&[0.4, 0.4, 0.4, 0.4], &d), 3);
    }

    #[test]
    fn empty_instance_zero_bins() {
        assert_eq!(exact_bins(&[], &Dag::empty(0)), 0);
    }

    #[test]
    fn precedence_strictness_matters() {
        // 0 -> 1, both tiny: still 2 bins (strictly earlier bin required)
        let d = Dag::new(2, &[(0, 1)]).unwrap();
        assert_eq!(exact_bins(&[0.01, 0.01], &d), 2);
    }

    #[test]
    fn maximality_restriction_is_safe() {
        // A case where the greedy-maximal first bin is suboptimal if you
        // fix a particular maximal fill, but the DP tries them all:
        // sizes: 0.5, 0.5, 0.5, 0.5; chain 0->2; optimal 2 bins:
        // {0,1}, {2,3}.
        let d = Dag::new(4, &[(0, 2)]).unwrap();
        assert_eq!(exact_bins(&[0.5, 0.5, 0.5, 0.5], &d), 2);
    }

    #[test]
    fn uniform_height_scales_by_h() {
        let inst = Instance::from_dims(&[(0.6, 2.0), (0.6, 2.0), (0.4, 2.0)]).unwrap();
        let prec = PrecInstance::new(inst, Dag::empty(3));
        // 2 bins × height 2
        spp_core::assert_close!(exact_uniform_height(&prec), 4.0);
    }

    #[test]
    fn fig2_family_optimum_is_n() {
        // Lemma 2.7: OPT = n exactly. Build a small copy by hand
        // (k = 2 -> n = 6): 2 narrow in a chain, 4 wide preceding them.
        let eps = 1e-3;
        let inst = Instance::from_dims(&[
            (eps, 1.0),
            (eps, 1.0),
            (0.5 + eps, 1.0),
            (0.5 + eps, 1.0),
            (0.5 + eps, 1.0),
            (0.5 + eps, 1.0),
        ])
        .unwrap();
        let dag = Dag::new(6, &[(0, 1), (2, 0), (3, 0), (4, 0), (5, 0)]).unwrap();
        let prec = PrecInstance::new(inst, dag);
        spp_core::assert_close!(exact_uniform_height(&prec), 6.0);
    }

    #[test]
    fn matches_brute_force_on_random_small() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        // Brute force: try all assignments of items to at most n ordered
        // bins via recursive placement in bin order.
        fn brute(sizes: &[f64], dag: &Dag) -> usize {
            fn go(sizes: &[f64], dag: &Dag, done: u32, bins_used: usize, best: &mut usize) {
                let n = sizes.len();
                if bins_used >= *best {
                    return;
                }
                if done == (1u32 << n) - 1 {
                    *best = (*best).min(bins_used);
                    return;
                }
                // choose contents of the next bin: any nonempty feasible
                // subset of available
                let avail: Vec<usize> = (0..n)
                    .filter(|&v| {
                        done & (1 << v) == 0 && dag.preds(v).iter().all(|&p| done & (1 << p) != 0)
                    })
                    .collect();
                let m = avail.len();
                for mask in 1u32..(1 << m) {
                    let mut tot = 0.0;
                    let mut bits = 0u32;
                    for (i, &v) in avail.iter().enumerate() {
                        if mask & (1 << i) != 0 {
                            tot += sizes[v];
                            bits |= 1 << v;
                        }
                    }
                    if tot <= 1.0 + spp_core::eps::EPS {
                        go(sizes, dag, done | bits, bins_used + 1, best);
                    }
                }
            }
            let mut best = sizes.len().max(1);
            if sizes.is_empty() {
                return 0;
            }
            go(sizes, dag, 0, 0, &mut best);
            best
        }

        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..25 {
            let n = rng.gen_range(1..8);
            let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
            let dag = spp_dag::gen::random_order(&mut rng, n, 0.3);
            assert_eq!(
                exact_bins(&sizes, &dag),
                brute(&sizes, &dag),
                "n={n} sizes={sizes:?}"
            );
        }
    }
}
