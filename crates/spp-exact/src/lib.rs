//! # spp-exact — exact solvers for small instances
//!
//! The paper proves approximation ratios; to *measure* them we need true
//! optima on small instances. Two exact engines:
//!
//! * [`dp_bins`] — precedence-constrained bin packing (= uniform-height
//!   precedence strip packing, via the §2.2 shelf reduction) solved
//!   exactly by bitmask dynamic programming over "set of already-closed
//!   items". Practical to ~20 items.
//! * [`bb_strip`] — general (precedence-constrained) strip packing solved
//!   by branch-and-bound over canonical corner placements, with a node
//!   budget. Practical to ~8 items; returns `None` when the budget is
//!   exhausted so callers can fall back to lower bounds.

pub mod bb_strip;
pub mod dp_bins;

pub use bb_strip::{exact_strip, ExactConfig, ExactResult};
pub use dp_bins::{exact_bins, exact_uniform_height};
