//! Task graphs ⇄ strip packing instances.
//!
//! The central reduction of the paper: a task needing `c` columns for `d`
//! time units on a `K`-column device is a rectangle of width `c/K` and
//! height `d`; a strip placement of height `H` is a schedule of makespan
//! `H`. Because every rectangle width is a multiple of `1/K` and the
//! shelf/skyline algorithms in this workspace only ever place rectangles
//! at x-coordinates that are sums of item widths, placements round-trip
//! to column-aligned schedules exactly.

use crate::schedule::{Schedule, ScheduledTask};
use crate::task::TaskGraph;
use spp_core::{Instance, Item, Placement};
use spp_dag::PrecInstance;

/// Convert a task graph into a precedence strip packing instance.
///
/// ```
/// use spp_fpga::{Device, Task, TaskGraph, to_prec_instance, schedule_from_placement};
///
/// let device = Device::new(4);
/// let graph = TaskGraph::independent(device, vec![
///     Task::new(0, 2, 1.0),   // 2 columns for 1 time unit
///     Task::new(1, 2, 1.0),
/// ]);
/// let prec = to_prec_instance(&graph);
/// let placement = spp_precedence::dc(&prec, &spp_pack::Packer::Nfdh);
/// let sched = schedule_from_placement(&graph, &placement).unwrap();
/// sched.validate(&graph).unwrap();
/// assert!((sched.makespan(&graph) - 1.0).abs() < 1e-9); // side by side
/// ```
pub fn to_prec_instance(graph: &TaskGraph) -> PrecInstance {
    let items: Vec<Item> = graph
        .tasks
        .iter()
        .map(|t| Item::with_release(t.id, graph.device.width_of(t.cols), t.duration, t.release))
        .collect();
    let inst = Instance::new(items).expect("task graph dims are valid");
    PrecInstance::new(inst, graph.dag.clone())
}

/// Convert a strip placement back into a device schedule.
///
/// Fails with the offending task id if an x-coordinate is not aligned to
/// a column boundary (within `1e-6` of `1/K` grid).
pub fn schedule_from_placement(graph: &TaskGraph, pl: &Placement) -> Result<Schedule, usize> {
    let mut entries = Vec::with_capacity(graph.len());
    for t in &graph.tasks {
        let p = pl.pos(t.id);
        let col = graph.device.column_of(p.x).ok_or(t.id)?;
        entries.push(ScheduledTask {
            id: t.id,
            start_col: col,
            start_time: p.y,
        });
    }
    Ok(Schedule { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::task::Task;
    use spp_dag::Dag;

    fn graph() -> TaskGraph {
        TaskGraph::new(
            Device::new(4),
            vec![
                Task::new(0, 2, 1.0),
                Task::new(1, 1, 2.0),
                Task::with_release(2, 4, 1.0, 3.0),
            ],
            Dag::new(3, &[(0, 1)]).unwrap(),
        )
    }

    #[test]
    fn instance_mirrors_tasks() {
        let g = graph();
        let p = to_prec_instance(&g);
        assert_eq!(p.len(), 3);
        spp_core::assert_close!(p.inst.item(0).w, 0.5);
        spp_core::assert_close!(p.inst.item(1).w, 0.25);
        assert_eq!(p.inst.item(2).release, 3.0);
        assert_eq!(p.dag.edge_count(), 1);
    }

    #[test]
    fn roundtrip_via_dc_is_a_valid_schedule() {
        let g = graph();
        let p = to_prec_instance(&g);
        let pl = spp_precedence::dc(&p, &spp_pack::Packer::Nfdh);
        // NOTE: DC ignores release times; this graph's release only binds
        // task 2, which DC may schedule early — so validate only the
        // geometry+precedence side by zeroing the release.
        let g0 = TaskGraph::new(
            g.device,
            g.tasks
                .iter()
                .map(|t| Task::new(t.id, t.cols, t.duration))
                .collect(),
            g.dag.clone(),
        );
        let sched = schedule_from_placement(&g0, &pl).expect("aligned placement");
        sched.validate(&g0).expect("valid schedule");
        spp_core::assert_close!(sched.makespan(&g0), pl.height(&p.inst));
    }

    #[test]
    fn roundtrip_via_greedy_respects_releases() {
        let g = graph();
        let p = to_prec_instance(&g);
        let pl = spp_precedence::greedy_skyline(&p);
        let sched = schedule_from_placement(&g, &pl).expect("aligned placement");
        sched.validate(&g).expect("valid schedule");
    }

    #[test]
    fn misaligned_placement_rejected() {
        let g = TaskGraph::independent(Device::new(4), vec![Task::new(0, 1, 1.0)]);
        let pl = Placement::from_xy(&[(0.3, 0.0)]);
        assert_eq!(schedule_from_placement(&g, &pl), Err(0));
    }

    #[test]
    fn all_algorithms_produce_column_aligned_placements() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let k = rng.gen_range(2..10);
            let n = rng.gen_range(1..25);
            let tasks: Vec<Task> = (0..n)
                .map(|i| Task::new(i, rng.gen_range(1..=k), rng.gen_range(0.1..2.0)))
                .collect();
            let dag = spp_dag::gen::random_order(&mut rng, n, 0.2);
            let g = TaskGraph::new(Device::new(k), tasks, dag);
            let p = to_prec_instance(&g);
            for pl in [
                spp_precedence::dc(&p, &spp_pack::Packer::Nfdh),
                spp_precedence::greedy_skyline(&p),
                spp_precedence::layered_pack(&p, &spp_pack::Packer::Ffdh),
            ] {
                let sched = schedule_from_placement(&g, &pl).expect("column-aligned placement");
                sched.validate(&g).expect("valid schedule");
            }
        }
    }
}
