//! The reconfigurable device model.

/// A column-reconfigurable FPGA: `K` identical columns in a row.
///
/// Virtex-II-class devices reconfigure whole columns only, so a task
/// occupies a contiguous column range `[col, col + cols)` for a time
/// interval — exactly a rectangle in the strip of width `K` (normalized
/// to 1). Typical devices have `K ≤ 200` (§1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    columns: usize,
}

impl Device {
    /// A device with `columns ≥ 1` columns.
    pub fn new(columns: usize) -> Self {
        assert!(columns >= 1, "a device needs at least one column");
        Device { columns }
    }

    /// Number of columns `K`.
    #[inline]
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Width of one column in the unit strip (`1/K`).
    #[inline]
    pub fn column_width(&self) -> f64 {
        1.0 / self.columns as f64
    }

    /// Convert a column count to a strip width.
    pub fn width_of(&self, cols: usize) -> f64 {
        assert!(
            cols >= 1 && cols <= self.columns,
            "task needs 1..=K columns, got {cols}"
        );
        cols as f64 / self.columns as f64
    }

    /// Convert a strip x-coordinate to a column index, requiring column
    /// alignment within tolerance.
    pub fn column_of(&self, x: f64) -> Option<usize> {
        let c = x * self.columns as f64;
        let r = c.round();
        if (c - r).abs() <= 1e-6 && r >= 0.0 && (r as usize) < self.columns {
            Some(r as usize)
        } else if (c - r).abs() <= 1e-6 && r as usize == self.columns {
            // x == 1.0 is only valid for zero-width, which tasks are not
            None
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_are_column_fractions() {
        let d = Device::new(4);
        assert_eq!(d.columns(), 4);
        spp_core::assert_close!(d.column_width(), 0.25);
        spp_core::assert_close!(d.width_of(3), 0.75);
    }

    #[test]
    fn column_of_snaps_aligned_positions() {
        let d = Device::new(4);
        assert_eq!(d.column_of(0.0), Some(0));
        assert_eq!(d.column_of(0.25), Some(1));
        assert_eq!(d.column_of(0.75), Some(3));
        assert_eq!(d.column_of(0.30), None); // misaligned
        assert_eq!(d.column_of(1.0), None); // past the last column
    }

    #[test]
    #[should_panic(expected = "1..=K")]
    fn oversized_task_rejected() {
        Device::new(4).width_of(5);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_column_device_rejected() {
        Device::new(0);
    }
}
