//! ASCII Gantt rendering of schedules (columns across, time down).

use crate::schedule::Schedule;
use crate::task::TaskGraph;

/// Render the schedule as text: one row per time slot of size `dt`, one
/// cell per column; cells show the task id (mod 36, base-36 digit) or `.`
/// for idle fabric.
pub fn render(graph: &TaskGraph, sched: &Schedule, dt: f64) -> String {
    assert!(dt > 0.0, "time step must be positive");
    let mk = sched.makespan(graph);
    let k = graph.device.columns();
    let steps = (mk / dt).ceil() as usize;
    let mut grid = vec![vec![b'.'; k]; steps.max(1)];
    for e in &sched.entries {
        let t = &graph.tasks[e.id];
        let t0 = (e.start_time / dt).floor() as usize;
        let t1 = (((e.start_time + t.duration) / dt).ceil() as usize).min(grid.len());
        let glyph = base36(e.id);
        for row in grid.iter_mut().take(t1).skip(t0) {
            for c in row.iter_mut().skip(e.start_col).take(t.cols) {
                *c = glyph;
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "time/col {} (K={}, makespan={:.2})\n",
        "-".repeat(k.saturating_sub(8)),
        k,
        mk
    ));
    for (i, row) in grid.iter().enumerate() {
        out.push_str(&format!("{:7.2} |", i as f64 * dt));
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push_str("|\n");
    }
    out
}

fn base36(id: usize) -> u8 {
    const DIGITS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    DIGITS[id % 36]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::schedule::ScheduledTask;
    use crate::task::Task;

    #[test]
    fn renders_cells_and_idle() {
        let g = TaskGraph::independent(
            Device::new(4),
            vec![Task::new(0, 2, 1.0), Task::new(1, 2, 2.0)],
        );
        let s = Schedule {
            entries: vec![
                ScheduledTask {
                    id: 0,
                    start_col: 0,
                    start_time: 0.0,
                },
                ScheduledTask {
                    id: 1,
                    start_col: 2,
                    start_time: 0.0,
                },
            ],
        };
        let text = render(&g, &s, 1.0);
        assert!(text.contains("0011"), "first slot row: {text}");
        assert!(text.contains("..11"), "second slot row: {text}");
        assert!(text.contains("makespan=2.00"));
    }

    #[test]
    fn empty_schedule_renders() {
        let g = TaskGraph::independent(Device::new(3), vec![]);
        let s = Schedule { entries: vec![] };
        let text = render(&g, &s, 0.5);
        assert!(text.contains("K=3"));
    }

    #[test]
    fn base36_wraps() {
        assert_eq!(base36(0), b'0');
        assert_eq!(base36(10), b'a');
        assert_eq!(base36(36), b'0');
    }
}
