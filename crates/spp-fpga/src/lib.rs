//! # spp-fpga — the application substrate: partially reconfigurable FPGAs
//!
//! The paper's motivation (§1): a dynamically reconfigurable FPGA
//! (Virtex-II style) is a linear array of `K` homogeneous columns; a task
//! occupies a *contiguous* block of columns for the full height of the
//! device, for the duration of its execution. Scheduling tasks on the
//! device *is* strip packing: width = columns/`K`, height = time.
//!
//! This crate simulates that device model end to end:
//!
//! * [`device`] — the `K`-column fabric and its invariants;
//! * [`task`] — column-quantized tasks and task graphs;
//! * [`schedule`] — reconfiguration schedules with full validation
//!   (contiguity, no column/time conflicts, precedence, release times);
//! * [`convert`] — task graph ⇄ strip instance, placement ⇄ schedule;
//! * [`gantt`] — ASCII rendering of a schedule (columns × time);
//! * [`pipelines`] — workload generators shaped like the image-processing
//!   pipelines (JPEG encoding) the paper cites as the driving use case;
//! * [`overhead`] — extension: per-task reconfiguration delay `δ`
//!   (bitstream load), with the inflation reduction back to the
//!   overhead-free model.

pub mod convert;
pub mod device;
pub mod gantt;
pub mod overhead;
pub mod pipelines;
pub mod schedule;
pub mod task;

pub use convert::{schedule_from_placement, to_prec_instance};
pub use device::Device;
pub use schedule::{Schedule, ScheduleError, ScheduledTask};
pub use task::{Task, TaskGraph};
