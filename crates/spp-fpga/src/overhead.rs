//! Reconfiguration overhead.
//!
//! Real column-reconfigurable devices pay a fixed delay to rewrite a
//! column's configuration before a task can run there (on Virtex-II the
//! bitstream load is proportional to the columns touched). The paper
//! abstracts this away; this extension models a per-task overhead `δ`:
//! **whenever two tasks share a column, the later one must start at least
//! `δ` after the earlier one finishes** (its columns must be rewritten).
//!
//! The standard reduction back to overhead-free scheduling inflates every
//! duration by `δ`: a schedule of the inflated graph, replayed on the
//! original durations, leaves exactly the `δ` gap the reconfiguration
//! needs. [`inflate`] performs the reduction, [`validate_with_overhead`]
//! checks the property directly, and the round-trip is tested for every
//! algorithm in the workspace.

use crate::schedule::{Schedule, ScheduleError};
use crate::task::{Task, TaskGraph};

/// Inflate every task duration by `delta` (the reconfiguration delay).
/// Scheduling the inflated graph and replaying start times on the
/// original graph yields a schedule that is valid *with* overhead.
pub fn inflate(graph: &TaskGraph, delta: f64) -> TaskGraph {
    assert!(delta >= 0.0, "overhead cannot be negative");
    let tasks = graph
        .tasks
        .iter()
        .map(|t| Task {
            id: t.id,
            cols: t.cols,
            duration: t.duration + delta,
            release: t.release,
        })
        .collect();
    TaskGraph::new(graph.device, tasks, graph.dag.clone())
}

/// Validate a schedule of the *original* graph under reconfiguration
/// overhead `delta`: the plain schedule rules plus, for any two tasks
/// sharing a column, `later.start ≥ earlier.end + delta`.
pub fn validate_with_overhead(
    graph: &TaskGraph,
    sched: &Schedule,
    delta: f64,
) -> Result<(), ScheduleError> {
    sched.validate(graph)?;
    if delta <= 0.0 {
        return Ok(());
    }
    let n = graph.len();
    let mut by_id = vec![None; n];
    for e in &sched.entries {
        by_id[e.id] = Some(*e);
    }
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let (ea, eb) = (by_id[a].unwrap(), by_id[b].unwrap());
            let (ta, tb) = (&graph.tasks[a], &graph.tasks[b]);
            let cols_overlap =
                ea.start_col < eb.start_col + tb.cols && eb.start_col < ea.start_col + ta.cols;
            if !cols_overlap {
                continue;
            }
            // `a` strictly before `b` in time?
            let a_end = ea.start_time + ta.duration;
            if a_end <= eb.start_time + spp_core::eps::EPS
                && eb.start_time + spp_core::eps::EPS < a_end + delta
            {
                return Err(ScheduleError::Conflict { a, b });
            }
        }
    }
    Ok(())
}

/// Schedule with overhead by reduction: solve the inflated graph with the
/// given strip-packing pipeline, replay start times/columns on the
/// original graph. Returns the overhead-valid schedule.
pub fn schedule_with_overhead(
    graph: &TaskGraph,
    delta: f64,
    solve: impl Fn(&spp_dag::PrecInstance) -> spp_core::Placement,
) -> Result<Schedule, usize> {
    let inflated = inflate(graph, delta);
    let prec = crate::convert::to_prec_instance(&inflated);
    let pl = solve(&prec);
    debug_assert!(prec.validate(&pl).is_ok());
    crate::convert::schedule_from_placement(&inflated, &pl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::schedule::ScheduledTask;
    use spp_pack::Packer;

    fn graph() -> TaskGraph {
        TaskGraph::independent(
            Device::new(4),
            vec![
                Task::new(0, 2, 1.0),
                Task::new(1, 2, 1.0),
                Task::new(2, 2, 1.0),
            ],
        )
    }

    #[test]
    fn inflation_adds_delta() {
        let g = graph();
        let infl = inflate(&g, 0.25);
        for (a, b) in g.tasks.iter().zip(&infl.tasks) {
            spp_core::assert_close!(b.duration, a.duration + 0.25);
            assert_eq!(a.cols, b.cols);
        }
    }

    #[test]
    fn back_to_back_without_gap_rejected() {
        let g = graph();
        let s = Schedule {
            entries: vec![
                ScheduledTask {
                    id: 0,
                    start_col: 0,
                    start_time: 0.0,
                },
                ScheduledTask {
                    id: 1,
                    start_col: 0,
                    start_time: 1.0,
                }, // no gap
                ScheduledTask {
                    id: 2,
                    start_col: 2,
                    start_time: 0.0,
                },
            ],
        };
        assert!(s.validate(&g).is_ok(), "fine without overhead");
        assert!(validate_with_overhead(&g, &s, 0.5).is_err());
        // with the gap it passes
        let s2 = Schedule {
            entries: vec![
                ScheduledTask {
                    id: 0,
                    start_col: 0,
                    start_time: 0.0,
                },
                ScheduledTask {
                    id: 1,
                    start_col: 0,
                    start_time: 1.5,
                },
                ScheduledTask {
                    id: 2,
                    start_col: 2,
                    start_time: 0.0,
                },
            ],
        };
        assert!(validate_with_overhead(&g, &s2, 0.5).is_ok());
    }

    #[test]
    fn disjoint_columns_need_no_gap() {
        let g = graph();
        let s = Schedule {
            entries: vec![
                ScheduledTask {
                    id: 0,
                    start_col: 0,
                    start_time: 0.0,
                },
                ScheduledTask {
                    id: 1,
                    start_col: 2,
                    start_time: 0.0,
                },
                ScheduledTask {
                    id: 2,
                    start_col: 0,
                    start_time: 2.0,
                },
            ],
        };
        assert!(validate_with_overhead(&g, &s, 0.5).is_ok());
    }

    #[test]
    fn reduction_roundtrip_is_overhead_valid() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(66);
        for _ in 0..8 {
            let k = rng.gen_range(2..8);
            let n = rng.gen_range(2..15);
            let tasks: Vec<Task> = (0..n)
                .map(|i| Task::new(i, rng.gen_range(1..=k), rng.gen_range(0.2..1.5)))
                .collect();
            let dag = spp_dag::gen::random_order(&mut rng, n, 0.2);
            let g = TaskGraph::new(Device::new(k), tasks, dag);
            let delta = 0.3;
            let sched = schedule_with_overhead(&g, delta, |p| spp_precedence::dc(p, &Packer::Nfdh))
                .expect("aligned");
            validate_with_overhead(&g, &sched, delta).expect("overhead-valid");
        }
    }

    #[test]
    fn zero_overhead_is_plain_validation() {
        let g = graph();
        let s = Schedule {
            entries: vec![
                ScheduledTask {
                    id: 0,
                    start_col: 0,
                    start_time: 0.0,
                },
                ScheduledTask {
                    id: 1,
                    start_col: 0,
                    start_time: 1.0,
                },
                ScheduledTask {
                    id: 2,
                    start_col: 2,
                    start_time: 0.0,
                },
            ],
        };
        assert!(validate_with_overhead(&g, &s, 0.0).is_ok());
    }
}
