//! Workload generators shaped like the paper's motivating applications.
//!
//! §1 motivates precedence-constrained strip packing with image
//! processing — "such as JPEG encoding" — on column-reconfigurable
//! FPGAs. These builders produce task graphs with that structure.

use crate::device::Device;
use crate::task::{Task, TaskGraph};
use rand::Rng;
use spp_dag::Dag;

/// A JPEG-encoder-like pipeline: `stripes` independent image stripes,
/// each flowing through 4 stages (color transform → DCT → quantization →
/// entropy coding), with a final multiplexer task collecting all stripes.
///
/// Stage resource shapes (columns, duration) follow the usual hardware
/// intuition: DCT is the widest/heaviest stage, entropy coding the most
/// serial.
pub fn jpeg_pipeline(device: Device, stripes: usize) -> TaskGraph {
    assert!(stripes >= 1);
    let k = device.columns();
    // (cols, duration) per stage, clamped to the device width
    let stage_shape = [
        ((k / 4).max(1), 1.0), // color transform
        ((k / 2).max(1), 2.0), // DCT
        ((k / 4).max(1), 1.0), // quantization
        ((k / 8).max(1), 3.0), // entropy coding
    ];
    let mut tasks = Vec::new();
    let mut edges = Vec::new();
    for s in 0..stripes {
        for (stage, &(cols, dur)) in stage_shape.iter().enumerate() {
            let id = s * 4 + stage;
            tasks.push(Task::new(id, cols, dur));
            if stage > 0 {
                edges.push((id - 1, id));
            }
        }
    }
    // multiplexer joins all stripes
    let mux = tasks.len();
    tasks.push(Task::new(mux, (k / 4).max(1), 1.0));
    for s in 0..stripes {
        edges.push((s * 4 + 3, mux));
    }
    let n = tasks.len();
    TaskGraph::new(
        device,
        tasks,
        Dag::new(n, &edges).expect("pipeline is acyclic"),
    )
}

/// A generic image-processing pipeline: `depth` stages × `width` parallel
/// tiles per stage, stage `i` fully connected to stage `i+1` tile-wise
/// (each tile depends on the same-index tile and one random neighbor).
pub fn tiled_pipeline<R: Rng>(
    rng: &mut R,
    device: Device,
    depth: usize,
    width: usize,
) -> TaskGraph {
    assert!(depth >= 1 && width >= 1);
    let k = device.columns();
    let mut tasks = Vec::new();
    let mut edges = Vec::new();
    for d in 0..depth {
        for w in 0..width {
            let id = d * width + w;
            let cols = rng.gen_range(1..=(k / 2).max(1));
            let dur = rng.gen_range(0.5..2.5);
            tasks.push(Task::new(id, cols, dur));
            if d > 0 {
                let prev = (d - 1) * width + w;
                edges.push((prev, id));
                let neighbor = (d - 1) * width + rng.gen_range(0..width);
                if neighbor != prev {
                    edges.push((neighbor, id));
                }
            }
        }
    }
    let n = tasks.len();
    TaskGraph::new(
        device,
        tasks,
        Dag::new(n, &edges).expect("pipeline is acyclic"),
    )
}

/// An online task queue with release times (the Steiger–Walder–Platzner
/// operating-system setting): tasks arrive over time, no precedence.
pub fn online_queue<R: Rng>(rng: &mut R, device: Device, n: usize, mean_gap: f64) -> TaskGraph {
    let k = device.columns();
    let mut t = 0.0;
    let tasks: Vec<Task> = (0..n)
        .map(|i| {
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -mean_gap * u.ln();
            Task::with_release(i, rng.gen_range(1..=k), rng.gen_range(0.1..1.0), t)
        })
        .collect();
    TaskGraph::independent(device, tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn jpeg_counts() {
        let g = jpeg_pipeline(Device::new(16), 3);
        assert_eq!(g.len(), 13); // 3 stripes × 4 stages + mux
                                 // each stripe is a chain into the mux
        assert_eq!(g.dag.in_degree(12), 3);
        assert!(g.critical_path() >= 7.0); // 1+2+1+3 through a stripe
    }

    #[test]
    fn jpeg_small_device_clamps() {
        let g = jpeg_pipeline(Device::new(2), 1);
        for t in &g.tasks {
            assert!(t.cols >= 1 && t.cols <= 2);
        }
    }

    #[test]
    fn tiled_pipeline_levels() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = tiled_pipeline(&mut rng, Device::new(8), 4, 3);
        assert_eq!(g.len(), 12);
        // depth-4 pipeline → critical path crosses at least 4 tasks
        let lv = spp_dag::levels::levels(&g.dag);
        assert_eq!(lv.iter().copied().max(), Some(3));
    }

    #[test]
    fn online_queue_sorted_releases() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = online_queue(&mut rng, Device::new(6), 20, 0.5);
        for w in g.tasks.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
        assert_eq!(g.dag.edge_count(), 0);
    }

    #[test]
    fn jpeg_schedules_with_dc_end_to_end() {
        let g = jpeg_pipeline(Device::new(16), 4);
        let p = crate::convert::to_prec_instance(&g);
        let pl = spp_precedence::dc(&p, &spp_pack::Packer::Nfdh);
        let sched = crate::convert::schedule_from_placement(&g, &pl).unwrap();
        sched.validate(&g).unwrap();
        assert!(sched.makespan(&g) + 1e-9 >= g.makespan_lower_bound());
    }
}
