//! Reconfiguration schedules and their validation.

use crate::task::TaskGraph;
use std::fmt;

/// One scheduled task: starts at `start_time`, occupies columns
/// `[start_col, start_col + cols)` until `start_time + duration`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledTask {
    pub id: usize,
    pub start_col: usize,
    pub start_time: f64,
}

/// A complete schedule for a task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    pub entries: Vec<ScheduledTask>,
}

/// Schedule validation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    WrongTaskCount { expected: usize, got: usize },
    MissingTask { id: usize },
    ColumnsOutOfRange { id: usize },
    ReleaseViolated { id: usize },
    PrecedenceViolated { pred: usize, succ: usize },
    Conflict { a: usize, b: usize },
    NegativeStart { id: usize },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::WrongTaskCount { expected, got } => {
                write!(f, "schedule has {got} entries for {expected} tasks")
            }
            ScheduleError::MissingTask { id } => write!(f, "task {id} not scheduled"),
            ScheduleError::ColumnsOutOfRange { id } => {
                write!(f, "task {id} leaves the device")
            }
            ScheduleError::ReleaseViolated { id } => {
                write!(f, "task {id} starts before its release")
            }
            ScheduleError::PrecedenceViolated { pred, succ } => {
                write!(f, "task {succ} starts before predecessor {pred} finishes")
            }
            ScheduleError::Conflict { a, b } => {
                write!(f, "tasks {a} and {b} overlap in columns and time")
            }
            ScheduleError::NegativeStart { id } => {
                write!(f, "task {id} starts before time 0")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Makespan: latest finish time (0 for an empty schedule).
    pub fn makespan(&self, graph: &TaskGraph) -> f64 {
        self.entries
            .iter()
            .map(|e| e.start_time + graph.tasks[e.id].duration)
            .fold(0.0, f64::max)
    }

    /// Device utilization: work / (K × makespan). In `[0, 1]`.
    pub fn utilization(&self, graph: &TaskGraph) -> f64 {
        let mk = self.makespan(graph);
        if mk <= 0.0 {
            return 0.0;
        }
        graph.total_work() / (graph.device.columns() as f64 * mk)
    }

    /// Validate against the task graph (see [`ScheduleError`]).
    pub fn validate(&self, graph: &TaskGraph) -> Result<(), ScheduleError> {
        let n = graph.len();
        if self.entries.len() != n {
            return Err(ScheduleError::WrongTaskCount {
                expected: n,
                got: self.entries.len(),
            });
        }
        let mut by_id: Vec<Option<ScheduledTask>> = vec![None; n];
        for e in &self.entries {
            if e.id >= n {
                return Err(ScheduleError::MissingTask { id: e.id });
            }
            by_id[e.id] = Some(*e);
        }
        let entry = |id: usize| -> Result<ScheduledTask, ScheduleError> {
            by_id[id].ok_or(ScheduleError::MissingTask { id })
        };
        for id in 0..n {
            let e = entry(id)?;
            let t = &graph.tasks[id];
            if e.start_col + t.cols > graph.device.columns() {
                return Err(ScheduleError::ColumnsOutOfRange { id });
            }
            if e.start_time < -spp_core::eps::EPS {
                return Err(ScheduleError::NegativeStart { id });
            }
            if e.start_time + spp_core::eps::EPS < t.release {
                return Err(ScheduleError::ReleaseViolated { id });
            }
        }
        for (u, v) in graph.dag.edges() {
            let eu = entry(u)?;
            let ev = entry(v)?;
            if eu.start_time + graph.tasks[u].duration > ev.start_time + spp_core::eps::EPS {
                return Err(ScheduleError::PrecedenceViolated { pred: u, succ: v });
            }
        }
        // pairwise conflicts (columns overlap && time overlaps)
        for a in 0..n {
            for b in (a + 1)..n {
                let (ea, eb) = (entry(a)?, entry(b)?);
                let (ta, tb) = (&graph.tasks[a], &graph.tasks[b]);
                let cols_overlap =
                    ea.start_col < eb.start_col + tb.cols && eb.start_col < ea.start_col + ta.cols;
                let time_overlap = spp_core::eps::intervals_overlap(
                    ea.start_time,
                    ea.start_time + ta.duration,
                    eb.start_time,
                    eb.start_time + tb.duration,
                );
                if cols_overlap && time_overlap {
                    return Err(ScheduleError::Conflict { a, b });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::task::Task;
    use spp_dag::Dag;

    fn graph() -> TaskGraph {
        let d = Device::new(4);
        TaskGraph::new(
            d,
            vec![
                Task::new(0, 2, 1.0),
                Task::new(1, 2, 1.0),
                Task::with_release(2, 4, 0.5, 2.0),
            ],
            Dag::new(3, &[(0, 2)]).unwrap(),
        )
    }

    #[test]
    fn valid_schedule_passes() {
        let g = graph();
        let s = Schedule {
            entries: vec![
                ScheduledTask {
                    id: 0,
                    start_col: 0,
                    start_time: 0.0,
                },
                ScheduledTask {
                    id: 1,
                    start_col: 2,
                    start_time: 0.0,
                },
                ScheduledTask {
                    id: 2,
                    start_col: 0,
                    start_time: 2.0,
                },
            ],
        };
        assert!(s.validate(&g).is_ok());
        spp_core::assert_close!(s.makespan(&g), 2.5);
        let util = s.utilization(&g);
        assert!(util > 0.0 && util <= 1.0);
    }

    #[test]
    fn conflicts_detected() {
        let g = graph();
        let s = Schedule {
            entries: vec![
                ScheduledTask {
                    id: 0,
                    start_col: 0,
                    start_time: 0.0,
                },
                ScheduledTask {
                    id: 1,
                    start_col: 1,
                    start_time: 0.5,
                }, // overlaps 0
                ScheduledTask {
                    id: 2,
                    start_col: 0,
                    start_time: 2.0,
                },
            ],
        };
        assert_eq!(s.validate(&g), Err(ScheduleError::Conflict { a: 0, b: 1 }));
    }

    #[test]
    fn precedence_and_release_checked() {
        let g = graph();
        let early = Schedule {
            entries: vec![
                ScheduledTask {
                    id: 0,
                    start_col: 0,
                    start_time: 0.0,
                },
                ScheduledTask {
                    id: 1,
                    start_col: 2,
                    start_time: 0.0,
                },
                ScheduledTask {
                    id: 2,
                    start_col: 0,
                    start_time: 0.5,
                }, // release 2.0!
            ],
        };
        assert_eq!(
            early.validate(&g),
            Err(ScheduleError::ReleaseViolated { id: 2 })
        );
    }

    #[test]
    fn out_of_range_columns() {
        let g = graph();
        let s = Schedule {
            entries: vec![
                ScheduledTask {
                    id: 0,
                    start_col: 3,
                    start_time: 0.0,
                }, // 3+2 > 4
                ScheduledTask {
                    id: 1,
                    start_col: 0,
                    start_time: 0.0,
                },
                ScheduledTask {
                    id: 2,
                    start_col: 0,
                    start_time: 2.0,
                },
            ],
        };
        assert_eq!(
            s.validate(&g),
            Err(ScheduleError::ColumnsOutOfRange { id: 0 })
        );
    }

    #[test]
    fn missing_and_duplicate_tasks() {
        let g = graph();
        let s = Schedule {
            entries: vec![
                ScheduledTask {
                    id: 0,
                    start_col: 0,
                    start_time: 0.0,
                },
                ScheduledTask {
                    id: 0,
                    start_col: 0,
                    start_time: 5.0,
                }, // dup
                ScheduledTask {
                    id: 2,
                    start_col: 0,
                    start_time: 2.0,
                },
            ],
        };
        assert_eq!(s.validate(&g), Err(ScheduleError::MissingTask { id: 1 }));
    }

    #[test]
    fn touching_time_intervals_do_not_conflict() {
        let g = TaskGraph::independent(
            Device::new(2),
            vec![Task::new(0, 2, 1.0), Task::new(1, 2, 1.0)],
        );
        let s = Schedule {
            entries: vec![
                ScheduledTask {
                    id: 0,
                    start_col: 0,
                    start_time: 0.0,
                },
                ScheduledTask {
                    id: 1,
                    start_col: 0,
                    start_time: 1.0,
                },
            ],
        };
        assert!(s.validate(&g).is_ok());
    }
}
