//! Column-quantized tasks and task graphs.

use crate::device::Device;
use spp_dag::Dag;

/// A hardware task: occupies `cols` contiguous columns for `duration`
/// time units, not before `release`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    pub id: usize,
    /// Columns required (≥ 1).
    pub cols: usize,
    /// Execution time (> 0).
    pub duration: f64,
    /// Earliest start time.
    pub release: f64,
}

impl Task {
    pub fn new(id: usize, cols: usize, duration: f64) -> Self {
        Task {
            id,
            cols,
            duration,
            release: 0.0,
        }
    }

    pub fn with_release(id: usize, cols: usize, duration: f64, release: f64) -> Self {
        Task {
            id,
            cols,
            duration,
            release,
        }
    }
}

/// A set of tasks plus their precedence DAG, bound to a device.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    pub device: Device,
    pub tasks: Vec<Task>,
    pub dag: Dag,
}

impl TaskGraph {
    /// Build and validate: ids sequential, columns within the device,
    /// durations positive, DAG size matching.
    pub fn new(device: Device, tasks: Vec<Task>, dag: Dag) -> Self {
        assert_eq!(tasks.len(), dag.len(), "task/DAG size mismatch");
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.id, i, "task ids must equal their index");
            assert!(
                t.cols >= 1 && t.cols <= device.columns(),
                "task {i} needs {} columns on a {}-column device",
                t.cols,
                device.columns()
            );
            assert!(t.duration > 0.0, "task {i} has non-positive duration");
            assert!(t.release >= 0.0, "task {i} has negative release");
        }
        TaskGraph { device, tasks, dag }
    }

    /// Tasks without precedence constraints.
    pub fn independent(device: Device, tasks: Vec<Task>) -> Self {
        let n = tasks.len();
        TaskGraph::new(device, tasks, Dag::empty(n))
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total work = Σ cols·duration (device-column time units).
    pub fn total_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.cols as f64 * t.duration).sum()
    }

    /// Critical-path duration (ignoring column contention).
    pub fn critical_path(&self) -> f64 {
        let heights: Vec<f64> = self.tasks.iter().map(|t| t.duration).collect();
        spp_dag::critical_path_values(&self.dag, &heights)
            .into_iter()
            .fold(0.0, f64::max)
    }

    /// Makespan lower bound: `max(work/K, critical path, max release+dur)`.
    pub fn makespan_lower_bound(&self) -> f64 {
        let work = self.total_work() / self.device.columns() as f64;
        let release = self
            .tasks
            .iter()
            .map(|t| t.release + t.duration)
            .fold(0.0, f64::max);
        work.max(self.critical_path()).max(release)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        let d = Device::new(8);
        let tasks = vec![Task::new(0, 4, 2.0), Task::new(1, 8, 1.0)];
        let g = TaskGraph::independent(d, tasks);
        assert_eq!(g.len(), 2);
        spp_core::assert_close!(g.total_work(), 16.0);
    }

    #[test]
    fn lower_bounds() {
        let d = Device::new(4);
        let tasks = vec![
            Task::new(0, 4, 1.0),
            Task::new(1, 2, 2.0),
            Task::with_release(2, 1, 1.0, 10.0),
        ];
        let dag = Dag::new(3, &[(0, 1)]).unwrap();
        let g = TaskGraph::new(d, tasks, dag);
        spp_core::assert_close!(g.critical_path(), 3.0);
        // work = 4 + 4 + 1 = 9, /4 = 2.25; release bound = 11
        spp_core::assert_close!(g.makespan_lower_bound(), 11.0);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn too_wide_task_rejected() {
        let d = Device::new(4);
        TaskGraph::independent(d, vec![Task::new(0, 5, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn dag_size_must_match() {
        let d = Device::new(4);
        TaskGraph::new(d, vec![Task::new(0, 1, 1.0)], Dag::empty(2));
    }
}
