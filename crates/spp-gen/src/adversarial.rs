//! The paper's hand-crafted instance families.
//!
//! * [`fig1_lower_bound_gap`] — Lemma 2.4 / Fig. 1: a precedence-
//!   constrained family where both simple lower bounds (`AREA(S)` and
//!   `F(S)`) tend to 1 while every valid packing has height ≥ `k/2 =
//!   Ω(log n)`. It certifies that no algorithm argued only against those
//!   bounds can beat `O(log n)`.
//! * [`fig2_ratio3_tightness`] — Lemma 2.7 / Fig. 2: a uniform-height
//!   family with `OPT = 3(max F − 1)` and `OPT = 3·AREA − 3nε`, showing
//!   the absolute 3-approximation of Theorem 2.6 cannot be improved by an
//!   argument against `max(AREA, F)`.

use spp_core::{Instance, Item};
use spp_dag::{Dag, PrecInstance};

/// The Lemma 2.4 construction for parameter `k ≥ 1` (so `n = 2^{k+1} − 2`).
///
/// Composition (§2.1):
/// * `n/2 = 2^k − 1` **tall** rectangles of width `1/k`; for
///   `i ∈ [1, k]` there are `2^{i−1}` of them with height `1/2^{i−1}`;
/// * `n/2` **wide** rectangles of width 1 and height `ε`;
/// * chain `i` alternates the `2^{i−1}` tall rectangles of height
///   `1/2^{i−1}` with wide rectangles (`2^{i−1} − 1` of them); the
///   `k` wide rectangles left over form one extra chain.
///
/// As `ε → 0`: `AREA(S) → 1`, `F(S) → 1`, but `OPT ≥ k/2` because the
/// width-1 separators force shelf-like packings (Lemma 2.4).
pub struct Fig1Family {
    pub k: usize,
    pub epsilon: f64,
    pub prec: PrecInstance,
    /// ids of the tall rectangles (diagnostics / rendering).
    pub tall_ids: Vec<usize>,
    /// ids of the wide rectangles.
    pub wide_ids: Vec<usize>,
}

impl Fig1Family {
    /// `n = 2^{k+1} − 2`.
    pub fn n(&self) -> usize {
        (1usize << (self.k + 1)) - 2
    }

    /// The Ω(log n) lower bound on OPT proved in Lemma 2.4: `k/2`.
    pub fn opt_lower_bound(&self) -> f64 {
        self.k as f64 / 2.0
    }

    /// An upper bound on OPT: stacking everything costs
    /// `Σ h = k + (n/2)·ε`, so OPT = Θ(k) = Θ(log n).
    pub fn opt_upper_bound(&self) -> f64 {
        self.k as f64 + (self.n() as f64 / 2.0) * self.epsilon
    }
}

/// Build the Lemma 2.4 / Fig. 1 family.
pub fn fig1_lower_bound_gap(k: usize, epsilon: f64) -> Fig1Family {
    assert!(k >= 1, "k must be positive");
    assert!(epsilon > 0.0, "epsilon must be positive");
    let n = (1usize << (k + 1)) - 2;
    let half = n / 2; // = 2^k - 1

    let mut items: Vec<Item> = Vec::with_capacity(n);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut tall_ids = Vec::with_capacity(half);
    let mut wide_ids = Vec::with_capacity(half);
    let tall_w = 1.0 / k as f64;

    let mut next_id = 0usize;
    let mut new_item = |items: &mut Vec<Item>, w: f64, h: f64| -> usize {
        let id = next_id;
        items.push(Item::new(id, w, h));
        next_id += 1;
        id
    };

    let mut wides_used = 0usize;
    for i in 1..=k {
        let count = 1usize << (i - 1); // talls in chain i
        let h = 1.0 / count as f64; // height 1/2^{i-1}
        let mut prev: Option<usize> = None;
        for _ in 0..count {
            let t = new_item(&mut items, tall_w, h);
            tall_ids.push(t);
            if let Some(p) = prev {
                // sandwich a wide rectangle between consecutive talls
                let wde = new_item(&mut items, 1.0, epsilon);
                wide_ids.push(wde);
                wides_used += 1;
                edges.push((p, wde));
                edges.push((wde, t));
            }
            prev = Some(t);
        }
    }
    // leftover wide rectangles form a separate chain
    let mut prev: Option<usize> = None;
    for _ in wides_used..half {
        let wde = new_item(&mut items, 1.0, epsilon);
        wide_ids.push(wde);
        if let Some(p) = prev {
            edges.push((p, wde));
        }
        prev = Some(wde);
    }

    debug_assert_eq!(items.len(), n);
    let inst = Instance::new(items).expect("construction is in range");
    let dag = Dag::new(n, &edges).expect("chains are acyclic");
    Fig1Family {
        k,
        epsilon,
        prec: PrecInstance::new(inst, dag),
        tall_ids,
        wide_ids,
    }
}

/// The Lemma 2.7 construction for parameter `k ≥ 1` (so `n = 3k`).
///
/// * `n/3` **narrow** rectangles: height 1, width `ε`, forming one chain;
/// * `2n/3` **wide** rectangles: height 1, width `1/2 + ε`, each with an
///   edge into the *first* narrow rectangle.
///
/// Wide rectangles can never share a shelf (width > 1/2) and must all
/// finish before the narrow chain starts, so `OPT = n` exactly, while
/// `max F = n/3 + 1` and `AREA = n/3 + nε`.
pub struct Fig2Family {
    pub k: usize,
    pub epsilon: f64,
    pub prec: PrecInstance,
    pub narrow_ids: Vec<usize>,
    pub wide_ids: Vec<usize>,
}

impl Fig2Family {
    pub fn n(&self) -> usize {
        3 * self.k
    }

    /// Exact optimum (Lemma 2.7): all rectangles in series, height `n`.
    pub fn opt(&self) -> f64 {
        self.n() as f64
    }

    /// `max_s F(s) = n/3 + 1`.
    pub fn max_f(&self) -> f64 {
        self.k as f64 + 1.0
    }

    /// `AREA(S) = n/3 + nε`.
    pub fn area(&self) -> f64 {
        self.k as f64 + 3.0 * self.k as f64 * self.epsilon
    }
}

/// Build the Lemma 2.7 / Fig. 2 family.
pub fn fig2_ratio3_tightness(k: usize, epsilon: f64) -> Fig2Family {
    assert!(k >= 1, "k must be positive");
    assert!(
        epsilon > 0.0 && epsilon < 0.5,
        "epsilon must be in (0, 1/2)"
    );
    let n = 3 * k;
    let mut items = Vec::with_capacity(n);
    let mut edges = Vec::new();

    // narrow chain: ids 0..k
    let narrow_ids: Vec<usize> = (0..k).collect();
    for &id in &narrow_ids {
        items.push(Item::new(id, epsilon, 1.0));
        if id > 0 {
            edges.push((id - 1, id));
        }
    }
    // wide rectangles: ids k..3k, each precedes the first narrow
    let wide_ids: Vec<usize> = (k..n).collect();
    for &id in &wide_ids {
        items.push(Item::new(id, 0.5 + epsilon, 1.0));
        edges.push((id, narrow_ids[0]));
    }

    let inst = Instance::new(items).expect("construction is in range");
    let dag = Dag::new(n, &edges).expect("construction is acyclic");
    Fig2Family {
        k,
        epsilon,
        prec: PrecInstance::new(inst, dag),
        narrow_ids,
        wide_ids,
    }
}

/// A pathological family for bottom-left **skyline** packers (no DAG, no
/// releases): `rounds` repetitions of an ascending `steps`-item staircase
/// followed by one width-1 spanner.
///
/// Skyline packers place the staircase side by side (each stair width
/// `1/steps`, heights `delta, 2·delta, …, steps·delta`), then the spanner
/// has to rest on the *tallest* stair — the triangular area above the
/// shorter stairs (≈ half the staircase's bounding box) is dead space,
/// every round. Ascending height order is the worst case for decreasing-
/// height shelf packers too, but shelf algorithms recover by sorting;
/// skyline policies that keep arrival order do not, so the family drives
/// their ratio toward 2 while `AREA` stays ≈ half the produced height.
pub fn skyline_staircase(rounds: usize, steps: usize, delta: f64) -> Instance {
    assert!(
        rounds >= 1 && steps >= 1,
        "need at least one round and step"
    );
    assert!(delta > 0.0, "stair height must be positive");
    let mut items = Vec::with_capacity(rounds * (steps + 1));
    let w = 1.0 / steps as f64;
    for _ in 0..rounds {
        for s in 0..steps {
            let id = items.len();
            items.push(Item::new(id, w, (s + 1) as f64 * delta));
        }
        let id = items.len();
        items.push(Item::new(id, 1.0, delta));
    }
    Instance::new(items).expect("construction is in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_core::assert_close;

    #[test]
    fn fig1_counts_match_paper() {
        for k in 1..=6 {
            let fam = fig1_lower_bound_gap(k, 1e-6);
            let n = (1usize << (k + 1)) - 2;
            assert_eq!(fam.prec.len(), n, "k={k}");
            assert_eq!(fam.tall_ids.len(), n / 2);
            assert_eq!(fam.wide_ids.len(), n / 2);
        }
    }

    #[test]
    fn fig1_bounds_tend_to_one() {
        let fam = fig1_lower_bound_gap(6, 1e-9);
        // AREA = 1 + (wide area) = 1 + (n/2)·ε
        assert_close!(fam.prec.area_lb(), 1.0, 1e-5);
        // F = 1 + (separators) per chain
        assert_close!(fam.prec.critical_lb(), 1.0, 1e-5);
        // ... yet OPT is at least k/2 = 3
        assert_eq!(fam.opt_lower_bound(), 3.0);
        assert!(fam.opt_upper_bound() >= fam.opt_lower_bound());
    }

    #[test]
    fn fig1_tall_heights_are_dyadic() {
        let fam = fig1_lower_bound_gap(4, 1e-6);
        let mut counts = std::collections::HashMap::new();
        for &id in &fam.tall_ids {
            let h = fam.prec.inst.item(id).h;
            *counts.entry(format!("{h:.9}")).or_insert(0usize) += 1;
        }
        // 2^{i-1} rectangles of height 1/2^{i-1}
        assert_eq!(counts[&format!("{:.9}", 1.0)], 1);
        assert_eq!(counts[&format!("{:.9}", 0.5)], 2);
        assert_eq!(counts[&format!("{:.9}", 0.25)], 4);
        assert_eq!(counts[&format!("{:.9}", 0.125)], 8);
    }

    #[test]
    fn fig1_dag_is_chains() {
        let fam = fig1_lower_bound_gap(5, 1e-6);
        // every node has in/out degree ≤ 1 (disjoint chains)
        for v in 0..fam.prec.len() {
            assert!(fam.prec.dag.in_degree(v) <= 1);
            assert!(fam.prec.dag.out_degree(v) <= 1);
        }
        // k + 1 chains (k alternating + 1 leftover wide chain), unless the
        // leftover chain is empty
        let sources = fam.prec.dag.sources().len();
        assert_eq!(sources, fam.k + 1);
    }

    #[test]
    fn skyline_staircase_shape() {
        let inst = skyline_staircase(3, 4, 0.5);
        // 3 rounds × (4 stairs + 1 spanner)
        assert_eq!(inst.len(), 15);
        // stairs of one round tile the strip exactly
        let stair_w: f64 = inst.items().iter().take(4).map(|it| it.w).sum();
        assert_close!(stair_w, 1.0);
        // spanner is full-width and short
        assert_eq!(inst.item(4).w, 1.0);
        assert_close!(inst.item(4).h, 0.5);
        // heights ascend within a staircase (the skyline worst case)
        assert!(inst.item(0).h < inst.item(3).h);
        // dead space: AREA is 70% of rounds × (tallest stair + spanner) —
        // the triangular gap above the shorter stairs is never usable by
        // an arrival-order skyline.
        let worst = 3.0 * (4.0 * 0.5 + 0.5);
        assert_close!(inst.total_area(), 0.7 * worst);
    }

    #[test]
    fn fig2_quantities_match_lemma() {
        for k in [1usize, 2, 5, 10] {
            let eps = 1e-4;
            let fam = fig2_ratio3_tightness(k, eps);
            let n = 3 * k;
            assert_eq!(fam.prec.len(), n);
            // OPT = 3(max F − 1)
            assert_close!(fam.opt(), 3.0 * (fam.max_f() - 1.0));
            // OPT = 3·AREA − 3nε
            assert_close!(fam.opt(), 3.0 * fam.area() - 3.0 * n as f64 * eps, 1e-6);
            // computed lower bounds agree with the closed forms
            assert_close!(fam.prec.critical_lb(), fam.max_f());
            assert_close!(fam.prec.area_lb(), fam.area(), 1e-9);
        }
    }

    #[test]
    fn fig2_all_wides_precede_first_narrow() {
        let fam = fig2_ratio3_tightness(4, 1e-3);
        for &w in &fam.wide_ids {
            assert!(fam.prec.dag.succs(w).contains(&fam.narrow_ids[0]));
        }
        // narrow chain is a path
        for pair in fam.narrow_ids.windows(2) {
            assert!(fam.prec.dag.succs(pair[0]).contains(&pair[1]));
        }
    }

    #[test]
    fn fig2_series_packing_is_valid_and_tight() {
        // The optimal packing of Lemma 2.7: everything stacked.
        let fam = fig2_ratio3_tightness(3, 1e-3);
        let n = fam.n();
        let mut pl = spp_core::Placement::zeroed(n);
        let mut y = 0.0;
        for &id in fam.wide_ids.iter().chain(&fam.narrow_ids) {
            pl.set(id, 0.0, y);
            y += 1.0;
        }
        fam.prec.assert_valid(&pl);
        assert_close!(pl.height(&fam.prec.inst), fam.opt());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn fig1_rejects_k0() {
        fig1_lower_bound_gap(0, 1e-6);
    }
}
