//! Reading and writing instances as files.
//!
//! Two formats, dispatched on the file extension:
//!
//! * `.json` — the canonical `spp-instance` document of
//!   [`spp_core::json`] (items + raw edges); this module pairs the edge
//!   list with a cycle-checked [`Dag`] to produce a [`PrecInstance`];
//! * anything else — the legacy `spp v1` line format of [`crate::textio`].
//!
//! Both serializations are canonical and exact (floats via `{:.17e}`),
//! so a file written by one process parses to the *identical* instance in
//! another — the property the sharded batch executor's byte-identity
//! guarantee is built on.

use std::path::Path;

use spp_core::json::{FileFormatError, InstanceFile};
use spp_dag::{Dag, PrecInstance};

use crate::textio::TextIoError;

/// Failures while loading or storing an instance file.
#[derive(Debug, Clone, PartialEq)]
pub enum FileIoError {
    /// Filesystem failure (path + OS error text).
    Io { path: String, err: String },
    /// The JSON document violates the `spp-instance` schema.
    Json(FileFormatError),
    /// The `spp v1` text is malformed.
    Text(TextIoError),
    /// Items parsed but violate instance invariants.
    Instance(String),
    /// Edges parsed but do not form a DAG (cycle / bad endpoint).
    Dag(String),
}

impl std::fmt::Display for FileIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileIoError::Io { path, err } => write!(f, "{path}: {err}"),
            FileIoError::Json(e) => write!(f, "{e}"),
            FileIoError::Text(e) => write!(f, "{e}"),
            FileIoError::Instance(e) => write!(f, "invalid instance: {e}"),
            FileIoError::Dag(e) => write!(f, "invalid dag: {e}"),
        }
    }
}

impl std::error::Error for FileIoError {}

/// Serialize to the canonical `spp-instance` JSON document (edges sorted,
/// so equal instances always produce identical bytes).
pub fn to_json(prec: &PrecInstance) -> String {
    let mut edges: Vec<(usize, usize)> = prec.dag.edges().collect();
    edges.sort_unstable();
    InstanceFile::from_instance(&prec.inst, edges).to_json()
}

/// Canonical content digest of an instance: FNV-1a over the canonical
/// `spp-instance` document of [`to_json`] (sorted edges, `{:.17e}`
/// floats). The digest identifies *content*, not representation — an
/// instance read from `spp v1` text, from hand-formatted JSON, or built
/// in memory digests identically as long as the items and edges agree.
/// This is the instance component of the engine's solve-cache key.
pub fn digest(prec: &PrecInstance) -> spp_core::InstanceDigest {
    spp_core::InstanceDigest::of_canonical_json(&to_json(prec))
}

/// Parse an `spp-instance` JSON document into a checked [`PrecInstance`].
pub fn from_json(text: &str) -> Result<PrecInstance, FileIoError> {
    let file = InstanceFile::parse(text).map_err(FileIoError::Json)?;
    let n = file.items.len();
    let inst = file
        .instance()
        .map_err(|e| FileIoError::Instance(e.to_string()))?;
    let dag = Dag::new(n, &file.edges).map_err(|e| FileIoError::Dag(e.to_string()))?;
    Ok(PrecInstance::new(inst, dag))
}

/// True iff `path` should be treated as `spp-instance` JSON.
pub fn is_json_path(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "json")
}

/// Parse `text` in the format implied by `path`'s extension.
pub fn from_text_for_path(path: &Path, text: &str) -> Result<PrecInstance, FileIoError> {
    if is_json_path(path) {
        from_json(text)
    } else {
        crate::textio::from_text(text).map_err(FileIoError::Text)
    }
}

/// Read and parse one instance file (format by extension).
pub fn read_path(path: &Path) -> Result<PrecInstance, FileIoError> {
    let text = std::fs::read_to_string(path).map_err(|e| FileIoError::Io {
        path: path.display().to_string(),
        err: e.to_string(),
    })?;
    from_text_for_path(path, &text)
}

/// Serialize in the format implied by `path`'s extension and write it.
pub fn write_path(path: &Path, prec: &PrecInstance) -> Result<(), FileIoError> {
    let text = if is_json_path(path) {
        to_json(prec)
    } else {
        crate::textio::to_text(prec)
    };
    std::fs::write(path, text).map_err(|e| FileIoError::Io {
        path: path.display().to_string(),
        err: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn sample() -> PrecInstance {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = crate::rects::uniform(&mut rng, 20, (0.05, 0.95), (0.05, 1.5));
        crate::rects::with_layered_dag(&mut rng, inst, 4, 0.25)
    }

    #[test]
    fn json_roundtrip_preserves_instance_and_edges() {
        let prec = sample();
        let text = to_json(&prec);
        let back = from_json(&text).unwrap();
        assert_eq!(prec.inst, back.inst);
        let mut e1: Vec<_> = prec.dag.edges().collect();
        let mut e2: Vec<_> = back.dag.edges().collect();
        e1.sort_unstable();
        e2.sort_unstable();
        assert_eq!(e1, e2);
        // Canonical bytes: serializing the parsed instance is identical.
        assert_eq!(to_json(&back), text);
    }

    #[test]
    fn cyclic_edges_rejected_at_dag_layer() {
        let text = r#"{"format": "spp-instance", "version": 1,
            "items": [{"id": 0, "w": 0.5, "h": 1, "release": 0},
                      {"id": 1, "w": 0.5, "h": 1, "release": 0}],
            "edges": [[0, 1], [1, 0]]}"#;
        assert!(matches!(from_json(text), Err(FileIoError::Dag(_))));
    }

    #[test]
    fn extension_dispatch_roundtrips_both_formats() {
        let prec = sample();
        let dir = std::env::temp_dir().join("spp_gen_fileio_test");
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["inst.json", "inst.spp"] {
            let path = dir.join(name);
            write_path(&path, &prec).unwrap();
            let back = read_path(&path).unwrap();
            assert_eq!(back.inst, prec.inst, "{name}");
            assert_eq!(back.dag.edge_count(), prec.dag.edge_count(), "{name}");
        }
        // The JSON variant actually wrote JSON, the other wrote spp v1.
        let json = std::fs::read_to_string(dir.join("inst.json")).unwrap();
        assert!(json.starts_with('{'));
        let text = std::fs::read_to_string(dir.join("inst.spp")).unwrap();
        assert!(text.starts_with("spp v1"));
    }

    #[test]
    fn digest_is_format_independent_and_content_sensitive() {
        let prec = sample();
        let dir = std::env::temp_dir().join("spp_gen_digest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let d = digest(&prec);

        // The same content read back from either on-disk format digests
        // identically — the digest is content-addressed, not byte-addressed.
        for name in ["inst.json", "inst.spp"] {
            let path = dir.join(name);
            write_path(&path, &prec).unwrap();
            assert_eq!(digest(&read_path(&path).unwrap()), d, "{name}");
        }

        // Different content separates.
        let mut rng = StdRng::seed_from_u64(6);
        let other_inst = crate::rects::uniform(&mut rng, 20, (0.05, 0.95), (0.05, 1.5));
        let other = crate::rects::with_layered_dag(&mut rng, other_inst, 4, 0.25);
        assert_ne!(digest(&other), d);

        // Dropping the DAG (same rectangles) also separates.
        let no_dag = spp_dag::PrecInstance::unconstrained(prec.inst.clone());
        assert_ne!(digest(&no_dag), d);
    }

    #[test]
    fn missing_file_is_an_io_error_naming_the_path() {
        let err = read_path(Path::new("/nonexistent/xyz.json")).unwrap_err();
        match err {
            FileIoError::Io { path, .. } => assert!(path.contains("xyz.json")),
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
