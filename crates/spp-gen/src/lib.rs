//! # spp-gen — workload generators
//!
//! Deterministic (seeded) instance generators for every experiment in
//! `EXPERIMENTS.md`:
//!
//! * [`rects`] — random rectangle populations: uniform, tall/wide skewed,
//!   FPGA column-quantized widths (`k/K`), uniform-height;
//! * [`release`] — release-time processes (poisson-like arrivals, bursty
//!   batches, staircases) for §3 workloads;
//! * [`adversarial`] — the paper's two hand-crafted families:
//!   Lemma 2.4 / Fig. 1 (the `Ω(log n)` lower-bound gap) and
//!   Lemma 2.7 / Fig. 2 (the ratio-3 tightness family for uniform
//!   heights);
//! * [`textio`] — a line-based plain-text instance format (the allowed
//!   dependency set has no serde data format, so snapshots are hand
//!   rolled);
//! * [`fileio`] — on-disk instance files: the canonical `spp-instance`
//!   JSON of `spp_core::json` plus `spp v1` text, dispatched on file
//!   extension;
//! * [`suite`] — named scenario suites (deep-chain DAGs, bursty releases,
//!   skyline adversaries, …) for sharded batch runs.

pub mod adversarial;
pub mod fileio;
pub mod rects;
pub mod release;
pub mod suite;
pub mod textio;
