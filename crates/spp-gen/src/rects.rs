//! Random rectangle populations.

use rand::Rng;
use spp_core::{Instance, Item};
use spp_dag::{Dag, PrecInstance};

/// Widths and heights i.i.d. uniform in the given ranges.
pub fn uniform<R: Rng>(rng: &mut R, n: usize, w: (f64, f64), h: (f64, f64)) -> Instance {
    assert!(w.0 > 0.0 && w.1 <= 1.0 && w.0 <= w.1, "width range invalid");
    assert!(h.0 > 0.0 && h.0 <= h.1, "height range invalid");
    let items = (0..n)
        .map(|i| Item::new(i, rng.gen_range(w.0..=w.1), rng.gen_range(h.0..=h.1)))
        .collect();
    Instance::new(items).expect("generated dims are in range")
}

/// A mix of "tall" (narrow, tall) and "wide" (wide, short) rectangles;
/// `tall_fraction` of the items are tall. Stresses packers that handle
/// only one aspect class well.
pub fn tall_wide_mix<R: Rng>(rng: &mut R, n: usize, tall_fraction: f64) -> Instance {
    let items = (0..n)
        .map(|i| {
            if rng.gen_bool(tall_fraction) {
                Item::new(i, rng.gen_range(0.05..0.25), rng.gen_range(0.8..2.0))
            } else {
                Item::new(i, rng.gen_range(0.4..1.0), rng.gen_range(0.05..0.3))
            }
        })
        .collect();
    Instance::new(items).expect("generated dims are in range")
}

/// FPGA-style instance: widths are whole numbers of columns on a
/// `K`-column device (`w = c/K`, `c ∈ [1, max_cols]`), heights uniform in
/// `h`. This is the §3 width model (`w ∈ [1/K, 1]`).
pub fn fpga_columns<R: Rng>(
    rng: &mut R,
    n: usize,
    k: usize,
    max_cols: usize,
    h: (f64, f64),
) -> Instance {
    assert!(k >= 1 && (1..=k).contains(&max_cols));
    let items = (0..n)
        .map(|i| {
            let cols = rng.gen_range(1..=max_cols);
            Item::new(i, cols as f64 / k as f64, rng.gen_range(h.0..=h.1))
        })
        .collect();
    Instance::new(items).expect("generated dims are in range")
}

/// Uniform-height instance (all heights 1) with widths uniform in `w` —
/// the §2.2 workload.
pub fn uniform_height<R: Rng>(rng: &mut R, n: usize, w: (f64, f64)) -> Instance {
    let items = (0..n)
        .map(|i| Item::new(i, rng.gen_range(w.0..=w.1), 1.0))
        .collect();
    Instance::new(items).expect("generated dims are in range")
}

/// Attach a random layered DAG (the image-pipeline shape the paper
/// motivates) to any instance.
pub fn with_layered_dag<R: Rng>(
    rng: &mut R,
    inst: Instance,
    layers: usize,
    extra_p: f64,
) -> PrecInstance {
    let dag = spp_dag::gen::layered(rng, inst.len(), layers, extra_p);
    PrecInstance::new(inst, dag)
}

/// Attach a random order-oriented DAG with edge probability `p`.
pub fn with_random_dag<R: Rng>(rng: &mut R, inst: Instance, p: f64) -> PrecInstance {
    let dag = spp_dag::gen::random_order(rng, inst.len(), p);
    PrecInstance::new(inst, dag)
}

/// Attach `k` disjoint chains.
pub fn with_chains(inst: Instance, k: usize) -> PrecInstance {
    let dag = spp_dag::gen::disjoint_chains(inst.len(), k);
    PrecInstance::new(inst, dag)
}

/// Attach no constraints (empty DAG) — for baselining against plain strip
/// packing.
pub fn unconstrained(inst: Instance) -> PrecInstance {
    PrecInstance::unconstrained(inst)
}

/// The named DAG families used by experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagFamily {
    Chains,
    /// One chain through *every* node — the deepest possible DAG
    /// (`F(S) = Σ h`, zero width parallelism). Stresses the `DC`
    /// recursion depth and any solver whose cost grows with the critical
    /// path.
    DeepChain,
    Layered,
    Random,
    ForkJoin,
    SeriesParallel,
    OutTree,
    Empty,
}

impl DagFamily {
    pub const ALL: [DagFamily; 8] = [
        DagFamily::Chains,
        DagFamily::DeepChain,
        DagFamily::Layered,
        DagFamily::Random,
        DagFamily::ForkJoin,
        DagFamily::SeriesParallel,
        DagFamily::OutTree,
        DagFamily::Empty,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            DagFamily::Chains => "chains",
            DagFamily::DeepChain => "deep-chain",
            DagFamily::Layered => "layered",
            DagFamily::Random => "random",
            DagFamily::ForkJoin => "fork-join",
            DagFamily::SeriesParallel => "series-parallel",
            DagFamily::OutTree => "out-tree",
            DagFamily::Empty => "empty",
        }
    }

    /// Build a DAG of this family on `n` nodes with default shape
    /// parameters (chains: √n chains; deep-chain: a single chain;
    /// layered: √n layers, 15% extra edges; random: p = 2/n giving
    /// ~n edges).
    pub fn build<R: Rng>(&self, rng: &mut R, n: usize) -> Dag {
        let sqrt_n = (n as f64).sqrt().ceil().max(1.0) as usize;
        match self {
            DagFamily::Chains => spp_dag::gen::disjoint_chains(n, sqrt_n),
            DagFamily::DeepChain => spp_dag::gen::disjoint_chains(n, 1),
            DagFamily::Layered => spp_dag::gen::layered(rng, n, sqrt_n, 0.15),
            DagFamily::Random => {
                let p = (2.0 / n.max(2) as f64).min(1.0);
                spp_dag::gen::random_order(rng, n, p)
            }
            DagFamily::ForkJoin => {
                if n >= 2 {
                    spp_dag::gen::fork_join(n)
                } else {
                    Dag::empty(n)
                }
            }
            DagFamily::SeriesParallel => spp_dag::gen::series_parallel(rng, n),
            DagFamily::OutTree => spp_dag::gen::random_out_tree(rng, n),
            DagFamily::Empty => Dag::empty(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_respects_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = uniform(&mut rng, 100, (0.1, 0.5), (0.2, 1.0));
        assert_eq!(inst.len(), 100);
        for it in inst.items() {
            assert!(it.w >= 0.1 && it.w <= 0.5);
            assert!(it.h >= 0.2 && it.h <= 1.0);
        }
    }

    #[test]
    fn fpga_widths_are_column_multiples() {
        let mut rng = StdRng::seed_from_u64(2);
        let k = 8;
        let inst = fpga_columns(&mut rng, 50, k, 5, (0.5, 1.0));
        for it in inst.items() {
            let cols = it.w * k as f64;
            assert!((cols - cols.round()).abs() < 1e-12);
            assert!((1.0 - 1e-12..=5.0 + 1e-12).contains(&cols));
        }
    }

    #[test]
    fn uniform_height_all_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = uniform_height(&mut rng, 30, (0.05, 0.9));
        assert_eq!(inst.uniform_height(), Some(1.0));
    }

    #[test]
    fn mix_has_both_classes() {
        let mut rng = StdRng::seed_from_u64(4);
        let inst = tall_wide_mix(&mut rng, 200, 0.5);
        let tall = inst.items().iter().filter(|it| it.h > 0.5).count();
        assert!(tall > 50 && tall < 150, "tall count {tall}");
    }

    #[test]
    fn families_build_on_all_sizes() {
        let mut rng = StdRng::seed_from_u64(5);
        for fam in DagFamily::ALL {
            for n in [0usize, 1, 2, 7, 30] {
                let d = fam.build(&mut rng, n);
                assert_eq!(d.len(), n, "{} n={}", fam.name(), n);
            }
        }
    }

    #[test]
    fn attach_helpers_preserve_sizes() {
        let mut rng = StdRng::seed_from_u64(6);
        let inst = uniform(&mut rng, 25, (0.1, 0.9), (0.1, 1.0));
        let p = with_layered_dag(&mut rng, inst.clone(), 5, 0.2);
        assert_eq!(p.len(), 25);
        let q = with_chains(inst.clone(), 4);
        assert_eq!(q.dag.sources().len(), 4);
        let r = with_random_dag(&mut rng, inst.clone(), 0.1);
        assert_eq!(r.len(), 25);
        assert_eq!(unconstrained(inst).dag.edge_count(), 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = uniform(&mut StdRng::seed_from_u64(9), 10, (0.1, 0.9), (0.1, 1.0));
        let b = uniform(&mut StdRng::seed_from_u64(9), 10, (0.1, 0.9), (0.1, 1.0));
        assert_eq!(a, b);
    }
}
