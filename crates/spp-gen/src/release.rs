//! Release-time workloads for the §3 APTAS.
//!
//! All generators respect the paper's §3 preconditions: heights ≤ 1 and
//! widths in `[1/K, 1]` (each task spans at least one FPGA column).

use rand::Rng;
use spp_core::{Instance, Item};

/// Parameters shared by the release-time generators.
#[derive(Debug, Clone, Copy)]
pub struct ReleaseParams {
    /// Number of FPGA columns; widths are drawn from `[1/k, 1]`.
    pub k: usize,
    /// Quantize widths to whole columns (`c/k`) when true — the natural
    /// FPGA model; otherwise widths are continuous in `[1/k, 1]`.
    pub column_widths: bool,
    /// Height range (capped at 1 per the paper's standard assumption).
    pub h: (f64, f64),
}

impl Default for ReleaseParams {
    fn default() -> Self {
        ReleaseParams {
            k: 4,
            column_widths: true,
            h: (0.1, 1.0),
        }
    }
}

impl ReleaseParams {
    fn width<R: Rng>(&self, rng: &mut R) -> f64 {
        assert!(self.k >= 1);
        if self.column_widths {
            let c = rng.gen_range(1..=self.k);
            c as f64 / self.k as f64
        } else {
            rng.gen_range(1.0 / self.k as f64..=1.0)
        }
    }

    fn height<R: Rng>(&self, rng: &mut R) -> f64 {
        assert!(self.h.0 > 0.0 && self.h.1 <= 1.0 && self.h.0 <= self.h.1);
        rng.gen_range(self.h.0..=self.h.1)
    }
}

/// Poisson-like arrivals: inter-release gaps are i.i.d. exponential with
/// the given mean (drawn via inverse CDF). Models an online task queue for
/// a reconfigurable device (the Steiger–Walder–Platzner setting cited
/// in §1).
pub fn poisson_arrivals<R: Rng>(
    rng: &mut R,
    n: usize,
    mean_gap: f64,
    p: ReleaseParams,
) -> Instance {
    assert!(mean_gap >= 0.0);
    let mut t = 0.0;
    let items = (0..n)
        .map(|i| {
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -mean_gap * u.ln();
            Item::with_release(i, p.width(rng), p.height(rng), t)
        })
        .collect();
    Instance::new(items).expect("generated dims are in range")
}

/// Bursty arrivals: `batches` groups of equal size, batch `j` released at
/// `j · gap` (plus per-item jitter if `jitter > 0`).
pub fn bursty<R: Rng>(
    rng: &mut R,
    n: usize,
    batches: usize,
    gap: f64,
    jitter: f64,
    p: ReleaseParams,
) -> Instance {
    assert!(batches >= 1);
    let items = (0..n)
        .map(|i| {
            let b = i * batches / n.max(1);
            let r = b as f64 * gap
                + if jitter > 0.0 {
                    rng.gen_range(0.0..jitter)
                } else {
                    0.0
                };
            Item::with_release(i, p.width(rng), p.height(rng), r)
        })
        .collect();
    Instance::new(items).expect("generated dims are in range")
}

/// Staircase: releases evenly spaced in `[0, r_max]`.
pub fn staircase<R: Rng>(rng: &mut R, n: usize, r_max: f64, p: ReleaseParams) -> Instance {
    let items = (0..n)
        .map(|i| {
            let r = if n <= 1 {
                0.0
            } else {
                r_max * i as f64 / (n - 1) as f64
            };
            Item::with_release(i, p.width(rng), p.height(rng), r)
        })
        .collect();
    Instance::new(items).expect("generated dims are in range")
}

/// All releases zero — reduces §3 to plain strip packing (useful control).
pub fn no_releases<R: Rng>(rng: &mut R, n: usize, p: ReleaseParams) -> Instance {
    let items = (0..n)
        .map(|i| Item::with_release(i, p.width(rng), p.height(rng), 0.0))
        .collect();
    Instance::new(items).expect("generated dims are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn params() -> ReleaseParams {
        ReleaseParams {
            k: 5,
            column_widths: true,
            h: (0.2, 1.0),
        }
    }

    #[test]
    fn poisson_releases_are_nondecreasing() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = poisson_arrivals(&mut rng, 50, 0.3, params());
        let rel: Vec<f64> = inst.items().iter().map(|it| it.release).collect();
        assert!(rel.windows(2).all(|w| w[0] <= w[1]));
        assert!(rel[0] > 0.0);
    }

    #[test]
    fn widths_respect_k_floor() {
        let mut rng = StdRng::seed_from_u64(2);
        for inst in [
            poisson_arrivals(&mut rng, 40, 0.2, params()),
            bursty(&mut rng, 40, 4, 1.0, 0.0, params()),
            staircase(&mut rng, 40, 5.0, params()),
        ] {
            for it in inst.items() {
                assert!(it.w >= 1.0 / 5.0 - 1e-12 && it.w <= 1.0);
                assert!(it.h <= 1.0);
            }
        }
    }

    #[test]
    fn bursty_has_expected_batch_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = bursty(&mut rng, 40, 4, 2.0, 0.0, params());
        let distinct: std::collections::BTreeSet<String> = inst
            .items()
            .iter()
            .map(|it| format!("{:.6}", it.release))
            .collect();
        assert_eq!(distinct.len(), 4);
        assert!(inst.items().iter().take(10).all(|it| it.release == 0.0));
    }

    #[test]
    fn staircase_is_linear() {
        let mut rng = StdRng::seed_from_u64(4);
        let inst = staircase(&mut rng, 11, 10.0, params());
        spp_core::assert_close!(inst.item(0).release, 0.0);
        spp_core::assert_close!(inst.item(10).release, 10.0);
        spp_core::assert_close!(inst.item(5).release, 5.0);
    }

    #[test]
    fn continuous_widths_supported() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = ReleaseParams {
            column_widths: false,
            ..params()
        };
        let inst = no_releases(&mut rng, 100, p);
        // some width should not be a column multiple
        let non_multiple = inst.items().iter().any(|it| {
            let c = it.w * 5.0;
            (c - c.round()).abs() > 1e-6
        });
        assert!(non_multiple);
        assert!(inst.items().iter().all(|it| it.release == 0.0));
    }
}
