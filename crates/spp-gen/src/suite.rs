//! Named scenario suites — the workload mix behind `spp suite` and the
//! sharded-batch smoke tests.
//!
//! A suite is a deterministic function of `(seed, n, count)`: `count`
//! instances cycling through [`FAMILIES`], each seeded independently so
//! any subset can be regenerated without the rest. The families cover the
//! stress axes the engine's solvers diverge on:
//!
//! * `deep-chain` — one chain through every item (maximal critical path);
//! * `layered` / `random-dag` — the §2 precedence shapes;
//! * `bursty-release` / `poisson-release` — §3 arrival processes (widths
//!   ≥ 1/4 and heights ≤ 1, so the APTAS model holds);
//! * `skyline-adversary` — [`crate::adversarial::skyline_staircase`];
//! * `tall-wide` — the classic NFDH aspect-mix stressor;
//! * `uniform-height` — the §2.2 shelf workload (plus a layered DAG).

use rand::{rngs::StdRng, Rng, SeedableRng};
use spp_dag::PrecInstance;

use crate::rects::DagFamily;
use crate::release::ReleaseParams;

/// The scenario families, in cycle order.
pub const FAMILIES: [&str; 8] = [
    "deep-chain",
    "layered",
    "random-dag",
    "bursty-release",
    "poisson-release",
    "skyline-adversary",
    "tall-wide",
    "uniform-height",
];

/// One named instance of a suite.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// `"<family>-<index>"`, unique within the suite; doubles as the file
    /// stem when the suite is written to disk.
    pub name: String,
    pub prec: PrecInstance,
}

/// Per-instance rng: decorrelated from neighbors, independent of `count`.
fn rng_for(seed: u64, index: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn build(family: &str, rng: &mut StdRng, n: usize) -> PrecInstance {
    let rel = ReleaseParams::default();
    match family {
        "deep-chain" => {
            let inst = crate::rects::uniform(rng, n, (0.05, 0.95), (0.05, 1.0));
            let dag = DagFamily::DeepChain.build(rng, n);
            PrecInstance::new(inst, dag)
        }
        "layered" => {
            let inst = crate::rects::uniform(rng, n, (0.05, 0.95), (0.05, 1.0));
            let dag = DagFamily::Layered.build(rng, n);
            PrecInstance::new(inst, dag)
        }
        "random-dag" => {
            let inst = crate::rects::uniform(rng, n, (0.05, 0.95), (0.05, 1.0));
            let dag = DagFamily::Random.build(rng, n);
            PrecInstance::new(inst, dag)
        }
        "bursty-release" => {
            let batches = (n / 8).max(2);
            PrecInstance::unconstrained(crate::release::bursty(rng, n, batches, 1.5, 0.1, rel))
        }
        "poisson-release" => {
            PrecInstance::unconstrained(crate::release::poisson_arrivals(rng, n, 0.25, rel))
        }
        "skyline-adversary" => {
            // Deterministic construction; size tracks n (steps + spanner
            // per round), jitter-free so the dead-space argument is exact.
            let steps = 4;
            let rounds = (n / (steps + 1)).max(1);
            PrecInstance::unconstrained(crate::adversarial::skyline_staircase(rounds, steps, 0.5))
        }
        "tall-wide" => {
            let tall_fraction = rng.gen_range(0.3..0.7);
            PrecInstance::unconstrained(crate::rects::tall_wide_mix(rng, n, tall_fraction))
        }
        "uniform-height" => {
            let inst = crate::rects::uniform_height(rng, n, (0.05, 0.95));
            let dag = DagFamily::Layered.build(rng, n);
            PrecInstance::new(inst, dag)
        }
        other => unreachable!("unknown suite family {other:?}"),
    }
}

/// Generate a `count`-instance suite cycling through [`FAMILIES`].
pub fn suite(seed: u64, n: usize, count: usize) -> Vec<Scenario> {
    (0..count)
        .map(|i| {
            let family = FAMILIES[i % FAMILIES.len()];
            let mut rng = rng_for(seed, i);
            Scenario {
                name: format!("{family}-{i:03}"),
                prec: build(family, &mut rng, n),
            }
        })
        .collect()
}

/// Write a suite as `spp-instance` JSON files (`<name>.json`) under
/// `dir`, creating it if needed. Returns the written paths in suite
/// order.
pub fn write_suite(
    dir: &std::path::Path,
    seed: u64,
    n: usize,
    count: usize,
) -> Result<Vec<std::path::PathBuf>, crate::fileio::FileIoError> {
    std::fs::create_dir_all(dir).map_err(|e| crate::fileio::FileIoError::Io {
        path: dir.display().to_string(),
        err: e.to_string(),
    })?;
    let mut paths = Vec::with_capacity(count);
    for sc in suite(seed, n, count) {
        let path = dir.join(format!("{}.json", sc.name));
        crate::fileio::write_path(&path, &sc.prec)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic_and_cycles_families() {
        let a = suite(7, 24, 16);
        let b = suite(7, 24, 16);
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.prec.inst, y.prec.inst);
        }
        // 16 instances cycle through all 8 families twice.
        for (i, sc) in a.iter().enumerate() {
            assert!(sc.name.starts_with(FAMILIES[i % 8]), "{}", sc.name);
        }
    }

    #[test]
    fn scenario_prefix_is_independent_of_count() {
        // Regenerating a longer suite must not change earlier instances —
        // shard resume relies on stable per-index content.
        let short = suite(3, 20, 5);
        let long = suite(3, 20, 10);
        for (s, l) in short.iter().zip(&long) {
            assert_eq!(s.name, l.name);
            assert_eq!(s.prec.inst, l.prec.inst);
        }
    }

    #[test]
    fn families_carry_their_advertised_structure() {
        for sc in suite(11, 30, 8) {
            let fam = sc.name.rsplit_once('-').unwrap().0;
            match fam {
                "deep-chain" => {
                    assert_eq!(sc.prec.dag.edge_count(), sc.prec.len() - 1);
                }
                "bursty-release" | "poisson-release" => {
                    assert_eq!(sc.prec.dag.edge_count(), 0);
                    assert!(sc.prec.inst.max_release() > 0.0);
                    // APTAS model: heights ≤ 1, widths ≥ 1/4.
                    for it in sc.prec.inst.items() {
                        assert!(it.h <= 1.0 && it.w >= 0.25 - 1e-12);
                    }
                }
                "uniform-height" => {
                    assert!(sc.prec.inst.uniform_height().is_some());
                }
                "skyline-adversary" => {
                    assert!(sc.prec.inst.items().iter().any(|it| it.w == 1.0));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn write_suite_emits_parseable_files() {
        let dir = std::env::temp_dir().join("spp_gen_suite_test");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_suite(&dir, 1, 12, 9).unwrap();
        assert_eq!(paths.len(), 9);
        for p in &paths {
            let prec = crate::fileio::read_path(p).unwrap();
            assert!(!prec.is_empty());
        }
    }
}
