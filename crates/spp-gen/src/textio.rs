//! Plain-text instance snapshots.
//!
//! The allowed dependency set contains `serde` but no data format crate,
//! so reproducible instance snapshots use a trivial line format instead:
//!
//! ```text
//! # comment
//! spp v1
//! item <id> <w> <h> <release>
//! edge <pred> <succ>
//! ```
//!
//! Floats are written with `{:.17e}` so the round-trip is exact.

use spp_core::{Instance, Item};
use spp_dag::{Dag, PrecInstance};
use std::fmt::Write as _;

/// Serialization errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextIoError {
    MissingHeader,
    BadLine { line_no: usize, line: String },
    BadInstance(String),
    BadDag(String),
}

impl std::fmt::Display for TextIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextIoError::MissingHeader => write!(f, "missing 'spp v1' header"),
            TextIoError::BadLine { line_no, line } => {
                write!(f, "cannot parse line {line_no}: {line:?}")
            }
            TextIoError::BadInstance(e) => write!(f, "invalid instance: {e}"),
            TextIoError::BadDag(e) => write!(f, "invalid dag: {e}"),
        }
    }
}

impl std::error::Error for TextIoError {}

/// Serialize a precedence instance (releases included; an empty DAG means
/// no `edge` lines).
pub fn to_text(prec: &PrecInstance) -> String {
    let mut out = String::new();
    out.push_str("spp v1\n");
    for it in prec.inst.items() {
        writeln!(
            out,
            "item {} {:.17e} {:.17e} {:.17e}",
            it.id, it.w, it.h, it.release
        )
        .expect("write to String cannot fail");
    }
    for (u, v) in prec.dag.edges() {
        writeln!(out, "edge {u} {v}").expect("write to String cannot fail");
    }
    out
}

/// Parse the format produced by [`to_text`]. Items may appear in any
/// order but their ids must be exactly `0..n`.
pub fn from_text(text: &str) -> Result<PrecInstance, TextIoError> {
    let mut header_seen = false;
    let mut raw_items: Vec<(usize, f64, f64, f64)> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if !header_seen {
            if trimmed == "spp v1" {
                header_seen = true;
                continue;
            }
            return Err(TextIoError::MissingHeader);
        }
        let mut parts = trimmed.split_whitespace();
        let bad = || TextIoError::BadLine {
            line_no,
            line: line.to_string(),
        };
        match parts.next() {
            Some("item") => {
                let id: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let w: f64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let h: f64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let r: f64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                if parts.next().is_some() {
                    return Err(bad());
                }
                raw_items.push((id, w, h, r));
            }
            Some("edge") => {
                let u: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let v: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                if parts.next().is_some() {
                    return Err(bad());
                }
                edges.push((u, v));
            }
            _ => return Err(bad()),
        }
    }
    if !header_seen {
        return Err(TextIoError::MissingHeader);
    }
    raw_items.sort_by_key(|&(id, ..)| id);
    let items: Vec<Item> = raw_items
        .iter()
        .map(|&(id, w, h, r)| Item::with_release(id, w, h, r))
        .collect();
    let n = items.len();
    let inst = Instance::new(items).map_err(|e| TextIoError::BadInstance(e.to_string()))?;
    let dag = Dag::new(n, &edges).map_err(|e| TextIoError::BadDag(e.to_string()))?;
    Ok(PrecInstance::new(inst, dag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn roundtrip_is_exact() {
        let mut rng = StdRng::seed_from_u64(10);
        let inst = crate::rects::uniform(&mut rng, 30, (0.013, 0.97), (0.05, 1.9));
        let prec = crate::rects::with_layered_dag(&mut rng, inst, 5, 0.3);
        let text = to_text(&prec);
        let back = from_text(&text).unwrap();
        assert_eq!(prec.inst, back.inst);
        let mut e1: Vec<_> = prec.dag.edges().collect();
        let mut e2: Vec<_> = back.dag.edges().collect();
        e1.sort();
        e2.sort();
        assert_eq!(e1, e2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\nspp v1\n# mid comment\nitem 0 5e-1 1e0 0e0\n";
        let p = from_text(text).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.inst.item(0).w, 0.5);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(
            from_text("item 0 0.5 1 0\n"),
            Err(TextIoError::MissingHeader)
        );
        assert_eq!(from_text(""), Err(TextIoError::MissingHeader));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(matches!(
            from_text("spp v1\nitem 0 0.5\n"),
            Err(TextIoError::BadLine { line_no: 2, .. })
        ));
        assert!(matches!(
            from_text("spp v1\nwidget 1 2 3\n"),
            Err(TextIoError::BadLine { .. })
        ));
        assert!(matches!(
            from_text("spp v1\nitem 0 0.5 1 0 extra\n"),
            Err(TextIoError::BadLine { .. })
        ));
    }

    #[test]
    fn bad_semantic_content_rejected() {
        // width out of range
        assert!(matches!(
            from_text("spp v1\nitem 0 2.0 1 0\n"),
            Err(TextIoError::BadInstance(_))
        ));
        // cyclic dag
        assert!(matches!(
            from_text("spp v1\nitem 0 0.5 1 0\nitem 1 0.5 1 0\nedge 0 1\nedge 1 0\n"),
            Err(TextIoError::BadDag(_))
        ));
    }

    #[test]
    fn releases_roundtrip() {
        let text = "spp v1\nitem 0 5e-1 1e0 2.25e0\n";
        let p = from_text(text).unwrap();
        assert_eq!(p.inst.item(0).release, 2.25);
        let again = from_text(&to_text(&p)).unwrap();
        assert_eq!(again.inst.item(0).release, 2.25);
    }
}
