//! Optimality certificates.
//!
//! A simplex implementation is only as trustworthy as its verification:
//! this module checks a returned [`Solution`] against the three textbook
//! optimality conditions, *independently of the tableau* that produced
//! it:
//!
//! 1. **primal feasibility** — `x ≥ 0` and every row satisfied;
//! 2. **dual feasibility** — every column's reduced cost
//!    `c_j − Σ_i y_i a_{ij} ≥ 0`, and dual signs match row senses
//!    (`y ≤ 0` for `≤` rows, `y ≥ 0` for `≥` rows, free for `=`);
//! 3. **strong duality** — `c·x = y·b`.
//!
//! Every APTAS experiment calls this on its configuration LPs, so an LP
//! regression cannot silently corrupt measured results.

use crate::problem::{Cmp, Problem};
use crate::simplex::{Solution, Status};

/// Reasons a certificate can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum CertificateError {
    /// Solution is not `Status::Optimal`.
    NotOptimal,
    /// `x` violates a constraint or non-negativity.
    PrimalInfeasible,
    /// A dual has the wrong sign for its row sense.
    DualSign { row: usize, dual: f64 },
    /// A column has negative reduced cost.
    ReducedCost { var: usize, rc: f64 },
    /// `c·x ≠ y·b`.
    DualityGap { primal: f64, dual: f64 },
}

impl std::fmt::Display for CertificateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateError::NotOptimal => write!(f, "solution status is not Optimal"),
            CertificateError::PrimalInfeasible => write!(f, "primal point infeasible"),
            CertificateError::DualSign { row, dual } => {
                write!(f, "dual {dual} of row {row} has the wrong sign")
            }
            CertificateError::ReducedCost { var, rc } => {
                write!(f, "variable {var} has negative reduced cost {rc}")
            }
            CertificateError::DualityGap { primal, dual } => {
                write!(f, "duality gap: primal {primal} vs dual {dual}")
            }
        }
    }
}

impl std::error::Error for CertificateError {}

/// Verify the optimality certificate of `sol` for `p` within tolerance
/// `tol` (absolute, scaled by problem magnitudes where appropriate).
pub fn certify(p: &Problem, sol: &Solution, tol: f64) -> Result<(), CertificateError> {
    if sol.status != Status::Optimal {
        return Err(CertificateError::NotOptimal);
    }
    // 1. primal feasibility
    if !p.is_feasible(&sol.x, tol) {
        return Err(CertificateError::PrimalInfeasible);
    }
    // 2a. dual signs
    for (i, row) in p.rows().iter().enumerate() {
        let y = sol.duals[i];
        match row.cmp {
            Cmp::Le if y > tol => return Err(CertificateError::DualSign { row: i, dual: y }),
            Cmp::Ge if y < -tol => return Err(CertificateError::DualSign { row: i, dual: y }),
            _ => {}
        }
    }
    // 2b. reduced costs (columns assembled from the sparse rows)
    let n = p.num_vars();
    let mut ya = vec![0.0; n];
    for (i, row) in p.rows().iter().enumerate() {
        let y = sol.duals[i];
        if y != 0.0 {
            for &(j, a) in &row.coeffs {
                ya[j] += y * a;
            }
        }
    }
    for (j, (&obj, &yaj)) in p.objective().iter().zip(&ya).enumerate().take(n) {
        let rc = obj - yaj;
        if rc < -tol {
            return Err(CertificateError::ReducedCost { var: j, rc });
        }
    }
    // 3. strong duality
    let dual_obj: f64 = p
        .rows()
        .iter()
        .zip(&sol.duals)
        .map(|(row, y)| y * row.rhs)
        .sum();
    let scale = 1.0 + sol.objective.abs();
    if (dual_obj - sol.objective).abs() > tol * scale {
        return Err(CertificateError::DualityGap {
            primal: sol.objective,
            dual: dual_obj,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem};
    use crate::simplex::solve;

    fn sample() -> Problem {
        let mut p = Problem::new();
        let x = p.add_var(3.0);
        let y = p.add_var(2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 1.0);
        p.add_constraint(&[(y, 1.0)], Cmp::Le, 10.0);
        p
    }

    #[test]
    fn valid_solution_certifies() {
        let p = sample();
        let s = solve(&p);
        certify(&p, &s, 1e-6).expect("certificate must hold");
    }

    #[test]
    fn corrupted_primal_fails() {
        let p = sample();
        let mut s = solve(&p);
        s.x[0] = -1.0;
        assert_eq!(
            certify(&p, &s, 1e-6),
            Err(CertificateError::PrimalInfeasible)
        );
    }

    #[test]
    fn corrupted_dual_fails() {
        let p = sample();
        let mut s = solve(&p);
        s.duals[0] = -5.0; // Ge row must have y ≥ 0
        assert!(matches!(
            certify(&p, &s, 1e-6),
            Err(CertificateError::DualSign { row: 0, .. })
                | Err(CertificateError::ReducedCost { .. })
                | Err(CertificateError::DualityGap { .. })
        ));
    }

    #[test]
    fn duality_gap_detected() {
        let p = sample();
        let mut s = solve(&p);
        s.objective += 1.0;
        // primal value no longer matches y'b
        assert!(matches!(
            certify(&p, &s, 1e-6),
            Err(CertificateError::DualityGap { .. })
        ));
    }

    #[test]
    fn random_lps_always_certify() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..60 {
            let n = rng.gen_range(1..8);
            let m = rng.gen_range(1..6);
            let mut p = Problem::new();
            let vars: Vec<usize> = (0..n).map(|_| p.add_var(rng.gen_range(0.0..5.0))).collect();
            let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..3.0)).collect();
            for _ in 0..m {
                let coeffs: Vec<(usize, f64)> = vars
                    .iter()
                    .map(|&v| (v, rng.gen_range(-2.0..2.0)))
                    .collect();
                let lhs: f64 = coeffs.iter().map(|&(j, a)| a * x0[j]).sum();
                match rng.gen_range(0..3) {
                    0 => p.add_constraint(&coeffs, Cmp::Le, lhs + rng.gen_range(0.0..1.0)),
                    1 => p.add_constraint(&coeffs, Cmp::Ge, lhs - rng.gen_range(0.0..1.0)),
                    _ => p.add_constraint(&coeffs, Cmp::Eq, lhs),
                }
            }
            let s = solve(&p);
            assert_eq!(s.status, Status::Optimal);
            certify(&p, &s, 1e-5).unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        }
    }
}
