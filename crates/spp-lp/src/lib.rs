//! # spp-lp — a self-contained linear programming solver
//!
//! The §3 APTAS needs to solve the configuration LP of Lemma 3.3 and to
//! extract *dual values* for column-generation pricing. The allowed
//! dependency set contains no LP solver, so this crate implements a
//! classical **two-phase primal simplex** on a dense tableau:
//!
//! * constraints `≤ / ≥ / =` with free-sign right-hand sides (rows are
//!   normalized to `b ≥ 0`),
//! * variables are non-negative (all the paper's LPs are),
//! * phase 1 drives artificial variables to zero (infeasibility detection),
//! * phase 2 optimizes the real objective (unboundedness detection),
//! * Dantzig pricing with an automatic switch to Bland's rule after a
//!   stall, guaranteeing termination on degenerate problems,
//! * duals are read from the final tableau (the columns of the initial
//!   basis carry `B⁻¹`), giving exactly what Gilmore–Gomory pricing needs.
//!
//! The solution of a bounded feasible LP is a **basic** optimum — at most
//! `m` (number of rows) variables are nonzero. Lemma 3.3 relies on
//! precisely this property to bound the number of configurations used.

pub mod certify;
pub mod problem;
pub mod simplex;

pub use certify::{certify, CertificateError};
pub use problem::{Cmp, Problem};
pub use simplex::{solve, Solution, Status};
