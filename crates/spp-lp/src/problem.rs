//! LP problem construction.

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Le,
    Ge,
    Eq,
}

/// A linear program: minimize `c·x` subject to sparse rows
/// `a·x (≤|≥|=) b` and `x ≥ 0`.
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) n_vars: usize,
    pub(crate) objective: Vec<f64>,
    pub(crate) rows: Vec<SparseRow>,
}

#[derive(Debug, Clone)]
pub(crate) struct SparseRow {
    pub coeffs: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

impl Default for Problem {
    fn default() -> Self {
        Self::new()
    }
}

impl Problem {
    /// Empty problem (no variables, no constraints).
    pub fn new() -> Self {
        Problem {
            n_vars: 0,
            objective: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Add a variable with the given objective coefficient (minimization);
    /// returns its index. Variables are non-negative.
    pub fn add_var(&mut self, obj: f64) -> usize {
        assert!(obj.is_finite(), "objective coefficient must be finite");
        self.objective.push(obj);
        self.n_vars += 1;
        self.n_vars - 1
    }

    /// Add `Σ coeffs (cmp) rhs`. Coefficients with repeated indices are
    /// summed; indices must be valid.
    pub fn add_constraint(&mut self, coeffs: &[(usize, f64)], cmp: Cmp, rhs: f64) {
        assert!(rhs.is_finite(), "rhs must be finite");
        let mut dense: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for &(j, a) in coeffs {
            assert!(j < self.n_vars, "variable {j} out of range");
            assert!(a.is_finite(), "coefficient must be finite");
            *dense.entry(j).or_insert(0.0) += a;
        }
        self.rows.push(SparseRow {
            coeffs: dense.into_iter().collect(),
            cmp,
            rhs,
        });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The objective coefficient vector (minimization).
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraint rows (sparse), in insertion order.
    pub(crate) fn rows(&self) -> &[SparseRow] {
        &self.rows
    }

    /// Evaluate the objective at a point.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_vars);
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Check primal feasibility of `x` within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.n_vars || x.iter().any(|&v| v < -tol || !v.is_finite()) {
            return false;
        }
        self.rows.iter().all(|row| {
            let lhs: f64 = row.coeffs.iter().map(|&(j, a)| a * x[j]).sum();
            match row.cmp {
                Cmp::Le => lhs <= row.rhs + tol,
                Cmp::Ge => lhs + tol >= row.rhs,
                Cmp::Eq => (lhs - row.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_indices() {
        let mut p = Problem::new();
        assert_eq!(p.add_var(1.0), 0);
        assert_eq!(p.add_var(2.0), 1);
        assert_eq!(p.num_vars(), 2);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, 5.0);
        assert_eq!(p.num_rows(), 1);
    }

    #[test]
    fn duplicate_indices_are_summed() {
        let mut p = Problem::new();
        let x = p.add_var(0.0);
        p.add_constraint(&[(x, 1.0), (x, 2.0)], Cmp::Eq, 3.0);
        assert!(p.is_feasible(&[1.0], 1e-9));
        assert!(!p.is_feasible(&[2.0], 1e-9));
    }

    #[test]
    fn feasibility_checks_all_senses() {
        let mut p = Problem::new();
        let x = p.add_var(1.0);
        let y = p.add_var(1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Le, 2.0);
        p.add_constraint(&[(y, 1.0)], Cmp::Ge, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 2.5);
        assert!(p.is_feasible(&[1.5, 1.0], 1e-9));
        assert!(!p.is_feasible(&[2.5, 0.0], 1e-9)); // Le and Ge broken
        assert!(!p.is_feasible(&[1.0, 1.0], 1e-9)); // Eq broken
        assert!(!p.is_feasible(&[-0.1, 2.6], 1e-9)); // negativity
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let mut p = Problem::new();
        p.add_constraint(&[(0, 1.0)], Cmp::Le, 1.0);
    }

    #[test]
    fn objective_eval() {
        let mut p = Problem::new();
        p.add_var(2.0);
        p.add_var(-1.0);
        assert_eq!(p.objective_at(&[3.0, 4.0]), 2.0);
    }
}
