//! The two-phase primal simplex engine.

use crate::problem::{Cmp, Problem};

/// Numerical tolerance for pivoting and feasibility decisions.
const TOL: f64 = 1e-9;
/// Iterations without objective improvement before switching from Dantzig
/// pricing to Bland's rule (anti-cycling).
const STALL_LIMIT: usize = 64;
/// Hard iteration cap (defensive; Bland guarantees finiteness anyway).
const MAX_ITERS: usize = 2_000_000;

/// Solver status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    Optimal,
    Infeasible,
    Unbounded,
}

/// Solver output.
#[derive(Debug, Clone)]
pub struct Solution {
    pub status: Status,
    /// Primal values (empty unless `Optimal`).
    pub x: Vec<f64>,
    /// Objective value (minimization; meaningless unless `Optimal`).
    pub objective: f64,
    /// One dual value per constraint row, in insertion order, with the
    /// convention `reduced cost of column j = c_j − Σ_i y_i·a_ij`
    /// (so at optimality every column has non-negative reduced cost).
    pub duals: Vec<f64>,
    /// Number of structural variables that are basic and nonzero — the
    /// "support size" that Lemma 3.3 bounds by the number of rows.
    pub support: usize,
    /// Simplex iterations used (both phases).
    pub iterations: usize,
}

struct Tableau {
    /// m × (n_total + 1); last column is the rhs.
    rows: Vec<Vec<f64>>,
    /// Objective (reduced-cost) row, length n_total + 1; last entry is
    /// −(objective value).
    z: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    n_total: usize,
    /// Columns that must never enter the basis (artificials in phase 2).
    banned: Vec<bool>,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.rows[row][col];
        debug_assert!(piv.abs() > TOL, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        for v in self.rows[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.rows[row].clone();
        for (r, tr) in self.rows.iter_mut().enumerate() {
            if r != row {
                let factor = tr[col];
                if factor != 0.0 {
                    for (a, b) in tr.iter_mut().zip(&pivot_row) {
                        *a -= factor * b;
                    }
                    tr[col] = 0.0; // kill residual rounding noise
                }
            }
        }
        let zf = self.z[col];
        if zf != 0.0 {
            for (a, b) in self.z.iter_mut().zip(&pivot_row) {
                *a -= zf * b;
            }
            self.z[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Rebuild the z-row for cost vector `cost` given the current basis.
    fn set_objective(&mut self, cost: &[f64]) {
        debug_assert_eq!(cost.len(), self.n_total);
        self.z = vec![0.0; self.n_total + 1];
        self.z[..self.n_total].copy_from_slice(cost);
        for (r, &b) in self.basis.iter().enumerate() {
            let cb = cost[b];
            if cb != 0.0 {
                let row = self.rows[r].clone();
                for (a, v) in self.z.iter_mut().zip(&row) {
                    *a -= cb * v;
                }
                self.z[b] = 0.0;
            }
        }
    }

    /// Run simplex iterations to optimality / unboundedness.
    /// Returns `Ok(iterations)` or `Err(())` for unbounded.
    fn optimize(&mut self) -> Result<usize, ()> {
        let mut iters = 0usize;
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;
        loop {
            iters += 1;
            assert!(iters < MAX_ITERS, "simplex iteration cap exceeded");
            let bland = stall >= STALL_LIMIT;
            // entering column: most negative reduced cost (Dantzig) or
            // smallest index with negative reduced cost (Bland)
            let mut enter: Option<usize> = None;
            let mut best = -TOL;
            for j in 0..self.n_total {
                if self.banned[j] {
                    continue;
                }
                let rc = self.z[j];
                if bland {
                    if rc < -TOL {
                        enter = Some(j);
                        break;
                    }
                } else if rc < best {
                    best = rc;
                    enter = Some(j);
                }
            }
            let Some(col) = enter else {
                return Ok(iters);
            };
            // ratio test; Bland tie-break on basic variable index
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows.len() {
                let a = self.rows[r][col];
                if a > TOL {
                    let ratio = self.rows[r][self.n_total] / a;
                    let better = ratio < best_ratio - TOL
                        || (ratio < best_ratio + TOL
                            && leave.is_some_and(|l| self.basis[r] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(row) = leave else {
                return Err(()); // unbounded direction
            };
            self.pivot(row, col);
            let obj = -self.z[self.n_total];
            if obj < last_obj - TOL {
                stall = 0;
                last_obj = obj;
            } else {
                stall += 1;
            }
        }
    }
}

/// Solve a [`Problem`] with the two-phase simplex.
///
/// ```
/// use spp_lp::{Problem, Cmp, Status, solve, certify};
///
/// // min 3x + 2y  s.t.  x + y ≥ 4,  y ≤ 3
/// let mut p = Problem::new();
/// let x = p.add_var(3.0);
/// let y = p.add_var(2.0);
/// p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
/// p.add_constraint(&[(y, 1.0)], Cmp::Le, 3.0);
///
/// let s = solve(&p);
/// assert_eq!(s.status, Status::Optimal);
/// assert!((s.objective - 9.0).abs() < 1e-9);   // x = 1, y = 3
/// certify(&p, &s, 1e-8).unwrap();              // independent optimality proof
/// ```
pub fn solve(p: &Problem) -> Solution {
    let n = p.n_vars;
    let m = p.rows.len();

    // ----- build the standard-form tableau -----
    // Count slack/surplus and artificial columns.
    // Row senses after normalizing rhs to be non-negative.
    let mut senses: Vec<Cmp> = Vec::with_capacity(m);
    let mut dense_rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rhs: Vec<f64> = Vec::with_capacity(m);
    // rows whose sign was flipped during normalization (their internal
    // dual is the negative of the dual of the user's original row)
    let mut flipped: Vec<bool> = Vec::with_capacity(m);
    for row in &p.rows {
        let mut a = vec![0.0; n];
        for &(j, v) in &row.coeffs {
            a[j] += v;
        }
        let mut b = row.rhs;
        let mut cmp = row.cmp;
        flipped.push(b < 0.0);
        if b < 0.0 {
            for v in a.iter_mut() {
                *v = -*v;
            }
            b = -b;
            cmp = match cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
        senses.push(cmp);
        dense_rows.push(a);
        rhs.push(b);
    }
    let n_slack = senses
        .iter()
        .filter(|c| matches!(c, Cmp::Le | Cmp::Ge))
        .count();
    // every row gets an artificial; for Le rows the slack can start basic,
    // so only Ge/Eq rows truly need one, but a uniform layout keeps dual
    // extraction simple: initial basis column of row i is
    //  - its slack (Le), or
    //  - its artificial (Ge/Eq).
    let n_art = senses
        .iter()
        .filter(|c| matches!(c, Cmp::Ge | Cmp::Eq))
        .count();
    let n_total = n + n_slack + n_art;

    let mut rows_mat: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    // initial-basis column per row (carries B⁻¹ in the final tableau)
    let mut init_col: Vec<usize> = Vec::with_capacity(m);
    let mut slack_cursor = n;
    let mut art_cursor = n + n_slack;
    let mut art_cols: Vec<usize> = Vec::new();
    for (i, a) in dense_rows.iter().enumerate() {
        let mut full = vec![0.0; n_total + 1];
        full[..n].copy_from_slice(a);
        full[n_total] = rhs[i];
        match senses[i] {
            Cmp::Le => {
                full[slack_cursor] = 1.0;
                basis.push(slack_cursor);
                init_col.push(slack_cursor);
                slack_cursor += 1;
            }
            Cmp::Ge => {
                full[slack_cursor] = -1.0; // surplus
                full[art_cursor] = 1.0;
                basis.push(art_cursor);
                init_col.push(art_cursor);
                art_cols.push(art_cursor);
                slack_cursor += 1;
                art_cursor += 1;
            }
            Cmp::Eq => {
                full[art_cursor] = 1.0;
                basis.push(art_cursor);
                init_col.push(art_cursor);
                art_cols.push(art_cursor);
                art_cursor += 1;
            }
        }
        rows_mat.push(full);
    }

    let mut t = Tableau {
        rows: rows_mat,
        z: vec![0.0; n_total + 1],
        basis,
        n_total,
        banned: vec![false; n_total],
    };

    let infeasible = || Solution {
        status: Status::Infeasible,
        x: Vec::new(),
        objective: f64::NAN,
        duals: Vec::new(),
        support: 0,
        iterations: 0,
    };

    // ----- phase 1 -----
    let mut iterations = 0;
    if !art_cols.is_empty() {
        let mut d = vec![0.0; n_total];
        for &j in &art_cols {
            d[j] = 1.0;
        }
        t.set_objective(&d);
        match t.optimize() {
            Ok(it) => iterations += it,
            Err(()) => unreachable!("phase-1 objective is bounded below by 0"),
        }
        let phase1 = -t.z[n_total];
        if phase1 > 1e-7 {
            return infeasible();
        }
        // drive any zero-level artificial out of the basis when possible
        for r in 0..t.rows.len() {
            if art_cols.contains(&t.basis[r]) {
                if let Some(col) = (0..n + n_slack).find(|&j| t.rows[r][j].abs() > 1e-7) {
                    t.pivot(r, col);
                }
                // otherwise the row is redundant; the artificial stays
                // basic at value 0, which is harmless
            }
        }
        for &j in &art_cols {
            t.banned[j] = true;
        }
    }

    // ----- phase 2 -----
    let mut c = vec![0.0; n_total];
    c[..n].copy_from_slice(&p.objective);
    t.set_objective(&c);
    match t.optimize() {
        Ok(it) => iterations += it,
        Err(()) => {
            return Solution {
                status: Status::Unbounded,
                x: Vec::new(),
                objective: f64::NEG_INFINITY,
                duals: Vec::new(),
                support: 0,
                iterations,
            }
        }
    }

    // ----- extract primal, duals, support -----
    let mut x = vec![0.0; n];
    let mut support = 0;
    for (r, &b) in t.basis.iter().enumerate() {
        if b < n {
            let v = t.rows[r][n_total];
            x[b] = if v.abs() < TOL { 0.0 } else { v };
            if x[b] > TOL {
                support += 1;
            }
        }
    }
    // duals: y = c_B B⁻¹; column `init_col[i]` of the final tableau is
    // B⁻¹ e_i, so y_i = Σ_r c_basis(r) · T[r][init_col[i]].
    let mut duals = vec![0.0; m];
    for i in 0..m {
        let col = init_col[i];
        let mut y = 0.0;
        for (r, &b) in t.basis.iter().enumerate() {
            let cb = c[b];
            if cb != 0.0 {
                y += cb * t.rows[r][col];
            }
        }
        duals[i] = if flipped[i] { -y } else { y };
    }

    let objective = p.objective_at(&x);
    Solution {
        status: Status::Optimal,
        x,
        objective,
        duals,
        support,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, Problem};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn simple_le_maximization_as_min() {
        // min -(x + y) s.t. x ≤ 2, y ≤ 3, x + y ≤ 4
        let mut p = Problem::new();
        let x = p.add_var(-1.0);
        let y = p.add_var(-1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Le, 2.0);
        p.add_constraint(&[(y, 1.0)], Cmp::Le, 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!(close(s.objective, -4.0), "obj {}", s.objective);
        assert!(p.is_feasible(&s.x, 1e-7));
    }

    #[test]
    fn equality_and_ge() {
        // min x + 2y s.t. x + y = 10, x ≥ 3  ->  x=10,y=0 is optimal? check:
        // obj(10,0)=10; obj(3,7)=17. So x=10.
        let mut p = Problem::new();
        let x = p.add_var(1.0);
        let y = p.add_var(2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 3.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!(close(s.objective, 10.0));
        assert!(close(s.x[x], 10.0));
        assert!(close(s.x[y], 0.0));
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new();
        let x = p.add_var(1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Le, 1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(solve(&p).status, Status::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x s.t. x ≥ 1 (x can grow forever)
        let mut p = Problem::new();
        let x = p.add_var(-1.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 1.0);
        assert_eq!(solve(&p).status, Status::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // -x ≤ -2  <=>  x ≥ 2
        let mut p = Problem::new();
        let x = p.add_var(1.0);
        p.add_constraint(&[(x, -1.0)], Cmp::Le, -2.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!(close(s.x[x], 2.0));
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Beale's classic cycling example (degenerate under Dantzig
        // pricing without anti-cycling).
        let mut p = Problem::new();
        let x1 = p.add_var(-0.75);
        let x2 = p.add_var(150.0);
        let x3 = p.add_var(-0.02);
        let x4 = p.add_var(6.0);
        p.add_constraint(
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Cmp::Le,
            0.0,
        );
        p.add_constraint(
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Cmp::Le,
            0.0,
        );
        p.add_constraint(&[(x3, 1.0)], Cmp::Le, 1.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!(close(s.objective, -0.05), "obj {}", s.objective);
    }

    #[test]
    fn duals_satisfy_strong_duality_and_feasibility() {
        // min 3x + 2y s.t. x + y ≥ 4, x ≥ 1, y ≤ 10
        let mut p = Problem::new();
        let x = p.add_var(3.0);
        let y = p.add_var(2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        p.add_constraint(&[(x, 1.0)], Cmp::Ge, 1.0);
        p.add_constraint(&[(y, 1.0)], Cmp::Le, 10.0);
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        // optimum: x = 1, y = 3 -> 9
        assert!(close(s.objective, 9.0));
        // strong duality: y'b = objective
        let yb = s.duals[0] * 4.0 + s.duals[1] * 1.0 + s.duals[2] * 10.0;
        assert!(close(yb, s.objective), "y'b = {yb}");
        // reduced costs non-negative: c_j - y'A_j ≥ 0
        let rc_x = 3.0 - (s.duals[0] + s.duals[1]);
        let rc_y = 2.0 - (s.duals[0] + s.duals[2]);
        assert!(rc_x > -1e-7 && rc_y > -1e-7, "rc {rc_x} {rc_y}");
    }

    #[test]
    fn redundant_equalities_are_handled() {
        let mut p = Problem::new();
        let x = p.add_var(1.0);
        let y = p.add_var(1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        p.add_constraint(&[(x, 2.0), (y, 2.0)], Cmp::Eq, 4.0); // redundant
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!(close(s.objective, 2.0));
    }

    #[test]
    fn support_is_at_most_rows() {
        // A transportation-like LP: many variables, few rows — the basic
        // optimum must have support ≤ #rows (this is what Lemma 3.3 uses).
        let mut p = Problem::new();
        let vars: Vec<usize> = (0..30).map(|j| p.add_var(1.0 + (j % 7) as f64)).collect();
        // 4 covering rows
        for r in 0..4usize {
            let coeffs: Vec<(usize, f64)> = vars
                .iter()
                .enumerate()
                .filter(|(j, _)| (j + r) % 3 != 0)
                .map(|(j, &v)| (v, 1.0 + ((j * r) % 5) as f64))
                .collect();
            p.add_constraint(&coeffs, Cmp::Ge, 10.0 + r as f64);
        }
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert!(s.support <= 4, "support {} > rows 4", s.support);
        assert!(p.is_feasible(&s.x, 1e-6));
    }

    #[test]
    fn zero_variable_problem() {
        let p = Problem::new();
        let s = solve(&p);
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn random_lps_obey_weak_duality_and_feasibility() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1234);
        for trial in 0..60 {
            let n = rng.gen_range(1..8);
            let m = rng.gen_range(1..6);
            let mut p = Problem::new();
            let vars: Vec<usize> = (0..n).map(|_| p.add_var(rng.gen_range(0.0..5.0))).collect();
            // construct rows through a known feasible point x0 ≥ 0
            let x0: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..3.0)).collect();
            for _ in 0..m {
                let coeffs: Vec<(usize, f64)> = vars
                    .iter()
                    .map(|&v| (v, rng.gen_range(-2.0..2.0)))
                    .collect();
                let lhs: f64 = coeffs.iter().map(|&(j, a)| a * x0[j]).sum();
                match rng.gen_range(0..3) {
                    0 => p.add_constraint(&coeffs, Cmp::Le, lhs + rng.gen_range(0.0..1.0)),
                    1 => p.add_constraint(&coeffs, Cmp::Ge, lhs - rng.gen_range(0.0..1.0)),
                    _ => p.add_constraint(&coeffs, Cmp::Eq, lhs),
                }
            }
            let s = solve(&p);
            assert_eq!(s.status, Status::Optimal, "trial {trial} must be feasible");
            assert!(
                p.is_feasible(&s.x, 1e-5),
                "trial {trial}: infeasible primal {:?}",
                s.x
            );
            // optimal ≤ objective at the known feasible point (c ≥ 0 ⇒ bounded below by 0 too)
            assert!(
                s.objective <= p.objective_at(&x0) + 1e-6,
                "trial {trial}: {} > {}",
                s.objective,
                p.objective_at(&x0)
            );
            assert!(s.objective >= -1e-7, "c ≥ 0 and x ≥ 0 force obj ≥ 0");
        }
    }
}
