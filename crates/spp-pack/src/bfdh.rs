//! Best-Fit Decreasing Height.
//!
//! Shelf algorithm that sends each rectangle to the open shelf with the
//! *least residual width* that still fits it. Same shelf structure and
//! validity argument as FFDH; included as a third point for the shelf
//! ablation (next-fit vs first-fit vs best-fit).

use crate::shelf::{decreasing_height_order, pack_shelves, ShelfPacking, ShelfPolicy};
use spp_core::{Instance, Placement};

/// Pack with BFDH, returning just the placement.
pub fn bfdh(inst: &Instance) -> Placement {
    bfdh_shelves(inst).placement
}

/// Pack with BFDH, returning shelf metadata as well.
pub fn bfdh_shelves(inst: &Instance) -> ShelfPacking {
    let order = decreasing_height_order(inst);
    pack_shelves(inst, &order, ShelfPolicy::BestFit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn prefers_tight_shelf() {
        let inst = Instance::from_dims(&[
            (0.7, 1.0), // shelf 0, residual 0.3
            (0.5, 0.9), // shelf 1, residual 0.5
            (0.3, 0.5), // fits both; best-fit -> shelf 0 (residual 0)
            (0.5, 0.4), // only shelf 1
        ])
        .unwrap();
        let sp = bfdh_shelves(&inst);
        assert_eq!(sp.shelves.len(), 2);
        assert_eq!(sp.shelves[0].items, vec![0, 2]);
        assert_eq!(sp.shelves[1].items, vec![1, 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn bfdh_valid(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 0..60)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let pl = bfdh(&inst);
            prop_assert!(spp_core::validate::validate(&inst, &pl).is_ok());
        }

        /// BFDH opens no more shelves than NFDH (it only closes a shelf
        /// when nothing fits anywhere).
        #[test]
        fn bfdh_no_taller_than_nfdh(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 1..50)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let hb = bfdh(&inst).height(&inst);
            let hn = crate::nfdh(&inst).height(&inst);
            prop_assert!(hb <= hn + 1e-9);
        }
    }
}
