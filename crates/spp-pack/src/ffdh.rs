//! First-Fit Decreasing Height.
//!
//! Like NFDH but every shelf stays open; each rectangle goes onto the
//! *lowest* shelf with room. Coffman, Garey, Johnson and Tarjan (1980)
//! proved `FFDH(L) ≤ 1.7·OPT(L) + h_max`; FFDH is never worse than NFDH
//! on the same instance *order* and is the strongest classic shelf
//! heuristic, so it serves as the default ablation alternative to NFDH
//! inside `DC`.

use crate::shelf::{decreasing_height_order, pack_shelves, ShelfPacking, ShelfPolicy};
use spp_core::{Instance, Placement};

/// Pack with FFDH, returning just the placement.
pub fn ffdh(inst: &Instance) -> Placement {
    ffdh_shelves(inst).placement
}

/// Pack with FFDH, returning shelf metadata as well.
pub fn ffdh_shelves(inst: &Instance) -> ShelfPacking {
    let order = decreasing_height_order(inst);
    pack_shelves(inst, &order, ShelfPolicy::FirstFit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfdh::nfdh;
    use proptest::prelude::*;

    #[test]
    fn reuses_early_shelves() {
        // NFDH wastes a shelf here; FFDH back-fills.
        let inst = Instance::from_dims(&[(0.6, 1.0), (0.6, 0.9), (0.4, 0.8), (0.4, 0.7)]).unwrap();
        let hf = ffdh(&inst).height(&inst);
        let hn = nfdh(&inst).height(&inst);
        assert!(hf <= hn + spp_core::eps::EPS);
        spp_core::assert_close!(hf, 1.9); // shelves: [0,2],[1,3]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn ffdh_valid(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 0..60)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let pl = ffdh(&inst);
            prop_assert!(spp_core::validate::validate(&inst, &pl).is_ok());
        }

        /// FFDH is never taller than NFDH (same decreasing-height order;
        /// first-fit dominates next-fit shelf-by-shelf).
        #[test]
        fn ffdh_dominates_nfdh(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 1..60)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let hf = ffdh(&inst).height(&inst);
            let hn = nfdh(&inst).height(&inst);
            prop_assert!(hf <= hn + 1e-9, "FFDH {} > NFDH {}", hf, hn);
        }

        /// FFDH also empirically satisfies the stronger CGJT-style bound
        /// 1.7·AREA + h_max on random instances.
        #[test]
        fn ffdh_cgjt_bound(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 1..60)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let hf = ffdh(&inst).height(&inst);
            prop_assert!(hf <= 1.7 * inst.total_area() + inst.max_height() + 1e-9);
        }
    }
}
