//! Anytime improvement: remove-and-reinsert local search over any seed
//! placement, feasibility-aware for precedence edges and release times.
//!
//! The loop is the ruin-and-recreate scheme nesting solvers use (remove a
//! subset, re-insert, shrink the envelope, retry), adapted to the
//! constrained strip: instead of ruining *geometry* — which cannot be
//! partially rebuilt under a skyline contour — each round perturbs the
//! **insertion priority order** and re-decodes the whole instance through
//! a precedence/release-gated skyline best-fit. Decoding only ever emits
//! feasible placements (every item waits for its predecessors' tops and
//! its release floor), so the search space is exactly the feasible set
//! and the incumbent can be accepted on makespan alone.
//!
//! Two removal strategies alternate, both driven by one
//! [`SplitMix64`] stream so the whole search is a pure function of
//! [`ImproveConfig::seed`]:
//!
//! * **worst-waste bands** — the items whose horizontal band in the
//!   incumbent has the lowest occupancy (the most trapped whitespace)
//!   are pulled to the front of the order, in shuffled relative order;
//! * **random subset** — a seeded subset is removed from the order and
//!   re-inserted at seeded positions.
//!
//! Each round decodes under the incumbent's **makespan envelope**: the
//! moment a partial decode reaches the incumbent height the round is
//! abandoned (it cannot strictly improve). The incumbent is replaced
//! only on strict improvement, and mutations always restart from the
//! incumbent's own order, so the search never drifts away from its best.
//!
//! The decode inner loop is allocation-free on the steady state: one
//! [`DecodeScratch`] (rank/floor/missing/heap buffers plus the working
//! placement and skyline) is reused across rounds, the band occupancy
//! used by the worst-waste strategy lives in an event-sweep
//! [`BandIndex`] rebuilt only when the incumbent changes, and order
//! mutations rebuild through a boolean mask in a single pass instead of
//! `retain` + per-element `insert`.
//!
//! **Determinism contract.** The *sequence* of candidate placements is a
//! pure function of `(instance, seed placement, seed)`. The wall-clock
//! deadline only truncates that sequence; runs that reach convergence
//! (`stall_rounds` consecutive non-improving rounds) inside their budget
//! return bit-identical results on any machine.
//!
//! # Portfolio search
//!
//! [`improve_parallel`] runs K independent streams of this search
//! (stream i seeded `seed ^ splitmix_mix(i)`) on [`spp_par`] workers and
//! reduces deterministically: strictly lowest makespan wins, ties break
//! to the lowest stream index. Because each stream is itself a pure
//! function of its seed and the reduction ignores completion order,
//! converged portfolio runs are bit-identical regardless of worker count
//! or scheduling. An opt-in [`SharedEnvelope`] lets streams prune
//! against the global incumbent (atomic f64-bits min); that couples the
//! streams through scheduling, so it is off by default and documented as
//! trading cross-run reproducibility for throughput.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use spp_core::hash::{splitmix_mix, SplitMix64};
use spp_core::Placement;
use spp_dag::PrecInstance;

use crate::skyline::Skyline;

/// Strict-improvement margin: a candidate must beat the incumbent by
/// more than this to be accepted (keeps float noise from masquerading as
/// progress and guarantees the accept sequence is machine-independent).
const IMPROVE_EPS: f64 = 1e-9;

/// A lock-free best-so-far makespan shared between portfolio streams,
/// stored as the bit pattern of a non-negative f64 (for which the
/// unsigned bit order coincides with numeric order, so `fetch_min`-style
/// CAS loops work directly on the bits).
#[derive(Debug)]
pub struct SharedEnvelope {
    bits: AtomicU64,
}

impl SharedEnvelope {
    pub fn new() -> Self {
        SharedEnvelope {
            bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    /// The tightest makespan any stream has published so far.
    pub fn current(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Publish `h` if it is tighter than the current global incumbent.
    pub fn observe(&self, h: f64) {
        debug_assert!(h >= 0.0, "envelope stores non-negative makespans");
        let new = h.to_bits();
        let mut cur = self.bits.load(Ordering::Relaxed);
        while new < cur {
            match self
                .bits
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Default for SharedEnvelope {
    fn default() -> Self {
        Self::new()
    }
}

/// Knobs of one improvement run.
#[derive(Debug, Clone)]
pub struct ImproveConfig {
    /// Stream seed; callers wanting content-addressed determinism pass
    /// `instance_digest ^ user_seed`.
    pub seed: u64,
    /// Wall-clock cutoff. `None` runs to convergence (or `max_rounds`).
    pub deadline: Option<Instant>,
    /// Hard cap on rounds, a backstop against pathological budgets.
    pub max_rounds: u64,
    /// Convergence: stop after this many consecutive rounds without a
    /// strict improvement.
    pub stall_rounds: u64,
    /// Optional cross-stream best-so-far to prune decodes against.
    /// Sharing couples streams through scheduling, so results become
    /// scheduling-dependent; leave `None` for bit-reproducibility.
    pub envelope: Option<Arc<SharedEnvelope>>,
}

impl Default for ImproveConfig {
    fn default() -> Self {
        ImproveConfig {
            seed: 0,
            deadline: None,
            max_rounds: 100_000,
            stall_rounds: 64,
            envelope: None,
        }
    }
}

/// Result of one improvement run. `placement` is the seed placement
/// itself whenever no candidate strictly improved it, so
/// `makespan ≤ seed_makespan` holds unconditionally.
#[derive(Debug, Clone)]
pub struct ImproveOutcome {
    pub placement: Placement,
    /// Height of `placement`.
    pub makespan: f64,
    /// Height of the seed placement the run started from.
    pub seed_makespan: f64,
    /// Rounds attempted (including abandoned decodes).
    pub rounds: u64,
    /// Rounds that strictly improved the incumbent.
    pub improvements: u64,
    /// Decodes abandoned because the *shared* envelope was strictly
    /// tighter than this stream's own incumbent (always 0 without
    /// [`ImproveConfig::envelope`]).
    pub envelope_prunes: u64,
    /// True iff the run stopped on stall (not deadline/round cap), i.e.
    /// the result is the deterministic fixed point for this seed.
    pub converged: bool,
}

impl ImproveOutcome {
    /// Makespan removed relative to the seed placement (≥ 0).
    pub fn gain(&self) -> f64 {
        (self.seed_makespan - self.makespan).max(0.0)
    }
}

/// Item ids ordered by the placement's geometry (bottom-up, then left to
/// right, then id) — the canonical priority order a placement induces.
fn order_of(prec: &PrecInstance, pl: &Placement) -> Vec<usize> {
    let mut order: Vec<usize> = (0..prec.len()).collect();
    order.sort_by(|&a, &b| {
        let (pa, pb) = (pl.pos(a), pl.pos(b));
        pa.y.partial_cmp(&pb.y)
            .unwrap()
            .then(pa.x.partial_cmp(&pb.x).unwrap())
            .then(a.cmp(&b))
    });
    order
}

/// Reusable buffers for [`decode_into`]: the rank/floor/missing arrays,
/// the ready-heap, and the working placement + skyline. One scratch per
/// search stream makes the decode loop allocation-free on the steady
/// state — buffers are sized once and reused every round.
#[derive(Debug)]
pub(crate) struct DecodeScratch {
    rank: Vec<usize>,
    floor: Vec<f64>,
    missing: Vec<usize>,
    ready: BinaryHeap<Reverse<(usize, usize)>>,
    pl: Placement,
    sky: Skyline,
}

impl DecodeScratch {
    fn new(n: usize) -> Self {
        DecodeScratch {
            rank: vec![0; n],
            floor: vec![0.0; n],
            missing: vec![0; n],
            ready: BinaryHeap::with_capacity(n),
            pl: Placement::zeroed(n),
            sky: Skyline::new(),
        }
    }
}

/// Decode a priority order into a feasible placement via skyline
/// best-fit: items become eligible only when every predecessor is
/// placed, eligible items are taken in priority-order rank, and each is
/// dropped at the lowest-leftmost position at or above its floor
/// (max of release time and predecessor tops). Returns `None` as soon as
/// the partial height reaches `envelope` — the candidate cannot strictly
/// beat the incumbent, so the rest of the decode is wasted work. On
/// `Some(h)`, `scratch.pl` holds the decoded placement of height `h`.
fn decode_into(
    prec: &PrecInstance,
    order: &[usize],
    envelope: f64,
    scratch: &mut DecodeScratch,
) -> Option<f64> {
    let n = prec.len();
    for (i, &v) in order.iter().enumerate() {
        scratch.rank[v] = i;
    }
    for it in prec.inst.items() {
        scratch.floor[it.id] = it.release;
    }
    scratch.ready.clear();
    for v in 0..n {
        scratch.missing[v] = prec.dag.in_degree(v);
        if scratch.missing[v] == 0 {
            scratch.ready.push(Reverse((scratch.rank[v], v)));
        }
    }
    scratch.sky.reset();

    let mut top = 0.0f64;
    let mut placed = 0usize;
    while let Some(Reverse((_, v))) = scratch.ready.pop() {
        let it = prec.inst.item(v);
        let (x, y) = scratch.sky.best_position(it.w, scratch.floor[v]);
        top = top.max(y + it.h);
        if top >= envelope - IMPROVE_EPS {
            return None;
        }
        scratch.sky.place(x, y, it.w, it.h);
        scratch.pl.set(v, x, y);
        placed += 1;
        for &w in prec.dag.succs(v) {
            scratch.floor[w] = scratch.floor[w].max(y + it.h);
            scratch.missing[w] -= 1;
            if scratch.missing[w] == 0 {
                scratch.ready.push(Reverse((scratch.rank[w], w)));
            }
        }
    }
    debug_assert_eq!(placed, n, "DAG invariant: every item decodes");
    Some(top)
}

/// Event-sweep index over the horizontal bands of a placement, rebuilt
/// only when the incumbent changes. `covered_width(y)` is piecewise
/// constant between item edges; the index stores its breakpoints and the
/// prefix integral, so one item's band occupancy is two binary searches
/// instead of an O(n) sum — O(n log n) per rebuild against the old
/// O(n²) full recompute after every improvement.
#[derive(Debug, Default)]
struct BandIndex {
    /// Sorted distinct breakpoint ys (item bottoms and tops).
    ys: Vec<f64>,
    /// `acc[i]` = ∫ covered_width from `ys[0]` to `ys[i]`.
    acc: Vec<f64>,
    /// Covered width on `[ys[i], ys[i+1])`; last entry is 0.
    width: Vec<f64>,
    /// Event scratch: `(y, ±w)` deltas, reused across rebuilds.
    events: Vec<(f64, f64)>,
    /// Per-item occupancy of its own band, refreshed with the index.
    occupancy: Vec<f64>,
    /// Item ids sorted by rising occupancy (worst waste first).
    by_waste: Vec<usize>,
}

impl BandIndex {
    /// Rebuild breakpoints/integral from `pl`, then refresh the per-item
    /// occupancies and the worst-waste ordering.
    fn rebuild(&mut self, prec: &PrecInstance, pl: &Placement) {
        let items = prec.inst.items();
        self.events.clear();
        for it in items {
            let y = pl.pos(it.id).y;
            self.events.push((y, it.w));
            self.events.push((y + it.h, -it.w));
        }
        // Full-tuple key keeps the order (and the float sums below)
        // deterministic even among equal ys.
        self.events
            .sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());

        self.ys.clear();
        self.acc.clear();
        self.width.clear();
        let mut w = 0.0f64;
        let mut acc = 0.0f64;
        for &(y, dw) in &self.events {
            match self.ys.last() {
                Some(&last) if last == y => {}
                Some(&last) => {
                    acc += w * (y - last);
                    self.ys.push(y);
                    self.acc.push(acc);
                    self.width.push(0.0);
                }
                None => {
                    self.ys.push(y);
                    self.acc.push(0.0);
                    self.width.push(0.0);
                }
            }
            w += dw;
            *self.width.last_mut().unwrap() = w;
        }

        let mut occupancy = std::mem::take(&mut self.occupancy);
        occupancy.clear();
        occupancy.extend(items.iter().map(|a| {
            if a.h <= 0.0 {
                return 1.0;
            }
            let y0 = pl.pos(a.id).y;
            (self.integral_to(y0 + a.h) - self.integral_to(y0)) / a.h
        }));
        self.occupancy = occupancy;
        if self.by_waste.len() != items.len() {
            self.by_waste.clear();
            self.by_waste.extend(0..items.len());
        }
        let occupancy = &self.occupancy;
        self.by_waste.sort_unstable_by(|&a, &b| {
            occupancy[a]
                .partial_cmp(&occupancy[b])
                .unwrap()
                .then(a.cmp(&b))
        });
    }

    /// ∫ covered_width from the first breakpoint to `y` (clamped to the
    /// breakpoint range; the width is 0 outside it).
    fn integral_to(&self, y: f64) -> f64 {
        let n = self.ys.len();
        if n == 0 || y <= self.ys[0] {
            return 0.0;
        }
        if y >= self.ys[n - 1] {
            return self.acc[n - 1];
        }
        let i = self.ys.partition_point(|&b| b <= y) - 1;
        self.acc[i] + self.width[i] * (y - self.ys[i])
    }
}

/// Rebuild `out` as `chosen ++ (base minus chosen, in base order)` in
/// one pass over `base` with a boolean membership mask — O(n) against
/// the old `retain(|v| !chosen.contains(v))` (O(n·k)) plus per-element
/// front `insert` (O(n·k)). `mask` must be `base.len()` falses on entry
/// and is restored to all-false on exit.
pub(crate) fn rebuild_front(
    base: &[usize],
    chosen: &[usize],
    mask: &mut [bool],
    out: &mut Vec<usize>,
) {
    for &v in chosen {
        mask[v] = true;
    }
    out.clear();
    out.extend_from_slice(chosen);
    out.extend(base.iter().copied().filter(|&v| !mask[v]));
    for &v in chosen {
        mask[v] = false;
    }
}

/// Rebuild `out` by interleaving `chosen` uniformly at random into
/// `base minus chosen` in one pass: at each slot, emit the next chosen
/// element with probability `remaining_chosen / remaining_total`. O(n)
/// with one RNG draw per emitted slot; same mask contract as
/// [`rebuild_front`].
pub(crate) fn rebuild_scatter(
    base: &[usize],
    chosen: &[usize],
    rng: &mut SplitMix64,
    mask: &mut [bool],
    out: &mut Vec<usize>,
) {
    for &v in chosen {
        mask[v] = true;
    }
    out.clear();
    let mut rem_c = chosen.len();
    let mut rem_b = base.len() - chosen.len();
    let (mut ci, mut bi) = (0usize, 0usize);
    while rem_c + rem_b > 0 {
        let take_chosen =
            rem_c > 0 && (rem_b == 0 || rng.next_below((rem_c + rem_b) as u64) < rem_c as u64);
        if take_chosen {
            out.push(chosen[ci]);
            ci += 1;
            rem_c -= 1;
        } else {
            while mask[base[bi]] {
                bi += 1;
            }
            out.push(base[bi]);
            bi += 1;
            rem_b -= 1;
        }
    }
    for &v in chosen {
        mask[v] = false;
    }
}

/// The removal-subset size for an `n`-item instance: an eighth of the
/// instance, at least 2, never the whole thing.
fn subset_size(n: usize) -> usize {
    (n / 8).max(2).min(n)
}

/// Improve `seed_pl` by seeded remove-and-reinsert until the deadline,
/// the round cap, or convergence. See the module docs for the scheme and
/// the determinism contract.
pub fn improve(prec: &PrecInstance, seed_pl: &Placement, cfg: &ImproveConfig) -> ImproveOutcome {
    let seed_makespan = seed_pl.height(&prec.inst);
    let mut out = ImproveOutcome {
        placement: seed_pl.clone(),
        makespan: seed_makespan,
        seed_makespan,
        rounds: 0,
        improvements: 0,
        envelope_prunes: 0,
        converged: true,
    };
    if let Some(env) = &cfg.envelope {
        env.observe(seed_makespan);
    }
    let n = prec.len();
    if n < 2 {
        return out;
    }

    let mut rng = SplitMix64::new(cfg.seed);
    let mut base_order = order_of(prec, seed_pl);
    // The seed solver may not be skyline-shaped at all; decoding its own
    // order is round 0's "identity" move and often already improves.
    let mut scratch = DecodeScratch::new(n);
    let mut bands = BandIndex::default();
    bands.rebuild(prec, &out.placement);
    let mut mask = vec![false; n];
    let mut chosen: Vec<usize> = Vec::with_capacity(n);
    let mut pool: Vec<usize> = Vec::with_capacity(n);
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut stall = 0u64;
    for round in 0..cfg.max_rounds {
        if cfg.deadline.is_some_and(|d| Instant::now() >= d) {
            out.converged = false;
            break;
        }
        out.rounds = round + 1;

        // Every candidate is rebuilt from the incumbent's order;
        // mutations never accumulate, so the search stays anchored to
        // the best-so-far.
        if round == 0 {
            // identity: decode the incumbent's own order
            order.clear();
            order.extend_from_slice(&base_order);
        } else if round % 2 == 1 {
            // Worst-waste bands: pull the least-occupied items forward.
            let k = subset_size(n);
            chosen.clear();
            chosen.extend_from_slice(&bands.by_waste[..k]);
            rng.shuffle(&mut chosen);
            rebuild_front(&base_order, &chosen, &mut mask, &mut order);
        } else {
            // Random subset, re-inserted at random positions.
            let k = subset_size(n);
            pool.clear();
            pool.extend(0..n);
            chosen.clear();
            for _ in 0..k {
                let i = rng.next_below(pool.len() as u64) as usize;
                chosen.push(pool.swap_remove(i));
            }
            rebuild_scatter(&base_order, &chosen, &mut rng, &mut mask, &mut order);
        }

        // Decode under the tightest envelope available. A shared value
        // strictly below the local incumbent means any abandoned decode
        // was cut by *another* stream's discovery — count those.
        let mut limit = out.makespan;
        let mut shared_cut = false;
        if let Some(env) = &cfg.envelope {
            let g = env.current();
            if g < limit {
                limit = g;
                shared_cut = true;
            }
        }

        match decode_into(prec, &order, limit, &mut scratch) {
            Some(h) if h < out.makespan - IMPROVE_EPS => {
                debug_assert!(
                    prec.validate(&scratch.pl).is_ok(),
                    "decode emitted infeasible"
                );
                out.makespan = h;
                out.placement = scratch.pl.clone();
                out.improvements += 1;
                std::mem::swap(&mut base_order, &mut order);
                bands.rebuild(prec, &out.placement);
                if let Some(env) = &cfg.envelope {
                    env.observe(h);
                }
                stall = 0;
            }
            _ => {
                if shared_cut {
                    out.envelope_prunes += 1;
                }
                stall += 1;
            }
        }
        if stall >= cfg.stall_rounds {
            break;
        }
    }
    if out.rounds == cfg.max_rounds && stall < cfg.stall_rounds {
        out.converged = false;
    }
    out
}

/// Knobs of a portfolio run: K independent [`improve`] streams reduced
/// deterministically.
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// Number of independent search streams. Stream i runs with seed
    /// `seed ^ splitmix_mix(i)`; `splitmix_mix(0) == 0`, so stream 0
    /// replays the single-stream search exactly and `streams = 1`
    /// degenerates to [`improve`].
    pub streams: usize,
    /// Worker threads to run streams on; 0 means available parallelism.
    /// Never affects results unless `share_envelope` is set — it is an
    /// execution detail, not part of the search's identity.
    pub workers: usize,
    /// Share a best-so-far envelope across streams. Extra pruning
    /// throughput, but results become scheduling-dependent; leave off
    /// when cross-run bit-reproducibility matters.
    pub share_envelope: bool,
    /// Base seed; stream seeds derive from it (see `streams`).
    pub seed: u64,
    /// Per-stream compute budget: each stream arms its own deadline
    /// `now + budget` when it *starts*. On K idle cores the portfolio
    /// finishes in ~budget wall time; on fewer cores wall time stretches
    /// toward `ceil(K/workers) × budget` rather than starving the
    /// streams scheduled last, keeping truncation a per-stream property
    /// independent of scheduling.
    pub budget: Option<Duration>,
    /// Per-stream round cap (see [`ImproveConfig::max_rounds`]).
    pub max_rounds: u64,
    /// Per-stream convergence stall (see [`ImproveConfig::stall_rounds`]).
    pub stall_rounds: u64,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        let base = ImproveConfig::default();
        PortfolioConfig {
            streams: 1,
            workers: 0,
            share_envelope: false,
            seed: 0,
            budget: None,
            max_rounds: base.max_rounds,
            stall_rounds: base.stall_rounds,
        }
    }
}

/// Per-stream summary inside a [`PortfolioOutcome`].
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    pub stream: usize,
    pub makespan: f64,
    pub rounds: u64,
    pub improvements: u64,
    pub envelope_prunes: u64,
    pub converged: bool,
}

/// Result of a portfolio run: the winning stream's placement plus
/// aggregate counters across all streams.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    pub placement: Placement,
    /// Height of `placement` (the minimum across streams).
    pub makespan: f64,
    /// Height of the shared seed placement.
    pub seed_makespan: f64,
    /// Index of the winning stream (lowest makespan, ties to lowest
    /// index — the deterministic reduction rule).
    pub winner: usize,
    /// Total rounds across all streams.
    pub rounds: u64,
    /// Total strict improvements across all streams.
    pub improvements: u64,
    /// Total shared-envelope prunes across all streams (0 unless
    /// [`PortfolioConfig::share_envelope`]).
    pub envelope_prunes: u64,
    /// True iff *every* stream converged (stall-stopped), i.e. the
    /// result is the deterministic fixed point for this (seed, K).
    pub converged: bool,
    /// One summary per stream, indexed by stream.
    pub streams: Vec<StreamOutcome>,
}

impl PortfolioOutcome {
    /// Makespan removed relative to the seed placement (≥ 0).
    pub fn gain(&self) -> f64 {
        (self.seed_makespan - self.makespan).max(0.0)
    }
}

/// Run `cfg.streams` independent improvement streams over the same seed
/// placement and reduce to the strictly best result (ties to the lowest
/// stream index). Streams are distributed over `cfg.workers` threads via
/// an atomic work counter; because each stream is a pure function of its
/// derived seed and the reduction is order-independent, converged
/// results are bit-identical for any worker count — unless
/// `share_envelope` couples the streams (see [`PortfolioConfig`]).
pub fn improve_parallel(
    prec: &PrecInstance,
    seed_pl: &Placement,
    cfg: &PortfolioConfig,
) -> PortfolioOutcome {
    let k = cfg.streams.max(1);
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
    } else {
        cfg.workers
    }
    .min(k)
    .max(1);
    let env = cfg.share_envelope.then(|| Arc::new(SharedEnvelope::new()));

    let slots: Vec<Mutex<Option<ImproveOutcome>>> = (0..k).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    spp_par::run_workers(workers, |_| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= k {
            break;
        }
        let icfg = ImproveConfig {
            seed: cfg.seed ^ splitmix_mix(i as u64),
            // Per-stream budget, armed at stream start (not portfolio
            // start): late-scheduled streams get their full budget.
            deadline: cfg.budget.map(|b| Instant::now() + b),
            max_rounds: cfg.max_rounds,
            stall_rounds: cfg.stall_rounds,
            envelope: env.clone(),
        };
        let res = improve(prec, seed_pl, &icfg);
        *slots[i].lock().expect("stream slot poisoned") = Some(res);
    });

    let outcomes: Vec<ImproveOutcome> = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("stream slot poisoned")
                .expect("every stream index is claimed exactly once")
        })
        .collect();
    let mut winner = 0usize;
    for (i, o) in outcomes.iter().enumerate().skip(1) {
        if o.makespan < outcomes[winner].makespan {
            winner = i;
        }
    }
    let mut out = PortfolioOutcome {
        placement: outcomes[winner].placement.clone(),
        makespan: outcomes[winner].makespan,
        seed_makespan: outcomes[winner].seed_makespan,
        winner,
        rounds: 0,
        improvements: 0,
        envelope_prunes: 0,
        converged: true,
        streams: Vec::with_capacity(k),
    };
    for (i, o) in outcomes.into_iter().enumerate() {
        out.rounds += o.rounds;
        out.improvements += o.improvements;
        out.envelope_prunes += o.envelope_prunes;
        out.converged &= o.converged;
        out.streams.push(StreamOutcome {
            stream: i,
            makespan: o.makespan,
            rounds: o.rounds,
            improvements: o.improvements,
            envelope_prunes: o.envelope_prunes,
            converged: o.converged,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_core::Instance;
    use spp_dag::Dag;

    fn towers() -> PrecInstance {
        // A deliberately bad seed exists: four 0.5-wide unit squares
        // stacked in one column (height 4) against OPT = 2.
        PrecInstance::unconstrained(
            Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0), (0.5, 1.0), (0.5, 1.0)]).unwrap(),
        )
    }

    fn stacked_seed(prec: &PrecInstance) -> Placement {
        let mut pl = Placement::zeroed(prec.len());
        let mut y = 0.0f64;
        for it in prec.inst.items() {
            pl.set(it.id, 0.0, y.max(it.release));
            y = pl.pos(it.id).y + it.h;
        }
        pl
    }

    #[test]
    fn improves_a_bad_seed_and_never_regresses() {
        let prec = towers();
        let seed = stacked_seed(&prec);
        let out = improve(&prec, &seed, &ImproveConfig::default());
        assert_eq!(out.seed_makespan, 4.0);
        assert!(out.makespan <= out.seed_makespan);
        assert!(out.improvements >= 1, "pairing squares must be found");
        spp_core::assert_close!(out.makespan, 2.0);
        prec.assert_valid(&out.placement);
        assert!(out.converged);
        assert!(out.gain() > 1.9);
    }

    #[test]
    fn deterministic_per_seed() {
        let prec = towers();
        let seed = stacked_seed(&prec);
        let cfg = ImproveConfig {
            seed: 1234,
            ..ImproveConfig::default()
        };
        let a = improve(&prec, &seed, &cfg);
        let b = improve(&prec, &seed, &cfg);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.improvements, b.improvements);
    }

    #[test]
    fn respects_precedence_and_release_floors() {
        // Chain 0 -> 1 with a released third item: any improvement must
        // keep 1 above 0 and 2 at or above its release.
        let inst =
            Instance::from_dims_release(&[(0.6, 1.0, 0.0), (0.6, 1.0, 0.0), (0.3, 1.0, 2.5)])
                .unwrap();
        let prec = PrecInstance::new(inst, Dag::new(3, &[(0, 1)]).unwrap());
        let seed = stacked_seed(&prec);
        let out = improve(&prec, &seed, &ImproveConfig::default());
        prec.assert_valid(&out.placement);
        assert!(out.makespan <= out.seed_makespan + 1e-12);
        assert!(out.placement.pos(2).y >= 2.5 - 1e-12);
    }

    #[test]
    fn zero_and_single_item_instances_are_fixed_points() {
        let empty = PrecInstance::unconstrained(Instance::from_dims(&[]).unwrap());
        let out = improve(&empty, &Placement::zeroed(0), &ImproveConfig::default());
        assert_eq!(out.rounds, 0);
        assert_eq!(out.makespan, 0.0);

        let one = PrecInstance::unconstrained(Instance::from_dims(&[(0.5, 1.0)]).unwrap());
        let seed = stacked_seed(&one);
        let out = improve(&one, &seed, &ImproveConfig::default());
        assert_eq!(out.rounds, 0);
        assert_eq!(out.placement, seed);
    }

    #[test]
    fn expired_deadline_returns_the_seed_unchanged() {
        let prec = towers();
        let seed = stacked_seed(&prec);
        let cfg = ImproveConfig {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..ImproveConfig::default()
        };
        let out = improve(&prec, &seed, &cfg);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.placement, seed);
        assert!(!out.converged);
    }

    /// Naive references for the mask rebuilds: exactly the pre-PR
    /// `retain` + `insert` code paths.
    fn naive_front(base: &[usize], chosen: &[usize]) -> Vec<usize> {
        let mut order = base.to_vec();
        order.retain(|v| !chosen.contains(v));
        for (i, &v) in chosen.iter().enumerate() {
            order.insert(i, v);
        }
        order
    }

    #[test]
    fn mask_front_rebuild_matches_naive_on_2k_order() {
        let n = 2000usize;
        let mut rng = SplitMix64::new(99);
        let mut base: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut base);
        let mut pool: Vec<usize> = (0..n).collect();
        let mut chosen = Vec::new();
        for _ in 0..subset_size(n) {
            let i = rng.next_below(pool.len() as u64) as usize;
            chosen.push(pool.swap_remove(i));
        }
        let mut mask = vec![false; n];
        let mut out = Vec::new();
        rebuild_front(&base, &chosen, &mut mask, &mut out);
        assert_eq!(out, naive_front(&base, &chosen));
        assert!(mask.iter().all(|&m| !m), "mask restored to all-false");
    }

    #[test]
    fn mask_scatter_rebuild_is_a_seeded_permutation() {
        let n = 2000usize;
        let mut rng = SplitMix64::new(7);
        let base: Vec<usize> = (0..n).collect();
        let chosen: Vec<usize> = (0..subset_size(n)).map(|i| i * 13 % n).collect();
        let mut mask = vec![false; n];
        let mut out = Vec::new();
        let mut r1 = SplitMix64::new(rng.next_u64());
        let mut r2 = r1.clone();
        rebuild_scatter(&base, &chosen, &mut r1, &mut mask, &mut out);
        // A permutation of 0..n…
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base);
        // …that preserves the relative order of both halves…
        let kept: Vec<usize> = out
            .iter()
            .copied()
            .filter(|v| !chosen.contains(v))
            .collect();
        let expect_kept: Vec<usize> = base
            .iter()
            .copied()
            .filter(|v| !chosen.contains(v))
            .collect();
        assert_eq!(kept, expect_kept);
        let placed: Vec<usize> = out.iter().copied().filter(|v| chosen.contains(v)).collect();
        assert_eq!(placed, chosen);
        // …and is deterministic per RNG state.
        let mut out2 = Vec::new();
        rebuild_scatter(&base, &chosen, &mut r2, &mut mask, &mut out2);
        assert_eq!(out, out2);
        assert!(mask.iter().all(|&m| !m));
    }

    #[test]
    fn band_index_matches_quadratic_occupancy() {
        // Old O(n²) reference, verbatim.
        fn quadratic(prec: &PrecInstance, pl: &Placement) -> Vec<f64> {
            let items = prec.inst.items();
            items
                .iter()
                .map(|a| {
                    let (y0, y1) = (pl.pos(a.id).y, pl.pos(a.id).y + a.h);
                    if a.h <= 0.0 {
                        return 1.0;
                    }
                    let mut covered = 0.0;
                    for b in items {
                        let (by0, by1) = (pl.pos(b.id).y, pl.pos(b.id).y + b.h);
                        let overlap = (y1.min(by1) - y0.max(by0)).max(0.0);
                        covered += b.w * overlap;
                    }
                    covered / a.h
                })
                .collect()
        }
        let mut rng = SplitMix64::new(5);
        let dims: Vec<(f64, f64)> = (0..60)
            .map(|_| (0.05 + rng.next_f64() * 0.4, 0.05 + rng.next_f64() * 0.9))
            .collect();
        let prec = PrecInstance::unconstrained(Instance::from_dims(&dims).unwrap());
        let pl = crate::skyline::skyline_pack(&prec.inst);
        let mut bands = BandIndex::default();
        bands.rebuild(&prec, &pl);
        let reference = quadratic(&prec, &pl);
        for (i, (&fast, &slow)) in bands.occupancy.iter().zip(reference.iter()).enumerate() {
            assert!(
                (fast - slow).abs() <= 1e-9,
                "item {i}: band index {fast} vs quadratic {slow}"
            );
        }
    }

    #[test]
    fn shared_envelope_min_reduces_over_observes() {
        let env = SharedEnvelope::new();
        assert_eq!(env.current(), f64::INFINITY);
        env.observe(3.0);
        env.observe(5.0);
        assert_eq!(env.current(), 3.0);
        env.observe(1.5);
        assert_eq!(env.current(), 1.5);
    }

    #[test]
    fn portfolio_single_stream_replays_improve_exactly() {
        let prec = towers();
        let seed = stacked_seed(&prec);
        let single = improve(
            &prec,
            &seed,
            &ImproveConfig {
                seed: 42,
                ..ImproveConfig::default()
            },
        );
        let port = improve_parallel(
            &prec,
            &seed,
            &PortfolioConfig {
                streams: 1,
                seed: 42,
                ..PortfolioConfig::default()
            },
        );
        assert_eq!(port.winner, 0);
        assert_eq!(port.placement, single.placement);
        assert_eq!(port.makespan.to_bits(), single.makespan.to_bits());
        assert_eq!(port.rounds, single.rounds);
    }

    #[test]
    fn portfolio_reduction_is_deterministic_across_worker_counts() {
        let prec = towers();
        let seed = stacked_seed(&prec);
        let mk = |workers| {
            improve_parallel(
                &prec,
                &seed,
                &PortfolioConfig {
                    streams: 4,
                    workers,
                    seed: 7,
                    ..PortfolioConfig::default()
                },
            )
        };
        let a = mk(1);
        let b = mk(4);
        assert!(a.converged && b.converged);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.rounds, b.rounds);
        for (sa, sb) in a.streams.iter().zip(b.streams.iter()) {
            assert_eq!(sa.makespan.to_bits(), sb.makespan.to_bits());
            assert_eq!(sa.rounds, sb.rounds);
        }
        spp_core::assert_close!(a.makespan, 2.0);
        prec.assert_valid(&a.placement);
    }

    #[test]
    fn shared_envelope_portfolio_still_finds_the_optimum() {
        let prec = towers();
        let seed = stacked_seed(&prec);
        let out = improve_parallel(
            &prec,
            &seed,
            &PortfolioConfig {
                streams: 4,
                share_envelope: true,
                seed: 11,
                ..PortfolioConfig::default()
            },
        );
        spp_core::assert_close!(out.makespan, 2.0);
        prec.assert_valid(&out.placement);
        assert_eq!(out.makespan, out.streams[out.winner].makespan);
    }
}
