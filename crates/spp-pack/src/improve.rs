//! Anytime improvement: remove-and-reinsert local search over any seed
//! placement, feasibility-aware for precedence edges and release times.
//!
//! The loop is the ruin-and-recreate scheme nesting solvers use (remove a
//! subset, re-insert, shrink the envelope, retry), adapted to the
//! constrained strip: instead of ruining *geometry* — which cannot be
//! partially rebuilt under a skyline contour — each round perturbs the
//! **insertion priority order** and re-decodes the whole instance through
//! a precedence/release-gated skyline best-fit. Decoding only ever emits
//! feasible placements (every item waits for its predecessors' tops and
//! its release floor), so the search space is exactly the feasible set
//! and the incumbent can be accepted on makespan alone.
//!
//! Two removal strategies alternate, both driven by one
//! [`SplitMix64`] stream so the whole search is a pure function of
//! [`ImproveConfig::seed`]:
//!
//! * **worst-waste bands** — the items whose horizontal band in the
//!   incumbent has the lowest occupancy (the most trapped whitespace)
//!   are pulled to the front of the order, in shuffled relative order;
//! * **random subset** — a seeded subset is removed from the order and
//!   re-inserted at seeded positions.
//!
//! Each round decodes under the incumbent's **makespan envelope**: the
//! moment a partial decode reaches the incumbent height the round is
//! abandoned (it cannot strictly improve). The incumbent is replaced
//! only on strict improvement, and mutations always restart from the
//! incumbent's own order, so the search never drifts away from its best.
//!
//! **Determinism contract.** The *sequence* of candidate placements is a
//! pure function of `(instance, seed placement, seed)`. The wall-clock
//! deadline only truncates that sequence; runs that reach convergence
//! (`stall_rounds` consecutive non-improving rounds) inside their budget
//! return bit-identical results on any machine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use spp_core::hash::SplitMix64;
use spp_core::Placement;
use spp_dag::PrecInstance;

use crate::skyline::Skyline;

/// Strict-improvement margin: a candidate must beat the incumbent by
/// more than this to be accepted (keeps float noise from masquerading as
/// progress and guarantees the accept sequence is machine-independent).
const IMPROVE_EPS: f64 = 1e-9;

/// Knobs of one improvement run.
#[derive(Debug, Clone)]
pub struct ImproveConfig {
    /// Stream seed; callers wanting content-addressed determinism pass
    /// `instance_digest ^ user_seed`.
    pub seed: u64,
    /// Wall-clock cutoff. `None` runs to convergence (or `max_rounds`).
    pub deadline: Option<Instant>,
    /// Hard cap on rounds, a backstop against pathological budgets.
    pub max_rounds: u64,
    /// Convergence: stop after this many consecutive rounds without a
    /// strict improvement.
    pub stall_rounds: u64,
}

impl Default for ImproveConfig {
    fn default() -> Self {
        ImproveConfig {
            seed: 0,
            deadline: None,
            max_rounds: 100_000,
            stall_rounds: 64,
        }
    }
}

/// Result of one improvement run. `placement` is the seed placement
/// itself whenever no candidate strictly improved it, so
/// `makespan ≤ seed_makespan` holds unconditionally.
#[derive(Debug, Clone)]
pub struct ImproveOutcome {
    pub placement: Placement,
    /// Height of `placement`.
    pub makespan: f64,
    /// Height of the seed placement the run started from.
    pub seed_makespan: f64,
    /// Rounds attempted (including abandoned decodes).
    pub rounds: u64,
    /// Rounds that strictly improved the incumbent.
    pub improvements: u64,
    /// True iff the run stopped on stall (not deadline/round cap), i.e.
    /// the result is the deterministic fixed point for this seed.
    pub converged: bool,
}

impl ImproveOutcome {
    /// Makespan removed relative to the seed placement (≥ 0).
    pub fn gain(&self) -> f64 {
        (self.seed_makespan - self.makespan).max(0.0)
    }
}

/// Item ids ordered by the placement's geometry (bottom-up, then left to
/// right, then id) — the canonical priority order a placement induces.
fn order_of(prec: &PrecInstance, pl: &Placement) -> Vec<usize> {
    let mut order: Vec<usize> = (0..prec.len()).collect();
    order.sort_by(|&a, &b| {
        let (pa, pb) = (pl.pos(a), pl.pos(b));
        pa.y.partial_cmp(&pb.y)
            .unwrap()
            .then(pa.x.partial_cmp(&pb.x).unwrap())
            .then(a.cmp(&b))
    });
    order
}

/// Decode a priority order into a feasible placement via skyline
/// best-fit: items become eligible only when every predecessor is
/// placed, eligible items are taken in priority-order rank, and each is
/// dropped at the lowest-leftmost position at or above its floor
/// (max of release time and predecessor tops). Returns `None` as soon as
/// the partial height reaches `envelope` — the candidate cannot strictly
/// beat the incumbent, so the rest of the decode is wasted work.
fn decode(prec: &PrecInstance, order: &[usize], envelope: f64) -> Option<(Placement, f64)> {
    let n = prec.len();
    let mut rank = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v] = i;
    }
    let mut floor: Vec<f64> = prec.inst.items().iter().map(|it| it.release).collect();
    let mut missing: Vec<usize> = (0..n).map(|v| prec.dag.in_degree(v)).collect();
    let mut ready: BinaryHeap<Reverse<(usize, usize)>> = (0..n)
        .filter(|&v| missing[v] == 0)
        .map(|v| Reverse((rank[v], v)))
        .collect();

    let mut pl = Placement::zeroed(n);
    let mut sky = Skyline::new();
    let mut top = 0.0f64;
    let mut placed = 0usize;
    while let Some(Reverse((_, v))) = ready.pop() {
        let it = prec.inst.item(v);
        let (x, y) = sky.best_position(it.w, floor[v]);
        top = top.max(y + it.h);
        if top >= envelope - IMPROVE_EPS {
            return None;
        }
        sky.place(x, y, it.w, it.h);
        pl.set(v, x, y);
        placed += 1;
        for &w in prec.dag.succs(v) {
            floor[w] = floor[w].max(y + it.h);
            missing[w] -= 1;
            if missing[w] == 0 {
                ready.push(Reverse((rank[w], w)));
            }
        }
    }
    debug_assert_eq!(placed, n, "DAG invariant: every item decodes");
    Some((pl, top))
}

/// Per-item occupancy of its horizontal band in `pl`: the fraction of
/// the band `[y, y+h)` covered by items (including itself). Low
/// occupancy marks the bands where whitespace is trapped — the items
/// the worst-waste strategy pulls forward. O(n²), fine at local-search
/// instance sizes.
fn band_occupancy(prec: &PrecInstance, pl: &Placement) -> Vec<f64> {
    let items = prec.inst.items();
    items
        .iter()
        .map(|a| {
            let (y0, y1) = (pl.pos(a.id).y, pl.pos(a.id).y + a.h);
            if a.h <= 0.0 {
                return 1.0;
            }
            let mut covered = 0.0;
            for b in items {
                let (by0, by1) = (pl.pos(b.id).y, pl.pos(b.id).y + b.h);
                let overlap = (y1.min(by1) - y0.max(by0)).max(0.0);
                covered += b.w * overlap;
            }
            covered / a.h
        })
        .collect()
}

/// The removal-subset size for an `n`-item instance: an eighth of the
/// instance, at least 2, never the whole thing.
fn subset_size(n: usize) -> usize {
    (n / 8).max(2).min(n)
}

/// Improve `seed_pl` by seeded remove-and-reinsert until the deadline,
/// the round cap, or convergence. See the module docs for the scheme and
/// the determinism contract.
pub fn improve(prec: &PrecInstance, seed_pl: &Placement, cfg: &ImproveConfig) -> ImproveOutcome {
    let seed_makespan = seed_pl.height(&prec.inst);
    let mut out = ImproveOutcome {
        placement: seed_pl.clone(),
        makespan: seed_makespan,
        seed_makespan,
        rounds: 0,
        improvements: 0,
        converged: true,
    };
    let n = prec.len();
    if n < 2 {
        return out;
    }

    let mut rng = SplitMix64::new(cfg.seed);
    let mut base_order = order_of(prec, seed_pl);
    // The seed solver may not be skyline-shaped at all; decoding its own
    // order is round 0's "identity" move and often already improves.
    let mut occupancy = band_occupancy(prec, &out.placement);
    let mut stall = 0u64;
    for round in 0..cfg.max_rounds {
        if cfg.deadline.is_some_and(|d| Instant::now() >= d) {
            out.converged = false;
            break;
        }
        out.rounds = round + 1;

        // Mutate a fresh copy of the incumbent's order; mutations never
        // accumulate, so every round is anchored to the best-so-far.
        let mut order = base_order.clone();
        if round == 0 {
            // identity: decode the incumbent's own order
        } else if round % 2 == 1 {
            // Worst-waste bands: pull the least-occupied items forward.
            let k = subset_size(n);
            let mut by_waste: Vec<usize> = (0..n).collect();
            by_waste.sort_by(|&a, &b| {
                occupancy[a]
                    .partial_cmp(&occupancy[b])
                    .unwrap()
                    .then(a.cmp(&b))
            });
            let mut chosen = by_waste[..k].to_vec();
            rng.shuffle(&mut chosen);
            order.retain(|v| !chosen.contains(v));
            for (i, v) in chosen.into_iter().enumerate() {
                order.insert(i, v);
            }
        } else {
            // Random subset, re-inserted at random positions.
            let k = subset_size(n);
            let mut pool: Vec<usize> = (0..n).collect();
            let mut chosen = Vec::with_capacity(k);
            for _ in 0..k {
                let i = rng.next_below(pool.len() as u64) as usize;
                chosen.push(pool.swap_remove(i));
            }
            order.retain(|v| !chosen.contains(v));
            for v in chosen {
                let at = rng.next_below(order.len() as u64 + 1) as usize;
                order.insert(at, v);
            }
        }

        match decode(prec, &order, out.makespan) {
            Some((pl, h)) if h < out.makespan - IMPROVE_EPS => {
                debug_assert!(prec.validate(&pl).is_ok(), "decode emitted infeasible");
                out.makespan = h;
                out.placement = pl;
                out.improvements += 1;
                base_order = order;
                occupancy = band_occupancy(prec, &out.placement);
                stall = 0;
            }
            _ => stall += 1,
        }
        if stall >= cfg.stall_rounds {
            break;
        }
    }
    if out.rounds == cfg.max_rounds && stall < cfg.stall_rounds {
        out.converged = false;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_core::Instance;
    use spp_dag::Dag;

    fn towers() -> PrecInstance {
        // A deliberately bad seed exists: four 0.5-wide unit squares
        // stacked in one column (height 4) against OPT = 2.
        PrecInstance::unconstrained(
            Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0), (0.5, 1.0), (0.5, 1.0)]).unwrap(),
        )
    }

    fn stacked_seed(prec: &PrecInstance) -> Placement {
        let mut pl = Placement::zeroed(prec.len());
        let mut y = 0.0f64;
        for it in prec.inst.items() {
            pl.set(it.id, 0.0, y.max(it.release));
            y = pl.pos(it.id).y + it.h;
        }
        pl
    }

    #[test]
    fn improves_a_bad_seed_and_never_regresses() {
        let prec = towers();
        let seed = stacked_seed(&prec);
        let out = improve(&prec, &seed, &ImproveConfig::default());
        assert_eq!(out.seed_makespan, 4.0);
        assert!(out.makespan <= out.seed_makespan);
        assert!(out.improvements >= 1, "pairing squares must be found");
        spp_core::assert_close!(out.makespan, 2.0);
        prec.assert_valid(&out.placement);
        assert!(out.converged);
        assert!(out.gain() > 1.9);
    }

    #[test]
    fn deterministic_per_seed() {
        let prec = towers();
        let seed = stacked_seed(&prec);
        let cfg = ImproveConfig {
            seed: 1234,
            ..ImproveConfig::default()
        };
        let a = improve(&prec, &seed, &cfg);
        let b = improve(&prec, &seed, &cfg);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.improvements, b.improvements);
    }

    #[test]
    fn respects_precedence_and_release_floors() {
        // Chain 0 -> 1 with a released third item: any improvement must
        // keep 1 above 0 and 2 at or above its release.
        let inst =
            Instance::from_dims_release(&[(0.6, 1.0, 0.0), (0.6, 1.0, 0.0), (0.3, 1.0, 2.5)])
                .unwrap();
        let prec = PrecInstance::new(inst, Dag::new(3, &[(0, 1)]).unwrap());
        let seed = stacked_seed(&prec);
        let out = improve(&prec, &seed, &ImproveConfig::default());
        prec.assert_valid(&out.placement);
        assert!(out.makespan <= out.seed_makespan + 1e-12);
        assert!(out.placement.pos(2).y >= 2.5 - 1e-12);
    }

    #[test]
    fn zero_and_single_item_instances_are_fixed_points() {
        let empty = PrecInstance::unconstrained(Instance::from_dims(&[]).unwrap());
        let out = improve(&empty, &Placement::zeroed(0), &ImproveConfig::default());
        assert_eq!(out.rounds, 0);
        assert_eq!(out.makespan, 0.0);

        let one = PrecInstance::unconstrained(Instance::from_dims(&[(0.5, 1.0)]).unwrap());
        let seed = stacked_seed(&one);
        let out = improve(&one, &seed, &ImproveConfig::default());
        assert_eq!(out.rounds, 0);
        assert_eq!(out.placement, seed);
    }

    #[test]
    fn expired_deadline_returns_the_seed_unchanged() {
        let prec = towers();
        let seed = stacked_seed(&prec);
        let cfg = ImproveConfig {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..ImproveConfig::default()
        };
        let out = improve(&prec, &seed, &cfg);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.placement, seed);
        assert!(!out.converged);
    }
}
