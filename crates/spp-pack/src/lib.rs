//! # spp-pack — unconstrained strip packing algorithms
//!
//! The `DC` algorithm of §2 uses, as a black box, any algorithm `A` for
//! strip packing *without* precedence constraints satisfying
//!
//! ```text
//! A(y, S') ≤ 2·AREA(S') + max_{s ∈ S'} h_s          (the "A-bound")
//! ```
//!
//! The paper cites Steinberg and Schiermeyer for this property. This crate
//! provides **NFDH** (Next-Fit Decreasing Height), which satisfies the same
//! inequality by the classic cross-shelf argument (re-proved in
//! [`mod@nfdh`]'s module docs and enforced by property tests), plus a family
//! of alternatives used for ablations and baselines:
//!
//! | algorithm | guarantee (height vs. `AREA`, `h_max`) |
//! |---|---|
//! | [`mod@nfdh`] | `≤ 2·AREA + h_max` (the A-bound) |
//! | [`mod@ffdh`] | `≤ 1.7·AREA + h_max` (Coffman–Garey–Johnson–Tarjan) |
//! | [`mod@bfdh`] | `≤ ffdh`-style shelf bound; best-fit variant |
//! | [`mod@sleator`] | proven `≤ 2·AREA + 1.5·h_max`; 2.5·OPT in the literature |
//! | [`mod@wsnf`] | `≤ 2·AREA + h_max` (the A-bound; wide-stack + NFDH) |
//! | [`mod@skyline`] | no worst-case guarantee; strong practical baseline |
//! | [`mod@online`] | online (Csirik–Woeginger shelves); constant-competitive |
//!
//! All algorithms return placements starting at `y = 0`; callers that need
//! `A(y, ·)` shift the result (placements are translation-invariant, which
//! is why `A(y, S')` is independent of `y` in the paper).

pub mod bfdh;
pub mod ffdh;
pub mod improve;
pub mod nfdh;
pub mod online;
pub mod rotate;
pub mod shelf;
pub mod skyline;
pub mod sleator;
pub mod traits;
pub mod wsnf;

pub use bfdh::bfdh;
pub use ffdh::ffdh;
pub use improve::{
    improve, improve_parallel, ImproveConfig, ImproveOutcome, PortfolioConfig, PortfolioOutcome,
    SharedEnvelope, StreamOutcome,
};
pub use nfdh::nfdh;
pub use online::{online_shelf_pack, OnlineShelfPacker};
pub use rotate::{pack_rotated, RotatedPacking};
pub use skyline::{skyline_pack, Skyline};
pub use sleator::sleator;
pub use traits::{Packer, StripPacker, ALL_PACKERS};
pub use wsnf::wsnf;
