//! Next-Fit Decreasing Height — the paper's subroutine `A`.
//!
//! # The A-bound
//!
//! `DC` (Algorithm 1 of the paper) requires an unconstrained packer with
//!
//! ```text
//! A(S') ≤ 2·AREA(S') + max_{s∈S'} h_s.
//! ```
//!
//! NFDH satisfies this. Proof (the classic cross-shelf argument): let the
//! shelves be `1..k` with heights `H_1 ≥ H_2 ≥ … ≥ H_k` (each shelf's
//! height is its first rectangle's height, and items are placed in
//! non-increasing height order). For `i < k`, the first rectangle of shelf
//! `i+1` (width `w'`, height `H_{i+1}`) did not fit on shelf `i`, so the
//! width used on shelf `i` satisfies `W_i + w' > 1`. Every rectangle on
//! shelf `i` has height `≥ H_{i+1}`, hence
//!
//! ```text
//! area(shelf i) + area(first of shelf i+1) ≥ H_{i+1}·(W_i + w') > H_{i+1}.
//! ```
//!
//! Summing over `i = 1..k−1`, each rectangle's area appears at most twice
//! (once as a member of its own shelf, once as a "first rectangle"), so
//! `Σ_{i=2}^{k} H_i < 2·AREA(S')`; adding `H_1 = h_max` gives the bound.
//! The property test below checks the inequality on random instances.

use crate::shelf::{decreasing_height_order, pack_shelves, ShelfPacking, ShelfPolicy};
use spp_core::{Instance, Placement};

/// Pack with NFDH, returning just the placement (starting at `y = 0`).
///
/// ```
/// use spp_core::Instance;
///
/// let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 0.7), (0.9, 0.4)]).unwrap();
/// let pl = spp_pack::nfdh(&inst);
/// spp_core::validate::assert_valid(&inst, &pl);
/// // the A-bound that DC's Theorem 2.3 consumes:
/// assert!(pl.height(&inst) <= 2.0 * inst.total_area() + inst.max_height() + 1e-9);
/// ```
pub fn nfdh(inst: &Instance) -> Placement {
    nfdh_shelves(inst).placement
}

/// Pack with NFDH, returning shelf metadata as well.
pub fn nfdh_shelves(inst: &Instance) -> ShelfPacking {
    let order = decreasing_height_order(inst);
    pack_shelves(inst, &order, ShelfPolicy::NextFit)
}

/// The proven upper bound `2·AREA + h_max` for NFDH on this instance.
pub fn a_bound(inst: &Instance) -> f64 {
    2.0 * inst.total_area() + inst.max_height()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_item() {
        let inst = Instance::from_dims(&[(0.7, 2.0)]).unwrap();
        let pl = nfdh(&inst);
        spp_core::validate::assert_valid(&inst, &pl);
        spp_core::assert_close!(pl.height(&inst), 2.0);
    }

    #[test]
    fn two_halves_share_a_shelf() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0)]).unwrap();
        spp_core::assert_close!(nfdh(&inst).height(&inst), 1.0);
    }

    #[test]
    fn unit_width_items_stack() {
        let inst = Instance::from_dims(&[(1.0, 1.0), (1.0, 2.0), (1.0, 0.5)]).unwrap();
        spp_core::assert_close!(nfdh(&inst).height(&inst), 3.5);
    }

    #[test]
    fn worst_case_vs_area_is_within_bound() {
        // Many slightly-over-half-width items: one per shelf.
        let items: Vec<(f64, f64)> = (0..20).map(|_| (0.51, 1.0)).collect();
        let inst = Instance::from_dims(&items).unwrap();
        let h = nfdh(&inst).height(&inst);
        spp_core::assert_close!(h, 20.0);
        assert!(h <= a_bound(&inst) + spp_core::eps::EPS);
    }

    #[test]
    fn height_zero_for_empty() {
        let inst = Instance::new(vec![]).unwrap();
        assert_eq!(nfdh(&inst).height(&inst), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// NFDH produces valid placements and obeys the A-bound.
        #[test]
        fn nfdh_valid_and_a_bounded(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 0..60)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let pl = nfdh(&inst);
            prop_assert!(spp_core::validate::validate(&inst, &pl).is_ok());
            let h = pl.height(&inst);
            prop_assert!(
                h <= a_bound(&inst) + 1e-9,
                "NFDH height {} exceeds A-bound {}", h, a_bound(&inst)
            );
        }

        /// Shelf heights are non-increasing and every item is on a shelf
        /// whose height dominates the item's height.
        #[test]
        fn nfdh_shelf_structure(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 1..40)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let sp = nfdh_shelves(&inst);
            for w in sp.shelves.windows(2) {
                prop_assert!(w[0].height >= w[1].height - spp_core::eps::EPS);
                spp_core::assert_close!(w[0].y + w[0].height, w[1].y);
            }
            for s in &sp.shelves {
                for &id in &s.items {
                    prop_assert!(inst.item(id).h <= s.height + spp_core::eps::EPS);
                }
            }
        }

        /// NFDH never does better than the area bound allows (sanity:
        /// height ≥ AREA and ≥ h_max for any valid packing).
        #[test]
        fn nfdh_respects_lower_bounds(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 1..40)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let h = nfdh(&inst).height(&inst);
            prop_assert!(h + 1e-9 >= inst.total_area());
            prop_assert!(h + 1e-9 >= inst.max_height());
        }
    }
}
