//! Online shelf packing (Csirik–Woeginger style).
//!
//! The paper's related work cites shelf algorithms for *online* strip
//! packing (Csirik & Woeginger, IPL 1997): rectangles arrive one at a
//! time and must be placed immediately and irrevocably. The classic
//! scheme buckets heights geometrically: a rectangle of height `h` goes
//! to a shelf of nominal height `r^k` where `r^{k+1} < h ≤ r^k`
//! (`0 < r < 1`), first-fit over the open shelves of that class, opening
//! a new shelf on top when none fits.
//!
//! Wasted height per shelf is bounded by the bucketing ratio `r`, which
//! is how the online competitive analysis goes through; this
//! implementation exposes the live height so the online-vs-offline gap
//! can be measured (experiment E13).

use spp_core::{Instance, Placement};

/// An online shelf packer with geometric height classes.
#[derive(Debug, Clone)]
pub struct OnlineShelfPacker {
    r: f64,
    /// open shelves: (height class exponent, y, used width, nominal height)
    shelves: Vec<OpenShelf>,
    top: f64,
}

#[derive(Debug, Clone)]
struct OpenShelf {
    class: i32,
    y: f64,
    used: f64,
}

impl OnlineShelfPacker {
    /// `r ∈ (0, 1)` is the bucketing ratio (heights are rounded up to the
    /// nearest power of `r`); `r ≈ 0.622` minimizes the classic
    /// competitive ratio, `r = 0.5` gives dyadic shelves.
    pub fn new(r: f64) -> Self {
        assert!(r > 0.0 && r < 1.0, "bucketing ratio must be in (0,1)");
        OnlineShelfPacker {
            r,
            shelves: Vec::new(),
            top: 0.0,
        }
    }

    /// Height class exponent of `h`: the unique k with
    /// `r^{k+1} < h ≤ r^k` (k may be negative for h > 1).
    fn class_of(&self, h: f64) -> i32 {
        // smallest k with r^k >= h  <=>  k <= log_r(h); log_r decreasing
        let k = (h.ln() / self.r.ln()).floor() as i32;
        // guard against boundary rounding
        let mut k = k;
        while self.r.powi(k) < h - spp_core::eps::EPS {
            k -= 1;
        }
        while self.r.powi(k + 1) >= h - spp_core::eps::EPS {
            k += 1;
        }
        k
    }

    /// Place one rectangle; returns its `(x, y)`.
    pub fn insert(&mut self, w: f64, h: f64) -> (f64, f64) {
        assert!(w > 0.0 && w <= 1.0 && h > 0.0);
        let class = self.class_of(h);
        // first fit among open shelves of this class
        for s in &mut self.shelves {
            if s.class == class && s.used + w <= 1.0 + spp_core::eps::EPS {
                let pos = (s.used, s.y);
                s.used += w;
                return pos;
            }
        }
        // open a new shelf of nominal height r^class at the top
        let nominal = self.r.powi(class);
        debug_assert!(h <= nominal + 1e-9, "item taller than its shelf class");
        let y = self.top;
        self.top += nominal;
        self.shelves.push(OpenShelf { class, y, used: w });
        (0.0, y)
    }

    /// Current total height (top of the highest shelf).
    pub fn height(&self) -> f64 {
        self.top
    }

    /// Number of shelves opened so far.
    pub fn shelf_count(&self) -> usize {
        self.shelves.len()
    }
}

/// Pack an instance online **in id order** (the arrival order), returning
/// the placement.
pub fn online_shelf_pack(inst: &Instance, r: f64) -> Placement {
    let mut packer = OnlineShelfPacker::new(r);
    let mut pl = Placement::zeroed(inst.len());
    for it in inst.items() {
        let (x, y) = packer.insert(it.w, it.h);
        pl.set(it.id, x, y);
    }
    pl
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_class_items_share_shelves() {
        let mut p = OnlineShelfPacker::new(0.5);
        // heights in (0.5, 1] share class 0 (nominal height 1)
        let (x0, y0) = p.insert(0.4, 0.9);
        let (x1, y1) = p.insert(0.4, 0.6);
        assert_eq!((x0, y0), (0.0, 0.0));
        assert_eq!(y1, 0.0);
        assert!(x1 > 0.0);
        assert_eq!(p.shelf_count(), 1);
        spp_core::assert_close!(p.height(), 1.0);
    }

    #[test]
    fn different_classes_get_different_shelves() {
        let mut p = OnlineShelfPacker::new(0.5);
        p.insert(0.4, 0.9); // class 0
        p.insert(0.4, 0.3); // class 1 (nominal 0.5)
        assert_eq!(p.shelf_count(), 2);
        spp_core::assert_close!(p.height(), 1.5);
    }

    #[test]
    fn full_shelf_opens_new_same_class() {
        let mut p = OnlineShelfPacker::new(0.5);
        p.insert(0.7, 1.0);
        let (_, y) = p.insert(0.7, 1.0);
        spp_core::assert_close!(y, 1.0);
        assert_eq!(p.shelf_count(), 2);
    }

    #[test]
    fn heights_above_one_are_supported() {
        let mut p = OnlineShelfPacker::new(0.5);
        p.insert(0.5, 1.7); // class -1 (nominal 2.0)
        spp_core::assert_close!(p.height(), 2.0);
    }

    #[test]
    fn class_boundaries_are_exact() {
        let p = OnlineShelfPacker::new(0.5);
        assert_eq!(p.class_of(1.0), 0);
        assert_eq!(p.class_of(0.51), 0);
        assert_eq!(p.class_of(0.5), 1);
        assert_eq!(p.class_of(0.25), 2);
        assert_eq!(p.class_of(2.0), -1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Online packing is always valid, for any bucketing ratio.
        #[test]
        fn online_always_valid(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 0..60),
            r in 0.3f64..0.9,
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let pl = online_shelf_pack(&inst, r);
            prop_assert!(spp_core::validate::validate(&inst, &pl).is_ok(),
                "{:?}", spp_core::validate::validate(&inst, &pl));
        }

        /// The bucketing waste is bounded: every item's shelf is at most
        /// a 1/r factor taller than the item.
        #[test]
        fn online_height_bounded_by_stack(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 1..60),
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let pl = online_shelf_pack(&inst, 0.5);
            // crude sanity: never worse than one dyadic shelf per item
            let bound: f64 = dims.iter().map(|d| 2.0 * d.1).sum();
            prop_assert!(pl.height(&inst) <= bound + 1e-9);
        }
    }
}
