//! 90°-rotation support (the Jansen–van Stee variant from the paper's
//! related work).
//!
//! Classic strip packing (and the paper) forbids rotation — stock
//! cutting has oriented patterns. Scheduling interpretations sometimes
//! allow a task to trade resource share for time, modeled as rotating
//! the rectangle by 90°. This module provides the standard heuristic
//! preprocessing: orient every rectangle *wide* (w ≥ h, when the rotated
//! width still fits the strip), which tends to help shelf algorithms,
//! then hand the oriented instance to any [`crate::StripPacker`].

use crate::traits::StripPacker;
use spp_core::{Instance, Item, Placement};

/// Result of packing with rotations.
#[derive(Debug, Clone)]
pub struct RotatedPacking {
    /// The oriented instance actually packed (same ids).
    pub oriented: Instance,
    /// Which items were rotated.
    pub rotated: Vec<bool>,
    /// Placement of the oriented instance.
    pub placement: Placement,
}

impl RotatedPacking {
    /// Height of the packing.
    pub fn height(&self) -> f64 {
        self.placement.height(&self.oriented)
    }
}

/// Orient every rectangle wide (`w ≥ h`) when legal (`h ≤ 1` so the
/// rotated rectangle still fits the strip), then pack.
pub fn pack_rotated(inst: &Instance, packer: &(impl StripPacker + ?Sized)) -> RotatedPacking {
    let mut rotated = vec![false; inst.len()];
    let items: Vec<Item> = inst
        .items()
        .iter()
        .map(|it| {
            if it.h > it.w && it.h <= 1.0 {
                rotated[it.id] = true;
                Item::with_release(it.id, it.h, it.w, it.release)
            } else {
                *it
            }
        })
        .collect();
    let oriented = Instance::new(items).expect("rotation keeps dims in range");
    let placement = packer.pack(&oriented);
    debug_assert!(spp_core::validate::validate(&oriented, &placement).is_ok());
    RotatedPacking {
        oriented,
        rotated,
        placement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Packer;
    use proptest::prelude::*;

    #[test]
    fn tall_items_are_rotated() {
        let inst = Instance::from_dims(&[(0.2, 0.9), (0.8, 0.1)]).unwrap();
        let r = pack_rotated(&inst, &Packer::Nfdh);
        assert!(r.rotated[0]);
        assert!(!r.rotated[1]);
        assert_eq!(r.oriented.item(0).w, 0.9);
        spp_core::assert_close!(r.oriented.item(0).h, 0.2);
    }

    #[test]
    fn too_tall_to_rotate_stays() {
        // height 1.5 > strip width 1: rotation illegal
        let inst = Instance::from_dims(&[(0.2, 1.5)]).unwrap();
        let r = pack_rotated(&inst, &Packer::Nfdh);
        assert!(!r.rotated[0]);
        assert_eq!(r.oriented.item(0).h, 1.5);
    }

    #[test]
    fn rotation_helps_tall_narrow_workloads() {
        // 8 tall slivers: unrotated NFDH stacks pairs... rotated they
        // become flat strips that share shelves much better.
        let dims: Vec<(f64, f64)> = (0..8).map(|_| (0.12, 0.96)).collect();
        let inst = Instance::from_dims(&dims).unwrap();
        let plain = crate::nfdh(&inst).height(&inst);
        let rot = pack_rotated(&inst, &Packer::Nfdh).height();
        assert!(
            rot <= plain + 1e-9,
            "rotation should not hurt here: {rot} > {plain}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn rotated_packings_are_valid(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 0..50)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let r = pack_rotated(&inst, &Packer::Ffdh);
            prop_assert!(
                spp_core::validate::validate(&r.oriented, &r.placement).is_ok()
            );
            // areas are preserved by rotation
            prop_assert!((r.oriented.total_area() - inst.total_area()).abs() < 1e-9);
        }
    }
}
