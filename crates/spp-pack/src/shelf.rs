//! Shelf machinery shared by the decreasing-height shelf algorithms.
//!
//! A *shelf* is a horizontal slice of the strip `[shelf.y, shelf.y +
//! shelf.height)` into which rectangles are placed left to right. The three
//! classic algorithms differ only in which open shelf receives the next
//! rectangle:
//!
//! * **next-fit** — only the most recently opened shelf is open;
//! * **first-fit** — all shelves stay open; take the lowest one that fits;
//! * **best-fit** — all shelves stay open; take the one with least residual
//!   width that fits.
//!
//! All three place items in non-increasing height order, so a shelf's
//! height is the height of its first rectangle, and every later rectangle
//! on it fits vertically.

use spp_core::{Instance, Placement};

/// Which open shelf receives each rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShelfPolicy {
    NextFit,
    FirstFit,
    BestFit,
}

/// A shelf under construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Shelf {
    /// Bottom y of the shelf.
    pub y: f64,
    /// Shelf height = height of its first (tallest) rectangle.
    pub height: f64,
    /// Total width already used.
    pub used: f64,
    /// Ids of the rectangles on this shelf, in placement order.
    pub items: Vec<usize>,
}

/// Result of a shelf packing: the placement plus per-shelf bookkeeping
/// (consumed by tests and by the uniform-height analysis of §2.2).
#[derive(Debug, Clone)]
pub struct ShelfPacking {
    pub placement: Placement,
    pub shelves: Vec<Shelf>,
}

impl ShelfPacking {
    /// Total height = top of the highest shelf. 0 if no shelves.
    pub fn height(&self) -> f64 {
        self.shelves.last().map_or(0.0, |s| s.y + s.height).max(0.0)
    }
}

/// Pack items in the given order onto shelves with the given policy.
///
/// `order` must be a permutation of item ids sorted so that heights are
/// non-increasing (the caller chooses the tie-breaking); this is asserted
/// in debug builds because shelf validity depends on it.
pub fn pack_shelves(inst: &Instance, order: &[usize], policy: ShelfPolicy) -> ShelfPacking {
    debug_assert!(
        order
            .windows(2)
            .all(|w| inst.item(w[0]).h >= inst.item(w[1]).h),
        "shelf packing requires non-increasing heights"
    );
    debug_assert_eq!(order.len(), inst.len());

    let mut placement = Placement::zeroed(inst.len());
    let mut shelves: Vec<Shelf> = Vec::new();
    let mut top = 0.0_f64; // y where the next new shelf would open

    for &id in order {
        let it = inst.item(id);
        // Choose a shelf index that can take width w, under the policy.
        let fits = |s: &Shelf| s.used + it.w <= 1.0 + spp_core::eps::EPS;
        let chosen: Option<usize> = match policy {
            ShelfPolicy::NextFit => shelves
                .last()
                .filter(|s| fits(s))
                .map(|_| shelves.len() - 1),
            ShelfPolicy::FirstFit => shelves.iter().position(fits),
            ShelfPolicy::BestFit => shelves
                .iter()
                .enumerate()
                .filter(|(_, s)| fits(s))
                .min_by(|(_, a), (_, b)| {
                    let ra = 1.0 - a.used - it.w;
                    let rb = 1.0 - b.used - it.w;
                    ra.partial_cmp(&rb).unwrap()
                })
                .map(|(i, _)| i),
        };
        match chosen {
            Some(i) => {
                let s = &mut shelves[i];
                placement.set(id, s.used, s.y);
                s.used += it.w;
                s.items.push(id);
            }
            None => {
                // open a new shelf at the current top
                let s = Shelf {
                    y: top,
                    height: it.h,
                    used: it.w,
                    items: vec![id],
                };
                placement.set(id, 0.0, top);
                top += it.h;
                shelves.push(s);
            }
        }
    }
    ShelfPacking { placement, shelves }
}

/// Item ids sorted by non-increasing height (ties by id for determinism).
pub fn decreasing_height_order(inst: &Instance) -> Vec<usize> {
    let mut order: Vec<usize> = (0..inst.len()).collect();
    order.sort_by(|&a, &b| {
        inst.item(b)
            .h
            .partial_cmp(&inst.item(a).h)
            .unwrap()
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::from_dims(&[
            (0.6, 1.0), // 0: tallest
            (0.5, 0.8), // 1
            (0.5, 0.8), // 2
            (0.4, 0.5), // 3
        ])
        .unwrap()
    }

    #[test]
    fn decreasing_order_sorts_heights() {
        let i = inst();
        let o = decreasing_height_order(&i);
        assert_eq!(o[0], 0);
        assert_eq!(o[3], 3);
        assert_eq!(o[1], 1); // tie broken by id
        assert_eq!(o[2], 2);
    }

    #[test]
    fn next_fit_closes_shelves() {
        let i = inst();
        let o = decreasing_height_order(&i);
        let p = pack_shelves(&i, &o, ShelfPolicy::NextFit);
        // 0 opens shelf0 (0.6 used); 1 does not fit (1.1) -> shelf1; 2 does
        // not fit with 1 (1.0 fits exactly!) 0.5+0.5=1.0 -> fits; 3 -> new.
        assert_eq!(p.shelves.len(), 3);
        assert_eq!(p.shelves[0].items, vec![0]);
        assert_eq!(p.shelves[1].items, vec![1, 2]);
        assert_eq!(p.shelves[2].items, vec![3]);
        spp_core::assert_close!(p.height(), 1.0 + 0.8 + 0.5);
        spp_core::validate::assert_valid(&i, &p.placement);
    }

    #[test]
    fn first_fit_reuses_low_shelf() {
        let i = inst();
        let o = decreasing_height_order(&i);
        let p = pack_shelves(&i, &o, ShelfPolicy::FirstFit);
        // 3 (w=0.4) fits back on shelf 0 next to 0 (0.6): first-fit takes it.
        assert_eq!(p.shelves[0].items, vec![0, 3]);
        assert_eq!(p.shelves.len(), 2);
        spp_core::assert_close!(p.height(), 1.0 + 0.8);
        spp_core::validate::assert_valid(&i, &p.placement);
    }

    #[test]
    fn best_fit_picks_tightest_shelf() {
        // shelf0 residual 0.4 after item0; shelf1 residual 0.5 after item1.
        let i = Instance::from_dims(&[(0.6, 1.0), (0.5, 0.9), (0.38, 0.5)]).unwrap();
        let o = decreasing_height_order(&i);
        let p = pack_shelves(&i, &o, ShelfPolicy::BestFit);
        // 0.38 fits both; best-fit prefers shelf0 (residual 0.02 < 0.12).
        assert_eq!(p.shelves[0].items, vec![0, 2]);
    }

    #[test]
    fn exact_full_width_fits() {
        let i = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0)]).unwrap();
        let p = pack_shelves(&i, &[0, 1], ShelfPolicy::NextFit);
        assert_eq!(p.shelves.len(), 1);
        spp_core::assert_close!(p.height(), 1.0);
    }

    #[test]
    fn empty_instance() {
        let i = Instance::new(vec![]).unwrap();
        let p = pack_shelves(&i, &[], ShelfPolicy::FirstFit);
        assert_eq!(p.height(), 0.0);
        assert!(p.shelves.is_empty());
    }

    #[test]
    fn shelf_metadata_consistent_with_placement() {
        let i = inst();
        let o = decreasing_height_order(&i);
        for policy in [
            ShelfPolicy::NextFit,
            ShelfPolicy::FirstFit,
            ShelfPolicy::BestFit,
        ] {
            let p = pack_shelves(&i, &o, policy);
            for s in &p.shelves {
                let mut used = 0.0;
                for &id in &s.items {
                    assert_eq!(p.placement.pos(id).y, s.y);
                    used += i.item(id).w;
                }
                spp_core::assert_close!(used, s.used);
                assert!(s.used <= 1.0 + spp_core::eps::EPS);
                // first item defines the height
                assert_eq!(i.item(s.items[0]).h, s.height);
            }
        }
    }
}
