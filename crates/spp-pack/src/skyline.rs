//! Skyline (bottom-left) packing.
//!
//! The *skyline* is the upper contour of the packed region: a sequence of
//! horizontal segments spanning the strip. Placing a rectangle of width
//! `w` at a candidate position costs the maximum segment height under its
//! span; the bottom-left rule picks the candidate minimizing `(y, x)`.
//!
//! Unlike shelf algorithms, skyline packing has no worst-case guarantee,
//! but it is the standard practical heuristic and gives `DC` a strong
//! ablation point. The [`Skyline`] structure itself is reused by the
//! precedence-aware greedy baseline (`spp-precedence::greedy`) through the
//! `min_y` parameter of [`Skyline::best_position`]: a task whose
//! predecessors finish at height `t` simply asks for a position with
//! `y ≥ t`.

use spp_core::{Instance, Placement};

/// One segment of the skyline: `[x, x + w)` at height `y`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub x: f64,
    pub w: f64,
    pub y: f64,
}

/// Reusable buffers for the hot-path operations. Living inside the
/// [`Skyline`] (rather than being reallocated per call) keeps the decode
/// inner loop of the anytime improvement search allocation-free once the
/// buffers have grown to their steady-state capacity.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Monotonic deque of segment indices for the sliding-window max of
    /// [`Skyline::best_position`] (front holds the tallest segment).
    deque: Vec<usize>,
    /// The next contour being assembled by [`Skyline::place`].
    build: Vec<Segment>,
    /// Right-of-span clips collected during the same pass.
    clips: Vec<Segment>,
}

/// The skyline contour over the unit strip.
#[derive(Debug, Clone)]
pub struct Skyline {
    segs: Vec<Segment>,
    scratch: Scratch,
}

impl Default for Skyline {
    fn default() -> Self {
        Self::new()
    }
}

/// Append `s` to an in-order contour, merging with the previous segment
/// when heights match and the segments are adjacent (the same
/// canonicalization the sort-based rebuild performed).
fn push_merged(out: &mut Vec<Segment>, s: Segment) {
    if let Some(last) = out.last_mut() {
        if spp_core::eps::approx_eq(last.y, s.y) && spp_core::eps::approx_eq(last.x + last.w, s.x) {
            last.w += s.w;
            return;
        }
    }
    out.push(s);
}

impl Skyline {
    /// Fresh skyline: one segment covering the whole strip at height 0.
    pub fn new() -> Self {
        Skyline {
            segs: vec![Segment {
                x: 0.0,
                w: 1.0,
                y: 0.0,
            }],
            scratch: Scratch::default(),
        }
    }

    /// Reset to the fresh flat contour, keeping all allocated capacity —
    /// the anytime decode loop resets one skyline per round instead of
    /// constructing a new one.
    pub fn reset(&mut self) {
        self.segs.clear();
        self.segs.push(Segment {
            x: 0.0,
            w: 1.0,
            y: 0.0,
        });
    }

    /// The segments, left to right (non-overlapping, covering `[0, 1]`).
    pub fn segments(&self) -> &[Segment] {
        &self.segs
    }

    /// Maximum skyline height over the span `[x, x + w)`.
    pub fn span_height(&self, x: f64, w: f64) -> f64 {
        let mut h: f64 = 0.0;
        for s in &self.segs {
            if spp_core::eps::intervals_overlap(s.x, s.x + s.w, x, x + w) {
                h = h.max(s.y);
            }
        }
        h
    }

    /// Best (lowest, then leftmost) position for a rectangle of width `w`
    /// with the extra constraint `y ≥ min_y`. Candidates are segment left
    /// edges (and `1 − w`, to allow right-flush placements).
    ///
    /// Candidate x's are nondecreasing, so the span `[x, x + w)` is a
    /// sliding window over the contour; a monotonic deque maintains the
    /// running max height in O(1) amortized per candidate. One sweep costs
    /// O(S) total where the per-candidate `span_height` rescan of
    /// [`Skyline::best_position_scan`] cost O(S²) — the difference is the
    /// whole decode kernel going from accidentally quadratic to linear.
    /// Candidate order, overlap tolerance, and tie-breaking are identical
    /// to the scan, so both return bit-identical positions (property
    /// tested below).
    ///
    /// Returns `(x, y)`.
    pub fn best_position(&mut self, w: f64, min_y: f64) -> (f64, f64) {
        let Skyline { segs, scratch } = self;
        let n = segs.len();
        let deque = &mut scratch.deque;
        deque.clear();
        let mut head = 0usize; // deque[head..] live, y strictly decreasing
        let mut lo = 0usize; // first segment overlapping the window
        let mut hi = 0usize; // one past the last admitted segment
        let mut best: Option<(f64, f64)> = None;
        let overlaps = |i: usize, x: f64| -> bool {
            spp_core::eps::intervals_overlap(segs[i].x, segs[i].x + segs[i].w, x, x + w)
        };
        let mut consider = |x: f64, span_h: f64| {
            let y = span_h.max(min_y);
            match best {
                None => best = Some((x, y)),
                Some((bx, by)) => {
                    if y < by - spp_core::eps::EPS
                        || (spp_core::eps::approx_eq(y, by) && x < bx - spp_core::eps::EPS)
                    {
                        best = Some((x, y));
                    }
                }
            }
        };
        // Raw candidates in nondecreasing clamped order: every segment
        // left edge, then the right-flush 1 − w.
        for c in 0..=n {
            let raw = if c < n { segs[c].x } else { 1.0 - w };
            if raw < -spp_core::eps::EPS || raw + w > 1.0 + spp_core::eps::EPS {
                continue;
            }
            let x = raw.max(0.0).min(1.0 - w);
            while hi < n && overlaps(hi, x) {
                while deque.len() > head && segs[*deque.last().unwrap()].y <= segs[hi].y {
                    deque.pop();
                }
                deque.push(hi);
                hi += 1;
            }
            while lo < hi && !overlaps(lo, x) {
                if deque.get(head) == Some(&lo) {
                    head += 1;
                }
                lo += 1;
            }
            let span_h = deque.get(head).map_or(0.0, |&i| segs[i].y);
            consider(x, span_h);
        }
        best.expect("width ≤ 1 always has a candidate")
    }

    /// The pre-optimization reference implementation of
    /// [`Skyline::best_position`]: a full `span_height` rescan per
    /// candidate, O(S²) per call. Kept (not cfg(test)-gated) as the
    /// differential-test oracle and as the E17 bench baseline the fast
    /// sweep is measured against.
    pub fn best_position_scan(&self, w: f64, min_y: f64) -> (f64, f64) {
        let mut best: Option<(f64, f64)> = None;
        let mut consider = |x: f64| {
            if x < -spp_core::eps::EPS || x + w > 1.0 + spp_core::eps::EPS {
                return;
            }
            let x = x.max(0.0).min(1.0 - w);
            let y = self.span_height(x, w).max(min_y);
            match best {
                None => best = Some((x, y)),
                Some((bx, by)) => {
                    if y < by - spp_core::eps::EPS
                        || (spp_core::eps::approx_eq(y, by) && x < bx - spp_core::eps::EPS)
                    {
                        best = Some((x, y));
                    }
                }
            }
        };
        for s in &self.segs {
            consider(s.x);
        }
        consider(1.0 - w);
        best.expect("width ≤ 1 always has a candidate")
    }

    /// Commit a rectangle of width `w`, height `h` at `(x, y)`: the skyline
    /// over `[x, x + w)` is raised to `y + h`.
    ///
    /// The caller must have obtained `(x, y)` from [`Skyline::best_position`]
    /// (or guarantee `y ≥ span_height(x, w)`), otherwise the placement
    /// would overlap previously committed rectangles; this is checked in
    /// debug builds.
    pub fn place(&mut self, x: f64, y: f64, w: f64, h: f64) {
        debug_assert!(
            spp_core::eps::approx_ge(y, self.span_height(x, w)),
            "skyline placement sinks below the contour"
        );
        let top = y + h;
        let (x0, x1) = (x, x + w);
        // Rebuild into the reusable scratch buffer, already in x-order:
        // left clips come first (segments are sorted and disjoint, so
        // their left portions are too), then the raised span at x0, then
        // the right clips (which all start at ≥ x1 > x0, nondecreasing).
        // This is the same contour the old sort-based rebuild produced,
        // bit for bit, without the per-call allocation and sort.
        let Skyline { segs, scratch } = self;
        let build = &mut scratch.build;
        let clips = &mut scratch.clips;
        build.clear();
        clips.clear();
        for s in segs.iter() {
            let (s0, s1) = (s.x, s.x + s.w);
            // part of s left of the span
            if s0 < x0 - spp_core::eps::EPS {
                let wleft = (s1.min(x0)) - s0;
                if wleft > spp_core::eps::EPS {
                    push_merged(
                        build,
                        Segment {
                            x: s0,
                            w: wleft,
                            y: s.y,
                        },
                    );
                }
            }
            // part of s right of the span
            if s1 > x1 + spp_core::eps::EPS {
                let start = s0.max(x1);
                let wright = s1 - start;
                if wright > spp_core::eps::EPS {
                    clips.push(Segment {
                        x: start,
                        w: wright,
                        y: s.y,
                    });
                }
            }
        }
        push_merged(
            build,
            Segment {
                x: x0,
                w: x1 - x0,
                y: top,
            },
        );
        for &clip in clips.iter() {
            push_merged(build, clip);
        }
        std::mem::swap(segs, build);
    }

    /// Current maximum height of the contour.
    pub fn max_height(&self) -> f64 {
        self.segs.iter().map(|s| s.y).fold(0.0, f64::max)
    }
}

/// Bottom-left skyline packing: sort by non-increasing height (ties by
/// non-increasing width then id) and drop each rectangle at its
/// bottom-left position.
pub fn skyline_pack(inst: &Instance) -> Placement {
    let mut order: Vec<usize> = (0..inst.len()).collect();
    order.sort_by(|&a, &b| {
        let (ia, ib) = (inst.item(a), inst.item(b));
        ib.h.partial_cmp(&ia.h)
            .unwrap()
            .then(ib.w.partial_cmp(&ia.w).unwrap())
            .then(a.cmp(&b))
    });
    let mut sky = Skyline::new();
    let mut pl = Placement::zeroed(inst.len());
    for &id in &order {
        let it = inst.item(id);
        let (x, y) = sky.best_position(it.w, 0.0);
        sky.place(x, y, it.w, it.h);
        pl.set(id, x, y);
    }
    pl
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_skyline_is_flat() {
        let sky = Skyline::new();
        assert_eq!(sky.segments().len(), 1);
        assert_eq!(sky.span_height(0.2, 0.5), 0.0);
        assert_eq!(sky.max_height(), 0.0);
    }

    #[test]
    fn place_raises_span_only() {
        let mut sky = Skyline::new();
        sky.place(0.0, 0.0, 0.4, 1.0);
        assert_eq!(sky.span_height(0.0, 0.4), 1.0);
        assert_eq!(sky.span_height(0.4, 0.6), 0.0);
        assert_eq!(sky.segments().len(), 2);
    }

    #[test]
    fn best_position_fills_valley() {
        let mut sky = Skyline::new();
        sky.place(0.0, 0.0, 0.3, 1.0);
        sky.place(0.7, 0.0, 0.3, 1.0);
        // valley [0.3, 0.7) at height 0
        let (x, y) = sky.best_position(0.4, 0.0);
        spp_core::assert_close!(x, 0.3);
        assert_eq!(y, 0.0);
        // too wide for the valley -> must go on top
        let (_, y2) = sky.best_position(0.5, 0.0);
        assert_eq!(y2, 1.0);
    }

    #[test]
    fn min_y_constraint_respected() {
        let mut sky = Skyline::new();
        let (_, y) = sky.best_position(0.5, 2.5);
        assert_eq!(y, 2.5);
    }

    #[test]
    fn reset_restores_the_flat_contour() {
        let mut sky = Skyline::new();
        sky.place(0.2, 0.0, 0.5, 1.3);
        assert!(sky.max_height() > 0.0);
        sky.reset();
        assert_eq!(sky.segments().len(), 1);
        assert_eq!(sky.max_height(), 0.0);
        assert_eq!(sky.span_height(0.0, 1.0), 0.0);
    }

    #[test]
    fn merging_keeps_contour_canonical() {
        let mut sky = Skyline::new();
        sky.place(0.0, 0.0, 0.5, 1.0);
        sky.place(0.5, 0.0, 0.5, 1.0);
        // both halves now at height 1 -> should merge to one segment
        assert_eq!(sky.segments().len(), 1);
        assert_eq!(sky.max_height(), 1.0);
    }

    #[test]
    fn segments_always_cover_unit_strip() {
        let mut sky = Skyline::new();
        for (x, y, w, h) in [
            (0.0, 0.0, 0.3, 1.0),
            (0.3, 0.0, 0.2, 0.5),
            (0.5, 0.0, 0.5, 0.2),
            (0.3, 0.5, 0.2, 0.7),
        ] {
            sky.place(x, y, w, h);
            let total: f64 = sky.segments().iter().map(|s| s.w).sum();
            spp_core::assert_close!(total, 1.0);
            for win in sky.segments().windows(2) {
                spp_core::assert_close!(win[0].x + win[0].w, win[1].x);
            }
        }
    }

    #[test]
    fn pack_perfect_square() {
        // four 0.5 x 0.5 squares tile a 1 x 1 region
        let inst = Instance::from_dims(&[(0.5, 0.5), (0.5, 0.5), (0.5, 0.5), (0.5, 0.5)]).unwrap();
        let pl = skyline_pack(&inst);
        spp_core::validate::assert_valid(&inst, &pl);
        spp_core::assert_close!(pl.height(&inst), 1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn skyline_pack_valid(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 0..60)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let pl = skyline_pack(&inst);
            prop_assert!(spp_core::validate::validate(&inst, &pl).is_ok(),
                "{:?}", spp_core::validate::validate(&inst, &pl));
        }

        /// Skyline never loses to pure stacking (height ≤ Σ h).
        #[test]
        fn skyline_no_worse_than_stacking(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 1..40)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let h = skyline_pack(&inst).height(&inst);
            let stack: f64 = dims.iter().map(|d| d.1).sum();
            prop_assert!(h <= stack + 1e-9);
        }

        /// The sweep and the O(S²) reference scan agree bit for bit on
        /// every query against every intermediate contour of a random
        /// packing — the sweep is an optimization, never a semantic
        /// change.
        #[test]
        fn sweep_matches_scan_bitwise(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 1..50),
            queries in proptest::collection::vec((0.01f64..1.0, 0.0f64..3.0), 1..12)
        ) {
            let mut sky = Skyline::new();
            for (w, h) in &dims {
                for &(qw, qy) in &queries {
                    let scan = sky.best_position_scan(qw, qy);
                    let sweep = sky.best_position(qw, qy);
                    prop_assert_eq!(scan.0.to_bits(), sweep.0.to_bits(),
                        "x diverged: scan {:?} sweep {:?}", scan, sweep);
                    prop_assert_eq!(scan.1.to_bits(), sweep.1.to_bits(),
                        "y diverged: scan {:?} sweep {:?}", scan, sweep);
                }
                let (x, y) = sky.best_position(*w, 0.0);
                sky.place(x, y, *w, *h);
            }
        }
    }
}
