//! Skyline (bottom-left) packing.
//!
//! The *skyline* is the upper contour of the packed region: a sequence of
//! horizontal segments spanning the strip. Placing a rectangle of width
//! `w` at a candidate position costs the maximum segment height under its
//! span; the bottom-left rule picks the candidate minimizing `(y, x)`.
//!
//! Unlike shelf algorithms, skyline packing has no worst-case guarantee,
//! but it is the standard practical heuristic and gives `DC` a strong
//! ablation point. The [`Skyline`] structure itself is reused by the
//! precedence-aware greedy baseline (`spp-precedence::greedy`) through the
//! `min_y` parameter of [`Skyline::best_position`]: a task whose
//! predecessors finish at height `t` simply asks for a position with
//! `y ≥ t`.

use spp_core::{Instance, Placement};

/// One segment of the skyline: `[x, x + w)` at height `y`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub x: f64,
    pub w: f64,
    pub y: f64,
}

/// The skyline contour over the unit strip.
#[derive(Debug, Clone)]
pub struct Skyline {
    segs: Vec<Segment>,
}

impl Default for Skyline {
    fn default() -> Self {
        Self::new()
    }
}

impl Skyline {
    /// Fresh skyline: one segment covering the whole strip at height 0.
    pub fn new() -> Self {
        Skyline {
            segs: vec![Segment {
                x: 0.0,
                w: 1.0,
                y: 0.0,
            }],
        }
    }

    /// The segments, left to right (non-overlapping, covering `[0, 1]`).
    pub fn segments(&self) -> &[Segment] {
        &self.segs
    }

    /// Maximum skyline height over the span `[x, x + w)`.
    pub fn span_height(&self, x: f64, w: f64) -> f64 {
        let mut h: f64 = 0.0;
        for s in &self.segs {
            if spp_core::eps::intervals_overlap(s.x, s.x + s.w, x, x + w) {
                h = h.max(s.y);
            }
        }
        h
    }

    /// Best (lowest, then leftmost) position for a rectangle of width `w`
    /// with the extra constraint `y ≥ min_y`. Candidates are segment left
    /// edges (and `1 − w`, to allow right-flush placements).
    ///
    /// Returns `(x, y)`.
    pub fn best_position(&self, w: f64, min_y: f64) -> (f64, f64) {
        let mut best: Option<(f64, f64)> = None;
        let mut consider = |x: f64| {
            if x < -spp_core::eps::EPS || x + w > 1.0 + spp_core::eps::EPS {
                return;
            }
            let x = x.max(0.0).min(1.0 - w);
            let y = self.span_height(x, w).max(min_y);
            match best {
                None => best = Some((x, y)),
                Some((bx, by)) => {
                    if y < by - spp_core::eps::EPS
                        || (spp_core::eps::approx_eq(y, by) && x < bx - spp_core::eps::EPS)
                    {
                        best = Some((x, y));
                    }
                }
            }
        };
        for s in &self.segs {
            consider(s.x);
        }
        consider(1.0 - w);
        best.expect("width ≤ 1 always has a candidate")
    }

    /// Commit a rectangle of width `w`, height `h` at `(x, y)`: the skyline
    /// over `[x, x + w)` is raised to `y + h`.
    ///
    /// The caller must have obtained `(x, y)` from [`Skyline::best_position`]
    /// (or guarantee `y ≥ span_height(x, w)`), otherwise the placement
    /// would overlap previously committed rectangles; this is checked in
    /// debug builds.
    pub fn place(&mut self, x: f64, y: f64, w: f64, h: f64) {
        debug_assert!(
            spp_core::eps::approx_ge(y, self.span_height(x, w)),
            "skyline placement sinks below the contour"
        );
        let top = y + h;
        let (x0, x1) = (x, x + w);
        let mut new_segs: Vec<Segment> = Vec::with_capacity(self.segs.len() + 2);
        for s in &self.segs {
            let (s0, s1) = (s.x, s.x + s.w);
            // part of s left of the span
            if s0 < x0 - spp_core::eps::EPS {
                let wleft = (s1.min(x0)) - s0;
                if wleft > spp_core::eps::EPS {
                    new_segs.push(Segment {
                        x: s0,
                        w: wleft,
                        y: s.y,
                    });
                }
            }
            // part of s right of the span
            if s1 > x1 + spp_core::eps::EPS {
                let start = s0.max(x1);
                let wright = s1 - start;
                if wright > spp_core::eps::EPS {
                    new_segs.push(Segment {
                        x: start,
                        w: wright,
                        y: s.y,
                    });
                }
            }
        }
        new_segs.push(Segment {
            x: x0,
            w: x1 - x0,
            y: top,
        });
        new_segs.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap());
        // merge adjacent segments at equal height
        let mut merged: Vec<Segment> = Vec::with_capacity(new_segs.len());
        for s in new_segs {
            if let Some(last) = merged.last_mut() {
                if spp_core::eps::approx_eq(last.y, s.y)
                    && spp_core::eps::approx_eq(last.x + last.w, s.x)
                {
                    last.w += s.w;
                    continue;
                }
            }
            merged.push(s);
        }
        self.segs = merged;
    }

    /// Current maximum height of the contour.
    pub fn max_height(&self) -> f64 {
        self.segs.iter().map(|s| s.y).fold(0.0, f64::max)
    }
}

/// Bottom-left skyline packing: sort by non-increasing height (ties by
/// non-increasing width then id) and drop each rectangle at its
/// bottom-left position.
pub fn skyline_pack(inst: &Instance) -> Placement {
    let mut order: Vec<usize> = (0..inst.len()).collect();
    order.sort_by(|&a, &b| {
        let (ia, ib) = (inst.item(a), inst.item(b));
        ib.h.partial_cmp(&ia.h)
            .unwrap()
            .then(ib.w.partial_cmp(&ia.w).unwrap())
            .then(a.cmp(&b))
    });
    let mut sky = Skyline::new();
    let mut pl = Placement::zeroed(inst.len());
    for &id in &order {
        let it = inst.item(id);
        let (x, y) = sky.best_position(it.w, 0.0);
        sky.place(x, y, it.w, it.h);
        pl.set(id, x, y);
    }
    pl
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_skyline_is_flat() {
        let sky = Skyline::new();
        assert_eq!(sky.segments().len(), 1);
        assert_eq!(sky.span_height(0.2, 0.5), 0.0);
        assert_eq!(sky.max_height(), 0.0);
    }

    #[test]
    fn place_raises_span_only() {
        let mut sky = Skyline::new();
        sky.place(0.0, 0.0, 0.4, 1.0);
        assert_eq!(sky.span_height(0.0, 0.4), 1.0);
        assert_eq!(sky.span_height(0.4, 0.6), 0.0);
        assert_eq!(sky.segments().len(), 2);
    }

    #[test]
    fn best_position_fills_valley() {
        let mut sky = Skyline::new();
        sky.place(0.0, 0.0, 0.3, 1.0);
        sky.place(0.7, 0.0, 0.3, 1.0);
        // valley [0.3, 0.7) at height 0
        let (x, y) = sky.best_position(0.4, 0.0);
        spp_core::assert_close!(x, 0.3);
        assert_eq!(y, 0.0);
        // too wide for the valley -> must go on top
        let (_, y2) = sky.best_position(0.5, 0.0);
        assert_eq!(y2, 1.0);
    }

    #[test]
    fn min_y_constraint_respected() {
        let sky = Skyline::new();
        let (_, y) = sky.best_position(0.5, 2.5);
        assert_eq!(y, 2.5);
    }

    #[test]
    fn merging_keeps_contour_canonical() {
        let mut sky = Skyline::new();
        sky.place(0.0, 0.0, 0.5, 1.0);
        sky.place(0.5, 0.0, 0.5, 1.0);
        // both halves now at height 1 -> should merge to one segment
        assert_eq!(sky.segments().len(), 1);
        assert_eq!(sky.max_height(), 1.0);
    }

    #[test]
    fn segments_always_cover_unit_strip() {
        let mut sky = Skyline::new();
        for (x, y, w, h) in [
            (0.0, 0.0, 0.3, 1.0),
            (0.3, 0.0, 0.2, 0.5),
            (0.5, 0.0, 0.5, 0.2),
            (0.3, 0.5, 0.2, 0.7),
        ] {
            sky.place(x, y, w, h);
            let total: f64 = sky.segments().iter().map(|s| s.w).sum();
            spp_core::assert_close!(total, 1.0);
            for win in sky.segments().windows(2) {
                spp_core::assert_close!(win[0].x + win[0].w, win[1].x);
            }
        }
    }

    #[test]
    fn pack_perfect_square() {
        // four 0.5 x 0.5 squares tile a 1 x 1 region
        let inst = Instance::from_dims(&[(0.5, 0.5), (0.5, 0.5), (0.5, 0.5), (0.5, 0.5)]).unwrap();
        let pl = skyline_pack(&inst);
        spp_core::validate::assert_valid(&inst, &pl);
        spp_core::assert_close!(pl.height(&inst), 1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn skyline_pack_valid(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 0..60)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let pl = skyline_pack(&inst);
            prop_assert!(spp_core::validate::validate(&inst, &pl).is_ok(),
                "{:?}", spp_core::validate::validate(&inst, &pl));
        }

        /// Skyline never loses to pure stacking (height ≤ Σ h).
        #[test]
        fn skyline_no_worse_than_stacking(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 1..40)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let h = skyline_pack(&inst).height(&inst);
            let stack: f64 = dims.iter().map(|d| d.1).sum();
            prop_assert!(h <= stack + 1e-9);
        }
    }
}
