//! Sleator's strip packing algorithm (1980), absolute ratio 2.5.
//!
//! Structure (following the standard description in the strip packing
//! heuristics literature):
//!
//! 1. every rectangle wider than ½ is stacked at the bottom of the strip,
//!    giving a stack of height `h0` (these can never sit side by side, so
//!    this wastes less than half the area: `h0 < 2·area(wide)`);
//! 2. the remaining rectangles are sorted by non-increasing height and a
//!    *first level* is packed left-to-right at `y = h0` until the next
//!    rectangle would not fit in the strip width;
//! 3. the region above is split into two half-width columns; repeatedly,
//!    a new level is opened (in sorted order, NFDH-style within the
//!    half-column width) on whichever column currently has the lower top.
//!
//! Every remaining rectangle has width ≤ ½ and so fits in a half-column.
//! Sleator proved `height ≤ 2.5·OPT`; on random workloads it beats NFDH
//! when wide rectangles dominate. It is included as an ablation subroutine
//! for `DC` (it satisfies the A-bound empirically — see the property test —
//! but we only *claim* the bound for NFDH, whose proof is in this repo).
//!
//! The engine registry advertises the proven envelope
//! `2·AREA + 1.5·h_max` for this implementation (wide stack ≤ 2·AREA_wide;
//! level-charging gives Σ level heights ≤ 4·AREA_narrow; opening levels on
//! the lower column bounds the final height by the column average plus
//! half a level) — see `adv_sleator` in `spp-engine` for the full sketch.
//! The literature's `2.5·OPT` is *not* advertised: OPT is not computable
//! from the engine's lower bounds, so it cannot be checked mechanically.

use spp_core::{Instance, Placement};

/// Pack with Sleator's algorithm (starting at `y = 0`).
pub fn sleator(inst: &Instance) -> Placement {
    let mut pl = Placement::zeroed(inst.len());

    // 1. Stack wide rectangles at the bottom.
    let mut h0 = 0.0;
    let mut narrow: Vec<usize> = Vec::new();
    for it in inst.items() {
        if it.w > 0.5 {
            pl.set(it.id, 0.0, h0);
            h0 += it.h;
        } else {
            narrow.push(it.id);
        }
    }
    // Sort narrow by non-increasing height (ties by id).
    narrow.sort_by(|&a, &b| {
        inst.item(b)
            .h
            .partial_cmp(&inst.item(a).h)
            .unwrap()
            .then(a.cmp(&b))
    });

    // 2. First level across the full width.
    let mut i = 0;
    let mut x = 0.0;
    let mut first_level_h = 0.0;
    while i < narrow.len() {
        let it = inst.item(narrow[i]);
        if x + it.w <= 1.0 + spp_core::eps::EPS {
            pl.set(it.id, x, h0);
            x += it.w;
            if first_level_h == 0.0 {
                first_level_h = it.h;
            }
            i += 1;
        } else {
            break;
        }
    }

    // 3. Two half-columns above the first level.
    let mut top = [h0 + first_level_h, h0 + first_level_h];
    const HALF: [f64; 2] = [0.0, 0.5];
    while i < narrow.len() {
        // open a level on the lower column
        let c = if top[0] <= top[1] { 0 } else { 1 };
        let level_y = top[c];
        let level_h = inst.item(narrow[i]).h; // tallest remaining
        let mut cx = HALF[c];
        while i < narrow.len() {
            let it = inst.item(narrow[i]);
            if cx + it.w <= HALF[c] + 0.5 + spp_core::eps::EPS {
                pl.set(it.id, cx, level_y);
                cx += it.w;
                i += 1;
            } else {
                break;
            }
        }
        top[c] = level_y + level_h;
    }
    pl
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wide_items_stack_at_bottom() {
        let inst = Instance::from_dims(&[(0.8, 1.0), (0.6, 2.0), (0.3, 0.5)]).unwrap();
        let pl = sleator(&inst);
        spp_core::validate::assert_valid(&inst, &pl);
        // The two wide ones occupy [0,3); the narrow one sits at y = 3.
        assert_eq!(pl.pos(0).y, 0.0);
        spp_core::assert_close!(pl.pos(1).y, 1.0);
        spp_core::assert_close!(pl.pos(2).y, 3.0);
    }

    #[test]
    fn all_narrow_uses_levels() {
        let inst =
            Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0), (0.4, 0.9), (0.4, 0.8), (0.4, 0.7)])
                .unwrap();
        let pl = sleator(&inst);
        spp_core::validate::assert_valid(&inst, &pl);
        // first level: items 0,1 side by side at y=0
        assert_eq!(pl.pos(0).y, 0.0);
        assert_eq!(pl.pos(1).y, 0.0);
        // remaining go into half-columns starting at y=1
        assert!(pl.pos(2).y >= 1.0 - spp_core::eps::EPS);
    }

    #[test]
    fn empty_and_single() {
        let e = Instance::new(vec![]).unwrap();
        assert_eq!(sleator(&e).height(&e), 0.0);
        let s = Instance::from_dims(&[(0.2, 3.0)]).unwrap();
        spp_core::assert_close!(sleator(&s).height(&s), 3.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn sleator_valid(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 0..60)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let pl = sleator(&inst);
            prop_assert!(spp_core::validate::validate(&inst, &pl).is_ok(),
                "{:?}", spp_core::validate::validate(&inst, &pl));
        }

        /// Empirical A-bound check (documented, not claimed): Sleator stays
        /// within 2·AREA + h_max on random instances.
        #[test]
        fn sleator_empirical_a_bound(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 1..60)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let h = sleator(&inst).height(&inst);
            prop_assert!(h <= 2.0 * inst.total_area() + inst.max_height() + 1e-9);
        }
    }
}
