//! The packing-algorithm abstraction consumed by `DC` and the harness.

use spp_core::{Instance, Placement};

/// A strip packing algorithm for unconstrained instances.
///
/// Implementations must return placements that
/// [`spp_core::validate::validate`] accepts and must start packing at the
/// strip base (`min_y == 0` for non-empty instances) so that callers can
/// translate the block wherever they need it.
pub trait StripPacker: Sync {
    /// Short stable identifier (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Pack `inst` into the unit strip starting at `y = 0`.
    fn pack(&self, inst: &Instance) -> Placement;

    /// True iff this algorithm provably satisfies the paper's subroutine
    /// contract `A(S') ≤ 2·AREA(S') + h_max(S')` required by `DC`.
    fn satisfies_a_bound(&self) -> bool {
        false
    }
}

/// Enum of the provided packers, convenient for CLI/bench parameterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Packer {
    Nfdh,
    Ffdh,
    Bfdh,
    Sleator,
    Skyline,
    Wsnf,
}

impl StripPacker for Packer {
    fn name(&self) -> &'static str {
        match self {
            Packer::Nfdh => "nfdh",
            Packer::Ffdh => "ffdh",
            Packer::Bfdh => "bfdh",
            Packer::Sleator => "sleator",
            Packer::Skyline => "skyline",
            Packer::Wsnf => "wsnf",
        }
    }

    fn pack(&self, inst: &Instance) -> Placement {
        match self {
            Packer::Nfdh => crate::nfdh(inst),
            Packer::Ffdh => crate::ffdh(inst),
            Packer::Bfdh => crate::bfdh(inst),
            Packer::Sleator => crate::sleator(inst),
            Packer::Skyline => crate::skyline_pack(inst),
            Packer::Wsnf => crate::wsnf(inst),
        }
    }

    fn satisfies_a_bound(&self) -> bool {
        // NFDH and WSNF: proofs in their module docs. The others only
        // satisfy the bound empirically and are used for ablations.
        matches!(self, Packer::Nfdh | Packer::Wsnf)
    }
}

/// All provided packers (for sweeps).
///
/// Name-based lookup lives in the engine's registry
/// (`spp_engine::Registry`), which covers *every* workspace algorithm —
/// the old `packer_by_name` free function (unconstrained packers only) was
/// subsumed by it.
pub const ALL_PACKERS: [Packer; 6] = [
    Packer::Nfdh,
    Packer::Ffdh,
    Packer::Bfdh,
    Packer::Sleator,
    Packer::Skyline,
    Packer::Wsnf,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        for (i, a) in ALL_PACKERS.iter().enumerate() {
            for b in &ALL_PACKERS[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn a_bound_flags() {
        assert!(Packer::Nfdh.satisfies_a_bound());
        assert!(Packer::Wsnf.satisfies_a_bound());
        assert!(!Packer::Skyline.satisfies_a_bound());
        assert!(!Packer::Sleator.satisfies_a_bound());
    }

    #[test]
    fn all_packers_produce_valid_min_zero_placements() {
        let inst =
            Instance::from_dims(&[(0.5, 1.0), (0.3, 0.7), (0.9, 0.2), (0.2, 1.5), (0.6, 0.4)])
                .unwrap();
        for p in ALL_PACKERS {
            let pl = p.pack(&inst);
            spp_core::validate::assert_valid(&inst, &pl);
            assert!(
                pl.min_y().abs() < 1e-12,
                "{} does not start at the base",
                p.name()
            );
        }
    }
}
