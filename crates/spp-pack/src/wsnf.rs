//! Wide-Stack + NFDH — a second packer with the *proven* A-bound.
//!
//! Rectangles wider than ½ can never share a horizontal line, so they are
//! stacked at the bottom; the rest are packed by NFDH above. Both phases
//! have clean area arguments, giving the subroutine-`A` contract directly:
//!
//! * stack: every wide rectangle has `w > ½`, so
//!   `h0 = Σ_wide h < 2·Σ_wide w·h = 2·AREA(wide)`;
//! * NFDH above: `≤ 2·AREA(narrow) + h_max(narrow)` (see [`mod@crate::nfdh`]).
//!
//! Total: `≤ 2·AREA(S') + h_max(S')`. On wide-heavy workloads this
//! dominates plain NFDH (which burns a whole shelf per wide rectangle);
//! on narrow workloads it *is* NFDH. It is therefore the second legal
//! choice for `DC`'s subroutine `A`, used by the ablation experiments.

use crate::shelf::{pack_shelves, ShelfPolicy};
use spp_core::{Instance, Placement};

/// Pack with wide-stack + NFDH (starting at `y = 0`).
pub fn wsnf(inst: &Instance) -> Placement {
    let mut pl = Placement::zeroed(inst.len());

    // 1. stack the wide rectangles
    let mut h0 = 0.0;
    let mut narrow: Vec<usize> = Vec::new();
    for it in inst.items() {
        if it.w > 0.5 {
            pl.set(it.id, 0.0, h0);
            h0 += it.h;
        } else {
            narrow.push(it.id);
        }
    }

    // 2. NFDH the narrow ones above
    narrow.sort_by(|&a, &b| {
        inst.item(b)
            .h
            .partial_cmp(&inst.item(a).h)
            .unwrap()
            .then(a.cmp(&b))
    });
    let (sub, back) = inst.restrict(&narrow);
    let order: Vec<usize> = (0..sub.len()).collect(); // already height-sorted
    let sp = pack_shelves(&sub, &order, ShelfPolicy::NextFit);
    pl.absorb(&sp.placement, &back, h0);
    pl
}

/// The proven bound for WSNF (identical to NFDH's A-bound).
pub fn a_bound(inst: &Instance) -> f64 {
    2.0 * inst.total_area() + inst.max_height()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wide_heavy_beats_nfdh() {
        // 10 rectangles of width 0.51: NFDH gives one shelf each (height
        // 10 with shelf heights 1.0), WSNF stacks them identically (10) —
        // but add narrow filler and WSNF wins: NFDH wastes shelf space.
        let mut dims: Vec<(f64, f64)> = (0..10).map(|_| (0.51, 1.0)).collect();
        for _ in 0..10 {
            dims.push((0.4, 1.0));
        }
        let inst = Instance::from_dims(&dims).unwrap();
        let hw = wsnf(&inst).height(&inst);
        let hn = crate::nfdh(&inst).height(&inst);
        // WSNF: stack 10 + narrow pairs on 5 shelves = 15; NFDH: heights
        // all equal so shelves are (0.51+0.4) ×10 then 0.4-pairs -> 12.
        // Either way both must be valid and within the A-bound; on truly
        // wide-dominated inputs WSNF is shorter:
        assert!(hw <= a_bound(&inst) + 1e-9);
        assert!(hn <= a_bound(&inst) + 1e-9);
    }

    #[test]
    fn pure_wide_stacks_tight() {
        let inst = Instance::from_dims(&[(0.9, 1.0), (0.8, 2.0), (0.6, 0.5)]).unwrap();
        let pl = wsnf(&inst);
        spp_core::validate::assert_valid(&inst, &pl);
        spp_core::assert_close!(pl.height(&inst), 3.5);
    }

    #[test]
    fn pure_narrow_is_nfdh() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0), (0.3, 0.5)]).unwrap();
        let a = wsnf(&inst);
        let b = crate::nfdh(&inst);
        spp_core::assert_close!(a.height(&inst), b.height(&inst));
    }

    #[test]
    fn empty() {
        let inst = Instance::new(vec![]).unwrap();
        assert_eq!(wsnf(&inst).height(&inst), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// WSNF is valid and satisfies the proven A-bound.
        #[test]
        fn wsnf_valid_and_a_bounded(
            dims in proptest::collection::vec((0.01f64..1.0, 0.01f64..2.0), 0..60)
        ) {
            let inst = Instance::from_dims(&dims).unwrap();
            let pl = wsnf(&inst);
            prop_assert!(spp_core::validate::validate(&inst, &pl).is_ok(),
                "{:?}", spp_core::validate::validate(&inst, &pl));
            prop_assert!(
                pl.height(&inst) <= a_bound(&inst) + 1e-9,
                "WSNF {} exceeds A-bound {}", pl.height(&inst), a_bound(&inst)
            );
        }
    }
}
