//! Steady-state allocation audit for the anytime decode loop.
//!
//! The improvement kernel promises that after startup (scratch buffers
//! sized, capacities ratcheted) each search round allocates nothing:
//! `DecodeScratch` reuses the rank/floor/missing/heap buffers, the
//! skyline builds its contour into swapped scratch vectors, and order
//! mutations rebuild through a mask into preallocated output. This test
//! holds the kernel to that promise with a counting global allocator:
//! two runs differing only in round count must perform *exactly* the
//! same number of allocations — the extra 500 rounds are free.
//!
//! This file deliberately contains a single test so nothing else runs
//! on the measuring thread between the two counted calls.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use spp_core::{Instance, Placement};
use spp_dag::PrecInstance;
use spp_pack::{improve, ImproveConfig};

struct CountingAlloc;

// Thread-local, not process-global: the libtest harness has threads of
// its own, and counting their incidental allocations would make the
// audit flaky. Only the measuring thread's allocations count.
thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// `try_with`: during thread teardown TLS may already be destroyed and
/// the allocator must still answer — uncounted, never panicking.
fn count() {
    let on = ENABLED.try_with(Cell::get).unwrap_or(false);
    if on {
        let _ = ALLOCS.try_with(|a| a.set(a.get() + 1));
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by one `improve` call at the given round count.
fn allocs_for_rounds(prec: &PrecInstance, seed: &Placement, rounds: u64) -> u64 {
    let cfg = ImproveConfig {
        seed: 1,
        deadline: None,
        max_rounds: rounds,
        // Never converge: every round up to the cap must execute, so the
        // two measurements differ in exactly (r2 - r1) steady rounds.
        stall_rounds: u64::MAX,
        envelope: None,
    };
    ALLOCS.with(|a| a.set(0));
    ENABLED.with(|e| e.set(true));
    let out = improve(prec, seed, &cfg);
    ENABLED.with(|e| e.set(false));
    assert_eq!(out.rounds, rounds, "round cap must be the stopper");
    assert_eq!(out.improvements, 0, "the seed is optimal by construction");
    ALLOCS.with(Cell::get)
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    // Full-width items: every feasible packing stacks them, so the
    // makespan is the height sum no matter the order — the seed is
    // optimal, no round can improve it, and the incumbent (whose
    // acceptance path legitimately clones the placement and rebuilds
    // the band index) never changes. What remains per round is exactly
    // the steady-state loop: mutate, decode, reject.
    let dims: Vec<(f64, f64)> = (0..48)
        .map(|i| (1.0, 0.2 + 0.01 * (i % 7) as f64))
        .collect();
    let prec = PrecInstance::unconstrained(Instance::from_dims(&dims).unwrap());
    let mut seed = Placement::zeroed(prec.len());
    let mut y = 0.0;
    for it in prec.inst.items() {
        seed.set(it.id, 0.0, y);
        y += it.h;
    }
    prec.assert_valid(&seed);

    // Warm run (capacity ratchet) happens inside both measurements'
    // first rounds identically — the runs share every prefix round.
    let short = allocs_for_rounds(&prec, &seed, 100);
    let long = allocs_for_rounds(&prec, &seed, 600);
    assert_eq!(
        long, short,
        "500 extra steady-state rounds must allocate zero times \
         (short run: {short} allocs, long run: {long} allocs)"
    );
    // Sanity: the counter itself works — startup does allocate.
    assert!(short > 0, "startup allocations should be visible");
}
