//! # spp-par — minimal fork–join parallelism over std scoped threads
//!
//! The workspace's allowed dependency set does not include `rayon`, so this
//! crate provides the three primitives the rest of the workspace needs,
//! built on [`std::thread::scope`] (scoped threads, so borrowed data
//! crosses the spawn boundary safely):
//!
//! * [`join`] — run two closures, potentially in parallel, return both
//!   results (used by the `DC` algorithm whose two recursive calls are
//!   independent);
//! * [`par_map`] — map a function over a slice with a bounded number of
//!   worker threads (used by the experiment harness and the engine's batch
//!   executor to sweep instances);
//! * [`par_map_capped`] — [`par_map`] with an explicit worker cap, for
//!   outer layers (the sharded batch executor) whose closures fan out
//!   again internally;
//! * [`par_chunks`] — lower-level chunked parallel-for;
//! * [`run_workers`] — a fixed-size pool of long-lived workers (used by
//!   the `spp-serve` HTTP front end's accept loop and the engine's
//!   pull-based work drivers);
//! * [`retry`] — bounded retry with a fixed inter-attempt delay, for
//!   transient faults at process seams (HTTP cache round trips, work
//!   dispatcher calls).
//!
//! Depth/size cut-offs keep thread creation from swamping small work items:
//! `join` only forks while a global in-flight-fork budget (≈ number of
//! cores) is available, and `par_map` never spawns more workers than items.
//!
//! Everything falls back to sequential execution when parallelism is
//! unavailable or unprofitable, so results are *identical* either way —
//! callers must only pass deterministic closures. `par_map` in particular
//! returns results in input order regardless of which worker computed what.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global budget of outstanding forks. Initialized lazily to the number of
/// available cores. When exhausted, [`join`] runs sequentially.
static FORK_BUDGET: AtomicUsize = AtomicUsize::new(usize::MAX);

fn init_budget() -> usize {
    let cur = FORK_BUDGET.load(Ordering::Relaxed);
    if cur != usize::MAX {
        return cur;
    }
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    // Budget of forks, not threads: each fork adds one extra thread.
    let budget = cores.saturating_sub(1);
    let _ = FORK_BUDGET.compare_exchange(usize::MAX, budget, Ordering::Relaxed, Ordering::Relaxed);
    FORK_BUDGET.load(Ordering::Relaxed)
}

fn try_acquire_fork() -> bool {
    init_budget();
    let mut cur = FORK_BUDGET.load(Ordering::Relaxed);
    while cur > 0 && cur != usize::MAX {
        match FORK_BUDGET.compare_exchange_weak(cur, cur - 1, Ordering::Acquire, Ordering::Relaxed)
        {
            Ok(_) => return true,
            Err(c) => cur = c,
        }
    }
    false
}

fn release_fork() {
    FORK_BUDGET.fetch_add(1, Ordering::Release);
}

/// Returns an acquired fork slot on drop — the drop runs during unwinding
/// too, so a panicking closure cannot permanently shrink the budget and
/// silently degrade the whole process toward sequential execution.
struct ForkGuard;

impl Drop for ForkGuard {
    fn drop(&mut self) {
        release_fork();
    }
}

/// Run `a` and `b`, in parallel when a fork slot is available, and return
/// both results. Panics in either closure propagate; the fork slot is
/// released either way.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if !try_acquire_fork() {
        return (a(), b());
    }
    let _slot = ForkGuard;
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("join: right closure panicked");
        (ra, rb)
    })
}

/// Parallel map over a slice: applies `f` to every element, preserving
/// order. Spawns at most `min(items, cores)` workers; falls back to a
/// sequential map for tiny inputs.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_capped(items, usize::MAX, f)
}

/// [`par_map`] with an explicit worker cap (still also capped at core
/// count and item count).
///
/// Use this for *outer* parallel layers whose closures are themselves
/// parallel — e.g. the engine's sharded batch executor runs shards
/// through here with a small cap, because every shard fans out again via
/// `par_map` inside `run_batch`; an uncapped outer layer would multiply
/// the two worker pools. A cap of 1 gives the exact sequential execution.
pub fn par_map_capped<T: Sync, R: Send>(
    items: &[T],
    cap: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let workers = cores.min(items.len()).min(cap.max(1));
    if workers <= 1 || items.len() < 4 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    // Each worker claims indices from the shared counter and returns its
    // (index, result) pairs; the pairs are then scattered back into input
    // order, so the output is deterministic however work was distributed.
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut acc = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        acc.push((i, f(&items[i])));
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map: worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("par_map: slot never filled"))
        .collect()
}

/// Parallel for over disjoint chunks of a mutable slice; `f` receives the
/// chunk index and the chunk. Used for initializing large buffers.
///
/// Workers are bounded at `available_parallelism` (like [`par_map_capped`]):
/// chunks are dealt round-robin to at most that many threads, so a large
/// buffer with a small chunk size costs `min(cores, chunks)` threads, not
/// one per chunk.
pub fn par_chunks<T: Send>(data: &mut [T], chunk: usize, f: impl Fn(usize, &mut [T]) + Sync) {
    assert!(chunk > 0, "chunk size must be positive");
    if data.len() <= chunk {
        f(0, data);
        return;
    }
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk).enumerate().collect();
    let workers = cores.min(chunks.len());
    // Deal chunks round-robin into one bucket per worker; each worker owns
    // its bucket's (disjoint) chunks, so no synchronization is needed.
    let mut buckets: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (n, entry) in chunks.into_iter().enumerate() {
        buckets[n % workers].push(entry);
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            let f = &f;
            scope.spawn(move || {
                for (i, c) in bucket {
                    f(i, c);
                }
            });
        }
    });
}

/// Call `f` up to `attempts` times, sleeping `delay` between attempts,
/// until it returns `Ok`. The bounded-retry primitive for transient
/// faults at process seams (a reset connection to the cache server, a
/// dispatcher mid-restart): one quick retry usually rides out the blip,
/// and the *bounded* budget keeps a hard failure loud instead of
/// becoming an unbounded hang. The final error is returned unchanged.
///
/// `attempts` is clamped to at least 1; `f` receives the 0-based attempt
/// index (callers can log or vary behavior on retries).
pub fn retry<T, E>(
    attempts: usize,
    delay: std::time::Duration,
    mut f: impl FnMut(usize) -> Result<T, E>,
) -> Result<T, E> {
    let attempts = attempts.max(1);
    let mut last = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(delay);
        }
        match f(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("attempts >= 1 ran the closure at least once"))
}

/// Run `workers` long-lived worker threads, each calling `f(worker_index)`,
/// and block until all of them return. The fixed-size pool primitive for
/// services (e.g. an accept loop handling connections): concurrency is
/// bounded by construction, and a panicking worker propagates after the
/// others finish instead of being silently lost.
pub fn run_workers(workers: usize, f: impl Fn(usize) + Sync) {
    let workers = workers.max(1);
    if workers == 1 {
        f(0);
        return;
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let f = &f;
                scope.spawn(move || f(i))
            })
            .collect();
        for h in handles {
            h.join().expect("run_workers: worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn join_nests_deeply_without_deadlock() {
        // Recursion far deeper than the core count must still finish:
        // exhausted budget degrades to sequential execution.
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 1_000 {
                (lo..hi).sum()
            } else {
                let mid = (lo + hi) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 1_000_000), 499_999_500_000);
    }

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys = par_map(&xs, |&x| x * x);
        for (i, y) in ys.iter().enumerate() {
            assert_eq!(*y, (i * i) as u64);
        }
    }

    #[test]
    fn par_map_capped_matches_uncapped() {
        let xs: Vec<u64> = (0..200).collect();
        let want: Vec<u64> = xs.iter().map(|&x| x * 3 + 1).collect();
        for cap in [1, 2, 3, usize::MAX] {
            assert_eq!(par_map_capped(&xs, cap, |&x| x * 3 + 1), want, "cap {cap}");
        }
        // cap 0 is clamped to 1 (sequential), not a panic
        assert_eq!(par_map_capped(&xs, 0, |&x| x * 3 + 1), want);
    }

    #[test]
    fn par_map_tiny_input() {
        let xs = [1, 2, 3];
        assert_eq!(par_map(&xs, |&x| x + 1), vec![2, 3, 4]);
        let empty: [i32; 0] = [];
        assert!(par_map(&empty, |&x| x).is_empty());
    }

    #[test]
    fn par_map_matches_sequential_on_random_work() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..500).map(|_| rng.gen_range(0.0..1.0)).collect();
        let seq: Vec<f64> = xs.iter().map(|x| (x * 17.0).sin()).collect();
        let par = par_map(&xs, |x| (x * 17.0).sin());
        assert_eq!(seq, par);
    }

    #[test]
    fn par_chunks_touches_every_element() {
        let mut data = vec![0u32; 1037];
        par_chunks(&mut data, 100, |i, c| {
            for x in c.iter_mut() {
                *x = i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&x| x > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[1036], 11);
    }

    #[test]
    fn budget_is_restored_after_joins() {
        init_budget();
        let before = FORK_BUDGET.load(Ordering::Relaxed);
        for _ in 0..100 {
            let _ = join(|| 1, || 2);
        }
        assert_eq!(FORK_BUDGET.load(Ordering::Relaxed), before);
    }

    #[test]
    fn budget_is_restored_when_a_join_closure_panics() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        init_budget();
        let before = FORK_BUDGET.load(Ordering::Relaxed);
        if before == 0 {
            return; // single-core runner: join never forks, nothing to leak
        }
        // Panics on either side, repeated more times than the whole
        // budget: a leaked slot per panic would drain it to zero and pin
        // the process sequential.
        for i in 0..(before + 3) {
            let left = i % 2 == 0;
            let r = catch_unwind(AssertUnwindSafe(|| {
                join(
                    || {
                        if left {
                            panic!("left")
                        }
                        1
                    },
                    || {
                        if !left {
                            panic!("right")
                        }
                        2
                    },
                )
            }));
            assert!(r.is_err());
        }
        assert_eq!(
            FORK_BUDGET.load(Ordering::Relaxed),
            before,
            "panicking joins leaked fork slots"
        );
        // And join still works (and can still fork) afterwards.
        assert_eq!(join(|| 20, || 22), (20, 22));
    }

    #[test]
    fn par_chunks_bounds_concurrent_workers() {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        // 2048 chunks of 1 element; pre-fix this spawned 2048 threads.
        let mut data = vec![0u32; 2048];
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        par_chunks(&mut data, 1, |i, c| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            for x in c.iter_mut() {
                *x = i as u32 + 1;
            }
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(data.iter().all(|&x| x > 0));
        assert_eq!(data[2047], 2048);
        assert!(
            peak.load(Ordering::SeqCst) <= cores,
            "peak {} workers exceeds {} cores",
            peak.load(Ordering::SeqCst),
            cores
        );
    }

    #[test]
    fn retry_returns_first_success_and_last_error() {
        use std::time::Duration;
        // Immediate success: one call, no sleeping.
        let calls = AtomicUsize::new(0);
        let r: Result<u32, &str> = retry(3, Duration::ZERO, |_| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(7)
        });
        assert_eq!(r, Ok(7));
        assert_eq!(calls.load(Ordering::SeqCst), 1);

        // Succeeds on the second attempt.
        let r: Result<u32, String> = retry(3, Duration::ZERO, |attempt| {
            if attempt == 0 {
                Err("transient".to_string())
            } else {
                Ok(attempt as u32)
            }
        });
        assert_eq!(r, Ok(1));

        // Exhausted attempts return the last error, and the budget is
        // respected exactly.
        let calls = AtomicUsize::new(0);
        let r: Result<u32, usize> = retry(3, Duration::ZERO, |attempt| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(attempt)
        });
        assert_eq!(r, Err(2));
        assert_eq!(calls.load(Ordering::SeqCst), 3);

        // attempts = 0 clamps to one call, not a panic.
        let r: Result<u32, &str> = retry(0, Duration::ZERO, |_| Err("x"));
        assert_eq!(r, Err("x"));
    }

    #[test]
    fn run_workers_runs_every_index_and_bounds_the_pool() {
        let seen = std::sync::Mutex::new(Vec::new());
        run_workers(5, |i| {
            seen.lock().unwrap().push(i);
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        // workers = 0 clamps to one inline call, not a panic.
        let count = AtomicUsize::new(0);
        run_workers(0, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }
}
