//! Precedence-constrained bin packing (the §2.2 reduction target).
//!
//! Tasks with sizes in `(0, 1]` and a partial order go into a sequence of
//! unit bins; an edge `(a, b)` forces `bin(a) < bin(b)`. Uniform-height
//! precedence strip packing is equivalent (bins = shelves; §2.2 shows any
//! placement converts to a shelf placement for free).
//!
//! Algorithms:
//!
//! * [`next_fit_prec`] — the bin view of shelf algorithm `F`
//!   (FIFO queue, head blocking): absolute 3-approximation (Theorem 2.6);
//! * [`first_fit_prec`] — the Garey–Graham–Johnson–Yao-style *level*
//!   algorithm: fill the current bin first-fit-decreasing over all
//!   available tasks before closing. GGJY's analysis (resource-constrained
//!   scheduling with one resource) gives an asymptotic 2.7-approximation,
//!   which §2.2 transfers to uniform-height strip packing.

use spp_core::Placement;
use spp_dag::{Dag, PrecInstance};

/// A bin assignment: `bins[b]` lists the task ids in bin `b`.
pub type Bins = Vec<Vec<usize>>;

/// Validate a bin assignment: every task exactly once, capacity respected,
/// precedence strictly increasing across bins.
pub fn validate_bins(sizes: &[f64], dag: &Dag, bins: &Bins) -> Result<(), String> {
    let n = sizes.len();
    let mut bin_of = vec![usize::MAX; n];
    for (b, tasks) in bins.iter().enumerate() {
        let mut used = 0.0;
        for &t in tasks {
            if t >= n {
                return Err(format!("task {t} out of range"));
            }
            if bin_of[t] != usize::MAX {
                return Err(format!("task {t} appears twice"));
            }
            bin_of[t] = b;
            used += sizes[t];
        }
        if used > 1.0 + spp_core::eps::EPS {
            return Err(format!("bin {b} overfull: {used}"));
        }
    }
    if let Some(t) = bin_of.iter().position(|&b| b == usize::MAX) {
        return Err(format!("task {t} unassigned"));
    }
    for (u, v) in dag.edges() {
        if bin_of[u] >= bin_of[v] {
            return Err(format!(
                "edge ({u},{v}) violated: bins {} >= {}",
                bin_of[u], bin_of[v]
            ));
        }
    }
    Ok(())
}

/// Next-fit with a FIFO availability queue — the bin-packing view of shelf
/// algorithm `F` (see [`crate::uniform`]).
pub fn next_fit_prec(sizes: &[f64], dag: &Dag) -> Bins {
    let n = sizes.len();
    assert_eq!(dag.len(), n);
    let mut closed = vec![false; n];
    let mut queued = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let refill =
        |closed: &[bool], queued: &mut [bool], queue: &mut std::collections::VecDeque<usize>| {
            for v in 0..n {
                if !queued[v] && !closed[v] && dag.preds(v).iter().all(|&p| closed[p]) {
                    queued[v] = true;
                    queue.push_back(v);
                }
            }
        };
    refill(&closed, &mut queued, &mut queue);

    let mut bins: Bins = Vec::new();
    let mut placed = 0;
    while placed < n {
        let mut bin = Vec::new();
        let mut used = 0.0;
        while let Some(&head) = queue.front() {
            if used + sizes[head] <= 1.0 + spp_core::eps::EPS {
                queue.pop_front();
                used += sizes[head];
                bin.push(head);
                placed += 1;
            } else {
                break;
            }
        }
        for &v in &bin {
            closed[v] = true;
        }
        bins.push(bin);
        refill(&closed, &mut queued, &mut queue);
    }
    bins
}

/// GGJY-style level algorithm: the current bin greedily takes available
/// tasks in non-increasing size order (first-fit-decreasing within the
/// level); the bin closes when no available task fits; tasks only become
/// available when all predecessors are in *closed* bins.
pub fn first_fit_prec(sizes: &[f64], dag: &Dag) -> Bins {
    let n = sizes.len();
    assert_eq!(dag.len(), n);
    let mut closed = vec![false; n];
    let mut in_bin = vec![false; n];
    let mut bins: Bins = Vec::new();
    let mut placed = 0;
    while placed < n {
        // available for this bin
        let mut avail: Vec<usize> = (0..n)
            .filter(|&v| !closed[v] && !in_bin[v] && dag.preds(v).iter().all(|&p| closed[p]))
            .collect();
        // non-increasing size, ties by id
        avail.sort_by(|&a, &b| sizes[b].partial_cmp(&sizes[a]).unwrap().then(a.cmp(&b)));
        let mut bin = Vec::new();
        let mut used = 0.0;
        for v in avail {
            if used + sizes[v] <= 1.0 + spp_core::eps::EPS {
                used += sizes[v];
                in_bin[v] = true;
                bin.push(v);
                placed += 1;
            }
        }
        debug_assert!(
            !bin.is_empty(),
            "some available task always fits an empty bin"
        );
        for &v in &bin {
            closed[v] = true;
            in_bin[v] = false;
        }
        bins.push(bin);
    }
    bins
}

/// Render a bin assignment as a uniform-height strip placement (bin `b`
/// becomes shelf `b`, items laid left to right).
pub fn bins_to_placement(prec: &PrecInstance, bins: &Bins) -> Placement {
    let h = prec
        .inst
        .uniform_height()
        .expect("bins_to_placement requires uniform heights");
    let mut pl = Placement::zeroed(prec.len());
    for (b, tasks) in bins.iter().enumerate() {
        let mut x = 0.0;
        for &t in tasks {
            pl.set(t, x, b as f64 * h);
            x += prec.inst.item(t).w;
        }
    }
    pl
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use spp_core::Instance;

    fn random_case(rng: &mut StdRng, n_max: usize, p: f64) -> (Vec<f64>, Dag) {
        let n = rng.gen_range(1..n_max);
        let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..1.0)).collect();
        let dag = spp_dag::gen::random_order(rng, n, p);
        (sizes, dag)
    }

    #[test]
    fn next_fit_matches_shelf_f() {
        // Bin view and shelf view must agree on shelf contents.
        let sizes = [0.6, 0.6, 0.3, 0.5];
        let dag = Dag::new(4, &[(0, 3)]).unwrap();
        let bins = next_fit_prec(&sizes, &dag);
        validate_bins(&sizes, &dag, &bins).unwrap();

        let dims: Vec<(f64, f64)> = sizes.iter().map(|&w| (w, 1.0)).collect();
        let prec = PrecInstance::new(Instance::from_dims(&dims).unwrap(), dag);
        let shelf = crate::uniform::shelf_next_fit(&prec);
        let shelf_bins: Bins = shelf.shelves.iter().map(|s| s.items.clone()).collect();
        assert_eq!(bins, shelf_bins);
    }

    #[test]
    fn ffd_fills_better_than_next_fit_here() {
        // queue order hurts next-fit; FFD reorders within the level.
        let sizes = [0.3, 0.7, 0.3, 0.7];
        let dag = Dag::empty(4);
        let nf = next_fit_prec(&sizes, &dag);
        let ff = first_fit_prec(&sizes, &dag);
        validate_bins(&sizes, &dag, &nf).unwrap();
        validate_bins(&sizes, &dag, &ff).unwrap();
        assert_eq!(ff.len(), 2, "FFD pairs 0.7+0.3 twice");
        assert!(nf.len() >= ff.len());
    }

    #[test]
    fn precedence_forces_strictly_later_bins() {
        let sizes = [0.1, 0.1, 0.1];
        let dag = Dag::chain(3);
        for bins in [next_fit_prec(&sizes, &dag), first_fit_prec(&sizes, &dag)] {
            validate_bins(&sizes, &dag, &bins).unwrap();
            assert_eq!(bins.len(), 3);
        }
    }

    #[test]
    fn validate_bins_catches_violations() {
        let sizes = [0.5, 0.5];
        let dag = Dag::new(2, &[(0, 1)]).unwrap();
        // same bin violates the strict ordering
        assert!(validate_bins(&sizes, &dag, &vec![vec![0, 1]]).is_err());
        // missing task
        assert!(validate_bins(&sizes, &dag, &vec![vec![0]]).is_err());
        // duplicate
        assert!(validate_bins(&sizes, &dag, &vec![vec![0], vec![0, 1]]).is_err());
        // overfull
        let sizes2 = [0.8, 0.8];
        assert!(validate_bins(&sizes2, &Dag::empty(2), &vec![vec![0, 1]]).is_err());
        // valid
        assert!(validate_bins(&sizes, &dag, &vec![vec![0], vec![1]]).is_ok());
    }

    #[test]
    fn bins_to_placement_is_valid() {
        let sizes = [0.6, 0.4, 0.5];
        let dag = Dag::new(3, &[(0, 2)]).unwrap();
        let bins = first_fit_prec(&sizes, &dag);
        let dims: Vec<(f64, f64)> = sizes.iter().map(|&w| (w, 1.0)).collect();
        let prec = PrecInstance::new(Instance::from_dims(&dims).unwrap(), dag);
        let pl = bins_to_placement(&prec, &bins);
        prec.assert_valid(&pl);
        spp_core::assert_close!(pl.height(&prec.inst), bins.len() as f64);
    }

    #[test]
    fn ffd_vs_exact_stays_under_3() {
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..20 {
            let (sizes, dag) = random_case(&mut rng, 12, 0.25);
            let ff = first_fit_prec(&sizes, &dag);
            validate_bins(&sizes, &dag, &ff).unwrap();
            let opt = spp_exact::exact_bins(&sizes, &dag);
            assert!(
                ff.len() <= 3 * opt,
                "FFD {} bins > 3·OPT {}",
                ff.len(),
                3 * opt
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn both_algorithms_always_valid(
            seed in 0u64..5000,
            n in 1usize..50,
            edge_p in 0.0f64..0.4,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let sizes: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..1.0)).collect();
            let dag = spp_dag::gen::random_order(&mut rng, n, edge_p);
            let nf = next_fit_prec(&sizes, &dag);
            let ff = first_fit_prec(&sizes, &dag);
            prop_assert!(validate_bins(&sizes, &dag, &nf).is_ok());
            prop_assert!(validate_bins(&sizes, &dag, &ff).is_ok());
            // FFD never opens more bins than there are tasks; both at
            // least the trivial area bound
            let area: f64 = sizes.iter().sum();
            prop_assert!(ff.len() as f64 + 1e-9 >= area);
            prop_assert!(nf.len() as f64 + 1e-9 >= area);
        }
    }
}
