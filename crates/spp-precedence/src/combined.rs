//! Extension: precedence constraints **and** release times together.
//!
//! The paper treats the two variants separately (§2 ignores releases, §3
//! ignores precedence); scheduling practice usually has both. This module
//! provides the natural combined model:
//!
//! * a combined lower bound — the release-aware critical path
//!   `F_r(s) = max(r_s, max_pred F_r) + h_s` (earliest finish in an
//!   infinitely wide strip), together with `AREA`;
//! * [`greedy_skyline_combined`] — the skyline greedy with floors
//!   `max(release, predecessors' tops)` (the `spp-precedence::greedy`
//!   engine already supports floors; this entry point simply *documents
//!   and validates* both constraint families);
//! * [`dc_release_batched`] — a `DC`-based heuristic: partition tasks by
//!   release class, run `DC` per class, stack class blocks no lower than
//!   their release. Inherits Theorem 2.3 *within* each class; the
//!   cross-class stacking is a heuristic (no combined guarantee is known —
//!   the paper leaves the combined problem open).

use spp_core::Placement;
use spp_dag::PrecInstance;
use spp_pack::StripPacker;

/// Release-aware critical path values: earliest finish times when width
/// is unconstrained. `F_r(s) = max(r_s, max_{p ∈ IN(s)} F_r(p)) + h_s`.
pub fn release_critical_values(prec: &PrecInstance) -> Vec<f64> {
    let order = spp_dag::topo::topological_order(&prec.dag).expect("acyclic");
    let mut f = vec![0.0f64; prec.len()];
    for &v in &order {
        let it = prec.inst.item(v);
        let start = prec
            .dag
            .preds(v)
            .iter()
            .map(|&p| f[p])
            .fold(it.release, f64::max);
        f[v] = start + it.h;
    }
    f
}

/// Combined lower bound: `max(AREA, max_s F_r(s))`.
pub fn combined_lower_bound(prec: &PrecInstance) -> f64 {
    let f = release_critical_values(prec)
        .into_iter()
        .fold(0.0f64, f64::max);
    f.max(prec.area_lb())
}

/// Greedy skyline under precedence + release constraints (both validated).
pub fn greedy_skyline_combined(prec: &PrecInstance) -> Placement {
    let pl = crate::greedy::greedy_skyline(prec);
    debug_assert!(prec.validate(&pl).is_ok());
    pl
}

/// `DC` per release class, classes stacked at `max(previous top, release)`.
///
/// Valid for both constraint families when every precedence edge points
/// from an earlier-or-equal release class to a later-or-equal one, which
/// holds after [`normalize_releases`]; this function applies the
/// normalization itself.
pub fn dc_release_batched(prec: &PrecInstance, packer: &(impl StripPacker + ?Sized)) -> Placement {
    let prec = normalize_releases(prec);
    // distinct release levels ascending
    let mut levels: Vec<f64> = prec.inst.items().iter().map(|it| it.release).collect();
    levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
    levels.dedup_by(|a, b| (*a - *b).abs() <= spp_core::eps::EPS);

    let mut pl = Placement::zeroed(prec.len());
    let mut top = 0.0f64;
    for &level in &levels {
        let ids: Vec<usize> = prec
            .inst
            .items()
            .iter()
            .filter(|it| (it.release - level).abs() <= spp_core::eps::EPS)
            .map(|it| it.id)
            .collect();
        let (sub, back) = prec.restrict(&ids);
        let sub_pl = crate::dc::dc(&sub, packer);
        let base = top.max(level);
        pl.absorb(&sub_pl, &back, base);
        top = base + sub_pl.height(&sub.inst);
    }
    debug_assert!(
        prec.validate(&pl).is_ok(),
        "combined DC placement invalid: {:?}",
        prec.validate(&pl)
    );
    pl
}

/// Propagate releases down the DAG: a task can never start before any
/// ancestor's release, so lifting `r_v` to
/// `max(r_v, max_pred r_pred)` changes no feasible schedule. After this,
/// precedence edges never point to an earlier release class, which the
/// batched solver requires.
pub fn normalize_releases(prec: &PrecInstance) -> PrecInstance {
    let order = spp_dag::topo::topological_order(&prec.dag).expect("acyclic");
    let mut release: Vec<f64> = prec.inst.items().iter().map(|it| it.release).collect();
    for &v in &order {
        for &p in prec.dag.preds(v) {
            release[v] = release[v].max(release[p]);
        }
    }
    let items = prec
        .inst
        .items()
        .iter()
        .map(|it| spp_core::Item::with_release(it.id, it.w, it.h, release[it.id]))
        .collect();
    PrecInstance::new(
        spp_core::Instance::new(items).expect("normalization keeps items valid"),
        prec.dag.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use spp_core::Instance;
    use spp_dag::Dag;
    use spp_pack::Packer;

    fn combined_case(seed: u64, n: usize) -> PrecInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let dims: Vec<(f64, f64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0.1..0.9),
                    rng.gen_range(0.1..1.0),
                    rng.gen_range(0.0..4.0_f64).floor(),
                )
            })
            .collect();
        let inst = Instance::from_dims_release(&dims).unwrap();
        let dag = spp_dag::gen::random_order(&mut rng, n, 0.15);
        PrecInstance::new(inst, dag)
    }

    #[test]
    fn release_critical_values_respect_both() {
        let inst =
            Instance::from_dims_release(&[(0.5, 1.0, 0.0), (0.5, 1.0, 5.0), (0.5, 2.0, 0.0)])
                .unwrap();
        let dag = Dag::new(3, &[(0, 1), (1, 2)]).unwrap();
        let p = PrecInstance::new(inst, dag);
        let f = release_critical_values(&p);
        assert_eq!(f[0], 1.0);
        assert_eq!(f[1], 6.0); // waits for its release at 5
        assert_eq!(f[2], 8.0);
        spp_core::assert_close!(combined_lower_bound(&p), 8.0);
    }

    #[test]
    fn normalization_lifts_descendant_releases() {
        let inst = Instance::from_dims_release(&[(0.5, 1.0, 3.0), (0.5, 1.0, 0.0)]).unwrap();
        let p = PrecInstance::new(inst, Dag::new(2, &[(0, 1)]).unwrap());
        let np = normalize_releases(&p);
        assert_eq!(np.inst.item(1).release, 3.0);
        assert_eq!(np.inst.item(0).release, 3.0);
    }

    #[test]
    fn both_solvers_valid_on_combined_instances() {
        for seed in 0..8u64 {
            let p = combined_case(seed, 25);
            let lb = combined_lower_bound(&p);
            let g = greedy_skyline_combined(&p);
            p.assert_valid(&g);
            assert!(g.height(&p.inst) + 1e-9 >= lb);
            let d = dc_release_batched(&p, &Packer::Nfdh);
            p.assert_valid(&d);
            assert!(d.height(&p.inst) + 1e-9 >= lb);
        }
    }

    #[test]
    fn no_releases_reduces_to_dc() {
        let mut rng = StdRng::seed_from_u64(4);
        let inst = spp_gen::rects::uniform(&mut rng, 20, (0.1, 0.9), (0.1, 1.0));
        let dag = spp_dag::gen::random_order(&mut rng, 20, 0.2);
        let p = PrecInstance::new(inst, dag);
        let a = dc_release_batched(&p, &Packer::Nfdh);
        let b = crate::dc::dc(&p, &Packer::Nfdh);
        spp_core::assert_close!(a.height(&p.inst), b.height(&p.inst));
    }

    #[test]
    fn no_precedence_respects_releases() {
        let inst = Instance::from_dims_release(&[(1.0, 1.0, 0.0), (1.0, 1.0, 5.0)]).unwrap();
        let p = PrecInstance::unconstrained(inst);
        let d = dc_release_batched(&p, &Packer::Nfdh);
        p.assert_valid(&d);
        spp_core::assert_close!(d.height(&p.inst), 6.0);
    }

    #[test]
    fn combined_lb_dominates_individual_lbs() {
        for seed in 0..6u64 {
            let p = combined_case(seed + 100, 20);
            let lb = combined_lower_bound(&p);
            assert!(lb + 1e-9 >= p.critical_lb());
            assert!(lb + 1e-9 >= p.area_lb());
            assert!(lb + 1e-9 >= spp_core::bounds::release_lb(&p.inst));
        }
    }
}
