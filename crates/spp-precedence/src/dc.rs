//! Algorithm 1 (`DC`) — divide-and-conquer precedence strip packing.
//!
//! ```text
//! DC(y, S):
//!   1  if S = ∅ return 0
//!   2  recompute F(s) on the sub-DAG induced by S
//!   3  H := F(S) = max_s F(s)
//!   4  S_mid := { s : F(s) > H/2  ∧  F(s) − h_s ≤ H/2 }
//!   5  S_bot := { s : F(s) ≤ H/2 }
//!   6  S_top := { s : F(s) − h_s > H/2 }
//!   7  place S_bot by DC;  9 place S_mid by A;  11 place S_top by DC
//! ```
//!
//! * `S_mid` is an antichain (Lemma 2.1): every rectangle in it straddles
//!   the horizontal line `H/2` in the infinitely-wide-strip schedule, so
//!   no two can be ordered. It is therefore safe to pack with an
//!   unconstrained algorithm `A`.
//! * `S_mid ≠ ∅` (Lemma 2.2): a tight path has total height `H`, so some
//!   element of it crosses `H/2`; hence `|S_bot| + |S_top| < |S|` and the
//!   recursion terminates.
//! * With `A(S') ≤ 2·AREA(S') + max h` (NFDH — see `spp-pack`),
//!   Theorem 2.3 gives
//!   `DC(S) ≤ log₂(n+1)·F(S) + 2·AREA(S) ≤ (2 + log₂(n+1))·OPT(S, E)`.
//!
//! The two recursive calls are independent (their placements are
//! y-translation-invariant), so they run in parallel via `spp_par::join`.

use spp_core::Placement;
use spp_dag::PrecInstance;
use spp_pack::StripPacker;

/// Statistics gathered during a `DC` run (for the experiment harness).
#[derive(Debug, Clone, Default)]
pub struct DcStats {
    /// Number of calls to the unconstrained subroutine `A`.
    pub a_calls: usize,
    /// Maximum recursion depth reached.
    pub max_depth: usize,
    /// Total rectangles routed through `S_mid` (= n on termination).
    pub mid_total: usize,
}

/// Pack a precedence-constrained instance with `DC`, using `packer` as the
/// unconstrained subroutine `A`. Returns a valid placement starting at
/// `y = 0`.
///
/// `DC` solves the §2 problem, which has no release times; any release
/// times on the instance are **ignored** (use `spp-release` for §3).
///
/// ```
/// use spp_core::Instance;
/// use spp_dag::{Dag, PrecInstance};
/// use spp_precedence::{dc, dc_bound};
///
/// // a diamond: 0 -> {1, 2} -> 3
/// let inst = Instance::from_dims(&[(0.5, 1.0), (0.4, 1.0), (0.4, 2.0), (0.5, 1.0)]).unwrap();
/// let dag = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// let prec = PrecInstance::new(inst, dag);
///
/// let placement = dc(&prec, &spp_pack::Packer::Nfdh);
/// prec.assert_valid(&placement);                       // geometry + every edge
/// let h = placement.height(&prec.inst);
/// assert!(h >= prec.critical_lb());                    // ≥ F(S) = 4 here
/// assert!(h <= dc_bound(&prec) + 1e-9);                // Theorem 2.3, certified
/// ```
pub fn dc(prec: &PrecInstance, packer: &(impl StripPacker + ?Sized)) -> Placement {
    dc_with_stats(prec, packer).0
}

/// [`dc`] plus run statistics.
pub fn dc_with_stats(
    prec: &PrecInstance,
    packer: &(impl StripPacker + ?Sized),
) -> (Placement, DcStats) {
    // strip release times: DC is the §2 algorithm (precedence only)
    let stripped;
    let prec = if prec.inst.items().iter().any(|it| it.release > 0.0) {
        let items = prec
            .inst
            .items()
            .iter()
            .map(|it| spp_core::Item::new(it.id, it.w, it.h))
            .collect();
        stripped = PrecInstance::new(
            spp_core::Instance::new(items).expect("zeroing releases keeps items valid"),
            prec.dag.clone(),
        );
        &stripped
    } else {
        prec
    };
    let ids: Vec<usize> = (0..prec.len()).collect();
    let (frags, _h, stats) = dc_rec(prec, &ids, packer, 1);
    let mut pl = Placement::zeroed(prec.len());
    for (id, x, y) in frags {
        pl.set(id, x, y);
    }
    (pl, stats)
}

/// The Theorem 2.3 bound `log₂(n+1)·F(S) + 2·AREA(S)` for this instance
/// (a certified upper bound on the height `dc` produces when the packer
/// satisfies the A-bound).
pub fn dc_bound(prec: &PrecInstance) -> f64 {
    let n = prec.len() as f64;
    ((n + 1.0).log2()) * prec.critical_lb() + 2.0 * prec.area_lb()
}

/// The Theorem 2.3 approximation guarantee `(2 + log₂(n+1))` for size `n`.
pub fn dc_ratio_guarantee(n: usize) -> f64 {
    2.0 + ((n as f64) + 1.0).log2()
}

type Frags = Vec<(usize, f64, f64)>;

/// Recursive worker over a set of *global* ids. Returns placement
/// fragments `(global id, x, y relative to this block's base)`, the block
/// height, and statistics.
fn dc_rec(
    prec: &PrecInstance,
    ids: &[usize],
    packer: &(impl StripPacker + ?Sized),
    depth: usize,
) -> (Frags, f64, DcStats) {
    if ids.is_empty() {
        return (Vec::new(), 0.0, DcStats::default());
    }

    // Step 2: recompute F on the induced sub-problem.
    let (sub, back) = prec.restrict(ids);
    let heights: Vec<f64> = sub.inst.items().iter().map(|it| it.h).collect();
    let f = spp_dag::critical_path_values(&sub.dag, &heights);
    // Step 3.
    let h_total = f.iter().cloned().fold(0.0f64, f64::max);
    let half = h_total / 2.0;

    // Steps 4–6 (local indices).
    let mut bot = Vec::new();
    let mut mid = Vec::new();
    let mut top = Vec::new();
    for (i, &fi) in f.iter().enumerate() {
        if fi <= half {
            bot.push(back[i]);
        } else if fi - heights[i] <= half {
            mid.push(back[i]);
        } else {
            top.push(back[i]);
        }
    }
    // Lemma 2.2 guarantees S_mid ≠ ∅ in exact arithmetic. Floating-point
    // rounding of `F(s) − h_s` can misclassify the crossing element when
    // heights differ by ~1 ulp from the tight-path sums (e.g. the Fig. 1
    // family with ε → 0). The recursion stays correct and terminating
    // regardless: a source always has F − h = 0 ≤ H/2 (never in S_top),
    // and max F = H > H/2 means S_bot ≠ S, so both recursive calls are on
    // strictly smaller sets even when S_mid is empty.

    // Steps 7–12. The recursive calls are independent; run them in
    // parallel. The mid block is packed by A on its induced instance.
    let ((mut bot_frags, bot_h, bot_stats), (top_frags, top_h, top_stats)) = spp_par::join(
        || dc_rec(prec, &bot, packer, depth + 1),
        || dc_rec(prec, &top, packer, depth + 1),
    );
    let (mid_inst, mid_back) = prec.inst.restrict(&mid);
    let mid_pl = packer.pack(&mid_inst);
    debug_assert!(
        spp_core::validate::validate(&mid_inst, &mid_pl).is_ok(),
        "subroutine A produced an invalid placement"
    );
    let mid_h = mid_pl.height(&mid_inst);

    // Compose: bot at 0, mid above bot, top above mid.
    let mut frags = std::mem::take(&mut bot_frags);
    frags.reserve(mid.len() + top_frags.len());
    for (local, &gid) in mid_back.iter().enumerate() {
        let p = mid_pl.pos(local);
        frags.push((gid, p.x, p.y + bot_h));
    }
    for (gid, x, y) in top_frags {
        frags.push((gid, x, y + bot_h + mid_h));
    }

    let stats = DcStats {
        a_calls: bot_stats.a_calls + top_stats.a_calls + 1,
        max_depth: depth.max(bot_stats.max_depth).max(top_stats.max_depth),
        mid_total: bot_stats.mid_total + top_stats.mid_total + mid.len(),
    };
    (frags, bot_h + mid_h + top_h, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use spp_core::Instance;
    use spp_dag::Dag;
    use spp_pack::Packer;

    fn nfdh() -> Packer {
        Packer::Nfdh
    }

    #[test]
    fn empty_and_single() {
        let p = PrecInstance::unconstrained(Instance::new(vec![]).unwrap());
        let pl = dc(&p, &nfdh());
        assert_eq!(pl.height(&p.inst), 0.0);

        let p1 = PrecInstance::unconstrained(Instance::from_dims(&[(0.5, 2.0)]).unwrap());
        let pl1 = dc(&p1, &nfdh());
        p1.assert_valid(&pl1);
        spp_core::assert_close!(pl1.height(&p1.inst), 2.0);
    }

    #[test]
    fn chain_is_stacked_tight() {
        let inst = Instance::from_dims(&[(0.3, 1.0), (0.3, 1.0), (0.3, 1.0)]).unwrap();
        let p = PrecInstance::new(inst, Dag::chain(3));
        let pl = dc(&p, &nfdh());
        p.assert_valid(&pl);
        // A chain of height 3 can't be packed shorter.
        spp_core::assert_close!(pl.height(&p.inst), 3.0);
    }

    #[test]
    fn independent_halves_share_width() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0)]).unwrap();
        let p = PrecInstance::unconstrained(inst);
        let pl = dc(&p, &nfdh());
        p.assert_valid(&pl);
        spp_core::assert_close!(pl.height(&p.inst), 1.0);
    }

    #[test]
    fn diamond_respects_both_branches() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.4, 2.0), (0.4, 1.0), (0.5, 1.0)]).unwrap();
        let dag = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let p = PrecInstance::new(inst, dag);
        let pl = dc(&p, &nfdh());
        p.assert_valid(&pl);
        // critical path 0 -> 1 -> 3 has height 4
        assert!(pl.height(&p.inst) + 1e-9 >= 4.0);
        assert!(pl.height(&p.inst) <= dc_bound(&p) + 1e-9);
    }

    #[test]
    fn stats_count_mid_and_calls() {
        let inst = Instance::from_dims(&[(0.2, 1.0); 7]).unwrap();
        let p = PrecInstance::new(inst, Dag::chain(7));
        let (pl, stats) = dc_with_stats(&p, &nfdh());
        p.assert_valid(&pl);
        assert_eq!(stats.mid_total, 7, "every item passes through S_mid");
        assert!(stats.a_calls >= 1);
        assert!(stats.max_depth >= 1);
    }

    #[test]
    fn bound_formula() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0), (0.5, 1.0)]).unwrap();
        let p = PrecInstance::new(inst, Dag::chain(3));
        // F = 3, AREA = 1.5, n = 3 -> bound = 2*3 + 2*1.5 = 9
        spp_core::assert_close!(dc_bound(&p), 9.0);
        spp_core::assert_close!(dc_ratio_guarantee(3), 4.0);
    }

    #[test]
    fn works_with_all_packers() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = spp_gen::rects::uniform(&mut rng, 40, (0.05, 0.8), (0.1, 1.0));
        let p = spp_gen::rects::with_layered_dag(&mut rng, inst, 6, 0.2);
        for packer in spp_pack::traits::ALL_PACKERS {
            let pl = dc(&p, &packer);
            p.assert_valid(&pl);
        }
    }

    #[test]
    fn matches_exact_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let n = rng.gen_range(1..6);
            let dims: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.2..0.9), rng.gen_range(0.2..1.0)))
                .collect();
            let inst = Instance::from_dims(&dims).unwrap();
            let dag = spp_dag::gen::random_order(&mut rng, n, 0.4);
            let p = PrecInstance::new(inst, dag);
            let opt = spp_exact::exact_strip(&p, spp_exact::ExactConfig::default());
            assert!(opt.proven_optimal);
            let pl = dc(&p, &nfdh());
            p.assert_valid(&pl);
            let ratio = pl.height(&p.inst) / opt.height;
            assert!(ratio + 1e-9 >= 1.0, "DC beat the optimum?! ratio {ratio}");
            assert!(
                ratio <= dc_ratio_guarantee(n) + 1e-9,
                "ratio {ratio} exceeds guarantee for n={n}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Theorem 2.3: DC ≤ log₂(n+1)·F + 2·AREA, and the placement is
        /// valid, on random DAG workloads.
        #[test]
        fn dc_respects_theorem_bound(
            seed in 0u64..5000,
            n in 1usize..50,
            edge_p in 0.0f64..0.5,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let dims: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.05..1.0), rng.gen_range(0.05..1.0)))
                .collect();
            let inst = Instance::from_dims(&dims).unwrap();
            let dag = spp_dag::gen::random_order(&mut rng, n, edge_p);
            let p = PrecInstance::new(inst, dag);
            let pl = dc(&p, &nfdh());
            prop_assert!(p.validate(&pl).is_ok(), "{:?}", p.validate(&pl));
            let h = pl.height(&p.inst);
            prop_assert!(
                h <= dc_bound(&p) + 1e-9,
                "DC height {} exceeds Theorem 2.3 bound {}", h, dc_bound(&p)
            );
            prop_assert!(h + 1e-9 >= p.lower_bound());
        }
    }
}
