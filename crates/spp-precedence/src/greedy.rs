//! Precedence-aware bottom-left (skyline) baseline.
//!
//! A practical greedy the paper's `DC` is measured against: process tasks
//! in a priority order consistent with the DAG; each task is dropped at
//! the lowest-leftmost skyline position at or above its *floor* (the
//! maximum of its release time and its predecessors' tops).
//!
//! No worst-case guarantee (an adversarial DAG forces Ω(log n)·LB like any
//! algorithm argued against `max(AREA, F)`), but on typical task graphs it
//! is competitive and fast: O(n² ) with the vector skyline.

use spp_core::Placement;
use spp_dag::PrecInstance;
use spp_pack::Skyline;

/// Greedy skyline packing under precedence + release constraints.
pub fn greedy_skyline(prec: &PrecInstance) -> Placement {
    let n = prec.len();
    let mut pl = Placement::zeroed(n);
    let mut sky = Skyline::new();

    // floors become known as predecessors are placed
    let mut floor: Vec<f64> = prec.inst.items().iter().map(|it| it.release).collect();
    let mut missing: Vec<usize> = (0..n).map(|v| prec.dag.in_degree(v)).collect();
    // ready pool; chosen by (lowest floor, then taller, then wider, then id)
    let mut ready: Vec<usize> = (0..n).filter(|&v| missing[v] == 0).collect();

    let mut placed = 0;
    while placed < n {
        debug_assert!(!ready.is_empty(), "DAG invariant: some task is ready");
        // pick the best ready task
        let mut best = 0;
        for i in 1..ready.len() {
            let (a, b) = (ready[i], ready[best]);
            let (ia, ib) = (prec.inst.item(a), prec.inst.item(b));
            let ord = floor[a]
                .partial_cmp(&floor[b])
                .unwrap()
                .then(ib.h.partial_cmp(&ia.h).unwrap())
                .then(ib.w.partial_cmp(&ia.w).unwrap())
                .then(a.cmp(&b));
            if ord == std::cmp::Ordering::Less {
                best = i;
            }
        }
        let v = ready.swap_remove(best);
        let it = prec.inst.item(v);
        let (x, y) = sky.best_position(it.w, floor[v]);
        sky.place(x, y, it.w, it.h);
        pl.set(v, x, y);
        placed += 1;
        for &w in prec.dag.succs(v) {
            floor[w] = floor[w].max(y + it.h);
            missing[w] -= 1;
            if missing[w] == 0 {
                ready.push(w);
            }
        }
    }
    pl
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use spp_core::Instance;
    use spp_dag::Dag;

    #[test]
    fn unconstrained_reduces_to_skyline() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0)]).unwrap();
        let p = PrecInstance::unconstrained(inst);
        let pl = greedy_skyline(&p);
        p.assert_valid(&pl);
        spp_core::assert_close!(pl.height(&p.inst), 1.0);
    }

    #[test]
    fn chain_is_stacked() {
        let inst = Instance::from_dims(&[(0.2, 1.0), (0.2, 2.0)]).unwrap();
        let p = PrecInstance::new(inst, Dag::chain(2));
        let pl = greedy_skyline(&p);
        p.assert_valid(&pl);
        spp_core::assert_close!(pl.height(&p.inst), 3.0);
    }

    #[test]
    fn release_floor_respected() {
        let inst = Instance::from_dims_release(&[(0.5, 1.0, 5.0)]).unwrap();
        let p = PrecInstance::unconstrained(inst);
        let pl = greedy_skyline(&p);
        p.assert_valid(&pl);
        assert!(pl.pos(0).y >= 5.0 - 1e-12);
    }

    #[test]
    fn parallel_branches_share_strip() {
        // 0 -> {1, 2}; 1 and 2 are narrow and can sit side by side.
        let inst = Instance::from_dims(&[(1.0, 1.0), (0.5, 1.0), (0.5, 1.0)]).unwrap();
        let dag = Dag::new(3, &[(0, 1), (0, 2)]).unwrap();
        let p = PrecInstance::new(inst, dag);
        let pl = greedy_skyline(&p);
        p.assert_valid(&pl);
        spp_core::assert_close!(pl.height(&p.inst), 2.0);
    }

    #[test]
    fn deterministic() {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = spp_gen::rects::uniform(&mut rng, 30, (0.05, 0.9), (0.1, 1.0));
        let p = spp_gen::rects::with_layered_dag(&mut rng, inst, 5, 0.2);
        let a = greedy_skyline(&p);
        let b = greedy_skyline(&p);
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn greedy_valid_on_random_dags(
            seed in 0u64..5000,
            n in 1usize..60,
            edge_p in 0.0f64..0.4,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let dims: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.05..1.0), rng.gen_range(0.05..1.0)))
                .collect();
            let inst = Instance::from_dims(&dims).unwrap();
            let dag = spp_dag::gen::random_order(&mut rng, n, edge_p);
            let p = PrecInstance::new(inst, dag);
            let pl = greedy_skyline(&p);
            prop_assert!(p.validate(&pl).is_ok(), "{:?}", p.validate(&pl));
            prop_assert!(pl.height(&p.inst) + 1e-9 >= p.lower_bound());
        }
    }
}
