//! Layer-decomposition baseline.
//!
//! Decompose the DAG into longest-path levels (each level is an antichain,
//! see `spp_dag::levels`), pack each level independently with an
//! unconstrained packer, and stack the level blocks bottom-to-top in level
//! order. Every edge goes from a lower level to a strictly higher one, so
//! the stacking respects all precedence constraints.
//!
//! This is the natural "HEFT-like" heuristic; its weakness (which `DC`
//! fixes) is that a single tall rectangle in a level stretches the whole
//! level block.

use spp_core::Placement;
use spp_dag::PrecInstance;
use spp_pack::StripPacker;

/// Pack by levels with the given unconstrained packer.
pub fn layered_pack(prec: &PrecInstance, packer: &(impl StripPacker + ?Sized)) -> Placement {
    let groups = spp_dag::levels::level_groups(&prec.dag);
    let mut pl = Placement::zeroed(prec.len());
    let mut y = 0.0;
    for level_ids in &groups {
        let (inst, back) = prec.inst.restrict(level_ids);
        let sub = packer.pack(&inst);
        debug_assert!(spp_core::validate::validate(&inst, &sub).is_ok());
        pl.absorb(&sub, &back, y);
        y += sub.height(&inst);
    }
    pl
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use spp_core::Instance;
    use spp_dag::Dag;
    use spp_pack::Packer;

    #[test]
    fn levels_stack_in_order() {
        // diamond: 0 | 1,2 | 3
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.4, 1.0), (0.4, 1.0), (0.5, 1.0)]).unwrap();
        let dag = Dag::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let p = PrecInstance::new(inst, dag);
        let pl = layered_pack(&p, &Packer::Nfdh);
        p.assert_valid(&pl);
        // three level blocks of height 1 each
        spp_core::assert_close!(pl.height(&p.inst), 3.0);
    }

    #[test]
    fn empty_dag_is_single_block() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0)]).unwrap();
        let p = PrecInstance::unconstrained(inst);
        let pl = layered_pack(&p, &Packer::Nfdh);
        p.assert_valid(&pl);
        spp_core::assert_close!(pl.height(&p.inst), 1.0);
    }

    #[test]
    fn tall_rectangle_stretches_level_dc_does_better() {
        // Level 1 has one tall + many short; layered pays the tall height
        // for the whole block even though shorts could flow elsewhere.
        let mut dims = vec![(0.1, 0.1)]; // level-0 root
        dims.push((0.1, 5.0)); // tall, level 1
        for _ in 0..8 {
            dims.push((0.1, 0.1)); // shorts, level 1
        }
        let inst = Instance::from_dims(&dims).unwrap();
        let edges: Vec<(usize, usize)> = (1..10).map(|v| (0, v)).collect();
        let p = PrecInstance::new(inst, Dag::new(10, &edges).unwrap());
        let pl = layered_pack(&p, &Packer::Nfdh);
        p.assert_valid(&pl);
        spp_core::assert_close!(pl.height(&p.inst), 5.1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn layered_valid_on_random_dags(
            seed in 0u64..5000,
            n in 1usize..50,
            edge_p in 0.0f64..0.4,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let dims: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.05..1.0), rng.gen_range(0.05..1.0)))
                .collect();
            let inst = Instance::from_dims(&dims).unwrap();
            let dag = spp_dag::gen::random_order(&mut rng, n, edge_p);
            let p = PrecInstance::new(inst, dag);
            let pl = layered_pack(&p, &Packer::Nfdh);
            prop_assert!(p.validate(&pl).is_ok(), "{:?}", p.validate(&pl));
        }
    }
}
