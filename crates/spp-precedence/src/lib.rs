//! # spp-precedence — strip packing with precedence constraints (§2)
//!
//! The paper's first problem: pack rectangles into the unit strip subject
//! to a DAG (`y_pred + h_pred ≤ y_succ` per edge), minimizing the total
//! height. This crate implements:
//!
//! * [`mod@dc`] — **Algorithm 1 (`DC`)**: the divide-and-conquer
//!   `(2 + log₂(n+1))`-approximation of Theorem 2.3. Splits the instance
//!   at half the critical-path height `H/2` into `S_bot`, `S_mid`,
//!   `S_top`; `S_mid` is precedence-free (Lemma 2.1) and is packed by an
//!   unconstrained subroutine `A` with the `2·AREA + h_max` guarantee
//!   (NFDH by default);
//! * [`uniform`] — §2.2 **shelf algorithm `F`**: the absolute
//!   3-approximation for uniform heights (Theorem 2.6), with skip-shelf
//!   accounting (Lemma 2.5) exposed for verification;
//! * [`binpack`] — precedence-constrained **bin packing** (the
//!   Garey–Graham–Johnson–Yao reduction target): first-fit-decreasing and
//!   next-fit level algorithms, plus the bins↔shelves conversion;
//! * [`reduction`] — the §2.2 proof that any uniform-height placement
//!   can be converted into a *shelf solution* without height increase;
//! * [`greedy`] — precedence-aware bottom-left skyline baseline;
//! * [`layered`] — level-decomposition baseline (pack each antichain
//!   layer with an unconstrained packer, stack the layers);
//! * [`combined`] — extension: precedence **and** release times together
//!   (the paper leaves the combined problem open).

pub mod binpack;
pub mod combined;
pub mod dc;
pub mod greedy;
pub mod layered;
pub mod reduction;
pub mod uniform;

pub use dc::{dc, dc_bound, dc_with_stats, DcStats};
pub use greedy::greedy_skyline;
pub use layered::layered_pack;
pub use uniform::{shelf_next_fit, UniformShelfResult};
