//! §2.2 — every uniform-height placement converts to a shelf solution.
//!
//! The paper proves it by iteratively sliding down the lowest rectangle
//! that straddles a shelf boundary. For uniform height `h` the fixpoint of
//! that process is exactly *flooring* every `y` to the shelf grid
//! (`y ← h·⌊y/h⌋`), which we can apply in one shot and justify directly:
//!
//! * **no overlap is created** — if two rectangles overlap in `x`, their
//!   `y`-ranges are disjoint: `y₂ ≥ y₁ + h`, hence
//!   `⌊y₂/h⌋ ≥ ⌊y₁/h⌋ + 1`, so the floored copies sit on different
//!   shelves;
//! * **precedence is preserved** — an edge gives `y_v ≥ y_u + h`, hence
//!   the same index shift: the successor stays at least one full shelf
//!   above the predecessor's floored position;
//! * **the height never increases** — flooring only moves rectangles
//!   down, and the top shelf index is `⌊(max y)/h⌋`, preserving
//!   `shelves · h ≤ old height` rounded down to the grid.
//!
//! This constructive equivalence is what lets §2.2 treat shelves as bins
//! and inherit the GGJY asymptotic 2.7-approximation.

use spp_core::Placement;
use spp_dag::PrecInstance;

/// Convert a valid uniform-height placement into a shelf placement
/// (every `y` a multiple of `h`), never increasing the total height.
///
/// Panics if heights are not uniform. The result is re-validated in debug
/// builds.
pub fn to_shelf_solution(prec: &PrecInstance, pl: &Placement) -> Placement {
    let h = prec
        .inst
        .uniform_height()
        .expect("shelf reduction requires uniform heights");
    let mut out = pl.clone();
    for v in 0..prec.len() {
        let p = pl.pos(v);
        // nudge by EPS so that y values a hair under a grid line (float
        // noise from valid placements) floor to the intended shelf
        let shelf = ((p.y + spp_core::eps::EPS) / h).floor().max(0.0);
        out.set(v, p.x, shelf * h);
    }
    debug_assert!(
        prec.validate(&out).is_ok(),
        "shelf reduction broke validity: {:?}",
        prec.validate(&out)
    );
    out
}

/// Shelf index of every rectangle in a shelf placement.
pub fn shelf_indices(prec: &PrecInstance, pl: &Placement) -> Vec<usize> {
    let h = prec
        .inst
        .uniform_height()
        .expect("shelf indices require uniform heights");
    (0..prec.len())
        .map(|v| ((pl.pos(v).y + spp_core::eps::EPS) / h).floor() as usize)
        .collect()
}

/// True iff the placement is a shelf solution (every `y` on the grid).
pub fn is_shelf_solution(prec: &PrecInstance, pl: &Placement) -> bool {
    let Some(h) = prec.inst.uniform_height() else {
        return false;
    };
    (0..prec.len()).all(|v| {
        let y = pl.pos(v).y;
        let r = (y / h).round();
        (y - r * h).abs() <= spp_core::eps::EPS * (1.0 + r.abs())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use spp_core::Instance;
    use spp_dag::Dag;

    #[test]
    fn already_shelved_is_fixed_point() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0)]).unwrap();
        let p = PrecInstance::unconstrained(inst);
        let pl = Placement::from_xy(&[(0.0, 0.0), (0.5, 0.0)]);
        let out = to_shelf_solution(&p, &pl);
        assert_eq!(out, pl);
        assert!(is_shelf_solution(&p, &out));
    }

    #[test]
    fn floating_rectangle_drops_to_grid() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0)]).unwrap();
        let p = PrecInstance::unconstrained(inst);
        // item 1 floats at y = 1.4 (spans shelves 1 and 2)
        let pl = Placement::from_xy(&[(0.0, 0.0), (0.0, 1.4)]);
        p.assert_valid(&pl);
        let out = to_shelf_solution(&p, &pl);
        assert_eq!(out.pos(1).y, 1.0);
        assert!(out.height(&p.inst) <= pl.height(&p.inst));
        assert_eq!(shelf_indices(&p, &out), vec![0, 1]);
    }

    #[test]
    fn precedence_survives_flooring() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0)]).unwrap();
        let p = PrecInstance::new(inst, Dag::chain(2));
        let pl = Placement::from_xy(&[(0.0, 0.3), (0.0, 1.7)]);
        p.assert_valid(&pl);
        let out = to_shelf_solution(&p, &pl);
        p.assert_valid(&out);
        assert_eq!(out.pos(0).y, 0.0);
        assert_eq!(out.pos(1).y, 1.0);
    }

    #[test]
    fn random_greedy_placements_floor_cleanly() {
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..40 {
            let n = rng.gen_range(1..30);
            let dims: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen_range(0.05..1.0), 1.0)).collect();
            let inst = Instance::from_dims(&dims).unwrap();
            let dag = spp_dag::gen::random_order(&mut rng, n, 0.2);
            let p = PrecInstance::new(inst, dag);
            // greedy skyline yields non-shelf placements in general
            let pl = crate::greedy::greedy_skyline(&p);
            p.assert_valid(&pl);
            let out = to_shelf_solution(&p, &pl);
            p.assert_valid(&out);
            assert!(is_shelf_solution(&p, &out));
            assert!(
                out.height(&p.inst) <= pl.height(&p.inst) + spp_core::eps::EPS,
                "reduction increased height"
            );
        }
    }

    #[test]
    fn scaled_uniform_height() {
        let inst = Instance::from_dims(&[(0.4, 2.0), (0.4, 2.0)]).unwrap();
        let p = PrecInstance::unconstrained(inst);
        let pl = Placement::from_xy(&[(0.0, 0.0), (0.0, 3.0)]); // straddles
        p.assert_valid(&pl);
        let out = to_shelf_solution(&p, &pl);
        assert_eq!(out.pos(1).y, 2.0);
        p.assert_valid(&out);
    }

    #[test]
    fn is_shelf_solution_rejects_non_uniform() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 2.0)]).unwrap();
        let p = PrecInstance::unconstrained(inst);
        let pl = Placement::from_xy(&[(0.0, 0.0), (0.5, 0.0)]);
        assert!(!is_shelf_solution(&p, &pl));
    }
}
