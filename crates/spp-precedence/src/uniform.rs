//! §2.2 — shelf algorithm `F` for uniform heights (Theorem 2.6).
//!
//! All rectangles share height `h` (normalized to 1 in the paper). The
//! algorithm keeps one *open shelf* at the top of the placement and a
//! FIFO queue of *available* rectangles (all predecessors on closed
//! shelves):
//!
//! 1. take rectangles from the head of the queue, placing them left to
//!    right on the open shelf, until the head does not fit or the queue
//!    is empty;
//! 2. close the shelf, open a new one above it, repopulate the queue with
//!    newly available rectangles; repeat until done.
//!
//! A shelf closed because the queue was *empty* is a **skip** (Lemma 2.5:
//! the number of skips is at most the number of shelves on a longest DAG
//! path, hence at most OPT/h). The red/green accounting of Theorem 2.6
//! (`red ≤ 2·AREA/h`, every green shelf is a skip) gives the absolute
//! 3-approximation; both quantities are exposed for verification.

use spp_core::Placement;
use spp_dag::PrecInstance;

/// One shelf built by algorithm `F`.
#[derive(Debug, Clone)]
pub struct UniformShelf {
    /// Item ids on this shelf in placement order.
    pub items: Vec<usize>,
    /// Total width used.
    pub used: f64,
    /// True iff the shelf was closed because the ready queue was empty
    /// (includes the final shelf, after which the queue is empty by
    /// definition).
    pub skip: bool,
}

/// Output of algorithm `F`.
#[derive(Debug, Clone)]
pub struct UniformShelfResult {
    pub placement: Placement,
    pub shelves: Vec<UniformShelf>,
    /// The uniform rectangle height `h`.
    pub h: f64,
    /// Number of skip shelves.
    pub skips: usize,
}

impl UniformShelfResult {
    /// Total height `= shelves · h`.
    pub fn height(&self) -> f64 {
        self.shelves.len() as f64 * self.h
    }

    /// Theorem 2.6's red/green coloring: sweep bottom-up; if shelves
    /// `i, i+1` together carry area ≥ strip area of one shelf (`≥ 1` in
    /// width units), color both red and jump two; otherwise green and move
    /// one. Returns `(red, green)` shelf counts.
    pub fn red_green(&self) -> (usize, usize) {
        let widths: Vec<f64> = self.shelves.iter().map(|s| s.used).collect();
        let mut red = 0;
        let mut green = 0;
        let mut i = 0;
        while i < widths.len() {
            if i + 1 < widths.len() && widths[i] + widths[i + 1] >= 1.0 - spp_core::eps::EPS {
                red += 2;
                i += 2;
            } else {
                green += 1;
                i += 1;
            }
        }
        (red, green)
    }
}

/// Run shelf algorithm `F` on a uniform-height precedence instance.
///
/// Panics if heights are not uniform (§2.2 precondition).
///
/// ```
/// use spp_core::Instance;
/// use spp_dag::{Dag, PrecInstance};
/// use spp_precedence::shelf_next_fit;
///
/// // three unit-height tasks, 0 must precede 2
/// let inst = Instance::from_dims(&[(0.6, 1.0), (0.3, 1.0), (0.5, 1.0)]).unwrap();
/// let prec = PrecInstance::new(inst, Dag::new(3, &[(0, 2)]).unwrap());
/// let r = shelf_next_fit(&prec);
/// prec.assert_valid(&r.placement);
/// assert_eq!(r.shelves.len(), 2);          // {0,1} then {2}
/// assert_eq!(r.shelves[0].items, vec![0, 1]);
/// ```
pub fn shelf_next_fit(prec: &PrecInstance) -> UniformShelfResult {
    let n = prec.len();
    if n == 0 {
        return UniformShelfResult {
            placement: Placement::zeroed(0),
            shelves: Vec::new(),
            h: 0.0,
            skips: 0,
        };
    }
    let h = prec
        .inst
        .uniform_height()
        .expect("shelf algorithm F requires uniform heights");

    let mut placement = Placement::zeroed(n);
    let mut shelves: Vec<UniformShelf> = Vec::new();

    // closed[v]: v is on a *closed* shelf. Available: all preds closed.
    let mut closed = vec![false; n];
    let mut queued = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();

    let enqueue_available =
        |closed: &[bool], queued: &mut [bool], queue: &mut std::collections::VecDeque<usize>| {
            for v in 0..n {
                if !queued[v] && !closed[v] && prec.dag.preds(v).iter().all(|&p| closed[p]) {
                    queued[v] = true;
                    queue.push_back(v);
                }
            }
        };
    enqueue_available(&closed, &mut queued, &mut queue);

    let mut placed_total = 0;
    while placed_total < n {
        // open a new shelf
        let y = shelves.len() as f64 * h;
        let mut shelf = UniformShelf {
            items: Vec::new(),
            used: 0.0,
            skip: false,
        };
        // fill from the head of the queue
        while let Some(&head) = queue.front() {
            let w = prec.inst.item(head).w;
            if shelf.used + w <= 1.0 + spp_core::eps::EPS {
                queue.pop_front();
                placement.set(head, shelf.used, y);
                shelf.used += w;
                shelf.items.push(head);
                placed_total += 1;
            } else {
                break;
            }
        }
        // close the shelf
        shelf.skip = queue.is_empty();
        for &v in &shelf.items {
            closed[v] = true;
        }
        debug_assert!(
            !shelf.items.is_empty(),
            "an open shelf always takes at least the queue head (w ≤ 1)"
        );
        shelves.push(shelf);
        // repopulate
        enqueue_available(&closed, &mut queued, &mut queue);
    }

    let skips = shelves.iter().filter(|s| s.skip).count();
    UniformShelfResult {
        placement,
        shelves,
        h,
        skips,
    }
}

/// Longest path measured in *number of rectangles* — the shelf-count lower
/// bound used by Lemma 2.5 (`OPT/h ≥` nodes on any path).
pub fn longest_path_nodes(prec: &PrecInstance) -> usize {
    if prec.is_empty() {
        return 0;
    }
    let ones = vec![1.0; prec.len()];
    spp_dag::critical_path_values(&prec.dag, &ones)
        .into_iter()
        .fold(0.0f64, f64::max) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use spp_core::Instance;
    use spp_dag::Dag;

    fn uniform_prec(widths: &[f64], edges: &[(usize, usize)]) -> PrecInstance {
        let dims: Vec<(f64, f64)> = widths.iter().map(|&w| (w, 1.0)).collect();
        let inst = Instance::from_dims(&dims).unwrap();
        PrecInstance::new(inst, Dag::new(widths.len(), edges).unwrap())
    }

    #[test]
    fn no_precedence_packs_fifo() {
        let p = uniform_prec(&[0.5, 0.5, 0.5], &[]);
        let r = shelf_next_fit(&p);
        p.assert_valid(&r.placement);
        assert_eq!(r.shelves.len(), 2);
        assert_eq!(r.shelves[0].items, vec![0, 1]);
        assert_eq!(r.shelves[1].items, vec![2]);
        // final shelf is a skip (queue empty afterwards)
        assert!(r.shelves[1].skip);
    }

    #[test]
    fn chain_produces_one_item_shelves_all_skips() {
        let p = uniform_prec(&[0.3, 0.3, 0.3], &[(0, 1), (1, 2)]);
        let r = shelf_next_fit(&p);
        p.assert_valid(&r.placement);
        assert_eq!(r.shelves.len(), 3);
        assert_eq!(r.skips, 3);
        spp_core::assert_close!(r.height(), 3.0);
    }

    #[test]
    fn head_blocking_is_next_fit() {
        // queue: 0 (0.6), 1 (0.6), 2 (0.3). Head-blocking: shelf 1 = {0},
        // then 1 blocks though 2 would fit -> shelf {1, 2}? No: after
        // closing shelf {0}, queue is [1, 2]; 1 fits on the fresh shelf,
        // then 2 fits next to it.
        let p = uniform_prec(&[0.6, 0.6, 0.3], &[]);
        let r = shelf_next_fit(&p);
        assert_eq!(r.shelves.len(), 2);
        assert_eq!(r.shelves[0].items, vec![0]);
        assert_eq!(r.shelves[1].items, vec![1, 2]);
        assert!(!r.shelves[0].skip, "closed by blocking, not by empty queue");
    }

    #[test]
    fn skip_count_bounded_by_longest_path() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..30 {
            let n = rng.gen_range(1..40);
            let widths: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..1.0)).collect();
            let dag = spp_dag::gen::random_order(&mut rng, n, 0.2);
            let dims: Vec<(f64, f64)> = widths.iter().map(|&w| (w, 1.0)).collect();
            let p = PrecInstance::new(Instance::from_dims(&dims).unwrap(), dag);
            let r = shelf_next_fit(&p);
            p.assert_valid(&r.placement);
            assert!(
                r.skips <= longest_path_nodes(&p),
                "Lemma 2.5 violated: {} skips > path {}",
                r.skips,
                longest_path_nodes(&p)
            );
        }
    }

    #[test]
    fn theorem_26_accounting() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let n = rng.gen_range(1..40);
            let widths: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..1.0)).collect();
            let dag = spp_dag::gen::random_order(&mut rng, n, 0.15);
            let dims: Vec<(f64, f64)> = widths.iter().map(|&w| (w, 1.0)).collect();
            let p = PrecInstance::new(Instance::from_dims(&dims).unwrap(), dag);
            let r = shelf_next_fit(&p);
            let (red, green) = r.red_green();
            assert_eq!(red + green, r.shelves.len());
            // red ≤ 2·AREA (uniform height 1 => AREA = Σ w)
            let area: f64 = widths.iter().sum();
            assert!(
                (red as f64) <= 2.0 * area + 1e-9,
                "red {} > 2·AREA {}",
                red,
                2.0 * area
            );
            // every green shelf is a skip shelf
            for (i, s) in r.shelves.iter().enumerate() {
                let is_green = {
                    // recompute coloring membership
                    let (mut idx, mut greens) = (0, vec![]);
                    let widths: Vec<f64> = r.shelves.iter().map(|s| s.used).collect();
                    while idx < widths.len() {
                        if idx + 1 < widths.len()
                            && widths[idx] + widths[idx + 1] >= 1.0 - spp_core::eps::EPS
                        {
                            idx += 2;
                        } else {
                            greens.push(idx);
                            idx += 1;
                        }
                    }
                    greens.contains(&i)
                };
                if is_green {
                    assert!(s.skip, "green shelf {i} is not a skip shelf");
                }
            }
            // the 3-approximation against the combined lower bound
            let shelf_lb = area.max(longest_path_nodes(&p) as f64);
            assert!(
                (r.shelves.len() as f64) <= 3.0 * shelf_lb.ceil() + 1e-9,
                "shelves {} > 3·LB {}",
                r.shelves.len(),
                shelf_lb
            );
        }
    }

    #[test]
    fn three_approx_vs_exact() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..15 {
            let n = rng.gen_range(1..12);
            let widths: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
            let dag = spp_dag::gen::random_order(&mut rng, n, 0.25);
            let dims: Vec<(f64, f64)> = widths.iter().map(|&w| (w, 1.0)).collect();
            let p = PrecInstance::new(Instance::from_dims(&dims).unwrap(), dag.clone());
            let r = shelf_next_fit(&p);
            let opt = spp_exact::exact_bins(&widths, &dag);
            assert!(
                r.shelves.len() <= 3 * opt,
                "F used {} shelves > 3·OPT = {}",
                r.shelves.len(),
                3 * opt
            );
        }
    }

    #[test]
    fn scaled_height_works() {
        // uniform height 2.5 instead of 1
        let dims = [(0.6, 2.5), (0.6, 2.5)];
        let inst = Instance::from_dims(&dims).unwrap();
        let p = PrecInstance::unconstrained(inst);
        let r = shelf_next_fit(&p);
        p.assert_valid(&r.placement);
        spp_core::assert_close!(r.height(), 5.0);
    }

    #[test]
    #[should_panic(expected = "uniform heights")]
    fn non_uniform_rejected() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 2.0)]).unwrap();
        shelf_next_fit(&PrecInstance::unconstrained(inst));
    }

    #[test]
    fn empty_instance() {
        let p = PrecInstance::unconstrained(Instance::new(vec![]).unwrap());
        let r = shelf_next_fit(&p);
        assert_eq!(r.shelves.len(), 0);
        assert_eq!(r.height(), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn f_is_3_approx_against_lb(
            seed in 0u64..5000,
            n in 1usize..60,
            edge_p in 0.0f64..0.4,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let widths: Vec<f64> = (0..n).map(|_| rng.gen_range(0.05..1.0)).collect();
            let dag = spp_dag::gen::random_order(&mut rng, n, edge_p);
            let dims: Vec<(f64, f64)> = widths.iter().map(|&w| (w, 1.0)).collect();
            let p = PrecInstance::new(Instance::from_dims(&dims).unwrap(), dag);
            let r = shelf_next_fit(&p);
            prop_assert!(p.validate(&r.placement).is_ok());
            // Height ≤ 2·AREA + longest-path (the Theorem 2.6 decomposition);
            // both terms are lower bounds on OPT after ceiling.
            let area: f64 = widths.iter().sum();
            let path = longest_path_nodes(&p) as f64;
            prop_assert!(
                (r.shelves.len() as f64) <= 2.0 * area + path + 1e-9,
                "{} shelves > 2·{} + {}", r.shelves.len(), area, path
            );
        }
    }
}
