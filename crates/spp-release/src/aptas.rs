//! Algorithm 2 — the end-to-end APTAS (Theorem 3.5).
//!
//! ```text
//! input: instance P (heights ≤ 1, widths ∈ [1/K, 1]), error ε
//!  1  ε′ := ε/3
//!  2  R  := ⌈1/ε′⌉          (release classes)
//!  3  W  := ⌈1/ε′⌉·K·(R+1)  (width classes; g = W/(R+1) per class)
//!  4  round releases            (Lemma 3.1)
//!  5  group widths              (Lemma 3.2)
//!  6  solve the configuration LP (Lemma 3.3, via column generation)
//!  7  integralize               (Lemma 3.4)
//! output: placement of the ORIGINAL rectangles
//! ```
//!
//! The grouped instance dominates the original item-by-item (wider, later
//! released), so the integral placement of the grouped instance is a
//! valid placement of the original. Theorem 3.5:
//! `height ≤ (1+ε)·OPT_f(P) + (W+1)(R+1)` — asymptotically `(1+ε)`-optimal
//! since the additive term depends only on `ε` and `K`.

use std::time::{Duration, Instant};

use crate::colgen::solve_fractional_with_configs;
use crate::grouping::group_widths;
use crate::integralize::integralize;
use crate::lp_model::{FractionalSolution, LpData};
use crate::rounding::round_releases;
use spp_core::{Instance, Placement};

/// APTAS parameters.
#[derive(Debug, Clone, Copy)]
pub struct AptasConfig {
    /// Target error `ε > 0`.
    pub epsilon: f64,
    /// Number of FPGA columns `K` (widths must be ≥ `1/K`).
    pub k: usize,
}

impl AptasConfig {
    /// `ε′ = ε/3`.
    pub fn eps_prime(&self) -> f64 {
        self.epsilon / 3.0
    }

    /// `R = ⌈1/ε′⌉`.
    pub fn r(&self) -> usize {
        (1.0 / self.eps_prime()).ceil() as usize
    }

    /// Width groups per release class `g = ⌈1/ε′⌉·K` (so `W = g·(R+1)`).
    pub fn groups_per_class(&self) -> usize {
        (1.0 / self.eps_prime()).ceil() as usize * self.k
    }

    /// `W = g·(R+1)`.
    pub fn w(&self) -> usize {
        self.groups_per_class() * (self.r() + 1)
    }

    /// The additive constant of Theorem 3.5: `(W+1)(R+1)` (heights ≤ 1).
    pub fn additive_term(&self) -> f64 {
        ((self.w() + 1) * (self.r() + 1)) as f64
    }
}

/// Wall-clock cost of each pipeline stage (Lemmas 3.1–3.4 in order).
///
/// Exposed so report consumers (the engine's `SolveReport.phases`, the
/// experiment harness) can attribute APTAS time to its dominant stage —
/// in practice the LP/column-generation step — instead of one opaque
/// `aptas-pipeline` bucket.
#[derive(Debug, Clone, Copy, Default)]
pub struct AptasPhaseTimings {
    /// Lemma 3.1 — release rounding.
    pub rounding: Duration,
    /// Lemma 3.2 — width grouping.
    pub grouping: Duration,
    /// Lemma 3.3 — configuration LP via column generation.
    pub lp: Duration,
    /// Lemma 3.4 — integral conversion.
    pub integralize: Duration,
}

impl AptasPhaseTimings {
    /// The stages with their report-phase names, in execution order.
    pub fn named(&self) -> [(&'static str, Duration); 4] {
        [
            ("rounding", self.rounding),
            ("grouping", self.grouping),
            ("lp", self.lp),
            ("integralize", self.integralize),
        ]
    }

    /// Sum of the stage timings (≤ the wall clock of [`aptas`], which
    /// also spends time outside the four stages).
    pub fn total(&self) -> Duration {
        self.rounding + self.grouping + self.lp + self.integralize
    }
}

/// APTAS output with the intermediate artifacts the experiments inspect.
#[derive(Debug, Clone)]
pub struct AptasResult {
    /// Placement of the *original* rectangles.
    pub placement: Placement,
    /// Height of the integral packing.
    pub height: f64,
    /// `OPT_f(P(R, W))` — fractional optimum of the rounded+grouped
    /// instance (a `(1+ε)`-approximation of `OPT_f(P)` by Lemmas 3.1–3.2).
    pub opt_f_grouped: f64,
    /// Number of configuration occurrences in the basic optimum
    /// (Lemma 3.3 bounds this by `(W+1)(R+1)`).
    pub occurrences: usize,
    /// Distinct release levels after rounding.
    pub release_levels: usize,
    /// Distinct width classes after grouping.
    pub width_classes: usize,
    /// Items the integralization could not route (must be 0; kept for
    /// observability).
    pub leftovers: usize,
    /// The fractional solution (for ablation/diagnostics).
    pub fractional: FractionalSolution,
    /// Per-stage wall-clock timings.
    pub phases: AptasPhaseTimings,
}

/// Run the APTAS on an instance with heights ≤ 1 and widths ≥ `1/K`.
///
/// ```
/// use spp_core::Instance;
/// use spp_release::{aptas, AptasConfig};
///
/// // three tasks on a 2-column device, one released late
/// let inst = Instance::from_dims_release(&[
///     (0.5, 1.0, 0.0),
///     (0.5, 0.8, 0.0),
///     (1.0, 0.6, 2.0),
/// ]).unwrap();
/// let res = aptas(&inst, AptasConfig { epsilon: 1.0, k: 2 });
/// spp_core::validate::assert_valid(&inst, &res.placement);   // releases respected
/// assert_eq!(res.leftovers, 0);
/// // Lemma 3.4: integral height ≤ OPT_f(grouped) + occurrences · h_max
/// assert!(res.height <= res.opt_f_grouped + res.occurrences as f64 + 1e-9);
/// ```
pub fn aptas(inst: &Instance, cfg: AptasConfig) -> AptasResult {
    assert!(cfg.epsilon > 0.0, "epsilon must be positive");
    assert!(cfg.k >= 1, "K must be at least 1");
    for it in inst.items() {
        assert!(
            it.h <= 1.0 + spp_core::eps::EPS,
            "item {} has height {} > 1 (standard assumption of §3)",
            it.id,
            it.h
        );
        assert!(
            it.w + spp_core::eps::EPS >= 1.0 / cfg.k as f64,
            "item {} has width {} < 1/K = {}",
            it.id,
            it.w,
            1.0 / cfg.k as f64
        );
    }

    let mut phases = AptasPhaseTimings::default();
    // Lemma 3.1: round releases with ε_r = ε′.
    let t = Instant::now();
    let rounded = round_releases(inst, cfg.eps_prime());
    phases.rounding = t.elapsed();
    // Lemma 3.2: group widths with g groups per class.
    let t = Instant::now();
    let grouped = group_widths(&rounded.inst, cfg.groups_per_class());
    phases.grouping = t.elapsed();
    // Lemma 3.3: fractional optimum by column generation.
    let t = Instant::now();
    let data = LpData::new(&grouped.inst, &grouped.widths, &grouped.class_of);
    let (frac, _) = solve_fractional_with_configs(&data);
    phases.lp = t.elapsed();
    // Lemma 3.4: integral conversion (on the grouped instance).
    let t = Instant::now();
    let ip = integralize(&grouped.inst, &data, &grouped.class_of, &frac);
    phases.integralize = t.elapsed();

    // The grouped placement is valid for the original items verbatim
    // (each original item is narrower and released no later).
    let placement = ip.placement;
    debug_assert!(
        spp_core::validate::validate(inst, &placement).is_ok(),
        "APTAS output invalid for the original instance: {:?}",
        spp_core::validate::validate(inst, &placement)
    );

    AptasResult {
        height: placement.height(inst),
        placement,
        opt_f_grouped: frac.total_height,
        occurrences: frac.occurrences(),
        release_levels: data.boundaries.len(),
        width_classes: grouped.widths.len(),
        leftovers: ip.leftovers,
        fractional: frac,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn params(k: usize) -> spp_gen::release::ReleaseParams {
        spp_gen::release::ReleaseParams {
            k,
            column_widths: true,
            h: (0.1, 1.0),
        }
    }

    #[test]
    fn config_arithmetic() {
        let c = AptasConfig { epsilon: 1.0, k: 2 };
        // ε' = 1/3, R = 3, g = 3·2 = 6, W = 24
        assert_eq!(c.r(), 3);
        assert_eq!(c.groups_per_class(), 6);
        assert_eq!(c.w(), 24);
        spp_core::assert_close!(c.additive_term(), 100.0);
    }

    #[test]
    fn no_release_instance_packs_validly() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = spp_gen::release::no_releases(&mut rng, 20, params(3));
        let r = aptas(&inst, AptasConfig { epsilon: 1.0, k: 3 });
        assert_eq!(r.leftovers, 0);
        spp_core::validate::assert_valid(&inst, &r.placement);
        // Theorem 3.5 shape: height ≤ OPT_f(grouped) + occurrences·h_max
        assert!(r.height <= r.opt_f_grouped + r.occurrences as f64 * inst.max_height() + 1e-6);
    }

    #[test]
    fn release_instance_respects_theorem_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = spp_gen::release::poisson_arrivals(&mut rng, 25, 0.3, params(2));
        let cfg = AptasConfig { epsilon: 1.0, k: 2 };
        let r = aptas(&inst, cfg);
        assert_eq!(r.leftovers, 0);
        spp_core::validate::assert_valid(&inst, &r.placement);
        // occurrences ≤ (W+1)(R+1)
        assert!(
            r.occurrences <= (r.width_classes + 1) * r.release_levels,
            "{} occurrences > (W+1)(R+1)",
            r.occurrences
        );
        // full Theorem 3.5 bound against the true OPT_f(P)
        let opt_f = crate::colgen::opt_f(&inst);
        assert!(
            r.height <= (1.0 + cfg.epsilon) * opt_f + cfg.additive_term() + 1e-6,
            "height {} > (1+ε)·{} + {}",
            r.height,
            opt_f,
            cfg.additive_term()
        );
    }

    #[test]
    fn grouped_opt_f_within_eps_of_raw() {
        // Lemmas 3.1 + 3.2 combined: OPT_f(P(R,W)) ≤ (1+ε)·OPT_f(P).
        let mut rng = StdRng::seed_from_u64(3);
        for &eps in &[1.0, 0.5] {
            let inst = spp_gen::release::staircase(&mut rng, 15, 6.0, params(2));
            let r = aptas(&inst, AptasConfig { epsilon: eps, k: 2 });
            let raw = crate::colgen::opt_f(&inst);
            assert!(
                r.opt_f_grouped <= (1.0 + eps) * raw + 1e-6,
                "eps={eps}: grouped OPT_f {} > (1+ε)·{}",
                r.opt_f_grouped,
                raw
            );
            assert!(
                r.opt_f_grouped + 1e-6 >= raw,
                "grouping cannot shrink OPT_f"
            );
        }
    }

    #[test]
    fn phase_timings_sum_to_at_most_the_wall_clock() {
        let mut rng = StdRng::seed_from_u64(4);
        let inst = spp_gen::release::staircase(&mut rng, 20, 4.0, params(3));
        let t0 = std::time::Instant::now();
        let r = aptas(&inst, AptasConfig { epsilon: 1.0, k: 3 });
        let wall = t0.elapsed();
        assert!(
            r.phases.total() <= wall,
            "stage sum {:?} > wall {:?}",
            r.phases.total(),
            wall
        );
        // All four stages appear, in pipeline order.
        let names: Vec<&str> = r.phases.named().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["rounding", "grouping", "lp", "integralize"]);
    }

    #[test]
    fn tighter_epsilon_means_more_classes() {
        let loose = AptasConfig { epsilon: 1.5, k: 2 };
        let tight = AptasConfig { epsilon: 0.5, k: 2 };
        assert!(tight.r() > loose.r());
        assert!(tight.w() > loose.w());
    }

    #[test]
    fn empty_instance() {
        let inst = spp_core::Instance::new(vec![]).unwrap();
        let r = aptas(&inst, AptasConfig { epsilon: 1.0, k: 2 });
        assert_eq!(r.height, 0.0);
        assert_eq!(r.leftovers, 0);
    }

    #[test]
    #[should_panic(expected = "height")]
    fn too_tall_items_rejected() {
        let inst = spp_core::Instance::from_dims(&[(0.5, 2.0)]).unwrap();
        aptas(&inst, AptasConfig { epsilon: 1.0, k: 2 });
    }

    #[test]
    #[should_panic(expected = "width")]
    fn too_narrow_items_rejected() {
        let inst = spp_core::Instance::from_dims(&[(0.1, 0.5)]).unwrap();
        aptas(&inst, AptasConfig { epsilon: 1.0, k: 2 });
    }
}
