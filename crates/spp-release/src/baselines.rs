//! Practical baselines for strip packing with release times.
//!
//! The APTAS is asymptotically optimal but pays a large additive constant;
//! these are the heuristics a practitioner would reach for first, used by
//! the experiments to show where the crossover lies.

use spp_core::{Instance, Placement};
use spp_pack::Skyline;

/// Batched FFDH: process distinct release times in order; at each one,
/// pack every newly released rectangle with FFDH into a block starting at
/// `max(current top, release)`.
pub fn batched_ffdh(inst: &Instance) -> Placement {
    let mut pl = Placement::zeroed(inst.len());
    let levels = crate::rounding::release_levels(inst);
    let mut top = 0.0f64;
    for &level in &levels {
        let ids: Vec<usize> = inst
            .items()
            .iter()
            .filter(|it| (it.release - level).abs() <= spp_core::eps::EPS)
            .map(|it| it.id)
            .collect();
        if ids.is_empty() {
            continue;
        }
        let (sub, back) = inst.restrict(&ids);
        let sub_pl = spp_pack::ffdh(&sub);
        let base = top.max(level);
        pl.absorb(&sub_pl, &back, base);
        top = base + sub_pl.height(&sub);
    }
    pl
}

/// Release-aware skyline: sort by (release, taller first) and drop each
/// rectangle at the lowest skyline position at or above its release.
pub fn skyline_release(inst: &Instance) -> Placement {
    let mut order: Vec<usize> = (0..inst.len()).collect();
    order.sort_by(|&a, &b| {
        let (ia, ib) = (inst.item(a), inst.item(b));
        ia.release
            .partial_cmp(&ib.release)
            .unwrap()
            .then(ib.h.partial_cmp(&ia.h).unwrap())
            .then(a.cmp(&b))
    });
    let mut sky = Skyline::new();
    let mut pl = Placement::zeroed(inst.len());
    for &id in &order {
        let it = inst.item(id);
        let (x, y) = sky.best_position(it.w, it.release);
        sky.place(x, y, it.w, it.h);
        pl.set(id, x, y);
    }
    pl
}

/// Simple lower bound for release instances:
/// `max(AREA, max (r+h), h_max)`.
pub fn release_lower_bound(inst: &Instance) -> f64 {
    spp_core::bounds::combined_lb(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn params() -> spp_gen::release::ReleaseParams {
        spp_gen::release::ReleaseParams {
            k: 4,
            column_widths: true,
            h: (0.1, 1.0),
        }
    }

    #[test]
    fn both_baselines_valid_on_workloads() {
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..12 {
            let inst = match trial % 3 {
                0 => spp_gen::release::poisson_arrivals(&mut rng, 30, 0.2, params()),
                1 => spp_gen::release::bursty(&mut rng, 30, 4, 1.5, 0.1, params()),
                _ => spp_gen::release::staircase(&mut rng, 30, 8.0, params()),
            };
            for pl in [batched_ffdh(&inst), skyline_release(&inst)] {
                spp_core::validate::assert_valid(&inst, &pl);
                assert!(pl.height(&inst) + 1e-9 >= release_lower_bound(&inst));
            }
        }
    }

    #[test]
    fn skyline_backfills_batched_does_not() {
        // A wide early item and narrow late items: skyline can slot the
        // late items beside nothing (the wide one blocks), but a *gap*
        // before a late release is usable by skyline and wasted by
        // batching.
        let inst = Instance::from_dims_release(&[
            (1.0, 1.0, 0.0), // full width at 0
            (0.5, 1.0, 5.0), // released late
            (0.5, 1.0, 5.0),
        ])
        .unwrap();
        let b = batched_ffdh(&inst);
        let s = skyline_release(&inst);
        spp_core::validate::assert_valid(&inst, &b);
        spp_core::validate::assert_valid(&inst, &s);
        // both must wait for the release
        assert!(b.height(&inst) >= 6.0 - 1e-9);
        assert!(s.height(&inst) >= 6.0 - 1e-9);
        // and the pair shares a shelf in both
        spp_core::assert_close!(s.height(&inst), 6.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn baselines_valid_on_random_releases(
            items in proptest::collection::vec(
                (0.25f64..1.0, 0.05f64..1.0, 0.0f64..10.0), 1..40)
        ) {
            let inst = Instance::from_dims_release(&items).unwrap();
            for pl in [batched_ffdh(&inst), skyline_release(&inst)] {
                prop_assert!(spp_core::validate::validate(&inst, &pl).is_ok());
            }
        }
    }
}
