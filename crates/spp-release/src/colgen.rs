//! Column generation for the configuration LP.
//!
//! The paper solves the LP with ellipsoid/Karmarkar, possible because the
//! number of configurations `Q` is a constant for fixed `K` (though
//! exponential in it). We instead run the classic Gilmore–Gomory loop,
//! which scales to the larger width counts the experiments sweep:
//!
//! 1. solve the master LP over a small configuration subset,
//! 2. read duals; for each phase `j` the reduced cost of a column
//!    `(q, j)` is `c_{qj} − π_j − Σ_i a_{iq}·μ_{ij}` with
//!    `μ_{ij} = Σ_{k≤j} λ_{ki}` (covering duals accumulate over the
//!    suffix constraints the column appears in),
//! 3. minimizing reduced cost over `q` = maximizing `Σ a_{iq} μ_{ij}`
//!    subject to `Σ a_{iq} ω_i ≤ 1` — a bounded knapsack solved exactly
//!    by [`crate::config::price`],
//! 4. add improving columns, repeat until none exist (then the master
//!    optimum is optimal over *all* configurations).
//!
//! Seeding with every single-class configuration keeps the master
//! feasible from the start (phase `R` is uncapacitated).

use crate::config::{price, Config};
use crate::lp_model::{solve_with_configs, FractionalSolution, LpData};
use std::collections::BTreeSet;

/// Reduced-cost tolerance for admitting new columns.
const RC_TOL: f64 = 1e-7;
/// Hard cap on generation rounds (defensive; exact pricing terminates).
const MAX_ROUNDS: usize = 500;

/// Solve the fractional problem to optimality over all configurations via
/// column generation. Also returns the configurations materialized.
pub fn solve_fractional_with_configs(data: &LpData) -> (FractionalSolution, Vec<Config>) {
    if data.boundaries.is_empty() || data.widths.is_empty() {
        let sol = solve_with_configs(data, &[]).expect("trivial LP is feasible");
        return (sol, Vec::new());
    }
    let n_w = data.widths.len();
    let n_phases = data.r() + 1;

    let mut pool: BTreeSet<Config> = (0..n_w as u16).map(|i| Config(vec![i])).collect();
    // also seed max-multiplicity single-class columns (good for covering
    // large demands cheaply)
    for i in 0..n_w {
        let copies = (1.0 / data.widths[i]).floor() as usize;
        if copies > 1 {
            pool.insert(Config(vec![i as u16; copies]));
        }
    }

    let mut rounds = 0;
    loop {
        rounds += 1;
        assert!(rounds <= MAX_ROUNDS, "column generation did not converge");
        let configs: Vec<Config> = pool.iter().cloned().collect();
        let sol = solve_with_configs(data, &configs)
            .expect("master LP with single-class columns is feasible");

        // pricing per phase
        let mut improved = false;
        let mut mu = vec![0.0; n_w]; // running Σ_{k≤j} λ_{ki}
        for j in 0..n_phases {
            for (m, &d) in mu.iter_mut().zip(&sol.covering_duals[j]) {
                *m += d;
            }
            let pi = if j < data.r() {
                sol.packing_duals[j]
            } else {
                0.0
            };
            let c = if j == data.r() { 1.0 } else { 0.0 };
            let (cfg, value) = price(&data.widths, &mu);
            let rc = c - pi - value;
            if rc < -RC_TOL && !cfg.is_empty() && !pool.contains(&cfg) {
                pool.insert(cfg);
                improved = true;
            }
        }
        if !improved {
            return (sol, configs);
        }
    }
}

/// Convenience wrapper: fractional optimum of an instance whose widths are
/// the given classes. See [`solve_fractional_with_configs`].
pub fn solve_fractional(
    inst: &spp_core::Instance,
    widths: &[f64],
    class_of: &[usize],
) -> FractionalSolution {
    let data = LpData::new(inst, widths, class_of);
    solve_fractional_with_configs(&data).0
}

/// Fractional optimum of a raw instance (widths taken as their own
/// classes). `OPT_f(P)` in the paper's notation; only practical when the
/// number of distinct widths is modest.
pub fn opt_f(inst: &spp_core::Instance) -> f64 {
    if inst.is_empty() {
        return 0.0;
    }
    let mut widths: Vec<f64> = inst.items().iter().map(|it| it.w).collect();
    widths.sort_by(|a, b| a.partial_cmp(b).unwrap());
    widths.dedup_by(|a, b| (*a - *b).abs() <= spp_core::eps::EPS);
    let class_of: Vec<usize> = inst
        .items()
        .iter()
        .map(|it| {
            widths
                .iter()
                .position(|&w| (w - it.w).abs() <= spp_core::eps::EPS)
                .expect("width is a class")
        })
        .collect();
    solve_fractional(inst, &widths, &class_of).total_height
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::enumerate_configs;
    use spp_core::Instance;

    fn class_setup(inst: &Instance) -> (Vec<f64>, Vec<usize>) {
        let mut widths: Vec<f64> = inst.items().iter().map(|it| it.w).collect();
        widths.sort_by(|a, b| a.partial_cmp(b).unwrap());
        widths.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);
        let class_of = inst
            .items()
            .iter()
            .map(|it| {
                widths
                    .iter()
                    .position(|&w| (w - it.w).abs() < 1e-12)
                    .unwrap()
            })
            .collect();
        (widths, class_of)
    }

    #[test]
    fn colgen_matches_full_enumeration() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..12 {
            let k = 4usize;
            let n = rng.gen_range(2..20);
            let dims: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    let cols = rng.gen_range(1..=k);
                    (
                        cols as f64 / k as f64,
                        rng.gen_range(0.1..1.0),
                        (rng.gen_range(0.0..3.0_f64)).floor() * 1.5,
                    )
                })
                .collect();
            let inst = Instance::from_dims_release(&dims).unwrap();
            let (widths, class_of) = class_setup(&inst);
            let data = LpData::new(&inst, &widths, &class_of);

            let full = solve_with_configs(&data, &enumerate_configs(&widths)).unwrap();
            let (cg, _) = solve_fractional_with_configs(&data);
            spp_core::assert_close!(cg.total_height, full.total_height, 1e-5);
            assert!(cg.total_height > 0.0, "trial {trial}");
        }
    }

    #[test]
    fn opt_f_lower_bounds_simple_cases() {
        // fractional halves: 3 items of width 0.5 height 1 -> 1.5
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0), (0.5, 1.0)]).unwrap();
        spp_core::assert_close!(opt_f(&inst), 1.5, 1e-6);
        // a single full-width item cannot be sliced usefully
        let one = Instance::from_dims(&[(1.0, 2.0)]).unwrap();
        spp_core::assert_close!(opt_f(&one), 2.0, 1e-6);
    }

    #[test]
    fn opt_f_is_at_least_area_and_release_bounds() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..8 {
            let p = spp_gen::release::ReleaseParams {
                k: 3,
                column_widths: true,
                h: (0.1, 1.0),
            };
            let inst = spp_gen::release::staircase(&mut rng, 12, 4.0, p);
            let f = opt_f(&inst);
            assert!(f + 1e-6 >= spp_core::bounds::area_lb(&inst));
            assert!(f + 1e-6 >= inst.max_release());
        }
    }

    #[test]
    fn opt_f_monotone_under_release_rounding() {
        // Lemma 3.1 direction: rounding releases up cannot shrink OPT_f.
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let p = spp_gen::release::ReleaseParams {
            k: 3,
            column_widths: true,
            h: (0.2, 1.0),
        };
        let inst = spp_gen::release::poisson_arrivals(&mut rng, 10, 0.5, p);
        let rounded = crate::rounding::round_releases(&inst, 0.5);
        let f0 = opt_f(&inst);
        let f1 = opt_f(&rounded.inst);
        assert!(f1 + 1e-6 >= f0, "rounding decreased OPT_f: {f1} < {f0}");
        // ... and by at most (1 + eps) (Lemma 3.1)
        assert!(
            f1 <= (1.0 + 0.5) * f0 + 1e-6,
            "Lemma 3.1 violated: {f1} > 1.5·{f0}"
        );
    }

    #[test]
    fn empty_instance() {
        assert_eq!(opt_f(&Instance::new(vec![]).unwrap()), 0.0);
    }
}
