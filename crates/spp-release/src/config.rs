//! Configurations — multisets of widths fitting the strip (§3.2).
//!
//! A configuration is a multiset of width classes whose widths sum to at
//! most 1: "a possible combination of widths that can be contained within
//! the strip at any fixed height". Because every width is ≥ `1/K`, a
//! configuration holds at most `K` rectangles, so the configuration space
//! has size exponential in `K` but polynomial in the number of width
//! classes for fixed `K` — exactly the paper's complexity statement.
//!
//! Two operations:
//! * [`enumerate_configs`] — the full set (used for small `K`/`W` and for
//!   cross-checking column generation);
//! * [`price`] — the Gilmore–Gomory pricing oracle: maximize the dual
//!   value of a configuration (a bounded knapsack, exact branch-and-bound
//!   over non-decreasing class indices with an optimistic density bound).

/// A configuration: sorted width-class indices with multiplicity
/// (e.g. `[0, 0, 2]` = two of class 0, one of class 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Config(pub Vec<u16>);

impl Config {
    /// Multiplicity vector of length `n_classes`.
    pub fn counts(&self, n_classes: usize) -> Vec<usize> {
        let mut c = vec![0usize; n_classes];
        for &i in &self.0 {
            c[i as usize] += 1;
        }
        c
    }

    /// Total width of the configuration.
    pub fn total_width(&self, widths: &[f64]) -> f64 {
        self.0.iter().map(|&i| widths[i as usize]).sum()
    }

    /// Number of rectangles in the configuration.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// The empty configuration.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Enumerate every non-empty configuration over the given widths.
///
/// DFS over non-decreasing class indices; capacity 1. The caller is
/// responsible for keeping `widths` small enough (all widths must be
/// > 0; widths ≥ 1/K keep the count `O(W^K)`).
pub fn enumerate_configs(widths: &[f64]) -> Vec<Config> {
    assert!(
        widths.iter().all(|&w| w > 0.0),
        "configuration widths must be positive"
    );
    let mut out = Vec::new();
    let mut cur: Vec<u16> = Vec::new();
    fn dfs(
        widths: &[f64],
        start: usize,
        remaining: f64,
        cur: &mut Vec<u16>,
        out: &mut Vec<Config>,
    ) {
        for i in start..widths.len() {
            if widths[i] <= remaining + spp_core::eps::EPS {
                cur.push(i as u16);
                out.push(Config(cur.clone()));
                dfs(widths, i, remaining - widths[i], cur, out);
                cur.pop();
            }
        }
    }
    dfs(widths, 0, 1.0, &mut cur, &mut out);
    out.sort();
    out.dedup();
    out
}

/// Exact pricing: find the configuration maximizing `Σ value[class]`
/// subject to `Σ width ≤ 1` (classes reusable). Returns the best
/// configuration and its value; the empty configuration (value 0) is a
/// valid answer when all values are ≤ 0.
pub fn price(widths: &[f64], values: &[f64]) -> (Config, f64) {
    assert_eq!(widths.len(), values.len());
    // Only positive-value classes can help; sort them by value density
    // (value per width) for a sharp optimistic bound.
    let mut useful: Vec<usize> = (0..widths.len())
        .filter(|&i| values[i] > spp_core::eps::EPS)
        .collect();
    useful.sort_by(|&a, &b| {
        (values[b] / widths[b])
            .partial_cmp(&(values[a] / widths[a]))
            .unwrap()
    });

    let mut best = (Config(Vec::new()), 0.0f64);

    #[allow(clippy::too_many_arguments)] // recursive kernel: explicit state beats a context struct here
    fn dfs(
        order: &[usize],
        widths: &[f64],
        values: &[f64],
        pos: usize,
        remaining: f64,
        value: f64,
        cur: &mut Vec<u16>,
        best: &mut (Config, f64),
    ) {
        if value > best.1 + spp_core::eps::EPS {
            let mut cfg = cur.clone();
            cfg.sort_unstable();
            *best = (Config(cfg), value);
        }
        if pos >= order.len() {
            return;
        }
        // optimistic bound: fill remaining capacity at the best density
        // still available (order is sorted by density)
        let i = order[pos];
        let bound = value + remaining * (values[i] / widths[i]);
        if bound <= best.1 + spp_core::eps::EPS {
            return;
        }
        // take another copy of class i (stay at pos to allow repeats)
        if widths[i] <= remaining + spp_core::eps::EPS {
            cur.push(i as u16);
            dfs(
                order,
                widths,
                values,
                pos,
                remaining - widths[i],
                value + values[i],
                cur,
                best,
            );
            cur.pop();
        }
        // skip class i entirely
        dfs(order, widths, values, pos + 1, remaining, value, cur, best);
    }

    let mut cur = Vec::new();
    dfs(&useful, widths, values, 0, 1.0, 0.0, &mut cur, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_counts_for_halves_and_quarters() {
        // widths 0.5, 0.25: configs = {a}, {aa}, {b}, {bb}, {bbb}, {bbbb},
        // {ab}, {abb}, {aab}? a=0.5: aa=1.0 ok; aab=1.25 no; ab=0.75,
        // abb=1.0 ok. Total: a, aa, ab, abb, b, bb, bbb, bbbb = 8
        let configs = enumerate_configs(&[0.5, 0.25]);
        assert_eq!(configs.len(), 8);
        assert!(configs.contains(&Config(vec![0, 0])));
        assert!(configs.contains(&Config(vec![0, 1, 1])));
        assert!(!configs.contains(&Config(vec![0, 0, 1])));
    }

    #[test]
    fn enumerate_respects_capacity() {
        for cfg in enumerate_configs(&[0.3, 0.4, 0.9]) {
            assert!(cfg.total_width(&[0.3, 0.4, 0.9]) <= 1.0 + 1e-9);
            assert!(!cfg.is_empty());
        }
    }

    #[test]
    fn counts_vector() {
        let c = Config(vec![0, 0, 2]);
        assert_eq!(c.counts(3), vec![2, 0, 1]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn price_prefers_high_density() {
        // class 0: width 0.5 value 1.0; class 1: width 0.25 value 0.6
        // best: 4 × class 1 = 2.4 > 2 × class 0 = 2.0
        let (cfg, v) = price(&[0.5, 0.25], &[1.0, 0.6]);
        spp_core::assert_close!(v, 2.4);
        assert_eq!(cfg, Config(vec![1, 1, 1, 1]));
    }

    #[test]
    fn price_mixes_classes_when_optimal() {
        // width 0.6 value 1.0, width 0.4 value 0.5: best = one of each (1.5)
        let (cfg, v) = price(&[0.6, 0.4], &[1.0, 0.5]);
        spp_core::assert_close!(v, 1.5);
        assert_eq!(cfg, Config(vec![0, 1]));
    }

    #[test]
    fn price_ignores_nonpositive_values() {
        let (cfg, v) = price(&[0.5, 0.5], &[-1.0, 0.0]);
        assert!(cfg.is_empty());
        assert_eq!(v, 0.0);
    }

    #[test]
    fn price_matches_enumeration() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let m = rng.gen_range(1..6);
            let widths: Vec<f64> = (0..m).map(|_| rng.gen_range(0.2..1.0)).collect();
            let values: Vec<f64> = (0..m).map(|_| rng.gen_range(-1.0..2.0)).collect();
            let (_, got) = price(&widths, &values);
            let brute = enumerate_configs(&widths)
                .into_iter()
                .map(|c| c.0.iter().map(|&i| values[i as usize]).sum::<f64>())
                .fold(0.0f64, f64::max);
            spp_core::assert_close!(got, brute, 1e-7);
        }
    }

    #[test]
    fn k_items_maximum() {
        // widths ≥ 1/K force ≤ K items per configuration
        let k = 4;
        let widths = vec![1.0 / k as f64, 0.3, 0.5];
        for cfg in enumerate_configs(&widths) {
            assert!(cfg.len() <= k);
        }
    }
}
