//! Lemma 3.2 — linear grouping of widths, per release class.
//!
//! For each release class `P_i` (rectangles sharing a rounded release),
//! stack the rectangles left-justified, sorted by non-increasing width
//! from bottom to top (Fig. 3), cut the stack with `g` horizontal lines at
//! heights `ℓ·H(P_i)/g`, and call a rectangle a *threshold* rectangle if a
//! line crosses its interior or aligns with its base. Each group starts at
//! a threshold rectangle; every rectangle in a group gets the group's
//! threshold width (the widest in the group, since widths decrease going
//! up). This rounds widths **up**, creating at most `g` distinct widths
//! per class — `W = g·(R+1)` overall — while
//! `OPT_f(P(R,W)) ≤ (1 + (R+1)·K/W)·OPT_f(P(R))` (the `P_inf`/`P_sup`
//! sandwich of Fig. 4).

use spp_core::{Instance, Item};

/// Output of width grouping.
#[derive(Debug, Clone)]
pub struct GroupedInstance {
    /// The widened instance (same ids, heights, releases; widths rounded
    /// up to their group's threshold width).
    pub inst: Instance,
    /// Distinct widths present after grouping, ascending.
    pub widths: Vec<f64>,
    /// For each item, the index into `widths` of its new width class.
    pub class_of: Vec<usize>,
    /// Per release-class stacking heights `H(P_i)` (diagnostics).
    pub stack_heights: Vec<f64>,
}

/// Group widths with `g` groups per release class (the paper's
/// `W/(R+1)`).
pub fn group_widths(inst: &Instance, groups_per_class: usize) -> GroupedInstance {
    assert!(groups_per_class >= 1, "need at least one group per class");
    let n = inst.len();
    let levels = crate::rounding::release_levels(inst);
    let mut new_width = vec![0.0f64; n];
    let mut stack_heights = Vec::with_capacity(levels.len());

    for &level in &levels {
        // the release class, sorted by non-increasing width (ties by id
        // for determinism)
        let mut class: Vec<usize> = inst
            .items()
            .iter()
            .filter(|it| (it.release - level).abs() <= spp_core::eps::EPS)
            .map(|it| it.id)
            .collect();
        class.sort_by(|&a, &b| {
            inst.item(b)
                .w
                .partial_cmp(&inst.item(a).w)
                .unwrap()
                .then(a.cmp(&b))
        });
        let h_total: f64 = class.iter().map(|&id| inst.item(id).h).sum();
        stack_heights.push(h_total);
        let cut = h_total / groups_per_class as f64;

        // walk the stack bottom-up; a new group starts whenever the
        // rectangle's base has passed the next cut line (base aligned or
        // interior crossed => it is a threshold rectangle)
        let mut y = 0.0f64;
        let mut group_width = 0.0f64; // width of current group's threshold
        let mut next_line = 0.0f64; // the next cut line to consume
        for &id in &class {
            let it = inst.item(id);
            // does a line fall in [y, y + h) (base aligned or interior)?
            if next_line <= y + it.h - spp_core::eps::EPS && next_line <= h_total - cut / 2.0 {
                // `id` is a threshold rectangle: start a new group
                group_width = it.w;
                // consume every line this rectangle covers
                while next_line <= y + it.h - spp_core::eps::EPS {
                    next_line += cut;
                }
            }
            new_width[id] = group_width.max(it.w);
            y += it.h;
        }
    }

    let items: Vec<Item> = inst
        .items()
        .iter()
        .map(|it| Item::with_release(it.id, new_width[it.id].min(1.0), it.h, it.release))
        .collect();
    let inst2 = Instance::new(items).expect("grouping preserves validity");

    // distinct widths + classes
    let mut widths: Vec<f64> = inst2.items().iter().map(|it| it.w).collect();
    widths.sort_by(|a, b| a.partial_cmp(b).unwrap());
    widths.dedup_by(|a, b| (*a - *b).abs() <= spp_core::eps::EPS);
    let class_of: Vec<usize> = inst2
        .items()
        .iter()
        .map(|it| {
            widths
                .iter()
                .position(|&w| (w - it.w).abs() <= spp_core::eps::EPS)
                .expect("width must be one of the distinct widths")
        })
        .collect();

    GroupedInstance {
        inst: inst2,
        widths,
        class_of,
        stack_heights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn widths_of(g: &GroupedInstance) -> Vec<f64> {
        g.inst.items().iter().map(|it| it.w).collect()
    }

    #[test]
    fn single_group_rounds_all_to_widest() {
        let inst = Instance::from_dims(&[(0.3, 1.0), (0.5, 1.0), (0.4, 1.0)]).unwrap();
        let g = group_widths(&inst, 1);
        assert_eq!(widths_of(&g), vec![0.5, 0.5, 0.5]);
        assert_eq!(g.widths, vec![0.5]);
    }

    #[test]
    fn widths_never_shrink_and_stay_capped() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..40 {
            let n = rng.gen_range(1..50);
            let dims: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0.2..1.0),
                        rng.gen_range(0.05..1.0),
                        rng.gen_range(0.0..3.0_f64).floor(),
                    )
                })
                .collect();
            let inst = Instance::from_dims_release(&dims).unwrap();
            let g = group_widths(&inst, rng.gen_range(1..6));
            for (orig, new) in inst.items().iter().zip(g.inst.items()) {
                assert!(new.w + 1e-12 >= orig.w, "width shrank");
                assert!(new.w <= 1.0 + 1e-12);
                assert_eq!(orig.h, new.h);
                assert_eq!(orig.release, new.release);
            }
        }
    }

    #[test]
    fn group_count_bounded_per_class() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..30 {
            let n = rng.gen_range(1..60);
            // single release class for a sharp per-class bound
            let dims: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.1..1.0), rng.gen_range(0.05..1.0)))
                .collect();
            let inst = Instance::from_dims(&dims).unwrap();
            let gpc = rng.gen_range(1..8);
            let g = group_widths(&inst, gpc);
            assert!(
                g.widths.len() <= gpc,
                "{} distinct widths > g = {gpc}",
                g.widths.len()
            );
        }
    }

    #[test]
    fn classes_index_into_widths() {
        let inst = Instance::from_dims(&[(0.3, 1.0), (0.9, 0.5), (0.5, 0.7), (0.31, 0.2)]).unwrap();
        let g = group_widths(&inst, 2);
        for (id, &c) in g.class_of.iter().enumerate() {
            spp_core::assert_close!(g.widths[c], g.inst.item(id).w);
        }
    }

    #[test]
    fn separate_release_classes_grouped_independently() {
        // two classes with very different widths; each gets its own groups
        let inst = Instance::from_dims_release(&[
            (0.2, 1.0, 0.0),
            (0.25, 1.0, 0.0),
            (0.8, 1.0, 5.0),
            (0.9, 1.0, 5.0),
        ])
        .unwrap();
        let g = group_widths(&inst, 1);
        // class 0 rounds to 0.25, class 1 rounds to 0.9
        assert_eq!(widths_of(&g), vec![0.25, 0.25, 0.9, 0.9]);
        assert_eq!(g.stack_heights, vec![2.0, 2.0]);
    }

    #[test]
    fn tall_rectangle_spanning_lines_is_single_threshold() {
        // One rect is so tall it covers several cut lines; groups degrade
        // gracefully (fewer than g distinct widths).
        let inst = Instance::from_dims(&[(0.9, 10.0), (0.5, 0.1), (0.4, 0.1)]).unwrap();
        let g = group_widths(&inst, 4);
        // stack: 0.9 (h=10) at bottom covers lines at 0, 2.55, 5.1, 7.65;
        // the remaining small rects form at most one more group
        assert!(g.widths.len() <= 2);
        assert_eq!(g.inst.item(0).w, 0.9);
    }

    #[test]
    fn grouped_area_increase_is_bounded() {
        // The area added by grouping is bounded via the P_sup argument:
        // AREA(P(R,W)) ≤ AREA(P(R)) + Σ_i H(P_i)/g (each group's widening
        // is dominated by one slab of the sup instance).
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let n = rng.gen_range(2..60);
            let dims: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range(0.25..1.0), rng.gen_range(0.05..1.0)))
                .collect();
            let inst = Instance::from_dims(&dims).unwrap();
            let gpc = rng.gen_range(1..8);
            let g = group_widths(&inst, gpc);
            let slab: f64 = g.stack_heights.iter().sum::<f64>() / gpc as f64;
            assert!(
                g.inst.total_area() <= inst.total_area() + slab + 1e-9,
                "area grew too much: {} > {} + {}",
                g.inst.total_area(),
                inst.total_area(),
                slab
            );
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![]).unwrap();
        let g = group_widths(&inst, 3);
        assert!(g.inst.is_empty());
        assert!(g.widths.is_empty());
    }
}
