//! Lemma 3.4 — converting the fractional solution to an integral packing.
//!
//! For each positive LP variable `x_{q,j}` a *reserved area* of width 1
//! and height `x_{q,j}` is laid out at or above `t_j`, bottom-up. Each
//! occurrence of width class `i` in `q` becomes a *column* of that width;
//! the column is filled greedily with not-yet-placed class-`i` rectangles
//! whose (rounded) release is `≤ t_j`, until the fill reaches the
//! column's reserved height — the last rectangle may overhang by less
//! than `h_max ≤ 1`. The reserved area expands to cover overhang, and
//! everything above shifts up, so the final height is at most
//! `OPT_f + (occurrences)·h_max ≤ OPT_f + (W+1)(R+1)` — the additive term
//! of Theorem 3.5.
//!
//! Eligibility (release class ≤ phase) and the LP's suffix covering
//! constraints guarantee every rectangle finds a column: eligible sets
//! only grow with the phase, so bottom-up greedy filling never strands an
//! item that the LP covered (a nested-interval Hall argument). The
//! implementation still *verifies* this: any leftover would be stacked on
//! top and reported, and tests assert the count is always zero.

use crate::lp_model::{FractionalSolution, LpData};
use spp_core::{Instance, Placement};

/// Result of the integral conversion.
#[derive(Debug, Clone)]
pub struct IntegralPacking {
    pub placement: Placement,
    /// Total height of the integral packing.
    pub height: f64,
    /// Rectangles that could not be routed through reserved columns and
    /// were stacked on top (always 0 when the fractional solution covers
    /// the instance; asserted by tests).
    pub leftovers: usize,
}

/// Place the (grouped) instance according to a fractional solution.
///
/// `class_of[id]` must give the width class of every item in `inst`, and
/// item widths must equal their class width exactly (true after
/// grouping).
pub fn integralize(
    inst: &Instance,
    data: &LpData,
    class_of: &[usize],
    frac: &FractionalSolution,
) -> IntegralPacking {
    let n = inst.len();
    let mut placement = Placement::zeroed(n);
    if n == 0 {
        return IntegralPacking {
            placement,
            height: 0.0,
            leftovers: 0,
        };
    }

    // Per-class stock, earliest release first (ties by id) so the nested
    // eligibility structure is consumed in order.
    let n_classes = data.widths.len();
    let mut stock: Vec<std::collections::VecDeque<usize>> = vec![Default::default(); n_classes];
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for it in inst.items() {
        by_class[class_of[it.id]].push(it.id);
    }
    for (c, ids) in by_class.iter_mut().enumerate() {
        ids.sort_by(|&a, &b| {
            inst.item(a)
                .release
                .partial_cmp(&inst.item(b).release)
                .unwrap()
                .then(a.cmp(&b))
        });
        stock[c] = ids.iter().copied().collect();
    }

    // Entries are already phase-sorted; process bottom-up.
    let mut y_cur = 0.0f64;
    for (cfg, j, x) in &frac.entries {
        let t_j = data.boundaries[*j];
        let base = y_cur.max(t_j);
        let mut area_height = 0.0f64; // expanded height of this reserved area
        let mut x_off = 0.0f64;
        for &class in &cfg.0 {
            let class = class as usize;
            let w = data.widths[class];
            let mut fill = 0.0f64;
            while fill < *x - spp_core::eps::EPS {
                let Some(&cand) = stock[class].front() else {
                    break;
                };
                if inst.item(cand).release > t_j + spp_core::eps::EPS {
                    break; // not yet released in this phase
                }
                stock[class].pop_front();
                placement.set(cand, x_off, base + fill);
                fill += inst.item(cand).h;
            }
            area_height = area_height.max(fill);
            x_off += w;
        }
        // the reserved area keeps at least its LP height; overhang expands it
        y_cur = base + area_height.max(*x);
    }

    // Safety net: anything the columns missed is stacked on top
    // (full width, so trivially valid). Tests assert this never fires.
    let mut leftovers = 0;
    for queue in stock.iter_mut().take(n_classes) {
        while let Some(id) = queue.pop_front() {
            let it = inst.item(id);
            let base = y_cur.max(it.release);
            placement.set(id, 0.0, base);
            y_cur = base + it.h;
            leftovers += 1;
        }
    }

    let height = placement.height(inst);
    IntegralPacking {
        placement,
        height,
        leftovers,
    }
}

/// The Lemma 3.4 bound for a fractional solution: the integral packing is
/// at most `OPT_f + occurrences·h_max`.
pub fn lemma_34_bound(frac: &FractionalSolution, h_max: f64) -> f64 {
    frac.total_height + frac.occurrences() as f64 * h_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colgen::solve_fractional_with_configs;

    fn classes(inst: &Instance) -> (Vec<f64>, Vec<usize>) {
        let mut widths: Vec<f64> = inst.items().iter().map(|it| it.w).collect();
        widths.sort_by(|a, b| a.partial_cmp(b).unwrap());
        widths.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);
        let class_of = inst
            .items()
            .iter()
            .map(|it| {
                widths
                    .iter()
                    .position(|&w| (w - it.w).abs() < 1e-12)
                    .unwrap()
            })
            .collect();
        (widths, class_of)
    }

    fn run(inst: &Instance) -> (IntegralPacking, FractionalSolution) {
        let (widths, class_of) = classes(inst);
        let data = LpData::new(inst, &widths, &class_of);
        let (frac, _) = solve_fractional_with_configs(&data);
        let ip = integralize(inst, &data, &class_of, &frac);
        (ip, frac)
    }

    #[test]
    fn simple_halves() {
        let inst = Instance::from_dims(&[(0.5, 1.0), (0.5, 1.0)]).unwrap();
        let (ip, frac) = run(&inst);
        assert_eq!(ip.leftovers, 0);
        spp_core::validate::assert_valid(&inst, &ip.placement);
        assert!(ip.height <= lemma_34_bound(&frac, inst.max_height()) + 1e-6);
    }

    #[test]
    fn releases_respected() {
        let inst =
            Instance::from_dims_release(&[(0.5, 1.0, 0.0), (0.5, 1.0, 3.0), (1.0, 0.5, 1.5)])
                .unwrap();
        let (ip, _) = run(&inst);
        assert_eq!(ip.leftovers, 0);
        spp_core::validate::assert_valid(&inst, &ip.placement);
    }

    #[test]
    fn random_instances_never_leave_leftovers() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..12 {
            let p = spp_gen::release::ReleaseParams {
                k: 4,
                column_widths: true,
                h: (0.1, 1.0),
            };
            let inst = match trial % 3 {
                0 => spp_gen::release::poisson_arrivals(&mut rng, 15, 0.3, p),
                1 => spp_gen::release::bursty(&mut rng, 15, 3, 2.0, 0.0, p),
                _ => spp_gen::release::staircase(&mut rng, 15, 5.0, p),
            };
            let (ip, frac) = run(&inst);
            assert_eq!(ip.leftovers, 0, "trial {trial} left items behind");
            spp_core::validate::assert_valid(&inst, &ip.placement);
            assert!(
                ip.height <= lemma_34_bound(&frac, inst.max_height()) + 1e-6,
                "trial {trial}: {} > bound {}",
                ip.height,
                lemma_34_bound(&frac, inst.max_height())
            );
            assert!(ip.height + 1e-6 >= frac.total_height - 1e-6);
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![]).unwrap();
        let (ip, _) = run(&inst);
        assert_eq!(ip.height, 0.0);
        assert_eq!(ip.leftovers, 0);
    }
}
