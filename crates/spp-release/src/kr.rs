//! Kenyon–Rémila specialization: plain strip packing (no releases).
//!
//! The paper's §3 machinery generalizes the classic Kenyon–Rémila APTAS
//! for strip packing: with all release times zero there is a single phase,
//! the packing constraints vanish, and the configuration LP degenerates to
//! the Gilmore–Gomory cutting-stock LP. This module exposes that
//! specialization directly — an asymptotic `(1+ε)`-approximation for
//! classic strip packing with widths in `[1/K, 1]` and heights ≤ 1 —
//! so downstream users get the textbook algorithm without touching the
//! release-time API.
//!
//! (The original Kenyon–Rémila result handles arbitrary widths in `(0, 1]`
//! by packing very narrow items greedily into the leftover width; the
//! `[1/K, 1]` restriction is inherited from the paper, which needs it for
//! the bounded-configuration argument — §1: "for the FPGA application,
//! this would imply that the rectangles are at least as wide as a
//! column".)

use crate::aptas::{aptas, AptasConfig, AptasResult};
use spp_core::Instance;

/// Asymptotic `(1+ε)` strip packing for release-free instances.
///
/// Panics if any item carries a positive release time (use
/// [`crate::aptas::aptas`] for those) or violates the width/height
/// preconditions.
pub fn kenyon_remila(inst: &Instance, epsilon: f64, k: usize) -> AptasResult {
    assert!(
        inst.items().iter().all(|it| it.release == 0.0),
        "kenyon_remila is the release-free specialization"
    );
    aptas(inst, AptasConfig { epsilon, k })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn workload(n: usize, k: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(77);
        let p = spp_gen::release::ReleaseParams {
            k,
            column_widths: false,
            h: (0.05, 1.0),
        };
        spp_gen::release::no_releases(&mut rng, n, p)
    }

    #[test]
    fn single_phase_lp() {
        let inst = workload(40, 3);
        let r = kenyon_remila(&inst, 1.0, 3);
        assert_eq!(r.release_levels, 1, "release-free => one phase");
        assert_eq!(r.leftovers, 0);
        spp_core::validate::assert_valid(&inst, &r.placement);
    }

    #[test]
    fn converges_to_one_plus_eps() {
        // ratio vs the fractional optimum approaches 1+eps as n grows
        let eps = 0.5;
        let mut last_ratio = f64::INFINITY;
        for &n in &[50usize, 400] {
            let inst = workload(n, 2);
            let r = kenyon_remila(&inst, eps, 2);
            let opt_f = crate::colgen::opt_f(&inst);
            let ratio = r.height / opt_f;
            assert!(
                ratio <= (1.0 + eps) + r.occurrences as f64 / opt_f + 1e-6,
                "n={n}: ratio {ratio}"
            );
            assert!(ratio <= last_ratio + 0.05, "ratio should shrink with n");
            last_ratio = ratio;
        }
        assert!(
            last_ratio < 1.25,
            "large-n ratio {last_ratio} not near 1+eps"
        );
    }

    #[test]
    fn beats_or_matches_area_times_two() {
        // sanity vs the A-bound family: the APTAS should do no worse than
        // NFDH asymptotically
        let inst = workload(300, 2);
        let r = kenyon_remila(&inst, 1.0, 2);
        let nfdh = spp_pack::nfdh(&inst).height(&inst);
        assert!(r.height <= nfdh * 1.5 + 10.0);
    }

    #[test]
    #[should_panic(expected = "release-free")]
    fn releases_rejected() {
        let inst = Instance::from_dims_release(&[(0.5, 1.0, 2.0)]).unwrap();
        kenyon_remila(&inst, 1.0, 2);
    }
}
