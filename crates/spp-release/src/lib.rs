//! # spp-release — strip packing with release times (§3)
//!
//! The paper's second problem: every rectangle `s` carries a release time
//! `r_s` and must be placed at `y_s ≥ r_s`; heights are ≤ 1 and widths in
//! `[1/K, 1]` (at least one FPGA column). This crate implements the
//! **APTAS of Algorithm 2 / Theorem 3.5** end to end, plus everything it
//! rests on:
//!
//! | stage | paper | module |
//! |---|---|---|
//! | release rounding to `R = ⌈3/ε⌉` classes | Lemma 3.1 | [`rounding`] |
//! | width grouping to `W = ⌈3/ε⌉·K·(R+1)` classes | Lemma 3.2, Figs. 3–4 | [`grouping`] |
//! | configurations (multisets of widths, ≤ K items) | §3.2 | [`config`] |
//! | the configuration LP | Lemma 3.3 | [`lp_model`] |
//! | column generation (bounded-knapsack pricing) | — (stands in for ellipsoid/Karmarkar) | [`colgen`] |
//! | fractional → integral conversion | Lemma 3.4 | [`integralize`] |
//! | the full APTAS | Algorithm 2, Theorem 3.5 | [`mod@aptas`] |
//! | practical baselines (batched FFDH, skyline) | — | [`baselines`] |
//! | online scheduling simulator (the §1 OS setting) | — | [`online`] |
//! | Kenyon–Rémila specialization (release-free) | — | [`kr`] |
//!
//! The fractional relaxation `OPT_f` (rectangles sliceable horizontally,
//! slices placeable in parallel, releases still respected) is computed
//! exactly by the LP; `OPT_f(P) ≤ OPT(P)`, which is how the experiments
//! measure approximation factors without exact integral optima.

pub mod aptas;
pub mod baselines;
pub mod colgen;
pub mod config;
pub mod grouping;
pub mod integralize;
pub mod kr;
pub mod lp_model;
pub mod online;
pub mod rounding;

pub use aptas::{aptas, AptasConfig, AptasPhaseTimings, AptasResult};
pub use colgen::solve_fractional;
pub use config::Config;
pub use lp_model::FractionalSolution;
